//! Tier-1 gate: `cargo test` fails when any mira-lint rule is violated
//! without an inline escape hatch or an allowlist budget.
//!
//! This runs the same engine as `cargo run -p mira-lint` (no
//! subprocess, so it works wherever the test binary runs), over the
//! same inputs: every `crates/*/src/**/*.rs` file, gated through the
//! checked-in `lint-allow.toml`.

use std::path::Path;

use mira_lint::{gate, scan_workspace, Allowlist};

fn workspace_root() -> std::path::PathBuf {
    // CARGO_MANIFEST_DIR = crates/lint at compile time of this test.
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    mira_lint::find_workspace_root(manifest).expect("test runs inside the workspace")
}

#[test]
fn workspace_is_lint_clean_modulo_allowlist() {
    let root = workspace_root();
    let findings = scan_workspace(&root).expect("workspace sources are readable");

    let allowlist_path = root.join("lint-allow.toml");
    let allowlist = if allowlist_path.is_file() {
        let text = std::fs::read_to_string(&allowlist_path).expect("allowlist is readable");
        Allowlist::parse(&text).expect("lint-allow.toml parses")
    } else {
        Allowlist::default()
    };

    let gated = gate(findings, &allowlist);
    if !gated.rejected.is_empty() {
        let mut message = format!(
            "{} mira-lint finding(s) not covered by lint-allow.toml:\n",
            gated.rejected.len()
        );
        for finding in &gated.rejected {
            message.push_str(&format!("  {finding}\n"));
        }
        message.push_str(
            "fix the sites, add `// mira-lint: allow(<rule>)` with a justification, \
             or (for pre-existing code only) bump lint-allow.toml",
        );
        panic!("{message}");
    }
}

#[test]
fn allowlist_budgets_are_not_inflated() {
    // The allowlist is a ratchet: entries whose file is already clean
    // must be dropped, not kept as headroom for regressions.
    let root = workspace_root();
    let allowlist_path = root.join("lint-allow.toml");
    if !allowlist_path.is_file() {
        return;
    }
    let text = std::fs::read_to_string(&allowlist_path).expect("allowlist is readable");
    let allowlist = Allowlist::parse(&text).expect("lint-allow.toml parses");
    let findings = scan_workspace(&root).expect("workspace sources are readable");
    let gated = gate(findings, &allowlist);

    let dead: Vec<_> = gated
        .slack
        .iter()
        .filter(|(_, _, _, actual)| *actual == 0)
        .collect();
    assert!(
        dead.is_empty(),
        "allowlist entries with zero remaining findings — delete them: {dead:?}"
    );
}
