//! Seed robustness: the paper's qualitative shapes must hold for *any*
//! seed, not just the calibrated demo seed. A quick (6 h step) sweep per
//! seed checks the load-bearing anchors.

use mira_core::{analysis, Duration, FullSpan, RackId, SimConfig, Simulation};

fn check_seed(seed: u64) {
    let sim = Simulation::new(SimConfig::with_seed(seed));
    let summary = sim
        .summarize(FullSpan, Duration::from_hours(6))
        .expect("non-empty span");

    // Fig. 2 directions.
    let fig2 = analysis::fig2_yearly_trends(&summary);
    assert!(
        fig2.power_by_year[5].mean > fig2.power_by_year[0].mean,
        "seed {seed}: power must rise"
    );
    assert!(
        fig2.utilization_by_year[5].mean > fig2.utilization_by_year[0].mean + 5.0,
        "seed {seed}: utilization must rise"
    );

    // Fig. 3 Theta step.
    let fig3 = analysis::fig3_coolant_trends(&summary);
    assert!(
        fig3.flow_after_theta > fig3.flow_before_theta + 30.0,
        "seed {seed}: Theta flow step"
    );

    // Fig. 5 Monday effect, power harder than utilization.
    let fig5 = analysis::fig5_weekday_profile(&summary);
    assert!(
        fig5.power_uplift > 0.02,
        "seed {seed}: {}",
        fig5.power_uplift
    );
    assert!(
        fig5.power_uplift > fig5.utilization_uplift,
        "seed {seed}: power dips harder"
    );

    // Fig. 6 anchors are wiring, not luck.
    let fig6 = analysis::fig6_rack_power_util(&summary);
    assert_eq!(fig6.power_leader, RackId::new(0, 13), "seed {seed}");
    assert_eq!(fig6.utilization_leader, RackId::new(0, 10), "seed {seed}");
    assert!(
        (0.2..0.7).contains(&fig6.power_utilization_correlation),
        "seed {seed}: corr {}",
        fig6.power_utilization_correlation
    );

    // Fig. 10/11 calibrated ground truth.
    let fig10 = analysis::fig10_cmf_timeline(&sim);
    assert_eq!(fig10.total, 361, "seed {seed}");
    assert!((0.38..0.42).contains(&fig10.share_2016), "seed {seed}");
    let counts = sim.ras_log().cmf_by_rack();
    assert_eq!(counts[RackId::new(1, 8).index()], 14, "seed {seed}");
    assert_eq!(counts[RackId::new(2, 7).index()], 5, "seed {seed}");

    // Fig. 14 decay.
    let fig14 = analysis::fig14_post_cmf(&sim);
    assert!(fig14.ratio_6h_over_3h < 0.9, "seed {seed}");
    assert!(fig14.ratio_48h_over_3h < 0.25, "seed {seed}");
}

#[test]
fn shapes_hold_for_seed_1() {
    check_seed(1);
}

#[test]
fn shapes_hold_for_seed_777() {
    check_seed(777);
}

#[test]
fn shapes_hold_for_seed_max_entropy() {
    check_seed(0xDEAD_BEEF_CAFE_F00D);
}
