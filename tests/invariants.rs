//! Property-based invariants of the assembled simulator: physical
//! bounds, conservation laws, and aggregation consistency, checked over
//! randomized instants, racks, and spans.

use std::sync::OnceLock;

use proptest::prelude::*;

use mira_core::{Date, Duration, RackId, SimConfig, SimTime, Simulation, TelemetryProvider};

fn sim() -> &'static Simulation {
    static SIM: OnceLock<Simulation> = OnceLock::new();
    SIM.get_or_init(|| Simulation::new(SimConfig::with_seed(314)))
}

/// Any instant of the six years, at 300 s granularity.
fn any_instant() -> impl Strategy<Value = SimTime> {
    let start = SimTime::from_date(Date::new(2014, 1, 1)).epoch_seconds();
    let end = SimTime::from_date(Date::new(2020, 1, 1)).epoch_seconds();
    ((start / 300)..(end / 300)).prop_map(|tick| SimTime::from_epoch_seconds(tick * 300))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn telemetry_is_always_physical(t in any_instant(), rack_idx in 0usize..48) {
        let rack = RackId::from_index(rack_idx);
        let s = sim().telemetry().sample(rack, t);
        // Bounds wide enough for failures (flow 0, standby power) but
        // tight enough to catch real model bugs.
        prop_assert!((0.0..=40.0).contains(&s.flow.value()), "flow {}", s.flow);
        prop_assert!((50.0..=80.0).contains(&s.inlet.value()), "inlet {}", s.inlet);
        prop_assert!((50.0..=110.0).contains(&s.outlet.value()), "outlet {}", s.outlet);
        prop_assert!((0.0..=90.0).contains(&s.power.value()), "power {}", s.power);
        prop_assert!((60.0..=100.0).contains(&s.dc_temperature.value()));
        prop_assert!((10.0..=60.0).contains(&s.dc_humidity.value()));
        // Outlet never reads below inlet by more than sensor noise:
        // heat only flows one way.
        prop_assert!(
            s.outlet.value() >= s.inlet.value() - 1.0,
            "outlet {} under inlet {}",
            s.outlet,
            s.inlet
        );
    }

    #[test]
    fn flow_is_conserved_across_racks(t in any_instant()) {
        let engine = sim().telemetry();
        let snap = engine.snapshot(t);
        let total: f64 = snap.flows.iter().map(|f| f.value()).sum();
        let open = snap.rack_up.iter().filter(|&&u| u).count();
        if open > 0 {
            let setpoint = engine.effective_setpoint(t, &snap.demand).value();
            prop_assert!(
                (total - setpoint).abs() < 1e-6,
                "distributed {total} vs setpoint {setpoint}"
            );
        } else {
            prop_assert_eq!(total, 0.0);
        }
        // Closed valves carry no flow.
        for (i, up) in snap.rack_up.iter().enumerate() {
            if !up {
                prop_assert_eq!(snap.flows[i].value(), 0.0);
            }
        }
    }

    #[test]
    fn sample_is_pure(t in any_instant(), rack_idx in 0usize..48) {
        let rack = RackId::from_index(rack_idx);
        let a = sim().telemetry().sample(rack, t);
        let b = sim().telemetry().sample(rack, t);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn summary_mean_matches_direct_recomputation(
        start_day in 0i64..2100,
        hours in 24i64..240,
    ) {
        let from = SimTime::from_date(Date::new(2014, 1, 1)) + Duration::from_days(start_day);
        let to = from + Duration::from_hours(hours);
        let step = Duration::from_hours(3);
        let summary = sim().summarize(from..to, step).expect("valid span");

        // Recompute the mean system power directly.
        let mut total = 0.0;
        let mut n = 0u32;
        let mut t = from;
        while t < to {
            let (_, samples) = sim().telemetry().observe_all(t);
            total += samples.iter().map(|s| s.power.value()).sum::<f64>() / 1000.0;
            n += 1;
            t += step;
        }
        let direct = total / f64::from(n);
        let via_summary = summary.power_mw.bins.overall().mean();
        prop_assert!(
            (direct - via_summary).abs() < 1e-9,
            "direct {direct} vs summary {via_summary}"
        );
        prop_assert_eq!(u64::from(n), summary.power_mw.bins.overall().count());
    }

    #[test]
    fn summary_merge_agrees_with_whole_sweep(
        start_day in 0i64..2000,
        left_steps in 8i64..80,
        right_steps in 8i64..80,
    ) {
        let step = Duration::from_hours(3);
        // The cut must sit on the whole sweep's sample grid, otherwise
        // the two halves would sample different instants than the
        // single sweep.
        let from = SimTime::from_date(Date::new(2014, 1, 1)) + Duration::from_days(start_day);
        let cut = from + step * left_steps;
        let to = cut + step * right_steps;

        let whole = sim().summarize(from..to, step).expect("valid span");
        let mut merged = sim().summarize(from..cut, step).expect("valid span");
        merged.merge(&sim().summarize(cut..to, step).expect("valid span"));

        // Counts, spans, and ledger shape are exact under merge.
        prop_assert_eq!(merged.span, whole.span);
        prop_assert_eq!(
            merged.power_mw.bins.overall().count(),
            whole.power_mw.bins.overall().count()
        );
        prop_assert_eq!(merged.racks[11].power.count(), whole.racks[11].power.count());
        prop_assert_eq!(merged.yearly_energy.len(), whole.yearly_energy.len());
        // Moments agree to rounding error (merge re-associates folds).
        let dm = merged.flow_gpm.bins.overall().mean() - whole.flow_gpm.bins.overall().mean();
        prop_assert!(dm.abs() < 1e-9, "merged mean off by {dm}");
        let ds = merged.dc_temp_all_racks.stddev() - whole.dc_temp_all_racks.stddev();
        prop_assert!(ds.abs() < 1e-9, "merged stddev off by {ds}");
        let saved = merged.season_saved.value() - whole.season_saved.value();
        prop_assert!(saved.abs() < 1e-6, "season savings off by {saved}");
    }

    #[test]
    fn condensation_margin_positive_when_healthy(t in any_instant(), rack_idx in 0usize..48) {
        let rack = RackId::from_index(rack_idx);
        let engine = sim().telemetry();
        // Only claim safety when no CMF is near (signature distorts
        // the margin by design).
        let near_failure = engine
            .next_cmf(rack, t - Duration::from_hours(1))
            .is_some_and(|cmf| (cmf - t).as_hours() < 13.0);
        if !near_failure {
            let s = engine.sample(rack, t);
            prop_assert!(
                s.condensation_margin().value() > 3.0,
                "margin {} at {t} on {rack}",
                s.condensation_margin()
            );
        }
    }
}
