//! Equivalence of the reusable-scratch sweep hot path with the cold
//! per-step path.
//!
//! Every cursor and memo inside [`mira_core::SweepScratch`] is keyed on
//! pure function inputs, so a warm scratch must reproduce the cold path
//! bit for bit — including across the July 2016 Theta-integration
//! boundary of the operational timeline, where the supply-temperature
//! uplift and the valve/outage pattern both change shape.

use std::sync::OnceLock;

use proptest::prelude::*;

use mira_core::obs::keys;
use mira_core::{Date, Duration, ObsMode, Recorder, SimConfig, SimTime, Simulation, SweepSummary};

fn sim() -> &'static Simulation {
    static SIM: OnceLock<Simulation> = OnceLock::new();
    SIM.get_or_init(|| Simulation::new(SimConfig::with_seed(0x5CA7)))
}

fn at(date: Date) -> SimTime {
    SimTime::from_date(date)
}

/// A warm scratch equals a cold step at every probed instant. The probe
/// order deliberately jumps backwards across the Theta boundary so any
/// stale validity window would be caught.
fn assert_scratch_matches_cold(times: &[SimTime]) {
    let engine = sim().telemetry();
    let mut scratch = engine.sweep_scratch();
    for &t in times {
        engine.sweep_step_into(t, &mut scratch);
        // The deprecated one-shot is exactly the cold reference needed
        // here: a fresh scratch per call.
        #[allow(deprecated)]
        let cold = engine.sweep_step(t);
        assert_eq!(*scratch.step(), cold, "scratch diverged at {t:?}");
        // `PartialEq` on f64 conflates 0.0 with -0.0; the debug
        // rendering does not, so compare that too.
        assert_eq!(format!("{:?}", scratch.step()), format!("{cold:?}"));
    }
}

/// The batched kernel partitioned into `block`-sized chunks reproduces
/// the per-step path bit for bit at every instant of the grid
/// `[from, from + step·total)`. The per-step reference walks its own
/// warm scratch in the same chronological order (itself pinned to the
/// cold path by the tests above), so this transitively pins the batch
/// path to the cold path too.
fn assert_batched_matches_per_step(from: SimTime, step: Duration, total: usize, block: usize) {
    let engine = sim().telemetry();
    let mut per_step = engine.sweep_scratch();
    let mut expected = Vec::with_capacity(total);
    for k in 0..total {
        let t = from + step * i64::try_from(k).expect("small grid");
        engine.sweep_step_into(t, &mut per_step);
        expected.push(per_step.step().clone());
    }

    let mut scratch = engine.sweep_scratch();
    let mut k = 0usize;
    while k < total {
        let n = (total - k).min(block);
        let t = from + step * i64::try_from(k).expect("small grid");
        engine.sweep_steps_into(t, step, n, &mut scratch);
        let (blk, staging) = scratch.block_parts();
        assert_eq!(blk.len(), n);
        for j in 0..n {
            assert_eq!(blk.time(j), expected[k + j].snapshot.time);
            blk.materialize_into(j, staging);
            assert_eq!(
                *staging,
                expected[k + j],
                "block size {block} diverged at grid index {}",
                k + j
            );
            // `PartialEq` on f64 conflates 0.0 with -0.0; the debug
            // rendering does not, so compare that too.
            assert_eq!(format!("{staging:?}"), format!("{:?}", expected[k + j]));
        }
        k += n;
    }
}

/// Deterministic partitions across the hard seams: a grid running from
/// late June 2016 through mid-July crosses both the calendar-month
/// shard seam and the July 2016 Theta boundary mid-block for every
/// partition width, including one block spanning the whole grid.
#[test]
fn batched_blocks_match_per_step_across_theta_and_month_seam() {
    let from = at(Date::new(2016, 6, 25));
    let step = Duration::from_hours(2);
    let total = 20 * 12; // 20 days at 12 samples/day.
    for block in [1usize, 7, 48, total] {
        assert_batched_matches_per_step(from, step, total, block);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random grids and partition widths near the Theta boundary: any
    /// chunking of `sweep_steps_into` equals the per-step fold exactly.
    #[test]
    fn batched_blocks_match_per_step_anywhere(
        start_day in 0i64..55,
        step_minutes in 5i64..720,
        block in 1usize..64,
    ) {
        let from = at(Date::new(2016, 5, 5)) + Duration::from_hours(24 * start_day);
        let step = Duration::from_minutes(step_minutes);
        assert_batched_matches_per_step(from, step, 40, block);
    }

    /// Random spans straddling the July 2016 Theta event: a single
    /// scratch walked forward across the boundary, then jumped back
    /// before it, agrees with the uncached path exactly.
    #[test]
    fn scratch_survives_theta_boundary(
        start_day in 0i64..55,
        step_minutes in 5i64..720,
        revisit_day in 0i64..50,
    ) {
        let theta = at(Date::new(2016, 7, 1));
        let from = at(Date::new(2016, 5, 5)) + Duration::from_hours(24 * start_day);
        let step = Duration::from_minutes(step_minutes);
        let mut times = Vec::new();
        // Walk forward until a couple of steps past the boundary.
        let mut t = from;
        while t <= theta + step + step {
            times.push(t);
            t += step;
        }
        // Jump back to before the boundary with the same warm scratch.
        times.push(at(Date::new(2016, 5, 1)) + Duration::from_hours(24 * revisit_day));
        // And forward again, past the uplift ramp.
        times.push(at(Date::new(2016, 9, 15)));
        assert_scratch_matches_cold(&times);
    }
}

/// The same walk, deterministically, across the other timeline edges:
/// span start, year boundaries, and the 2019 decommission wind-down.
#[test]
fn scratch_matches_cold_at_timeline_edges() {
    let day = Duration::from_hours(24);
    let times = [
        at(Date::new(2014, 1, 1)),
        at(Date::new(2014, 1, 1)) + Duration::from_minutes(5),
        at(Date::new(2014, 12, 31)) + Duration::from_hours(23),
        at(Date::new(2015, 1, 1)),
        at(Date::new(2016, 6, 30)) + Duration::from_hours(23),
        at(Date::new(2016, 7, 1)),
        at(Date::new(2016, 7, 1)) + day,
        at(Date::new(2014, 3, 3)), // far backwards jump
        at(Date::new(2019, 12, 31)) + Duration::from_hours(23),
    ];
    assert_scratch_matches_cold(&times);
}

/// A quarter-long sweep through the plan (warm scratch per shard) must
/// produce the exact same `SweepSummary` as hand-folding cold steps.
#[test]
fn plan_summary_equals_cold_fold_over_theta_quarter() {
    let from = at(Date::new(2016, 6, 1));
    let to = at(Date::new(2016, 9, 1));
    let step = Duration::from_hours(2);

    let planned = sim()
        .sweep_plan((from, to))
        .step(step)
        .threads(1)
        .summary()
        .expect("non-empty span");

    // Replicate the plan's calendar-month shard-and-merge structure
    // (it is a pure function of the span, identical at every thread
    // count) but feed it cold per-step results instead of the warm
    // scratch the executor uses.
    let engine = sim().telemetry();
    let mut partials: Vec<SweepSummary> = Vec::new();
    let mut month = u8::MAX;
    let mut t = from;
    while t < to {
        // Cold per-step reference, deliberately not scratch-warm.
        #[allow(deprecated)]
        let step_result = engine.sweep_step(t);
        let m = step_result.civil.date.month().number();
        if m != month {
            partials.push(SweepSummary::empty((from, to), step));
            month = m;
        }
        partials
            .last_mut()
            .expect("pushed above")
            .record(&step_result);
        t += step;
    }
    let mut cold = partials.remove(0);
    for later in partials {
        Recorder::merge(&mut cold, later);
    }
    let cold = Recorder::finish(cold);

    assert_eq!(planned, cold);
}

/// The hydraulic-solve memo counters are a pure function of the sweep
/// plan: one miss per grid step, no hits (the scratch path solves
/// in-place), at every thread count. Random-access snapshots are where
/// the memo earns its hits.
#[test]
fn hydro_counters_count_solves_not_luck() {
    // Fresh simulation: counters are engine-global and the shared
    // `sim()` is probed concurrently by the other tests.
    let sim = Simulation::new(SimConfig::with_seed(99));
    let span = (at(Date::new(2015, 2, 1)), at(Date::new(2015, 2, 8)));
    let step = Duration::from_hours(1);

    for threads in [1usize, 4] {
        let observed = sim
            .summarize_observed(span, step, threads, ObsMode::On)
            .expect("non-empty span");
        let steps = observed.report.metrics.counter(keys::SIM_STEPS);
        assert_eq!(
            observed
                .report
                .metrics
                .counter(keys::COOLING_HYDRO_CACHE_MISSES),
            steps,
            "sweep path solves exactly once per step"
        );
        assert_eq!(
            observed
                .report
                .metrics
                .counter(keys::COOLING_HYDRO_CACHE_HITS),
            Some(0),
            "sweep path never consults the memo"
        );
    }

    // Random access at a repeated instant hits the memo.
    let (h0, m0) = sim.telemetry().hydro_cache_stats();
    let t = at(Date::new(2015, 3, 15));
    let a = sim.telemetry().snapshot(t);
    let b = sim.telemetry().snapshot(t);
    assert_eq!(a, b);
    let (h1, m1) = sim.telemetry().hydro_cache_stats();
    assert_eq!(m1 - m0, 1, "first snapshot solves");
    assert_eq!(h1 - h0, 1, "second snapshot reuses the solve");
}
