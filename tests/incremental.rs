//! Byte-identity of [`mira_core::IncrementalSweep`] with the cold
//! batch sweep, property-tested over arbitrary append schedules.
//!
//! The incremental engine folds appended instants into a completed
//! prefix plus one open calendar-month shard; querying replays exactly
//! the batch executor's chronological seam merge. That construction is
//! only worth having if it is *bit-for-bit* indistinguishable from
//! `Simulation::summarize` — at any chunking of the appends and at any
//! batch thread count — so these properties compare `Debug` renderings
//! (every float bit surfaces) on top of `assert_eq!`.

use std::sync::OnceLock;

use proptest::prelude::*;

use mira_core::analysis::full_report;
use mira_core::{Date, Duration, SimConfig, SimTime, Simulation};

fn sim() -> &'static Simulation {
    static SIM: OnceLock<Simulation> = OnceLock::new();
    SIM.get_or_init(|| Simulation::new(SimConfig::with_seed(0x1C4)))
}

fn i64_of(n: usize) -> i64 {
    i64::try_from(n).expect("test sizes fit i64")
}

/// Step sizes that land on and off month-seam divisors.
const STEP_HOURS: [i64; 4] = [1, 3, 6, 11];

/// Ragged chunk sizes fed to `ingest` one call at a time.
fn chunk_schedules() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..80, 1..7)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Incremental append over an arbitrary chunking equals a cold
    /// batch sweep of the same span, bit for bit, at 1 and 4 threads.
    #[test]
    fn chunked_appends_match_batch_at_any_thread_count(
        offset_days in 0i64..330,
        step_ix in 0usize..4,
        chunks in chunk_schedules(),
    ) {
        let step_hours = STEP_HOURS[step_ix];
        let sim = sim();
        let from = SimTime::from_date(Date::new(2015, 1, 1))
            + Duration::from_hours(24 * offset_days);
        let step = Duration::from_hours(step_hours);
        let mut inc = mira_core::IncrementalSweep::builder(from)
            .step(step)
            .build()
            .expect("positive step");

        let mut total = 0usize;
        for chunk in chunks {
            inc.ingest(sim.telemetry(), chunk).expect("aligned ingest");
            total += chunk;
        }
        let to = from + step * i64_of(total);
        let incremental = inc.summary().expect("non-empty");

        for threads in [1usize, 4] {
            let batch = sim
                .sweep_plan((from, to))
                .step(step)
                .threads(threads)
                .summary()
                .expect("non-empty");
            prop_assert_eq!(&incremental, &batch, "threads={}", threads);
            prop_assert_eq!(
                format!("{incremental:?}"),
                format!("{batch:?}"),
                "debug bytes, threads={}",
                threads
            );
        }
    }
}

proptest! {
    // The full figure pipeline is much heavier than a summary (spatial
    // regressions, CMF timeline, seasonal splits), so fewer cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The derived [`mira_core::analysis::FigureReport`] is also byte-
    /// identical: figures are a pure function of the summary, so any
    /// drift here would mean the aggregates differ somewhere `Eq`
    /// can't see — there is nowhere else for it to come from.
    #[test]
    fn figure_report_matches_batch(
        offset_days in 0i64..330,
        step_ix in 0usize..4,
        chunks in chunk_schedules(),
    ) {
        let step_hours = STEP_HOURS[step_ix];
        let sim = sim();
        let from = SimTime::from_date(Date::new(2015, 1, 1))
            + Duration::from_hours(24 * offset_days);
        let step = Duration::from_hours(step_hours);
        let mut inc = mira_core::IncrementalSweep::builder(from)
            .step(step)
            .build()
            .expect("positive step");
        let mut total = 0usize;
        for chunk in chunks {
            inc.ingest(sim.telemetry(), chunk).expect("aligned ingest");
            total += chunk;
        }
        let to = from + step * i64_of(total);

        let incremental = inc.figures(sim).expect("non-empty");
        let batch_summary = sim
            .sweep_plan((from, to))
            .step(step)
            .threads(4)
            .summary()
            .expect("non-empty");
        let batch = full_report(sim, &batch_summary);
        prop_assert_eq!(format!("{incremental:?}"), format!("{batch:?}"));
    }
}
