//! Reproducibility: the whole world is a function of the seed, and
//! sweep results are a function of the plan — never the thread count.

use mira_core::{analysis, Date, Duration, FullSpan, SimConfig, SimTime, Simulation};

#[test]
fn same_seed_bitwise_identical_world() {
    let a = Simulation::new(SimConfig::with_seed(1234));
    let b = Simulation::new(SimConfig::with_seed(1234));

    assert_eq!(a.schedule(), b.schedule());
    assert_eq!(a.ras_log(), b.ras_log());

    let t = SimTime::from_date(Date::new(2016, 8, 15)) + Duration::from_hours(10);
    assert_eq!(
        a.telemetry().observe_all(t).1,
        b.telemetry().observe_all(t).1
    );

    let span = (
        SimTime::from_date(Date::new(2015, 6, 1)),
        SimTime::from_date(Date::new(2015, 8, 1)),
    );
    let sa = a
        .summarize(span, Duration::from_hours(6))
        .expect("valid span");
    let sb = b
        .summarize(span, Duration::from_hours(6))
        .expect("valid span");
    assert_eq!(
        sa.power_mw.bins.overall().mean(),
        sb.power_mw.bins.overall().mean()
    );
    assert_eq!(sa.racks[17].flow.mean(), sb.racks[17].flow.mean());
}

#[test]
fn different_seeds_differ_but_keep_invariants() {
    let a = Simulation::new(SimConfig::with_seed(1));
    let b = Simulation::new(SimConfig::with_seed(2));

    // Stochastic arrangement differs...
    assert_ne!(
        a.schedule().incidents()[0].time,
        b.schedule().incidents()[0].time
    );
    let t = SimTime::from_date(Date::new(2018, 3, 3));
    assert_ne!(
        a.telemetry().observe_all(t).1,
        b.telemetry().observe_all(t).1
    );

    // ...but the measured ground truth does not.
    for sim in [&a, &b] {
        let fig10 = analysis::fig10_cmf_timeline(sim);
        assert_eq!(fig10.total, 361);
        assert!((0.38..0.42).contains(&fig10.share_2016));
        let counts = sim.ras_log().cmf_by_rack();
        assert_eq!(counts[mira_core::RackId::new(1, 8).index()], 14);
        assert_eq!(counts[mira_core::RackId::new(2, 7).index()], 5);
    }
}

/// The tentpole guarantee: a multi-threaded sweep over the full
/// six-year span is *exactly* equal to the single-threaded one — every
/// Welford moment, every per-rack aggregate, every yearly energy row.
/// The plan shards by calendar month and merges chronologically, so
/// workers only change who computes each shard, never the arithmetic.
#[test]
fn parallel_sweep_matches_sequential_exactly() {
    let sim = Simulation::new(SimConfig::with_seed(2014));
    let sweep = |threads: usize| {
        sim.sweep_plan(FullSpan)
            .step(Duration::from_hours(6))
            .threads(threads)
            .summary()
            .expect("six-year span is non-empty")
    };

    let sequential = sweep(1);
    // 2191 days at 4 samples/day.
    assert_eq!(sequential.power_mw.bins.overall().count(), 2191 * 4);

    for threads in [2, 4, 8] {
        let parallel = sweep(threads);
        // Spot-check the moments with exact comparisons first so a
        // regression names the channel...
        assert_eq!(
            sequential.power_mw.bins.overall().mean(),
            parallel.power_mw.bins.overall().mean(),
            "power mean, threads={threads}"
        );
        assert_eq!(
            sequential.dc_rh_all_racks.stddev(),
            parallel.dc_rh_all_racks.stddev(),
            "pooled humidity sigma, threads={threads}"
        );
        assert_eq!(
            sequential.racks[17].outlet, parallel.racks[17].outlet,
            "rack 17 outlet, threads={threads}"
        );
        assert_eq!(
            sequential.yearly_energy, parallel.yearly_energy,
            "yearly energy, threads={threads}"
        );
        // ...then require the whole summary to be bit-for-bit equal.
        assert_eq!(sequential, parallel, "threads={threads}");
    }

    // Auto selection (whatever the machine offers) agrees too.
    assert_eq!(sequential, sweep(0), "auto thread count");
}

/// Month-aligned sub-sweeps merged chronologically reproduce the
/// single sweep's counts exactly and its means to rounding error.
#[test]
fn merged_subspan_summaries_agree_with_one_sweep() {
    let sim = Simulation::new(SimConfig::with_seed(9));
    let step = Duration::from_hours(4);
    let cut = SimTime::from_date(Date::new(2015, 4, 1));
    let span = (
        SimTime::from_date(Date::new(2015, 1, 1)),
        SimTime::from_date(Date::new(2015, 7, 1)),
    );

    let whole = sim.summarize(span, step).expect("valid span");
    let mut merged = sim.summarize((span.0, cut), step).expect("valid span");
    merged.merge(&sim.summarize((cut, span.1), step).expect("valid span"));

    assert_eq!(merged.span, whole.span);
    assert_eq!(
        merged.power_mw.bins.overall().count(),
        whole.power_mw.bins.overall().count()
    );
    assert_eq!(merged.racks[5].flow.count(), whole.racks[5].flow.count());
    assert_eq!(merged.yearly_energy.len(), whole.yearly_energy.len());
    // Merging re-associates the floating-point folds, so means agree to
    // rounding error rather than bitwise.
    let dm = merged.power_mw.bins.overall().mean() - whole.power_mw.bins.overall().mean();
    assert!(dm.abs() < 1e-9, "merged mean off by {dm}");
    let ds = merged.dc_temp_all_racks.stddev() - whole.dc_temp_all_racks.stddev();
    assert!(ds.abs() < 1e-9, "merged sigma off by {ds}");
}

#[test]
fn telemetry_is_pure_random_access() {
    use mira_core::TelemetryProvider;

    let sim = Simulation::new(SimConfig::with_seed(77));
    let rack = mira_core::RackId::new(2, 5);
    let t = SimTime::from_date(Date::new(2019, 9, 9)) + Duration::from_minutes(35);

    // Sampling out of order, repeatedly, gives identical records.
    let first = sim.telemetry().sample(rack, t);
    let _ = sim.telemetry().sample(rack, t - Duration::from_days(400));
    let again = sim.telemetry().sample(rack, t);
    assert_eq!(first, again);
}
