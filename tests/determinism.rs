//! Reproducibility: the whole world is a function of the seed.

use mira_core::{analysis, Date, Duration, SimConfig, SimTime, Simulation};

#[test]
fn same_seed_bitwise_identical_world() {
    let a = Simulation::new(SimConfig::with_seed(1234));
    let b = Simulation::new(SimConfig::with_seed(1234));

    assert_eq!(a.schedule(), b.schedule());
    assert_eq!(a.ras_log(), b.ras_log());

    let t = SimTime::from_date(Date::new(2016, 8, 15)) + Duration::from_hours(10);
    assert_eq!(
        a.telemetry().observe_all(t).1,
        b.telemetry().observe_all(t).1
    );

    let span = (
        SimTime::from_date(Date::new(2015, 6, 1)),
        SimTime::from_date(Date::new(2015, 8, 1)),
    );
    let sa = a.summarize_span(span.0, span.1, Duration::from_hours(6));
    let sb = b.summarize_span(span.0, span.1, Duration::from_hours(6));
    assert_eq!(
        sa.power_mw.bins.overall().mean(),
        sb.power_mw.bins.overall().mean()
    );
    assert_eq!(sa.racks[17].flow.mean(), sb.racks[17].flow.mean());
}

#[test]
fn different_seeds_differ_but_keep_invariants() {
    let a = Simulation::new(SimConfig::with_seed(1));
    let b = Simulation::new(SimConfig::with_seed(2));

    // Stochastic arrangement differs...
    assert_ne!(
        a.schedule().incidents()[0].time,
        b.schedule().incidents()[0].time
    );
    let t = SimTime::from_date(Date::new(2018, 3, 3));
    assert_ne!(
        a.telemetry().observe_all(t).1,
        b.telemetry().observe_all(t).1
    );

    // ...but the measured ground truth does not.
    for sim in [&a, &b] {
        let fig10 = analysis::fig10_cmf_timeline(sim);
        assert_eq!(fig10.total, 361);
        assert!((0.38..0.42).contains(&fig10.share_2016));
        let counts = sim.ras_log().cmf_by_rack();
        assert_eq!(counts[mira_core::RackId::new(1, 8).index()], 14);
        assert_eq!(counts[mira_core::RackId::new(2, 7).index()], 5);
    }
}

#[test]
fn telemetry_is_pure_random_access() {
    use mira_core::TelemetryProvider;

    let sim = Simulation::new(SimConfig::with_seed(77));
    let rack = mira_core::RackId::new(2, 5);
    let t = SimTime::from_date(Date::new(2019, 9, 9)) + Duration::from_minutes(35);

    // Sampling out of order, repeatedly, gives identical records.
    let first = sim.telemetry().sample(rack, t);
    let _ = sim.telemetry().sample(rack, t - Duration::from_days(400));
    let again = sim.telemetry().sample(rack, t);
    assert_eq!(first, again);
}
