//! API-guideline contracts: thread-safety markers, error-trait
//! conformance, and non-empty Debug/Display representations for the
//! public surface (C-SEND-SYNC, C-GOOD-ERR, C-DEBUG-NONEMPTY).

use mira_core::{SimConfig, Simulation};

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn core_types_are_send_and_sync() {
    assert_send_sync::<Simulation>();
    assert_send_sync::<mira_core::TelemetryEngine>();
    assert_send_sync::<mira_core::SweepSummary>();
    assert_send_sync::<mira_core::CoolantMonitorSample>();
    assert_send_sync::<mira_core::RasLog>();
    assert_send_sync::<mira_core::CmfSchedule>();
    assert_send_sync::<mira_core::CmfPredictor>();
    assert_send_sync::<mira_core::DatasetBuilder>();
    assert_send_sync::<mira_facility::Machine>();
    assert_send_sync::<mira_nn::Mlp>();
    assert_send_sync::<mira_nn::Dataset>();
    assert_send_sync::<mira_weather::ChicagoClimate>();
    assert_send_sync::<mira_workload::WorkloadModel>();
    assert_send_sync::<mira_workload::BackfillScheduler>();
    assert_send_sync::<mira_core::ObsReport>();
    assert_send_sync::<mira_obs::Collector>();
}

#[test]
fn errors_implement_std_error_and_are_sendable() {
    fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
    assert_error::<mira_facility::ParseRackIdError>();
    assert_error::<mira_core::SweepError>();
    assert_error::<mira_core::StoreError>();
    #[allow(deprecated)]
    assert_error::<mira_core::archive::ArchiveError>();
    assert_error::<mira_core::Error>();
    assert_error::<mira_ops_cli::CliError>();
}

#[test]
fn unified_error_preserves_the_cause_chain() {
    use std::error::Error as _;

    let err = mira_core::Error::from(std::io::Error::new(
        std::io::ErrorKind::NotFound,
        "missing.csv",
    ));
    // Error -> StoreError -> io::Error, walkable via source().
    let store = err.source().expect("store cause");
    let io = store.source().expect("io cause");
    assert!(io.to_string().contains("missing.csv"));

    let sweep = mira_core::Error::from(mira_core::SweepError::EmptySpan);
    assert!(matches!(sweep, mira_core::Error::Sweep(_)));
    assert!(sweep.source().is_some());
}

#[test]
fn error_messages_are_lowercase_and_concise() {
    let parse = mira_facility::RackId::parse("bogus").unwrap_err();
    let msg = parse.to_string();
    assert!(msg.starts_with(char::is_lowercase), "{msg}");
    assert!(!msg.ends_with('.'), "{msg}");
}

#[test]
fn telemetry_can_be_shared_across_threads() {
    use std::sync::Arc;

    let sim = Arc::new(Simulation::new(SimConfig::with_seed(7)));
    let t = mira_core::SimTime::from_date(mira_core::Date::new(2017, 2, 2));

    let handles: Vec<_> = (0..4)
        .map(|k| {
            let sim = Arc::clone(&sim);
            std::thread::spawn(move || {
                let rack = mira_core::RackId::from_index(k * 11 % 48);
                mira_core::TelemetryProvider::sample(sim.telemetry(), rack, t)
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // Deterministic across threads too.
    for (k, s) in results.iter().enumerate() {
        let rack = mira_core::RackId::from_index(k * 11 % 48);
        assert_eq!(
            *s,
            mira_core::TelemetryProvider::sample(sim.telemetry(), rack, t)
        );
    }
}

#[test]
fn debug_representations_are_never_empty() {
    let sim = Simulation::new(SimConfig::with_seed(7));
    assert!(!format!("{:?}", sim.config()).is_empty());
    assert!(!format!("{:?}", mira_core::RackId::new(0, 0)).is_empty());
    assert!(!format!("{:?}", mira_nn::BinaryMetrics::new()).is_empty());
    assert!(!format!("{:?}", mira_timeseries::Welford::new()).is_empty());
}

#[test]
fn display_types_render_with_units() {
    use mira_units::{Fahrenheit, Gpm, KilowattHours, Kilowatts, Megawatts, Percent, RelHumidity};

    for (text, needle) in [
        (Fahrenheit::new(64.0).to_string(), "F"),
        (Gpm::new(26.0).to_string(), "GPM"),
        (Kilowatts::new(58.0).to_string(), "kW"),
        (Megawatts::new(2.5).to_string(), "MW"),
        (RelHumidity::new(33.0).to_string(), "%RH"),
        (KilowattHours::new(17_820.0).to_string(), "kWh"),
        (Percent::new(93.0).to_string(), "%"),
    ] {
        assert!(text.contains(needle), "{text} missing {needle}");
    }
}
