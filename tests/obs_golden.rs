//! Golden determinism gate for the observability layer: the
//! deterministic metrics snapshot of an instrumented quarter-span sweep
//! must be byte-identical no matter how many sweep workers run it.
//!
//! `ci.sh` runs this test under `MIRA_SWEEP_THREADS=1` and `=4`; the
//! env-resolved run (`threads = 0`) is asserted against explicit
//! per-call thread counts here, so both knobs are covered.
//!
//! Wall-clock timings are nondeterministic by design and live outside
//! `ObsReport::deterministic_json`; a `ManualClock` keeps even the
//! timings section stable in this test.

use mira_core::obs::keys;
use mira_core::{ObsMode, SimConfig, Simulation};
use mira_obs::ManualClock;
use mira_timeseries::{Date, Duration, SimTime};

fn quarter() -> (SimTime, SimTime) {
    (
        SimTime::from_date(Date::new(2016, 1, 1)),
        SimTime::from_date(Date::new(2016, 4, 1)),
    )
}

#[test]
fn quarter_span_metrics_are_byte_identical_across_thread_counts() {
    let sim = Simulation::new(SimConfig::with_seed(2016));
    let span = quarter();
    let step = Duration::from_hours(3);
    let clock = ManualClock::new();

    let base = sim
        .summarize_observed_with_clock(span, step, 1, ObsMode::On, &clock)
        .expect("valid span");
    let golden = base.report.deterministic_json();
    assert!(!base.report.is_empty(), "instrumented sweep must report");

    // Explicit worker counts, plus 0 = resolve from MIRA_SWEEP_THREADS
    // (ci.sh runs this binary under both =1 and =4).
    for threads in [2, 4, 0] {
        let other = sim
            .summarize_observed_with_clock(span, step, threads, ObsMode::On, &clock)
            .expect("valid span");
        assert_eq!(
            other.report.deterministic_json(),
            golden,
            "threads={threads}"
        );
        assert_eq!(other.summary, base.summary, "threads={threads}");
    }
}

#[test]
fn quarter_span_metrics_carry_the_expected_shape() {
    let sim = Simulation::new(SimConfig::with_seed(2016));
    let (from, to) = quarter();
    let step = Duration::from_hours(3);
    let clock = ManualClock::new();
    let report = sim
        .summarize_observed_with_clock((from, to), step, 4, ObsMode::On, &clock)
        .expect("valid span")
        .report;

    // Q1 2016 (leap year): 91 days at 8 instants/day, 48 racks each.
    let steps = (31 + 29 + 31) * 8;
    assert_eq!(report.metrics.counter(keys::SIM_STEPS), Some(steps));
    assert_eq!(report.metrics.counter(keys::SIM_SAMPLES), Some(steps * 48));
    assert_eq!(report.metrics.counter(keys::SWEEP_SHARDS), Some(3));
    assert_eq!(report.metrics.counter(keys::SWEEP_MERGES), Some(2));
    assert_eq!(
        report.metrics.counter("obs.conflicts"),
        None,
        "metric vocabulary must be conflict-free"
    );
    // Every rack that went down came back up or is still down at the
    // end; transitions can never exceed valve actuations.
    let down = report
        .metrics
        .counter(keys::RAS_CMF_TRANSITIONS)
        .unwrap_or(0);
    let up = report
        .metrics
        .counter(keys::RAS_RACK_RECOVERIES)
        .unwrap_or(0);
    let valves = report
        .metrics
        .counter(keys::COOLING_VALVE_ACTUATIONS)
        .unwrap_or(0);
    assert_eq!(down + up, valves, "each rack edge actuates one valve");
    // The deterministic snapshot never contains wall-clock data.
    let json = report.deterministic_json();
    assert!(!json.contains("timings"), "timings stay out of the gate");
}
