//! The headline validation: one full 2014–2019 sweep, checked against
//! every quantitative anchor the paper reports.
//!
//! Shape, not absolute equality: our substrate is a simulator, so each
//! assertion is a band around the paper's number wide enough for seed
//! noise but tight enough that a broken model fails.

use mira_core::{analysis, Duration, FullSpan, RackId, SimConfig, Simulation};
use mira_timeseries::Month;

/// One shared world + six-year summary for every check in this file.
/// The sweep runs in parallel — the month-sharded plan makes that
/// bit-identical to a sequential pass.
fn world() -> (Simulation, mira_core::SweepSummary) {
    let sim = Simulation::new(SimConfig::with_seed(2014));
    let summary = sim
        .summarize(FullSpan, Duration::from_hours(1))
        .expect("non-empty span");
    (sim, summary)
}

#[test]
fn six_year_anchor_suite() {
    let (sim, summary) = world();

    // ---- Fig. 2: power 2.5 -> 2.9 MW, utilization 80 -> 93 %. ----
    let fig2 = analysis::fig2_yearly_trends(&summary);
    assert_eq!(fig2.power_by_year.len(), 6);
    let p2014 = fig2.power_by_year[0].mean;
    let p2019 = fig2.power_by_year[5].mean;
    assert!((2.3..2.7).contains(&p2014), "2014 power {p2014} MW");
    assert!((2.7..3.1).contains(&p2019), "2019 power {p2019} MW");
    let u2014 = fig2.utilization_by_year[0].mean;
    let u2019 = fig2.utilization_by_year[5].mean;
    assert!((76.0..84.0).contains(&u2014), "2014 utilization {u2014}%");
    assert!((88.0..96.0).contains(&u2019), "2019 utilization {u2019}%");
    assert!(fig2.power_fit.expect("fit").slope > 0.0);
    assert!(fig2.utilization_fit.expect("fit").slope > 0.0);

    // ---- Fig. 3: flow step at Theta; stability sigmas. ----
    let fig3 = analysis::fig3_coolant_trends(&summary);
    assert!(
        (1240.0..1265.0).contains(&fig3.flow_before_theta),
        "pre-Theta flow {}",
        fig3.flow_before_theta
    );
    assert!(
        (1290.0..1320.0).contains(&fig3.flow_after_theta),
        "post-Theta flow {}",
        fig3.flow_after_theta
    );
    assert!(
        (20.0..55.0).contains(&fig3.flow_stddev),
        "flow sigma {} (paper 41 GPM)",
        fig3.flow_stddev
    );
    assert!(
        (0.3..1.1).contains(&fig3.inlet_stddev),
        "inlet sigma {} (paper 0.61 F)",
        fig3.inlet_stddev
    );
    assert!(
        (0.3..1.4).contains(&fig3.outlet_stddev),
        "outlet sigma {} (paper 0.71 F)",
        fig3.outlet_stddev
    );
    // Inlet ~64 F, outlet ~79 F throughout.
    for row in &fig3.inlet_by_year {
        assert!(
            (62.5..67.5).contains(&row.mean),
            "inlet {} in {}",
            row.mean,
            row.year
        );
    }
    for row in &fig3.outlet_by_year {
        assert!(
            (76.0..83.0).contains(&row.mean),
            "outlet {} in {}",
            row.mean,
            row.year
        );
    }
    // The 2016 Theta heat bump: inlet mean 2016 above 2015.
    assert!(fig3.inlet_by_year[2].mean > fig3.inlet_by_year[1].mean);

    // ---- Fig. 4: monthly shapes. ----
    let fig4 = analysis::fig4_monthly_profile(&summary);
    let med = |rows: &[mira_timeseries::MonthProfile], m: Month| {
        rows.iter().find(|r| r.month == m).unwrap().median
    };
    assert!(med(&fig4.power, Month::December) > med(&fig4.power, Month::April));
    assert!(med(&fig4.utilization, Month::December) > med(&fig4.utilization, Month::May));
    // Inlet warmer in free-cooling months than mid-summer.
    assert!(med(&fig4.inlet, Month::January) > med(&fig4.inlet, Month::August));
    // Flow/inlet/outlet move less than ~2 % from January (paper: 1.5 %).
    for changes in [
        fig4.flow_change_from_january.as_ref().unwrap(),
        fig4.inlet_change_from_january.as_ref().unwrap(),
        fig4.outlet_change_from_january.as_ref().unwrap(),
    ] {
        assert!(changes.iter().all(|c| c.abs() < 0.025), "{changes:?}");
    }

    // ---- Fig. 5: Monday maintenance. ----
    let fig5 = analysis::fig5_weekday_profile(&summary);
    assert!(
        (0.02..0.10).contains(&fig5.power_uplift),
        "non-Monday power uplift {} (paper ~6 %)",
        fig5.power_uplift
    );
    assert!(
        (0.004..0.035).contains(&fig5.utilization_uplift),
        "non-Monday utilization uplift {} (paper ~1.5 %)",
        fig5.utilization_uplift
    );
    assert!(fig5.power_uplift > 2.0 * fig5.utilization_uplift);
    assert!(
        (0.0..0.05).contains(&fig5.outlet_uplift),
        "outlet uplift {} (paper ~2 %)",
        fig5.outlet_uplift
    );
    assert!(fig5.flow_uplift.abs() < 0.008, "flow flat across weekdays");
    assert!(
        fig5.inlet_uplift.abs() < 0.008,
        "inlet flat across weekdays"
    );

    // ---- Fig. 6: rack power/utilization. ----
    let fig6 = analysis::fig6_rack_power_util(&summary);
    assert_eq!(fig6.power_leader, RackId::new(0, 13), "(0, D) leads power");
    assert_eq!(
        fig6.utilization_leader,
        RackId::new(0, 10),
        "(0, A) leads util"
    );
    assert_eq!(fig6.utilization_floor, RackId::new(2, 13), "(2, D) floor");
    assert!(
        (0.06..0.20).contains(&fig6.power_spread),
        "power spread {} (paper up to 15 %)",
        fig6.power_spread
    );
    assert!(
        (0.25..0.65).contains(&fig6.power_utilization_correlation),
        "power-util correlation {} (paper 0.45)",
        fig6.power_utilization_correlation
    );
    assert!(fig6.row_utilization[0] > fig6.row_utilization[1]);

    // ---- Fig. 7: rack coolant. ----
    let fig7 = analysis::fig7_rack_coolant(&summary);
    assert!(
        (0.06..0.16).contains(&fig7.flow_spread),
        "flow spread {} (paper up to 11 %)",
        fig7.flow_spread
    );
    assert!(
        fig7.inlet_spread < 0.02,
        "inlet spread {}",
        fig7.inlet_spread
    );
    assert!(
        (0.005..0.06).contains(&fig7.outlet_spread),
        "outlet spread {} (paper up to 3 %)",
        fig7.outlet_spread
    );

    // ---- Fig. 8: ambient variability. ----
    let fig8 = analysis::fig8_ambient_trends(&summary);
    assert!(
        (1.2..3.8).contains(&fig8.temperature_stddev),
        "DC temp sigma {} (paper 2.48 F)",
        fig8.temperature_stddev
    );
    assert!(
        (2.2..5.2).contains(&fig8.humidity_stddev),
        "DC humidity sigma {} (paper 3.66 RH)",
        fig8.humidity_stddev
    );
    let (tmin, tmax) = fig8.temperature_range;
    assert!(tmin > 70.0 && tmax < 95.0, "temp range {tmin}..{tmax}");
    let aug = fig8
        .humidity_monthly
        .iter()
        .find(|r| r.month == Month::August)
        .unwrap();
    let feb = fig8
        .humidity_monthly
        .iter()
        .find(|r| r.month == Month::February)
        .unwrap();
    assert!(aug.median > feb.median + 2.0, "summer humidity bulge");

    // ---- Fig. 9: rack ambient. ----
    let fig9 = analysis::fig9_rack_ambient(&summary);
    assert_eq!(fig9.humidity_hotspot, RackId::new(1, 8));
    assert!(
        (0.2..0.45).contains(&fig9.humidity_spread),
        "humidity spread {} (paper up to 36 %)",
        fig9.humidity_spread
    );
    assert!(
        (0.02..0.13).contains(&fig9.temperature_spread),
        "temperature spread {} (paper up to 11 %)",
        fig9.temperature_spread
    );

    // ---- Fig. 10: the CMF timeline. ----
    let fig10 = analysis::fig10_cmf_timeline(&sim);
    assert_eq!(fig10.total, 361);
    assert!((0.38..0.42).contains(&fig10.share_2016));
    assert!(fig10.longest_gap_days > 730.0, "two-year quiet gap");

    // ---- Fig. 11: per-rack CMFs and weak correlations. ----
    let fig11 = analysis::fig11_cmf_by_rack(&sim, &summary);
    assert_eq!(fig11.max_rack, RackId::new(1, 8));
    assert_eq!(fig11.max_count, 14);
    assert_eq!(fig11.min_rack, RackId::new(2, 7));
    assert_eq!(fig11.min_count, 5);
    assert!(fig11
        .counts
        .iter()
        .enumerate()
        .all(|(i, &c)| c <= 9 || RackId::from_index(i) == RackId::new(1, 8)));
    assert!(
        fig11.correlation_utilization < 0.1,
        "util corr {}",
        fig11.correlation_utilization
    );
    assert!(fig11.correlation_outlet.abs() < 0.4);
    assert!(fig11.correlation_humidity.abs() < 0.4);

    // ---- Fig. 14: post-CMF hazard. ----
    let fig14 = analysis::fig14_post_cmf(&sim);
    assert!(fig14.ratio_6h_over_3h < 0.85);
    assert!((0.05..0.2).contains(&fig14.ratio_48h_over_3h));

    // ---- Free cooling: seasonal savings exist and are plausibly sized. ----
    let energy = analysis::free_cooling_report(&summary);
    assert!(
        energy.season_saved.value() > 5.0e5,
        "{}",
        energy.season_saved
    );
    assert!(energy.total_saved.value() > energy.season_saved.value() * 0.9);
}

#[test]
fn fig12_leadup_full_population() {
    let sim = Simulation::new(SimConfig::with_seed(2014));
    let leads = [
        Duration::from_hours(6),
        Duration::from_hours(4),
        Duration::from_hours(3),
        Duration::from_hours(2),
        Duration::from_hours(1),
        Duration::from_minutes(30),
        Duration::ZERO,
    ];
    // All 361 failures.
    let fig12 = analysis::fig12_cmf_leadup(&sim, &leads, usize::MAX);
    assert_eq!(fig12.events, 361);
    let at = |h: f64| {
        *fig12
            .points
            .iter()
            .find(|p| (p.lead.as_hours() - h).abs() < 1e-9)
            .unwrap()
    };
    // Inlet: ~-7 % trough hours before, recovery at the event.
    assert!(
        (0.91..0.95).contains(&at(2.0).inlet_rel),
        "{}",
        at(2.0).inlet_rel
    );
    assert!(at(0.0).inlet_rel > at(1.0).inlet_rel, "late snap-back");
    // Outlet: ~-5 % three hours out.
    assert!(
        (0.93..0.97).contains(&at(3.0).outlet_rel),
        "{}",
        at(3.0).outlet_rel
    );
    // Flow: flat until late, collapsing at the event.
    assert!(
        (0.98..1.02).contains(&at(1.0).flow_rel),
        "{}",
        at(1.0).flow_rel
    );
    assert!(at(0.0).flow_rel < 0.8, "{}", at(0.0).flow_rel);
}
