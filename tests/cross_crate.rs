//! Cross-crate integration: the pieces cooperating the way the paper's
//! operations did.

use mira_cooling::AlarmThresholds;
use mira_core::{Date, Duration, RackId, SimConfig, SimTime, Simulation, TelemetryProvider};
use mira_ras::{FailureDeduplicator, RackAvailability};
use mira_workload::{BackfillScheduler, JobGenerator};

#[test]
fn scheduler_rides_through_a_cmf_storm() {
    // Drive the discrete job scheduler and drain racks when the
    // simulation's CMF schedule says they failed — the "CMF kills
    // hundreds of jobs" phenomenology.
    let sim = Simulation::new(SimConfig::with_seed(61));
    let incident = sim
        .schedule()
        .incidents()
        .iter()
        .find(|i| i.multiplicity() >= 6)
        .expect("a large storm exists");

    let mut scheduler = BackfillScheduler::new();
    let mut generator = JobGenerator::new(61);
    let mut t = incident.time - Duration::from_days(3);
    // Load the machine for three days.
    while t < incident.time {
        for job in generator.submissions(t, Duration::from_hours(1)) {
            scheduler.submit(job);
        }
        scheduler.step(t);
        t += Duration::from_hours(1);
    }
    let util_before = scheduler.utilization();
    assert!(util_before > 0.5, "machine loaded: {util_before}");

    let mut killed = 0;
    for &rack in &incident.affected {
        killed += scheduler.drain_rack(rack, incident.time);
    }
    assert!(killed > 0, "the storm kills running jobs");
    assert!(scheduler.utilization() < util_before);

    // Six hours later the racks recover and the queue refills them.
    for &rack in &incident.affected {
        scheduler.restore_rack(rack);
    }
    let recovery_end = incident.time + Duration::from_hours(12);
    let mut t = incident.time;
    while t < recovery_end {
        for job in generator.submissions(t, Duration::from_hours(1)) {
            scheduler.submit(job);
        }
        scheduler.step(t);
        t += Duration::from_hours(1);
    }
    assert!(
        scheduler.utilization() > 0.5,
        "backfill refills after recovery: {}",
        scheduler.utilization()
    );
}

#[test]
fn telemetry_goes_dark_during_scheduled_outages() {
    let sim = Simulation::new(SimConfig::with_seed(62));
    let incident = &sim.schedule().incidents()[3];
    let telemetry = sim.telemetry();

    for &rack in incident.affected.iter().take(4) {
        let during = telemetry.sample(rack, incident.time + Duration::from_hours(2));
        assert!(during.power.value() < 6.0, "power cut: {}", during.power);
        assert!(during.flow.value() < 2.0, "valve closed: {}", during.flow);
        let after = telemetry.sample(rack, incident.time + Duration::from_hours(7));
        assert!(after.power.value() > 30.0, "recovered: {}", after.power);
    }
}

#[test]
fn availability_agrees_with_ras_log() {
    let sim = Simulation::new(SimConfig::with_seed(63));
    let mut availability = RackAvailability::new();
    for event in sim.ras_log().counted() {
        if event.kind.is_cmf() {
            availability.mark_cmf(event.rack, event.time);
        } else {
            availability.mark_non_cmf(event.rack, event.time);
        }
    }
    // Sum of downtime across racks: 361 CMFs x 6 h plus follow-ons.
    let cmf_hours: f64 = 361.0 * 6.0;
    let total: f64 = RackId::all()
        .map(|r| availability.total_downtime(r).as_hours())
        .sum();
    assert!(
        total >= cmf_hours * 0.9,
        "downtime {total} h vs CMF floor {cmf_hours} h"
    );
}

#[test]
fn dedup_recovers_schedule_from_raw_storm_log() {
    // The counting methodology applied to the raw message flood must
    // reconstruct exactly the scheduled per-rack failure counts.
    let sim = Simulation::new(SimConfig::with_seed(64));
    let mut dedup = FailureDeduplicator::mira();
    let counted = dedup.filter(sim.ras_log().raw());
    let cmf_count = counted.iter().filter(|e| e.kind.is_cmf()).count();
    assert_eq!(cmf_count, 361);
}

#[test]
fn alarms_fire_near_failures_not_in_steady_state() {
    let sim = Simulation::new(SimConfig::with_seed(65));
    let thresholds = AlarmThresholds::mira();
    let telemetry = sim.telemetry();

    // Steady state: a quiet week in 2017, no alarms anywhere.
    let mut t = SimTime::from_date(Date::new(2017, 6, 5));
    let end = t + Duration::from_days(7);
    while t < end {
        let (_, samples) = telemetry.observe_all(t);
        for s in &samples {
            assert_eq!(
                thresholds.check(s),
                None,
                "false alarm at {} on {}",
                t,
                s.rack
            );
        }
        t += Duration::from_hours(9);
    }

    // At failure time the epicenter's flow has collapsed: low-flow trip.
    let mut tripped = 0;
    for incident in sim.schedule().incidents().iter().take(20) {
        let s = telemetry.sample(incident.epicenter, incident.time);
        if thresholds.check(&s).is_some() {
            tripped += 1;
        }
    }
    assert!(tripped >= 15, "alarms at failure time: {tripped}/20");
}

#[test]
fn dataset_builder_on_real_telemetry() {
    use mira_core::{DatasetBuilder, FeatureConfig};

    let sim = Simulation::new(SimConfig::with_seed(66));
    let mut cmfs = sim.cmf_ground_truth();
    cmfs.truncate(60);
    let builder = DatasetBuilder::new(FeatureConfig::mira(), cmfs, sim.config().span());
    let data = builder.build(sim.telemetry(), Duration::from_hours(1));
    assert!(data.len() >= 100, "dataset {}", data.len());
    assert_eq!(data.len() % 2, 0, "balanced");
    assert_eq!(data.width(), 36);
}
