//! Integration tests for the features built from the paper's
//! "Opportunity" paragraphs, run against the real simulated world.

use mira_core::{
    compare_policies, CmfPredictor, DatasetBuilder, Duration, FeatureConfig, MitigationCosts,
    PredictorConfig, SimConfig, SimTime, Simulation,
};
use mira_predictor::{LocationPredictor, ThresholdDetector};
use mira_ras::{PhaseRates, WeibullFit};
use mira_workload::{hole_filling_experiment, ElasticPool};

fn trained(sim: &Simulation, events: usize) -> (CmfPredictor, DatasetBuilder) {
    let mut cmfs = sim.cmf_ground_truth();
    cmfs.truncate(events);
    let builder = DatasetBuilder::new(FeatureConfig::mira(), cmfs, sim.config().span());
    let (predictor, _) = CmfPredictor::train(
        sim.telemetry(),
        &builder,
        &PredictorConfig {
            epochs: 60,
            seed: 5,
            hard_negatives: true,
            ..PredictorConfig::default()
        },
    );
    (predictor, builder)
}

#[test]
fn thresholds_collapse_at_long_leads_network_does_not() {
    // The quantitative version of Sec. VI-D: a static-threshold monitor
    // is near chance six hours out, while the change-feature network
    // still works.
    let sim = Simulation::new(SimConfig::with_seed(101));
    let (predictor, builder) = trained(&sim, 140);
    let detector = ThresholdDetector::mira();

    let lead = Duration::from_hours(6);
    let thr = detector.evaluate_at(sim.telemetry(), &builder, lead, 3);
    let net = predictor.evaluate_at(sim.telemetry(), &builder, lead);
    assert!(
        thr.accuracy() < 0.65,
        "thresholds at 6 h should be near chance: {}",
        thr.accuracy()
    );
    assert!(
        net.accuracy() > thr.accuracy() + 0.15,
        "network {} vs thresholds {}",
        net.accuracy(),
        thr.accuracy()
    );

    // Close in, the visible sag makes even thresholds useful — but the
    // network stays ahead.
    let near = Duration::from_hours(1);
    let thr_near = detector.evaluate_at(sim.telemetry(), &builder, near, 3);
    let net_near = predictor.evaluate_at(sim.telemetry(), &builder, near);
    assert!(thr_near.accuracy() > 0.8, "{}", thr_near.accuracy());
    assert!(net_near.accuracy() >= thr_near.accuracy() - 0.02);
}

#[test]
fn localization_beats_chance_by_an_order_of_magnitude() {
    let sim = Simulation::new(SimConfig::with_seed(102));
    let (predictor, builder) = trained(&sim, 120);
    let loc = LocationPredictor::new(&predictor, &builder);

    let acc = loc.top_k_accuracy(sim.telemetry(), Duration::from_hours(2), 3, 50);
    assert!(acc.events >= 40);
    // Random top-3 over 48 racks is 6.25 %; anything above ~3x chance
    // is a real localization signal (weak-severity events cap it well
    // below 1 — exactly the paper's "location accuracy needs further
    // improvement" caveat).
    assert!(
        acc.hit_rate > 0.2,
        "top-3 hit rate {} (chance 0.0625)",
        acc.hit_rate
    );
    assert!(acc.mean_rank < 15.0, "mean rank {}", acc.mean_rank);
}

#[test]
fn failure_record_is_clustered_not_bathtub() {
    let sim = Simulation::new(SimConfig::with_seed(103));
    let times: Vec<SimTime> = sim.schedule().incidents().iter().map(|i| i.time).collect();
    let gaps: Vec<Duration> = times.windows(2).map(|w| w[1] - w[0]).collect();

    let fit = WeibullFit::fit(&gaps).expect("fit");
    assert!(
        fit.shape < 1.0,
        "clustered gaps give sub-exponential shape, got {}",
        fit.shape
    );

    let (start, end) = sim.config().span();
    let rates = PhaseRates::compute(&times, start, end, 6);
    assert!(!rates.is_bathtub());
    // The Theta phase (2016 = phase 2 of 6) is the peak or near it.
    let peak = rates.peak_phase();
    assert!(
        peak == 2 || peak == 5,
        "peak phase {peak}: {:?}",
        rates.per_day
    );
}

#[test]
fn elastic_pool_fills_capability_drains() {
    let report = hole_filling_experiment(11, 10, ElasticPool::mira());
    assert!(report.uplift() > 0.03, "uplift {}", report.uplift());
    assert!(
        report.elastic_minimum > report.rigid_minimum,
        "the drain hole must be shallower"
    );
    assert!(report.elastic_utilization <= 1.0 + 1e-9);
}

#[test]
fn checkpoint_economics_reward_the_real_predictor() {
    let sim = Simulation::new(SimConfig::with_seed(104));
    let (predictor, builder) = trained(&sim, 150);
    // Price the policy at the deployed operating point: checkpoints are
    // gated by console alerts, which fire at the console's 0.9
    // threshold, not at the classifier's raw 0.5 cut.
    let metrics =
        predictor.evaluate_at_threshold(sim.telemetry(), &builder, Duration::from_hours(3), 0.9);
    assert!(metrics.recall() > 0.8, "recall {}", metrics.recall());

    let report = compare_policies(
        &sim,
        Duration::from_hours(4),
        metrics,
        &MitigationCosts::mira(),
    );
    assert!(
        report.gated.total() < report.none.total(),
        "gated {} vs none {}",
        report.gated.total(),
        report.none.total()
    );
    assert!(report.gated.total() < report.periodic.total());
}
