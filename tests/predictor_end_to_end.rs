//! End-to-end CMF prediction on the real simulated telemetry (Fig. 13),
//! plus the feature ablation behind the paper's "threshold-based
//! monitoring is not sufficient" discussion.

use mira_core::{
    CmfPredictor, DatasetBuilder, Duration, FeatureConfig, PredictorConfig, SimConfig, Simulation,
};
use mira_predictor::pipeline::pooled_dataset;
use mira_predictor::FeatureMode;

fn quick_config() -> PredictorConfig {
    PredictorConfig {
        epochs: 30,
        train_leads: vec![
            Duration::from_minutes(30),
            Duration::from_hours(2),
            Duration::from_hours(4),
            Duration::from_hours(6),
        ],
        seed: 3,
        ..PredictorConfig::default()
    }
}

#[test]
fn fig13_shape_on_simulated_telemetry() {
    let sim = Simulation::new(SimConfig::with_seed(99));
    let mut cmfs = sim.cmf_ground_truth();
    cmfs.truncate(150);
    let builder = DatasetBuilder::new(FeatureConfig::mira(), cmfs, sim.config().span());

    let (predictor, test) = CmfPredictor::train(sim.telemetry(), &builder, &quick_config());
    assert!(test.accuracy() > 0.8, "test accuracy {}", test.accuracy());

    let leads = [
        Duration::from_hours(6),
        Duration::from_hours(3),
        Duration::from_hours(1),
        Duration::from_minutes(30),
    ];
    let sweep = predictor.lead_time_sweep(sim.telemetry(), &builder, &leads);
    let acc: Vec<f64> = sweep.iter().map(|p| p.metrics.accuracy()).collect();

    // Paper: ~87 % at 6 h rising to ~97 % at 30 min.
    assert!(acc[3] > 0.9, "30-minute accuracy {}", acc[3]);
    assert!(acc[0] > 0.65, "6-hour accuracy {}", acc[0]);
    assert!(
        acc[3] > acc[0],
        "accuracy improves as the CMF nears: {acc:?}"
    );

    // False positive rate shrinks toward the event (paper: 6 % -> 1.2 %).
    let fpr_6h = sweep[0].metrics.false_positive_rate();
    let fpr_30m = sweep[3].metrics.false_positive_rate();
    assert!(fpr_30m <= fpr_6h + 0.02, "fpr {fpr_30m} vs {fpr_6h}");
    assert!(fpr_30m < 0.12, "near-event fpr {fpr_30m}");
}

#[test]
fn deltas_beat_levels_ablation() {
    // The paper's Sec. VI-D: levels stay high during healthy
    // high-utilization periods, so a level/threshold detector
    // underperforms a change detector. On a single simulated stream the
    // 5-fold CV variance is comparable to the effect size, so average
    // the ablation over several independent simulation streams.
    let eval =
        |sim: &Simulation, cmfs: &[(mira_core::SimTime, mira_core::RackId)], mode: FeatureMode| {
            let features = FeatureConfig {
                mode,
                ..FeatureConfig::mira()
            };
            let builder = DatasetBuilder::new(features, cmfs.to_vec(), sim.config().span());
            // Long leads: the early signature is a sub-1 % drift, visible to
            // a change detector but buried in seasonal/calibration level
            // variation for a threshold-style detector.
            let data = pooled_dataset(
                sim.telemetry(),
                &builder,
                &[Duration::from_hours(5), Duration::from_hours(6)],
            );
            let folds = CmfPredictor::cross_validate(&data, 5, &quick_config());
            folds
                .iter()
                .map(mira_nn::metrics::BinaryMetrics::accuracy)
                .sum::<f64>()
                / folds.len() as f64
        };

    let streams = [23u64, 29, 31];
    let (mut deltas, mut levels) = (0.0, 0.0);
    for &seed in &streams {
        let sim = Simulation::new(SimConfig::with_seed(seed));
        let mut cmfs = sim.cmf_ground_truth();
        cmfs.truncate(120);
        deltas += eval(&sim, &cmfs, FeatureMode::Deltas);
        levels += eval(&sim, &cmfs, FeatureMode::Levels);
    }
    deltas /= streams.len() as f64;
    levels /= streams.len() as f64;
    assert!(
        deltas > levels + 0.02,
        "delta features {deltas} should beat level features {levels}"
    );
    assert!(deltas > 0.8, "delta-feature CV accuracy {deltas}");
}

#[test]
fn five_fold_cross_validation_is_stable() {
    let sim = Simulation::new(SimConfig::with_seed(5));
    let mut cmfs = sim.cmf_ground_truth();
    cmfs.truncate(120);
    let builder = DatasetBuilder::new(FeatureConfig::mira(), cmfs, sim.config().span());
    let data = pooled_dataset(
        sim.telemetry(),
        &builder,
        &[Duration::from_minutes(30), Duration::from_hours(3)],
    );
    let folds = CmfPredictor::cross_validate(&data, 5, &quick_config());
    assert_eq!(folds.len(), 5);
    let accs: Vec<f64> = folds
        .iter()
        .map(mira_nn::metrics::BinaryMetrics::accuracy)
        .collect();
    let mean = accs.iter().sum::<f64>() / 5.0;
    assert!(mean > 0.8, "mean CV accuracy {mean}");
    // Folds agree within a reasonable band.
    for a in &accs {
        assert!((a - mean).abs() < 0.15, "fold scatter: {accs:?}");
    }
}

#[test]
fn architecture_tuning_smoke() {
    use mira_predictor::{tune_architecture, ArchitectureSearch};

    let sim = Simulation::new(SimConfig::with_seed(8));
    let mut cmfs = sim.cmf_ground_truth();
    cmfs.truncate(80);
    let builder = DatasetBuilder::new(FeatureConfig::mira(), cmfs, sim.config().span());
    let data = pooled_dataset(
        sim.telemetry(),
        &builder,
        &[Duration::from_hours(1), Duration::from_hours(4)],
    );

    let search = ArchitectureSearch {
        layer1: vec![8, 12],
        layer2: vec![8, 12],
        layer3: vec![6],
        budget: 4,
        epochs: 12,
        seed: 1,
    };
    let (best, observations) = tune_architecture(&data, &search);
    assert_eq!(best.len(), 3);
    assert_eq!(observations.len(), 4);
    let best_acc = observations
        .iter()
        .map(|(_, s)| *s)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(best_acc > 0.75, "tuned accuracy {best_acc}");
}
