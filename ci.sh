#!/usr/bin/env bash
# The tier-1 gate, in the order fastest-feedback-first:
#   formatting -> clippy (workspace lints, warnings fatal) -> mira-lint
#   (domain invariants) -> the test suite.
# Run from the workspace root: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> mira-lint"
cargo run -q -p mira-lint

echo "==> cargo test"
cargo test -q

# The parallel sweep must be thread-count invariant: run the
# determinism suite with the executor pinned to 1 and then 4 workers.
echo "==> determinism under MIRA_SWEEP_THREADS=1"
MIRA_SWEEP_THREADS=1 cargo test -q -p mira-core --test determinism

echo "==> determinism under MIRA_SWEEP_THREADS=4"
MIRA_SWEEP_THREADS=4 cargo test -q -p mira-core --test determinism

echo "ci: all gates green"
