#!/usr/bin/env bash
# The tier-1 gate, in the order fastest-feedback-first:
#   formatting -> clippy (workspace lints, warnings fatal) -> mira-lint
#   (domain invariants) -> the test suite.
# Run from the workspace root: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> mira-lint"
cargo run -q -p mira-lint

echo "==> cargo test"
cargo test -q

echo "ci: all gates green"
