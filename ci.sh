#!/usr/bin/env bash
# The tier-1 gate, in the order fastest-feedback-first:
#   formatting -> clippy (workspace lints, warnings fatal) -> mira-lint
#   (domain invariants) -> the test suite.
# Run from the workspace root: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> mira-lint"
lint_start_ns="$(date +%s%N)"
cargo run -q -p mira-lint
lint_ms=$(( ($(date +%s%N) - lint_start_ns) / 1000000 ))
# Wall-time budget is advisory: timing is machine-dependent, so a slow
# scan warns instead of failing. Tune via MIRA_LINT_TIME_BUDGET_MS.
# Re-measured with the v4 concurrency pass: ~0.35 s debug on the CI
# box, so 15 s still leaves an order of magnitude of headroom.
lint_budget_ms="${MIRA_LINT_TIME_BUDGET_MS:-15000}"
echo "    mira-lint scan: ${lint_ms} ms (budget ${lint_budget_ms} ms, warn-only)"
if [ "$lint_ms" -gt "$lint_budget_ms" ]; then
  echo "ci: WARNING: mira-lint scan exceeded its wall-time budget" >&2
fi

# Allowlist drift gate: regenerating from the current findings must
# reproduce the committed lint-allow.toml exactly. Catches both stale
# budgets (fixed sites whose entries were never ratcheted down) and
# hand-edits that no longer match reality.
echo "==> mira-lint allowlist drift"
fresh_allowlist="$(mktemp)"
lint_cache="$(mktemp -u)"
trap 'rm -f "$fresh_allowlist" "$lint_cache"' EXIT
cargo run -q -p mira-lint -- --write-allowlist --allowlist "$fresh_allowlist" >/dev/null
if ! diff -u lint-allow.toml "$fresh_allowlist"; then
  echo "ci: lint-allow.toml drifted; run: cargo run -p mira-lint -- --write-allowlist" >&2
  exit 1
fi

# The sharded scan must be worker-count invariant: the full JSON
# document (findings, order, bytes) may not change between 1, 4, and
# 8 lint threads. Together with the cache gate below this covers
# RULE_VERSION 4 (the v4 concurrency rules run under both gates).
echo "==> mira-lint determinism under MIRA_LINT_THREADS=1 vs 4 vs 8"
lint_one="$(MIRA_LINT_THREADS=1 cargo run -q -p mira-lint -- --format json)"
lint_four="$(MIRA_LINT_THREADS=4 cargo run -q -p mira-lint -- --format json)"
lint_eight="$(MIRA_LINT_THREADS=8 cargo run -q -p mira-lint -- --format json)"
if [ "$lint_one" != "$lint_four" ] || [ "$lint_one" != "$lint_eight" ]; then
  echo "ci: mira-lint JSON differs across 1/4/8 threads" >&2
  diff <(printf '%s' "$lint_one") <(printf '%s' "$lint_four") >&2 || true
  diff <(printf '%s' "$lint_one") <(printf '%s' "$lint_eight") >&2 || true
  exit 1
fi

# Cache invariance: a cold scan, the scan that populates the cache,
# and a fully warm scan must all emit the same bytes. A cache that
# changes findings is worse than no cache.
echo "==> mira-lint cache invariance (cold vs populate vs warm)"
lint_cold="$(cargo run -q -p mira-lint -- --format json)"
lint_populate="$(cargo run -q -p mira-lint -- --format json --cache-file "$lint_cache")"
lint_warm="$(cargo run -q -p mira-lint -- --format json --cache-file "$lint_cache")"
if [ "$lint_cold" != "$lint_populate" ] || [ "$lint_cold" != "$lint_warm" ]; then
  echo "ci: mira-lint cached scan differs from cold scan" >&2
  diff <(printf '%s' "$lint_cold") <(printf '%s' "$lint_warm") >&2 || true
  exit 1
fi

# Every shipped rule must have a non-empty --explain text.
echo "==> mira-lint --explain smoke (17 rules)"
for rule in raw-f64-in-public-api no-unwrap-in-lib lossy-cast \
  nan-unsafe-compare nondeterminism panic-reachability unit-flow \
  determinism-taint deprecated-call alloc-in-hot-path cache-purity \
  shared-state-escape lock-order guard-across-blocking \
  guard-across-panic atomic-ordering unjoined-thread; do
  if ! cargo run -q -p mira-lint -- --explain "$rule" | grep -q .; then
    echo "ci: --explain $rule produced no output" >&2
    exit 1
  fi
done

echo "==> cargo test"
cargo test -q

# The parallel sweep must be thread-count invariant: run the
# determinism suite with the executor pinned to 1 and then 4 workers.
echo "==> determinism under MIRA_SWEEP_THREADS=1"
MIRA_SWEEP_THREADS=1 cargo test -q -p mira-core --test determinism

echo "==> determinism under MIRA_SWEEP_THREADS=4"
MIRA_SWEEP_THREADS=4 cargo test -q -p mira-core --test determinism

# The observability layer has the same contract: the deterministic
# metrics snapshot must be byte-identical at any worker count.
echo "==> obs metrics determinism under MIRA_SWEEP_THREADS=1"
MIRA_SWEEP_THREADS=1 cargo test -q -p mira-core --test obs_golden

echo "==> obs metrics determinism under MIRA_SWEEP_THREADS=4"
MIRA_SWEEP_THREADS=4 cargo test -q -p mira-core --test obs_golden

# Disabled instrumentation must cost nothing: the bench exits nonzero
# when the obs-off sweep runs more than 2% slower than the plain one
# (override with MIRA_OBS_OVERHEAD_LIMIT_PCT).
echo "==> obs overhead gate"
cargo bench -q -p mira-bench --bench obs_overhead

# Allocation regression gate: the smoke-span sweep bench exits nonzero
# when allocs/step climbs above the baseline recorded in
# BENCH_sweep.json. Wall time is machine-dependent and only reported;
# the alloc count is deterministic, so it gates. Run against a scratch
# copy so the per-run timing keys never dirty the committed file.
echo "==> sweep alloc regression gate (smoke span)"
bench_scratch="$(mktemp)"
cp BENCH_sweep.json "$bench_scratch"
MIRA_BENCH_SPAN=smoke MIRA_BENCH_OUT="$bench_scratch" \
  cargo bench -q -p mira-bench --bench sweep_baseline
rm -f "$bench_scratch"

# Serve determinism gate: the same scripted NDJSON session, piped
# through `mira-ops serve` on stdio, must produce byte-identical
# replies (and shutdown banner) at 1 and 4 sweep threads — the serve
# layer answers every deterministic query from the same incremental
# engine the batch executor uses.
echo "==> serve smoke gate (scripted stdio session, 1 vs 4 threads)"
serve_script='{"cmd":"ingest","steps":124,"id":1}
{"cmd":"status","id":2}
{"cmd":"figure","figure":"fig2","id":3}
{"cmd":"report","id":4}
{"cmd":"metrics","id":5}
{"cmd":"predict","events":40,"epochs":2,"id":6}
{"cmd":"shutdown","id":7}'
serve_one="$(printf '%s\n' "$serve_script" | MIRA_SWEEP_THREADS=1 cargo run -q -p mira-ops -- serve --step-min 360)"
serve_four="$(printf '%s\n' "$serve_script" | MIRA_SWEEP_THREADS=4 cargo run -q -p mira-ops -- serve --step-min 360)"
if [ "$serve_one" != "$serve_four" ]; then
  echo "ci: serve replies differ between 1 and 4 sweep threads" >&2
  diff <(printf '%s' "$serve_one") <(printf '%s' "$serve_four") >&2 || true
  exit 1
fi
if ! printf '%s' "$serve_one" | grep -q '"shutting_down":true'; then
  echo "ci: serve session did not acknowledge shutdown" >&2
  exit 1
fi

# Serve perf snapshot: ingest rate, query throughput, p50/p99 query
# latency into BENCH_serve.json (report-only; wall time never gates).
echo "==> serve bench (BENCH_serve.json)"
cargo bench -q -p mira-bench --bench serve_bench

echo "ci: all gates green"
