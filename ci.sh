#!/usr/bin/env bash
# The tier-1 gate, in the order fastest-feedback-first:
#   formatting -> clippy (workspace lints, warnings fatal) -> mira-lint
#   (domain invariants) -> the test suite.
# Run from the workspace root: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> mira-lint"
lint_start_ns="$(date +%s%N)"
cargo run -q -p mira-lint
lint_ms=$(( ($(date +%s%N) - lint_start_ns) / 1000000 ))
# Wall-time budget is advisory: timing is machine-dependent, so a slow
# scan warns instead of failing. Tune via MIRA_LINT_TIME_BUDGET_MS.
# Re-measured with the v4 concurrency pass: ~0.35 s debug on the CI
# box, so 15 s still leaves an order of magnitude of headroom.
lint_budget_ms="${MIRA_LINT_TIME_BUDGET_MS:-15000}"
echo "    mira-lint scan: ${lint_ms} ms (budget ${lint_budget_ms} ms, warn-only)"
if [ "$lint_ms" -gt "$lint_budget_ms" ]; then
  echo "ci: WARNING: mira-lint scan exceeded its wall-time budget" >&2
fi

# Allowlist drift gate: regenerating from the current findings must
# reproduce the committed lint-allow.toml exactly. Catches both stale
# budgets (fixed sites whose entries were never ratcheted down) and
# hand-edits that no longer match reality.
echo "==> mira-lint allowlist drift"
fresh_allowlist="$(mktemp)"
lint_cache="$(mktemp -u)"
trap 'rm -f "$fresh_allowlist" "$lint_cache"' EXIT
cargo run -q -p mira-lint -- --write-allowlist --allowlist "$fresh_allowlist" >/dev/null
if ! diff -u lint-allow.toml "$fresh_allowlist"; then
  echo "ci: lint-allow.toml drifted; run: cargo run -p mira-lint -- --write-allowlist" >&2
  exit 1
fi

# The sharded scan must be worker-count invariant: the full JSON
# document (findings, order, bytes) may not change between 1, 4, and
# 8 lint threads. Together with the cache gate below this covers
# RULE_VERSION 4 (the v4 concurrency rules run under both gates).
echo "==> mira-lint determinism under MIRA_LINT_THREADS=1 vs 4 vs 8"
lint_one="$(MIRA_LINT_THREADS=1 cargo run -q -p mira-lint -- --format json)"
lint_four="$(MIRA_LINT_THREADS=4 cargo run -q -p mira-lint -- --format json)"
lint_eight="$(MIRA_LINT_THREADS=8 cargo run -q -p mira-lint -- --format json)"
if [ "$lint_one" != "$lint_four" ] || [ "$lint_one" != "$lint_eight" ]; then
  echo "ci: mira-lint JSON differs across 1/4/8 threads" >&2
  diff <(printf '%s' "$lint_one") <(printf '%s' "$lint_four") >&2 || true
  diff <(printf '%s' "$lint_one") <(printf '%s' "$lint_eight") >&2 || true
  exit 1
fi

# Cache invariance: a cold scan, the scan that populates the cache,
# and a fully warm scan must all emit the same bytes. A cache that
# changes findings is worse than no cache.
echo "==> mira-lint cache invariance (cold vs populate vs warm)"
lint_cold="$(cargo run -q -p mira-lint -- --format json)"
lint_populate="$(cargo run -q -p mira-lint -- --format json --cache-file "$lint_cache")"
lint_warm="$(cargo run -q -p mira-lint -- --format json --cache-file "$lint_cache")"
if [ "$lint_cold" != "$lint_populate" ] || [ "$lint_cold" != "$lint_warm" ]; then
  echo "ci: mira-lint cached scan differs from cold scan" >&2
  diff <(printf '%s' "$lint_cold") <(printf '%s' "$lint_warm") >&2 || true
  exit 1
fi

# Every shipped rule must have a non-empty --explain text.
echo "==> mira-lint --explain smoke (17 rules)"
for rule in raw-f64-in-public-api no-unwrap-in-lib lossy-cast \
  nan-unsafe-compare nondeterminism panic-reachability unit-flow \
  determinism-taint deprecated-call alloc-in-hot-path cache-purity \
  shared-state-escape lock-order guard-across-blocking \
  guard-across-panic atomic-ordering unjoined-thread; do
  if ! cargo run -q -p mira-lint -- --explain "$rule" | grep -q .; then
    echo "ci: --explain $rule produced no output" >&2
    exit 1
  fi
done

echo "==> cargo test"
cargo test -q

# The parallel sweep must be thread-count invariant: run the
# determinism suite with the executor pinned to 1 and then 4 workers.
echo "==> determinism under MIRA_SWEEP_THREADS=1"
MIRA_SWEEP_THREADS=1 cargo test -q -p mira-core --test determinism

echo "==> determinism under MIRA_SWEEP_THREADS=4"
MIRA_SWEEP_THREADS=4 cargo test -q -p mira-core --test determinism

# The observability layer has the same contract: the deterministic
# metrics snapshot must be byte-identical at any worker count.
echo "==> obs metrics determinism under MIRA_SWEEP_THREADS=1"
MIRA_SWEEP_THREADS=1 cargo test -q -p mira-core --test obs_golden

echo "==> obs metrics determinism under MIRA_SWEEP_THREADS=4"
MIRA_SWEEP_THREADS=4 cargo test -q -p mira-core --test obs_golden

# Disabled instrumentation must cost nothing: the bench exits nonzero
# when the obs-off sweep runs more than 2% slower than the plain one
# (override with MIRA_OBS_OVERHEAD_LIMIT_PCT).
echo "==> obs overhead gate"
cargo bench -q -p mira-bench --bench obs_overhead

# Allocation regression gate: the smoke-span sweep bench exits nonzero
# when allocs/step climbs above the baseline recorded in
# BENCH_sweep.json. The sweep it times runs the batched SoA kernel
# (`sweep_steps_into` + `record_block`) end to end, so a per-step
# allocation sneaking into any of the staged passes trips it. Wall
# time is machine-dependent and only reported; the alloc count is
# deterministic, so it gates. Run against a scratch copy so the
# per-run timing keys never dirty the committed file.
echo "==> sweep alloc regression gate (smoke span, batched kernel)"
bench_scratch="$(mktemp)"
cp BENCH_sweep.json "$bench_scratch"
MIRA_BENCH_SPAN=smoke MIRA_BENCH_OUT="$bench_scratch" \
  cargo bench -q -p mira-bench --bench sweep_baseline
rm -f "$bench_scratch"

# Sweep throughput floor: the committed BENCH_sweep.json must record
# the batched SoA kernel at >=2x the 212,048 steps/s array-of-structs
# baseline, with full-span allocs/step no worse than the 0.0431 it
# shipped with. These are static checks on the recorded numbers — CI
# wall clocks are too noisy to re-time the full span here, but the
# committed record must never regress silently.
echo "==> sweep throughput floor (recorded full-span numbers)"
full_sps="$(sed -n 's/.*"full_steps_per_second_t1": \([0-9.]*\).*/\1/p' BENCH_sweep.json)"
full_aps="$(sed -n 's/.*"full_allocs_per_step": \([0-9.]*\).*/\1/p' BENCH_sweep.json)"
if [ -z "$full_sps" ] || [ -z "$full_aps" ]; then
  echo "ci: BENCH_sweep.json is missing recorded full-span keys" >&2
  exit 1
fi
if ! awk -v sps="$full_sps" 'BEGIN { exit !(sps >= 2 * 212048) }'; then
  echo "ci: recorded full-span ${full_sps} steps/s is below 2x the 212,048 pre-SoA baseline" >&2
  exit 1
fi
if ! awk -v aps="$full_aps" 'BEGIN { exit !(aps <= 0.0431) }'; then
  echo "ci: recorded full-span ${full_aps} allocs/step exceeds the 0.0431 pre-SoA baseline" >&2
  exit 1
fi

# Serve determinism gate: the same scripted NDJSON session, piped
# through `mira-ops serve` on stdio, must produce byte-identical
# replies (and shutdown banner) at 1 and 4 sweep threads — the serve
# layer answers every deterministic query from the same incremental
# engine the batch executor uses.
echo "==> serve smoke gate (scripted stdio session, 1 vs 4 threads)"
serve_script='{"cmd":"ingest","steps":124,"id":1}
{"cmd":"status","id":2}
{"cmd":"figure","figure":"fig2","id":3}
{"cmd":"report","id":4}
{"cmd":"metrics","id":5}
{"cmd":"predict","events":40,"epochs":2,"id":6}
{"cmd":"shutdown","id":7}'
serve_one="$(printf '%s\n' "$serve_script" | MIRA_SWEEP_THREADS=1 cargo run -q -p mira-ops -- serve --step-min 360)"
serve_four="$(printf '%s\n' "$serve_script" | MIRA_SWEEP_THREADS=4 cargo run -q -p mira-ops -- serve --step-min 360)"
if [ "$serve_one" != "$serve_four" ]; then
  echo "ci: serve replies differ between 1 and 4 sweep threads" >&2
  diff <(printf '%s' "$serve_one") <(printf '%s' "$serve_four") >&2 || true
  exit 1
fi
if ! printf '%s' "$serve_one" | grep -q '"shutting_down":true'; then
  echo "ci: serve session did not acknowledge shutdown" >&2
  exit 1
fi

# Serve perf snapshot: ingest rate, query throughput, p50/p99 query
# latency into BENCH_serve.json (report-only; wall time never gates).
echo "==> serve bench (BENCH_serve.json)"
cargo bench -q -p mira-bench --bench serve_bench

# Columnar store round-trip gate: pack a CSV export, unpack it, and the
# bytes must match exactly; a store-backed export over a sub-span must
# be byte-identical to the simulated export at any sweep thread count.
echo "==> store round-trip gate (pack -> unpack -> byte-compare)"
store_dir="$(mktemp -d)"
cargo run -q -p mira-ops -- export --from 2015-03-01 --to 2015-03-02 \
  --step-min 30 --out "$store_dir/tele.csv"
cargo run -q -p mira-ops -- archive pack --in "$store_dir/tele.csv" \
  --out "$store_dir/tele.mstore" --group-rows 288 >/dev/null
cargo run -q -p mira-ops -- archive unpack --in "$store_dir/tele.mstore" \
  --out "$store_dir/back.csv" >/dev/null
if ! cmp -s "$store_dir/tele.csv" "$store_dir/back.csv"; then
  echo "ci: columnar unpack is not byte-identical to the packed CSV" >&2
  exit 1
fi
store_span=(--from "2015-03-01 06:00" --to "2015-03-01 18:00")
export_sim_one="$(MIRA_SWEEP_THREADS=1 cargo run -q -p mira-ops -- export "${store_span[@]}" --step-min 30)"
export_sim_four="$(MIRA_SWEEP_THREADS=4 cargo run -q -p mira-ops -- export "${store_span[@]}" --step-min 30)"
export_store="$(cargo run -q -p mira-ops -- export "${store_span[@]}" --store "$store_dir/tele.mstore")"
if [ "$export_sim_one" != "$export_sim_four" ] || [ "$export_sim_one" != "$export_store" ]; then
  echo "ci: store-backed export differs from the simulated export" >&2
  diff <(printf '%s' "$export_sim_one") <(printf '%s' "$export_store") >&2 || true
  exit 1
fi
# Sub-span scans must prune: the day packs into 8 groups of 288 rows
# (3 hours each), so the 12-hour window may not touch every group.
scan_stats="$(cargo run -q -p mira-ops -- archive scan --in "$store_dir/tele.mstore" \
  "${store_span[@]}" --out /dev/null --stats | grep '^scan:')"
scanned="$(printf '%s' "$scan_stats" | sed -n 's/.* from \([0-9]*\)\/\([0-9]*\) groups.*/\1/p')"
total="$(printf '%s' "$scan_stats" | sed -n 's/.* from \([0-9]*\)\/\([0-9]*\) groups.*/\2/p')"
if [ -z "$scanned" ] || [ -z "$total" ] || [ "$scanned" -ge "$total" ]; then
  echo "ci: sub-span scan did not prune row groups ($scan_stats)" >&2
  exit 1
fi
rm -rf "$store_dir"

# Store perf snapshot: compression ratio and scan throughput vs the CSV
# backend. The bench itself asserts the >=3x compression floor,
# backend byte-identity, and zone-map pruning; run against a scratch
# copy so per-run timing keys never dirty the committed file.
echo "==> store bench (compression + scan throughput, scratch copy)"
store_bench_scratch="$(mktemp)"
cp BENCH_store.json "$store_bench_scratch"
MIRA_BENCH_STORE_DAYS=2 MIRA_BENCH_OUT="$store_bench_scratch" \
  cargo bench -q -p mira-bench --bench store_bench
rm -f "$store_bench_scratch"

echo "ci: all gates green"
