//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build environment cannot reach crates.io, so the real criterion
//! is unavailable. This crate keeps the `crates/bench` harness
//! compiling and runnable: each `bench_function` runs a short warm-up,
//! then a fixed measurement pass, and prints mean wall-clock time per
//! iteration (plus throughput when configured). There is no statistical
//! analysis, outlier rejection, or HTML report — it is a smoke-bench,
//! good for "did this get 10x slower" comparisons only.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Timing harness handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, keeping its output alive via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one call, also used to scale iteration count so fast
        // routines get enough samples and slow ones stay bounded.
        let warm = Instant::now();
        black_box(routine());
        let once = warm.elapsed();
        let target = Duration::from_millis(200);
        let iters = if once.is_zero() {
            1000
        } else {
            (target.as_nanos() / once.as_nanos().max(1)).clamp(1, 1000) as u64
        };

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.iters == 0 {
            println!("bench {name:<40} (not measured)");
            return;
        }
        let per_iter = self.elapsed.as_secs_f64() / self.iters as f64;
        let mut line = format!("bench {name:<40} {:>12.3} us/iter", per_iter * 1e6);
        match throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                let rate = n as f64 / per_iter;
                line.push_str(&format!("  {rate:>14.0} elem/s"));
            }
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                let rate = n as f64 / per_iter;
                line.push_str(&format!("  {:>14.1} MiB/s", rate / (1024.0 * 1024.0)));
            }
            _ => {}
        }
        println!("{line}");
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut bencher = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        bencher.report(name, None);
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group {name}");
        BenchmarkGroup {
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Record the amount of work one iteration represents.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stand-in sizes runs itself.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        bencher.report(name, self.throughput);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Mirror of `criterion_group!`: bundle benchmark functions under one
/// group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirror of `criterion_main!`: emit `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(2 + 2));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_chain_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(4));
        group.bench_function("inner", |b| b.iter(|| black_box(1u64 << 20)));
        group.finish();
    }
}
