//! Offline stand-in for the subset of the `rand` 0.9 API this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::random`,
//! and `Rng::random_range` over integer and float ranges.
//!
//! The build environment has no access to crates.io, so the real `rand`
//! cannot be fetched; this crate keeps the workspace building with the
//! same source-level API. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic for a given seed, which is all the
//! simulation contract (`tests/determinism.rs`) requires. It is NOT the
//! same stream as upstream `StdRng` (ChaCha12) and is not
//! cryptographically secure.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Seedable generators (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" distribution: `f64` in `[0, 1)`,
/// `bool` fair coin, integers uniform over their full range.
pub trait StandardSample {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution for `T`.
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        const SCALE: f64 = 1.0 / ((1u64 << 53) as f64);
        (rng.next_u64() >> 11) as f64 * SCALE
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        const SCALE: f32 = 1.0 / ((1u32 << 24) as f32);
        ((rng.next_u64() >> 40) as u32) as f32 * SCALE
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let offset = rng.next_u64() % span;
                ((self.start as $wide).wrapping_add(offset as $wide)) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let offset = rng.next_u64() % (span + 1);
                ((lo as $wide).wrapping_add(offset as $wide)) as $t
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// SplitMix64: the canonical seed expander.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators (subset: `StdRng` only).

    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for upstream
    /// `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.random::<u64>() == b.random::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let k = rng.random_range(3..9);
            assert!((3..9).contains(&k));
            let j: i64 = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&j));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_500..5_500).contains(&heads));
    }
}
