//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment cannot reach crates.io, so the real proptest
//! is unavailable. This crate keeps the workspace's property tests
//! compiling and *running*: the `proptest!` macro expands each property
//! into a plain `#[test]` that samples every declared strategy for a
//! configurable number of cases from a per-test deterministic RNG
//! (seeded by FNV-1a of the test name), and `prop_assert!` maps onto
//! `assert!`. No shrinking is performed — on failure the panic message
//! carries whatever context the assertion formats.
//!
//! Supported surface: range strategies over integers and floats,
//! `Just`, `Strategy::prop_map`, `collection::vec`, `ProptestConfig`
//! (`with_cases`), and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` macros.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic per-test RNG handed to strategies by the `proptest!`
/// expansion.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seed a generator from the property's test name so every run of a
    /// given test explores the same cases.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        // FNV-1a: stable across platforms and std versions.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            inner: StdRng::seed_from_u64(hash),
        }
    }
}

/// A source of values for property tests.
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform sampled values, mirroring `proptest`'s `prop_map`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.inner.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.inner.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.inner.random_range(self.clone())
    }
}

pub mod collection {
    //! Collection strategies (subset: `vec`).

    use core::ops::Range;

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec`s with element strategy `S` and a length drawn
    /// from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.inner.random_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Run configuration (subset: number of cases).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

pub mod prelude {
    //! Everything a property test needs, mirroring `proptest::prelude`.

    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Expand property functions into plain `#[test]`s that loop over
/// sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns!{ @cfg ($cfg) $($rest)* }
    };
}

/// `prop_assert!` → `assert!` (no shrinking in the stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { ::std::assert!($($args)+) };
}

/// `prop_assert_eq!` → `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { ::std::assert_eq!($($args)+) };
}

/// `prop_assert_ne!` → `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)+) => { ::std::assert_ne!($($args)+) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{collection, Strategy, TestRng};

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::for_test("ranges_sample_in_bounds");
        for _ in 0..200 {
            let x = (10i64..20).sample(&mut rng);
            assert!((10..20).contains(&x));
            let f = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn vec_and_map_compose() {
        let mut rng = TestRng::for_test("vec_and_map_compose");
        let strat = collection::vec(0u32..10, 3..6).prop_map(|v| v.len());
        for _ in 0..50 {
            let len = strat.sample(&mut rng);
            assert!((3..6).contains(&len));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_runnable_tests(a in 0u64..100, b in 0u64..100) {
            prop_assert!(a < 100 && b < 100);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
