//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for
//! the offline `serde` stand-in. The workspace derives these traits for
//! API-completeness but never calls a serializer, so expanding to
//! nothing keeps every annotated type compiling without pulling in the
//! real (network-only) serde machinery.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
