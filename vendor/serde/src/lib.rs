//! Offline stand-in for the `serde` surface this workspace touches:
//! the `Serialize` / `Deserialize` trait names and their derives.
//!
//! The workspace derives these on domain types for downstream API
//! completeness but never invokes a serializer (there is no
//! `serde_json` in the tree), so marker traits plus no-op derive macros
//! are sufficient to keep everything compiling without network access.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
