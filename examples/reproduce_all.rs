//! Regenerates every figure of the paper in one run and prints
//! paper-reported vs measured values — the source of EXPERIMENTS.md.
//!
//! Run with `cargo run --release --example reproduce_all`.
//! Pass `--fast` to use 6 h sweep steps and fewer training epochs.

use mira_core::{analysis, Duration, FullSpan, ObsMode, PredictorConfig, SimConfig, Simulation};

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let sim = Simulation::new(SimConfig::with_seed(2014));
    let step = if fast {
        Duration::from_hours(6)
    } else {
        Duration::from_hours(1)
    };

    println!(
        "== reproduce_all: seed 2014, sweep step {} h ==",
        step.as_hours()
    );
    println!("building six-year telemetry summary (parallel, month-sharded, instrumented)...");
    let observed = sim
        .summarize_observed(FullSpan, step, 0, ObsMode::On)
        .expect("non-empty span");
    let summary = observed.summary;
    // One shared pass feeds every summary-driven figure.
    let report = analysis::full_report(&sim, &summary);

    let fig2 = &report.fig2;
    println!(
        "\n[Fig 2] power 2014 {:.2} MW -> 2019 {:.2} MW (paper ~2.5 -> ~2.9)",
        fig2.power_by_year[0].mean, fig2.power_by_year[5].mean
    );
    println!(
        "[Fig 2] utilization 2014 {:.1}% -> 2019 {:.1}% (paper ~80 -> ~93)",
        fig2.utilization_by_year[0].mean, fig2.utilization_by_year[5].mean
    );

    let fig3 = &report.fig3;
    println!(
        "[Fig 3] flow {:.0} -> {:.0} GPM at Theta (paper 1250 -> 1300)",
        fig3.flow_before_theta, fig3.flow_after_theta
    );
    println!(
        "[Fig 3] sigmas: flow {:.1} GPM (41), inlet {:.2} F (0.61), outlet {:.2} F (0.71)",
        fig3.flow_stddev, fig3.inlet_stddev, fig3.outlet_stddev
    );

    let fig4 = &report.fig4;
    let dec = fig4.power.last().unwrap().median;
    let may = fig4.power[4].median;
    println!("[Fig 4] power median May {may:.2} MW vs December {dec:.2} MW (paper: December peak)");
    let jan_inlet = fig4.inlet[0].median;
    let aug_inlet = fig4.inlet[7].median;
    println!("[Fig 4] inlet January {jan_inlet:.2} F vs August {aug_inlet:.2} F (paper: winter warmer, free cooling)");

    let fig5 = &report.fig5;
    println!("[Fig 5] non-Monday uplifts: power {:+.1}% (paper ~6), util {:+.1}% (~1.5), outlet {:+.1}% (~2), flow {:+.2}% (~0), inlet {:+.2}% (~0)",
        fig5.power_uplift * 100.0, fig5.utilization_uplift * 100.0,
        fig5.outlet_uplift * 100.0, fig5.flow_uplift * 100.0, fig5.inlet_uplift * 100.0);

    let fig6 = &report.fig6;
    println!(
        "[Fig 6] power leader {} ((0, D)), util leader {} ((0, A)), floor {} ((2, D))",
        fig6.power_leader, fig6.utilization_leader, fig6.utilization_floor
    );
    println!(
        "[Fig 6] power spread {:.1}% (<=15), power-util correlation {:.2} (0.45)",
        fig6.power_spread * 100.0,
        fig6.power_utilization_correlation
    );

    let fig7 = &report.fig7;
    println!(
        "[Fig 7] spreads: flow {:.1}% (<=11), inlet {:.1}% (<=1), outlet {:.1}% (<=3)",
        fig7.flow_spread * 100.0,
        fig7.inlet_spread * 100.0,
        fig7.outlet_spread * 100.0
    );

    let fig8 = &report.fig8;
    println!(
        "[Fig 8] DC temp sigma {:.2} F (2.48), range {:.0}-{:.0} (76-90)",
        fig8.temperature_stddev, fig8.temperature_range.0, fig8.temperature_range.1
    );
    println!(
        "[Fig 8] DC humidity sigma {:.2} RH (3.66), range {:.0}-{:.0} (28-37)",
        fig8.humidity_stddev, fig8.humidity_range.0, fig8.humidity_range.1
    );

    let fig9 = &report.fig9;
    println!(
        "[Fig 9] humidity hotspot {} ((1, 8)); spreads humidity {:.0}% (36), temp {:.0}% (11)",
        fig9.humidity_hotspot,
        fig9.humidity_spread * 100.0,
        fig9.temperature_spread * 100.0
    );

    let fig10 = &report.fig10;
    println!(
        "[Fig 10] total {} CMFs (361), 2016 share {:.0}% (40), longest gap {:.0} d (>730)",
        fig10.total,
        fig10.share_2016 * 100.0,
        fig10.longest_gap_days
    );

    let fig11 = &report.fig11;
    println!(
        "[Fig 11] max {} at {} (14 at (1, 8)); min {} at {} (5 at (2, 7))",
        fig11.max_count, fig11.max_rack, fig11.min_count, fig11.min_rack
    );
    println!(
        "[Fig 11] correlations: util {:.2} (-0.21), outlet {:.2} (-0.06), humidity {:.2} (0.06)",
        fig11.correlation_utilization, fig11.correlation_outlet, fig11.correlation_humidity
    );

    let fig12 = &report.fig12;
    let at = |h: f64| {
        fig12
            .points
            .iter()
            .find(|p| (p.lead.as_hours() - h).abs() < 1e-9)
            .unwrap()
    };
    println!("[Fig 12] inlet trough {:+.1}% near 2 h (paper up to -7); outlet {:+.1}% at 3 h (-5); flow {:+.1}% at 1 h (0)",
        (at(2.0).inlet_rel - 1.0) * 100.0,
        (at(3.0).outlet_rel - 1.0) * 100.0,
        (at(1.0).flow_rel - 1.0) * 100.0);

    println!(
        "\n[Fig 13] training the 12-12-6 predictor on all {} failures...",
        fig10.total
    );
    let config = PredictorConfig {
        epochs: if fast { 20 } else { 50 },
        ..PredictorConfig::default()
    };
    let sweep_leads = [
        Duration::from_hours(6),
        Duration::from_hours(3),
        Duration::from_minutes(30),
    ];
    let fig13 = analysis::fig13_predictor_sweep(&sim, &sweep_leads, usize::MAX, &config);
    for p in &fig13.points {
        println!(
            "[Fig 13] {:>4.1} h lead: accuracy {:.1}%, fpr {:.1}%",
            p.lead.as_hours(),
            p.metrics.accuracy() * 100.0,
            p.metrics.false_positive_rate() * 100.0
        );
    }
    println!("[Fig 13] (paper: 87% at 6 h -> 97% at 30 min; fpr 6% -> 1.2%)");

    let fig14 = &report.fig14;
    println!(
        "[Fig 14] rate ratios: 6h/3h {:.2} (<0.75), 48h/3h {:.2} (~0.10)",
        fig14.ratio_6h_over_3h, fig14.ratio_48h_over_3h
    );
    let ac = fig14
        .type_mix
        .iter()
        .find(|(k, _)| k.tag() == "AC-DC")
        .unwrap()
        .1;
    println!("[Fig 14] AC-to-DC share {:.0}% (50)", ac * 100.0);

    for (i, ex) in report.fig15.iter().enumerate() {
        println!(
            "[Fig 15] storm {}: epicenter {}, {} racks, {} follow-ons at mean distance {:.1}",
            i + 1,
            ex.epicenter,
            ex.cascade.len(),
            ex.followons.len(),
            ex.mean_followon_distance
        );
    }

    let energy = &report.free_cooling;
    println!("\n[energy] Dec-Mar economizer savings {:.2} GWh over six seasons (paper potential 2.17 GWh/season at 100% duty)",
        energy.season_saved.value() / 1e6);

    // Observability gathered on the very sweep that fed the figures.
    // Everything except the wall-clock timings is byte-identical at any
    // MIRA_SWEEP_THREADS setting.
    println!("\n== metrics (deterministic except timings) ==");
    print!("{}", observed.report.to_text());
}
