//! What is the CMF predictor worth operationally? Prices three
//! checkpointing policies over the six-year failure record using the
//! trained predictor's real Fig. 13 operating point.
//!
//! Run with `cargo run --release --example proactive_checkpointing`.

use mira_core::{
    compare_policies, CmfPredictor, DatasetBuilder, Duration, FeatureConfig, MitigationCosts,
    PredictorConfig, SimConfig, Simulation,
};

fn main() {
    let sim = Simulation::new(SimConfig::with_seed(7));

    println!("== proactive checkpointing economics ==\n");
    println!("training the predictor to get its real operating point...");
    let builder = DatasetBuilder::new(
        FeatureConfig::mira(),
        sim.cmf_ground_truth(),
        sim.config().span(),
    );
    let (predictor, _) =
        CmfPredictor::train(sim.telemetry(), &builder, &PredictorConfig::default());
    let lead = Duration::from_hours(3);
    let metrics = predictor.evaluate_at(sim.telemetry(), &builder, lead);
    println!(
        "operating point at {} h lead: recall {:.1}%, fpr {:.2}%\n",
        lead.as_hours(),
        metrics.recall() * 100.0,
        metrics.false_positive_rate() * 100.0
    );

    let costs = MitigationCosts::mira();
    let report = compare_policies(&sim, Duration::from_hours(4), metrics, &costs);

    println!("policy              | lost (node-h) | overhead (node-h) | total");
    println!("--------------------+---------------+-------------------+----------");
    for (name, outcome) in [
        ("no checkpointing", report.none),
        ("periodic (4 h)", report.periodic),
        ("predictor-gated", report.gated),
    ] {
        println!(
            "{name:<19} | {:>13.0} | {:>17.0} | {:>8.0}",
            outcome.lost_node_hours,
            outcome.overhead_node_hours,
            outcome.total()
        );
    }

    let saving_vs_none = 1.0 - report.gated.total() / report.none.total();
    let saving_vs_periodic = 1.0 - report.gated.total() / report.periodic.total();
    println!(
        "\npredictor-gated checkpointing costs {:.0}% less than doing nothing",
        saving_vs_none * 100.0
    );
    println!(
        "and {:.0}% less than blanket periodic checkpointing.",
        saving_vs_periodic * 100.0
    );
    println!(
        "\n(the paper's warning holds: re-run with a high-FPR predictor and the\n\
         gated policy loses to periodic — false positives checkpoint whole racks\n\
         for nothing. See mira_core::mitigation tests.)"
    );
}
