//! Free-cooling efficiency accounting: what the waterside economizer
//! saves, year by year.
//!
//! Run with `cargo run --release --example efficiency_report`.

use mira_core::{analysis, Date, Duration, SimConfig, SimTime, Simulation};

fn main() {
    let sim = Simulation::new(SimConfig::with_seed(7));

    println!("== free-cooling efficiency report ==\n");
    println!("plant: two 1,500-ton chiller towers + waterside economizer");
    println!("full-capacity economizer saving: 17,820 kWh/day (paper, Sec. II)\n");

    // Two representative years at hourly resolution.
    println!("sweeping 2015-2016 at 1 h steps...");
    let summary = sim
        .summarize(
            SimTime::from_date(Date::new(2015, 1, 1))..SimTime::from_date(Date::new(2017, 1, 1)),
            Duration::from_hours(1),
        )
        .expect("non-empty span");
    let report = analysis::free_cooling_report(&summary);

    println!("\nyear | economizer saved (kWh) | chillers spent (kWh)");
    println!("-----+------------------------+---------------------");
    for ((year, saved), (_, spent)) in report
        .saved_by_year
        .iter()
        .zip(report.chiller_by_year.iter())
    {
        println!("{year} | {:>22.0} | {:>19.0}", saved.value(), spent.value());
    }
    println!(
        "\nDecember-March season savings: {:.0} kWh (paper potential: 2,174,040 kWh)",
        report.season_saved.value()
    );
    println!(
        "total saved over sweep: {:.0} kWh",
        report.total_saved.value()
    );

    // Monthly texture: where the free cooling happens.
    println!("\nmean economizer duty by month (2015):");
    let climate = sim.telemetry().climate();
    for month in 1..=12u8 {
        let mut total = 0.0;
        let mut n = 0u32;
        let mut t = SimTime::from_date(Date::new(2015, month, 1));
        for _ in 0..(27 * 4) {
            total += climate.free_cooling_fraction(t);
            t += Duration::from_hours(6);
            n += 1;
        }
        let frac = total / f64::from(n);
        println!(
            "  {:>2}: {:>5.1}% {}",
            month,
            frac * 100.0,
            "*".repeat((frac * 40.0) as usize)
        );
    }
}
