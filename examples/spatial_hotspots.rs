//! Rack-level spatial analysis: power, utilization, and the humidity
//! hotspots of Figs. 6, 7 and 9, drawn as floor-plan heat maps.
//!
//! Run with `cargo run --release --example spatial_hotspots`.

use mira_core::{analysis, Date, Duration, RackId, SimConfig, SimTime, Simulation};

/// Renders 48 per-rack values as a 3 x 16 floor plan with `#`-shades.
fn heatmap(title: &str, unit: &str, values: &[f64]) {
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    println!("\n{title}  (min {min:.2} {unit}, max {max:.2} {unit})");
    println!("      0    1    2    3    4    5    6    7    8    9    A    B    C    D    E    F");
    for row in 0..3u8 {
        print!("row {row}");
        for col in 0..16u8 {
            let v = values[RackId::new(row, col).index()];
            let shade = if max > min {
                ((v - min) / (max - min) * 4.999) as usize
            } else {
                0
            };
            print!("  {} ", [" . ", " - ", " o ", " O ", " # "][shade]);
        }
        println!();
    }
}

fn main() {
    let sim = Simulation::new(SimConfig::with_seed(7));

    println!("== spatial hotspots (Figs. 6, 7, 9) ==");
    println!("sweeping six months of telemetry for rack means...");
    let summary = sim
        .summarize(
            SimTime::from_date(Date::new(2015, 1, 1))..SimTime::from_date(Date::new(2015, 7, 1)),
            Duration::from_hours(2),
        )
        .expect("non-empty span");

    let fig6 = analysis::fig6_rack_power_util(&summary);
    heatmap("rack power (Fig. 6a)", "kW", &fig6.power_kw);
    heatmap("rack utilization (Fig. 6b)", "", &fig6.utilization);
    println!(
        "\npower leader {} | utilization leader {} | utilization floor {}",
        fig6.power_leader, fig6.utilization_leader, fig6.utilization_floor
    );
    println!(
        "power spread {:.1}% | power-utilization rank correlation {:.2} (paper: 0.45)",
        fig6.power_spread * 100.0,
        fig6.power_utilization_correlation
    );

    let fig7 = analysis::fig7_rack_coolant(&summary);
    heatmap("coolant flow (Fig. 7a)", "GPM", &fig7.flow_gpm);
    println!(
        "\nspreads: flow {:.1}% (paper <=11%) | inlet {:.1}% (<=1%) | outlet {:.1}% (<=3%)",
        fig7.flow_spread * 100.0,
        fig7.inlet_spread * 100.0,
        fig7.outlet_spread * 100.0
    );

    let fig9 = analysis::fig9_rack_ambient(&summary);
    heatmap("ambient humidity (Fig. 9b)", "%RH", &fig9.humidity_rh);
    heatmap("ambient temperature (Fig. 9a)", "F", &fig9.temperature_f);
    let (ends, centers) = fig9.end_vs_center_humidity;
    println!(
        "\nhumidity hotspot: {} (paper: (1, 8)) | spread {:.0}% (paper: up to 36%)",
        fig9.humidity_hotspot,
        fig9.humidity_spread * 100.0
    );
    println!(
        "row ends run drier than centers: {ends:.1} vs {centers:.1} %RH \
         (obstructed underfloor airflow)"
    );
}
