//! Train the paper's CMF predictor and print the Fig. 13 lead-time
//! table — with an honest event-level split (train on 60 % of the
//! failures, evaluate on the held-out 40 % with a decorrelated negative
//! grid), plus the differential-feature upgrade.
//!
//! Run with `cargo run --release --example cmf_prediction`.

use mira_core::{
    analysis, CmfPredictor, DatasetBuilder, Duration, FeatureConfig, PredictorConfig, SimConfig,
    Simulation,
};
use mira_predictor::FeatureMode;

const LEADS: [Duration; 7] = [
    Duration::from_hours(6),
    Duration::from_hours(5),
    Duration::from_hours(4),
    Duration::from_hours(3),
    Duration::from_hours(2),
    Duration::from_hours(1),
    Duration::from_minutes(30),
];

fn print_table(points: &[mira_predictor::LeadTimePoint]) {
    println!("lead time | accuracy | precision | recall |   f1   |  fpr");
    println!("----------+----------+-----------+--------+--------+------");
    for point in points {
        let m = point.metrics;
        println!(
            "   {:>4.1} h |  {:>5.1}%  |  {:>5.1}%   | {:>5.1}% | {:>5.1}% | {:>4.1}%",
            point.lead.as_hours(),
            m.accuracy() * 100.0,
            m.precision() * 100.0,
            m.recall() * 100.0,
            m.f1() * 100.0,
            m.false_positive_rate() * 100.0,
        );
    }
}

fn main() {
    let sim = Simulation::new(SimConfig::with_seed(7));

    println!("== CMF prediction (Fig. 13 reproduction) ==\n");
    println!(
        "ground truth: {} rack-level CMFs; training on 60% of events,",
        sim.cmf_ground_truth().len()
    );
    println!("evaluating on the held-out 40% (unseen failures, fresh negatives).\n");

    let config = PredictorConfig {
        hard_negatives: true,
        ..PredictorConfig::default()
    };
    println!(
        "architecture: {:?} hidden (ReLU) + sigmoid head, {} epochs, Adam\n",
        config.hidden, config.epochs
    );

    println!("--- paper features: per-rack six-hour deltas ---");
    let fig13 = analysis::fig13_predictor_sweep(&sim, &LEADS, usize::MAX, &config);
    print_table(&fig13.points);
    println!("paper anchors: ~87% at 6 h -> ~97% at 30 min; fpr 6% -> 1.2%\n");

    println!("--- upgraded features: rack-over-floor-median deltas ---");
    println!("(cancels economizer/weather common-mode swings; the paper's");
    println!(" 'use the overall coolant telemetry' suggestion, implemented)");
    let features = FeatureConfig {
        mode: FeatureMode::DifferentialDeltas,
        ..FeatureConfig::mira()
    };
    let builder = DatasetBuilder::new(features, sim.cmf_ground_truth(), sim.config().span());
    let (train_builder, eval_builder) = builder.split_events(0.6, 7);
    let (predictor, _) = CmfPredictor::train(sim.telemetry(), &train_builder, &config);
    let points = predictor.lead_time_sweep(sim.telemetry(), &eval_builder, &LEADS);
    print_table(&points);
}
