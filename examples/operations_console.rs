//! The deployed operator console: replay a stretch of the machine's
//! life through the trained predictor with operational blackouts, and
//! grade the alerts against the failure record.
//!
//! Run with `cargo run --release --example operations_console`.

use mira_core::{
    CmfPredictor, ConsoleConfig, DatasetBuilder, Duration, FeatureConfig, OperatorConsole,
    PredictorConfig, SimConfig, Simulation,
};
use mira_predictor::FeatureMode;

fn main() {
    let sim = Simulation::new(SimConfig::with_seed(7));

    println!("== operations console replay ==\n");
    println!("training the deployable model (differential features, hard negatives)...");
    let features = FeatureConfig {
        mode: FeatureMode::DifferentialDeltas,
        ..FeatureConfig::mira()
    };
    let builder = DatasetBuilder::new(features, sim.cmf_ground_truth(), sim.config().span());
    let (train_builder, _) = builder.split_events(0.6, 7);
    let (predictor, test) = CmfPredictor::train(
        sim.telemetry(),
        &train_builder,
        &PredictorConfig {
            hard_negatives: true,
            ..PredictorConfig::default()
        },
    );
    println!("held-out test: {test}\n");

    // Replay two eventful weeks of 2016 (the Theta integration burst).
    let incidents = sim.schedule().incidents();
    let mid_2016 = incidents
        .iter()
        .position(|i| i.time.date().year() == 2016)
        .expect("2016 incidents exist");
    let from = incidents[mid_2016].time - Duration::from_days(3);
    let to = from + Duration::from_days(14);
    println!("replaying {from} .. {to}");
    println!("cadence 30 min, threshold 0.8, 6 h debounce, maintenance/outage blackouts\n");

    let console = OperatorConsole::new(&predictor, &builder, ConsoleConfig::default());
    let log = console.replay_masked(sim.telemetry(), from, to, sim.blackout_mask());
    let score = log.score_against(&sim, Duration::from_hours(12));

    println!("alerts raised: {}", log.alerts.len());
    println!(
        "failures in span: {} | warned: {} ({:.0}% coverage) | missed: {}",
        score.warned.len() + score.missed.len(),
        score.warned.len(),
        score.coverage() * 100.0,
        score.missed.len()
    );
    println!(
        "mean warning time: {:.1} h | false alerts/week: {:.1}",
        score.mean_warning.as_hours(),
        score.false_alerts_per_week(log.span)
    );

    println!("\nwarned failures (rack, warning lead):");
    for (t, rack, lead) in score.warned.iter().take(10) {
        println!("  {t}  {rack}  warned {:.1} h ahead", lead.as_hours());
    }
    if !score.missed.is_empty() {
        println!("\nmissed failures:");
        for (t, rack) in score.missed.iter().take(5) {
            println!("  {t}  {rack}");
        }
    }
    println!(
        "\nthe paper's pitch, demonstrated: hours of warning to checkpoint jobs,\n\
         alert users, and pre-stage recovery — without drowning operators in\n\
         false alarms."
    );
}
