//! Quickstart: build the six-year world and reproduce a few headline
//! numbers.
//!
//! Run with `cargo run --release --example quickstart`.

use mira_core::{analysis, Date, Duration, SimConfig, SimTime, Simulation};

fn main() {
    let sim = Simulation::new(SimConfig::with_seed(7));

    println!("== mira-ops quickstart ==\n");
    println!(
        "machine: {} racks, {} nodes, {} cores",
        mira_core::RackId::COUNT,
        sim.machine().total_nodes(),
        sim.machine().total_cores(),
    );

    // The failure record needs no telemetry sweep.
    let fig10 = analysis::fig10_cmf_timeline(&sim);
    println!("\ncoolant monitor failures (Fig. 10):");
    for (year, count) in &fig10.by_year {
        println!("  {year}: {count:>3}  {}", "#".repeat(*count as usize / 4));
    }
    println!(
        "  total {} | 2016 share {:.0}% | longest quiet gap {:.0} days",
        fig10.total,
        fig10.share_2016 * 100.0,
        fig10.longest_gap_days
    );

    // Sweep one quarter of telemetry and look at the system channels.
    // `sweep_plan` shards the span by calendar month and fans it over
    // worker threads; any thread count gives bit-identical results.
    println!("\nsweeping 2015 Q1 telemetry (300 s coolant-monitor cadence)...");
    let summary = sim
        .sweep_plan(
            SimTime::from_date(Date::new(2015, 1, 1))..SimTime::from_date(Date::new(2015, 4, 1)),
        )
        .step(Duration::from_minutes(5))
        .summary()
        .expect("non-empty span");
    let power = summary.power_mw.bins.overall();
    let flow = summary.flow_gpm.bins.overall();
    let inlet = summary.inlet_f.bins.overall();
    let outlet = summary.outlet_f.bins.overall();
    println!(
        "  system power : {:.2} MW mean ({:.2}..{:.2})",
        power.mean(),
        power.min(),
        power.max()
    );
    println!(
        "  loop flow    : {:.0} GPM mean, sigma {:.1}",
        flow.mean(),
        flow.stddev()
    );
    println!(
        "  inlet coolant: {:.1} F mean, sigma {:.2}",
        inlet.mean(),
        inlet.stddev()
    );
    println!(
        "  outlet       : {:.1} F mean, sigma {:.2}",
        outlet.mean(),
        outlet.stddev()
    );

    // One rack's live telemetry, the paper's data model.
    let rack = mira_core::RackId::parse("(1, 8)").expect("valid rack");
    let t = SimTime::from_date(Date::new(2015, 2, 10)) + Duration::from_hours(14);
    let sample = mira_core::TelemetryProvider::sample(sim.telemetry(), rack, t);
    println!("\ncoolant monitor sample, rack {rack} at {t}:");
    println!(
        "  dc temp {}, humidity {}",
        sample.dc_temperature, sample.dc_humidity
    );
    println!(
        "  flow {}, inlet {}, outlet {}",
        sample.flow, sample.inlet, sample.outlet
    );
    println!("  power {}", sample.power);
    println!(
        "  condensation margin {} (alarm below 3 F)",
        sample.condensation_margin()
    );
}
