//! Post-mortem of the biggest RAS storms: cascade membership, the
//! telemetry lead-up, and the 48-hour aftermath (Figs. 12, 14, 15).
//!
//! Run with `cargo run --release --example failure_postmortem`.

use mira_core::{analysis, Duration, SimConfig, Simulation};

fn main() {
    let sim = Simulation::new(SimConfig::with_seed(7));

    println!("== failure post-mortem ==");

    // The telemetry signature before failures (Fig. 12).
    let leads: Vec<Duration> = (0..=12).map(|k| Duration::from_minutes(k * 30)).collect();
    let fig12 = analysis::fig12_cmf_leadup(&sim, &leads, 120);
    println!(
        "\ntelemetry lead-up, averaged over {} failures (Fig. 12):",
        fig12.events
    );
    println!("lead (h) | flow vs baseline | inlet | outlet");
    println!("---------+------------------+-------+-------");
    for p in fig12.points.iter().rev() {
        println!(
            "   {:>4.1}  |      {:>5.1}%      | {:>4.1}% | {:>4.1}%",
            p.lead.as_hours(),
            (p.flow_rel - 1.0) * 100.0,
            (p.inlet_rel - 1.0) * 100.0,
            (p.outlet_rel - 1.0) * 100.0,
        );
    }
    println!("paper: inlet sags ~7% hours out then snaps back; flow collapses only at the end.");

    // The aftermath (Fig. 14).
    let fig14 = analysis::fig14_post_cmf(&sim);
    println!("\nnon-CMF failure rate after a CMF (Fig. 14a):");
    for (hours, rate) in &fig14.rate_windows {
        println!("  within {hours:>4.0} h: {rate:.3} failures/h");
    }
    println!(
        "  6h/3h ratio {:.2} (paper < 0.75) | 48h/3h ratio {:.2} (paper ~0.10)",
        fig14.ratio_6h_over_3h, fig14.ratio_48h_over_3h
    );
    println!("\nfollow-on failure mix (Fig. 14b):");
    for (kind, share) in &fig14.type_mix {
        println!(
            "  {:<18} {:>5.1}% {}",
            kind.to_string(),
            share * 100.0,
            "*".repeat((share * 60.0) as usize)
        );
    }

    // Storm examples (Fig. 15).
    println!("\nthree largest RAS storms (Fig. 15):");
    for ex in analysis::fig15_storm_examples(&sim, 3) {
        println!(
            "\n* {} — epicenter {}, {} racks down",
            ex.time,
            ex.epicenter,
            ex.cascade.len()
        );
        let cascade: Vec<String> = ex.cascade.iter().map(ToString::to_string).collect();
        println!("  cascade: {}", cascade.join(" "));
        println!(
            "  follow-ons within 48 h: {} (mean grid distance from epicenter {:.1})",
            ex.followons.len(),
            ex.mean_followon_distance
        );
        for (rack, kind, hours) in ex.followons.iter().take(6) {
            println!("    +{hours:>5.1} h  {rack}  {kind}");
        }
    }
}
