//! Chicago climate model driving free cooling and data-center humidity.
//!
//! The Theory and Computational Sciences building sits in Chicago's
//! climate: cold, dry winters (when the waterside economizer can carry the
//! chilled-water load for free) and hot, humid summers (when the
//! data-center ambient humidity rises — the red band of the paper's
//! Fig. 8). The model is a *pure function of time*: seasonal and diurnal
//! harmonics plus seeded multi-octave value noise for synoptic weather
//! systems, so any instant can be sampled independently and two simulators
//! with the same seed see identical weather.
//!
//! # Example
//!
//! ```
//! use mira_timeseries::{Date, SimTime};
//! use mira_weather::ChicagoClimate;
//!
//! let climate = ChicagoClimate::new(7);
//! let january = climate.sample(SimTime::from_date(Date::new(2015, 1, 15)));
//! let july = climate.sample(SimTime::from_date(Date::new(2015, 7, 15)));
//! assert!(january.outdoor_temperature < july.outdoor_temperature);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod climate;
pub mod noise;

pub use climate::{ChicagoClimate, ClimateCursor, WeatherSample};
pub use noise::{FractalBank, FractalCursor, NoiseCursor, ValueNoise};
