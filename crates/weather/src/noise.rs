//! Seeded, time-indexed smooth noise.
//!
//! Weather systems arrive on multi-day timescales and are smooth; white
//! noise per sample would be wrong and an AR(1) stepper would make the
//! model order-dependent. [`ValueNoise`] is stateless: it hashes integer
//! lattice points of the time axis and interpolates between them with a
//! smoothstep, so `noise(t)` is a deterministic, C¹-continuous function of
//! `t` alone.

use mira_units::convert;
use serde::{Deserialize, Serialize};

/// Memo for one [`ValueNoise`] call site: the two lattice hashes around
/// the most recently sampled cell.
///
/// A sweep advancing in 300 s steps crosses a multi-day lattice cell
/// once every few thousand samples, so nearly every [`ValueNoise::sample_with`]
/// call reuses the cached pair and skips both avalanche hashes. The
/// cache is keyed on the integer cell index, and the cached values are a
/// pure function of `(seed, cell)`, so cursor-assisted sampling returns
/// bit-identical results to [`ValueNoise::sample`] from any prior cursor
/// state — the cursor can be shared across sweeps, carried across shard
/// boundaries, or start cold without affecting a single output bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoiseCursor {
    cell: i64,
    lo: f64,
    hi: f64,
    primed: bool,
}

/// Cursor bank for one [`ValueNoise::fractal`] call site: each octave's
/// derived layer plus its own [`NoiseCursor`].
///
/// Build once per call site with [`ValueNoise::fractal_cursor`]; the
/// layers are derived exactly as [`ValueNoise::fractal`] derives them,
/// so [`ValueNoise::fractal_with`] is bit-identical to `fractal`.
#[derive(Debug, Clone)]
pub struct FractalCursor {
    layers: Vec<(ValueNoise, NoiseCursor)>,
}

impl FractalCursor {
    /// Number of octaves this cursor serves.
    #[must_use]
    pub fn octaves(&self) -> usize {
        self.layers.len()
    }
}

/// Cursor bank for *many* call sites (lanes) of the same
/// [`ValueNoise::fractal`] source — e.g. one lane per rack.
///
/// A `Vec<FractalCursor>` scatters each lane's cursors across its own
/// heap allocation; the bank keeps the cursor state in four contiguous
/// structure-of-arrays buffers (octave-major: slot `o * lanes + lane`)
/// and derives the octave layers once, since they are identical for
/// every lane. The layout lets [`FractalBank::fractal_lanes_into`]
/// stream one octave across all lanes with unit-stride loads, which the
/// compiler autovectorizes. Sampling through a lane is bit-identical to
/// [`ValueNoise::fractal`] from any prior bank state.
#[derive(Debug, Clone)]
pub struct FractalBank {
    layers: Vec<ValueNoise>,
    lanes: usize,
    /// Cached cell index per slot (octave-major).
    cells: Vec<i64>,
    /// Cached lattice value at `cell` per slot.
    lo: Vec<f64>,
    /// Cached lattice value at `cell + 1` per slot.
    hi: Vec<f64>,
    /// Whether the slot's cache has been filled at least once.
    primed: Vec<bool>,
    /// Per-lane phase/fraction scratch for [`Self::fractal_lanes_into`]
    /// (holds `x`, then `frac`, between the kernel's passes).
    frac: Vec<f64>,
}

impl FractalBank {
    /// Number of octaves per lane.
    #[must_use]
    pub fn octaves(&self) -> usize {
        self.layers.len()
    }

    /// Number of lanes in the bank.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Evaluates every lane at once: lane `l` samples the fractal at
    /// phase `base + l * stride`, the exact phase arithmetic the scalar
    /// per-rack callers use, and the result lands in `out[l]`.
    ///
    /// The loop nest is octave-outer / lane-inner so each octave reads
    /// and writes its own contiguous cursor rows; per lane the octave
    /// contributions accumulate in the same order as
    /// [`ValueNoise::fractal`], and the final division by the shared
    /// norm matches the scalar `total / norm`, so every `out[l]` is
    /// bit-identical to [`ValueNoise::fractal_with_lane`] at the same
    /// phase from any prior bank state.
    ///
    /// Each octave runs as three lane passes: a branch-free phase pass
    /// (`x = (base + l·stride) / period`, the divisions vectorize), a
    /// scalar floor/refill pass whose staleness branch is almost never
    /// taken (multi-day cells), and a branch-free smoothstep-accumulate
    /// pass. Staging `x` and `frac` through the scratch row is an exact
    /// `f64` store/reload, so the split changes no arithmetic — only
    /// which loop the compiler can vectorize.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from `self.lanes()`.
    // Raw seconds phase axis, same contract as `fractal`. The octave
    // rows are sized `octaves * lanes` by the constructor, `frac` is
    // sized `lanes`, the output slice is length-asserted, and every
    // lane index is `lane < lanes`.
    // mira-lint: allow(raw-f64-in-public-api, panic-reachability)
    pub fn fractal_lanes_into(&mut self, base: f64, stride: f64, out: &mut [f64]) {
        let lanes = self.lanes;
        // Documented panic contract: the output slice is one slot per
        // lane. mira-lint: allow(panic-reachability)
        assert_eq!(out.len(), lanes, "out must have one slot per lane");
        out.fill(0.0);
        let mut amplitude = 1.0;
        let mut norm = 0.0;
        for (o, layer) in self.layers.iter().enumerate() {
            let row = o * lanes..(o + 1) * lanes;
            let cells = &mut self.cells[row.clone()];
            let lo = &mut self.lo[row.clone()];
            let hi = &mut self.hi[row.clone()];
            let primed = &mut self.primed[row];
            let frac = &mut self.frac[..lanes];
            for (lane, x) in frac.iter_mut().enumerate() {
                let t = base + convert::f64_from_usize(lane) * stride;
                *x = t / layer.period;
            }
            for lane in 0..lanes {
                let x = frac[lane];
                let cell = convert::i64_from_f64_floor(x);
                frac[lane] = x - convert::f64_from_i64(cell);
                if !primed[lane] || cells[lane] != cell {
                    cells[lane] = cell;
                    lo[lane] = layer.lattice(cell);
                    hi[lane] = layer.lattice(cell + 1);
                    primed[lane] = true;
                }
            }
            for (v, (&f, (&l, &h))) in out
                .iter_mut()
                .zip(frac.iter().zip(lo.iter().zip(hi.iter())))
            {
                let s = f * f * (3.0 - 2.0 * f);
                *v += (l * (1.0 - s) + h * s) * amplitude;
            }
            norm += amplitude;
            amplitude *= 0.5;
        }
        for v in out.iter_mut() {
            *v /= norm;
        }
    }
}

/// One-dimensional, seeded value noise over a time axis measured in
/// seconds.
///
/// ```
/// use mira_weather::ValueNoise;
///
/// let n = ValueNoise::new(42, 86_400.0); // one-day lattice
/// let a = n.sample(1_000.0);
/// assert_eq!(a, n.sample(1_000.0));       // pure function
/// assert!((-1.0..=1.0).contains(&a));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValueNoise {
    seed: u64,
    /// Lattice spacing in seconds: the correlation time of the noise.
    period: f64,
}

impl ValueNoise {
    /// Creates a noise source with lattice spacing `period_seconds`.
    ///
    /// # Panics
    ///
    /// Panics unless `period_seconds` is positive and finite.
    #[must_use]
    pub fn new(seed: u64, period_seconds: f64) -> Self {
        assert!(
            period_seconds.is_finite() && period_seconds > 0.0,
            "noise period must be positive"
        );
        Self {
            seed,
            period: period_seconds,
        }
    }

    /// Uniform value in `[-1, 1]` at integer lattice point `i`.
    fn lattice(&self, i: i64) -> f64 {
        // SplitMix64-style avalanche of (seed, i).
        let mut z = (i as u64).wrapping_add(self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        convert::f64_from_u64(z >> 11) / 9_007_199_254_740_992.0 * 2.0 - 1.0
    }

    /// Samples the noise at time `t` seconds; smooth, in `[-1, 1]`.
    #[must_use]
    pub fn sample(&self, t: f64) -> f64 {
        let x = t / self.period;
        // Integer floor (not `f64::floor`, a libm call on baseline
        // x86-64); `x - cell` equals `x - x.floor()` exactly since the
        // cell is the floor value reconstructed losslessly.
        let cell = convert::i64_from_f64_floor(x);
        let frac = x - convert::f64_from_i64(cell);
        // Smoothstep interpolation keeps the derivative continuous.
        let s = frac * frac * (3.0 - 2.0 * frac);
        self.lattice(cell) * (1.0 - s) + self.lattice(cell + 1) * s
    }

    /// Sum of `octaves` noise layers, each halving the period and the
    /// amplitude, normalized back into `[-1, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `octaves` is zero.
    #[must_use]
    pub fn fractal(&self, t: f64, octaves: u32) -> f64 {
        assert!(octaves > 0, "need at least one octave");
        let mut total = 0.0;
        let mut amplitude = 1.0;
        let mut norm = 0.0;
        for o in 0..octaves {
            let layer = ValueNoise {
                seed: self
                    .seed
                    .wrapping_add(u64::from(o).wrapping_mul(0x5851_F42D_4C95_7F2D)),
                period: self.period / f64::from(1u32 << o),
            };
            total += layer.sample(t) * amplitude;
            norm += amplitude;
            amplitude *= 0.5;
        }
        total / norm
    }

    /// [`Self::sample`] with a per-call-site memo of the two lattice
    /// values around the current cell. Bit-identical to `sample` for any
    /// prior cursor state (see [`NoiseCursor`]).
    #[must_use]
    // Raw seconds axis, same contract as `sample`. mira-lint: allow(raw-f64-in-public-api)
    pub fn sample_with(&self, t: f64, cursor: &mut NoiseCursor) -> f64 {
        let x = t / self.period;
        // Same integer floor as [`Self::sample`] — no libm call.
        let cell = convert::i64_from_f64_floor(x);
        let frac = x - convert::f64_from_i64(cell);
        if !cursor.primed || cursor.cell != cell {
            *cursor = NoiseCursor {
                cell,
                lo: self.lattice(cell),
                hi: self.lattice(cell + 1),
                primed: true,
            };
        }
        // Same smoothstep arithmetic as `sample`, with the lattice
        // hashes read from the cursor.
        let s = frac * frac * (3.0 - 2.0 * frac);
        cursor.lo * (1.0 - s) + cursor.hi * s
    }

    /// Builds the cursor bank for [`Self::fractal_with`], deriving the
    /// per-octave layers exactly as [`Self::fractal`] does.
    ///
    /// # Panics
    ///
    /// Panics if `octaves` is zero (same contract as `fractal`).
    #[must_use]
    // Cursor constructor: the per-octave layer vector is built once per
    // worker (via sweep_scratch), never in the per-step fold.
    // mira-lint: allow(alloc-in-hot-path)
    pub fn fractal_cursor(&self, octaves: u32) -> FractalCursor {
        assert!(octaves > 0, "need at least one octave");
        let layers = (0..octaves)
            .map(|o| {
                let layer = ValueNoise {
                    seed: self
                        .seed
                        .wrapping_add(u64::from(o).wrapping_mul(0x5851_F42D_4C95_7F2D)),
                    period: self.period / f64::from(1u32 << o),
                };
                (layer, NoiseCursor::default())
            })
            .collect();
        FractalCursor { layers }
    }

    /// [`Self::fractal`] through a pre-built cursor bank; bit-identical
    /// to `fractal(t, cursor.octaves())` for any prior cursor state.
    #[must_use]
    // Raw seconds axis, same contract as `fractal`. mira-lint: allow(raw-f64-in-public-api)
    pub fn fractal_with(&self, t: f64, cursor: &mut FractalCursor) -> f64 {
        debug_assert!(!cursor.layers.is_empty(), "need at least one octave");
        let mut total = 0.0;
        let mut amplitude = 1.0;
        let mut norm = 0.0;
        for (layer, cur) in &mut cursor.layers {
            total += layer.sample_with(t, cur) * amplitude;
            norm += amplitude;
            amplitude *= 0.5;
        }
        total / norm
    }

    /// Builds a [`FractalBank`] with `lanes` independent cursor lanes,
    /// deriving the per-octave layers exactly as [`Self::fractal`] does.
    ///
    /// # Panics
    ///
    /// Panics if `octaves` is zero (same contract as `fractal`).
    #[must_use]
    // Bank constructor: the layer and cursor vectors are built once per
    // worker (via sweep_scratch), never in the per-step fold.
    // mira-lint: allow(alloc-in-hot-path)
    pub fn fractal_bank(&self, octaves: u32, lanes: usize) -> FractalBank {
        assert!(octaves > 0, "need at least one octave");
        let layers: Vec<ValueNoise> = (0..octaves)
            .map(|o| ValueNoise {
                seed: self
                    .seed
                    .wrapping_add(u64::from(o).wrapping_mul(0x5851_F42D_4C95_7F2D)),
                period: self.period / f64::from(1u32 << o),
            })
            .collect();
        let slots = layers.len() * lanes;
        FractalBank {
            lanes,
            cells: vec![0; slots],
            lo: vec![0.0; slots],
            hi: vec![0.0; slots],
            primed: vec![false; slots],
            frac: vec![0.0; lanes],
            layers,
        }
    }

    /// [`Self::fractal`] through one lane of a pre-built bank;
    /// bit-identical to `fractal(t, bank.octaves())` for any prior bank
    /// state.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of the bank's range.
    #[must_use]
    // Raw seconds axis, same contract as `fractal`. mira-lint: allow(raw-f64-in-public-api)
    pub fn fractal_with_lane(&self, t: f64, bank: &mut FractalBank, lane: usize) -> f64 {
        // Documented panic contract: `lane` must be below `bank.lanes()`,
        // and every bank is built with one lane per caller-side slot
        // (rack), so in-tree callers index with `rack.index()` into a
        // 48-lane bank. mira-lint: allow(panic-reachability)
        assert!(lane < bank.lanes, "lane out of range");
        let mut total = 0.0;
        let mut amplitude = 1.0;
        let mut norm = 0.0;
        for (o, layer) in bank.layers.iter().enumerate() {
            let slot = o * bank.lanes + lane;
            let x = t / layer.period;
            // Same integer floor and smoothstep as [`Self::sample_with`],
            // with the two lattice hashes read from the bank's SoA rows.
            let cell = convert::i64_from_f64_floor(x);
            let frac = x - convert::f64_from_i64(cell);
            if !bank.primed[slot] || bank.cells[slot] != cell {
                bank.cells[slot] = cell;
                bank.lo[slot] = layer.lattice(cell);
                bank.hi[slot] = layer.lattice(cell + 1);
                bank.primed[slot] = true;
            }
            let s = frac * frac * (3.0 - 2.0 * frac);
            total += (bank.lo[slot] * (1.0 - s) + bank.hi[slot] * s) * amplitude;
            norm += amplitude;
            amplitude *= 0.5;
        }
        total / norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let a = ValueNoise::new(1, 3600.0);
        let b = ValueNoise::new(1, 3600.0);
        let c = ValueNoise::new(2, 3600.0);
        assert_eq!(a.sample(12_345.6), b.sample(12_345.6));
        assert_ne!(a.sample(12_345.6), c.sample(12_345.6));
    }

    #[test]
    fn interpolates_lattice_values_exactly() {
        let n = ValueNoise::new(9, 100.0);
        // At lattice points the sample equals the lattice value.
        for i in -3i64..4 {
            let t = i as f64 * 100.0;
            assert!((n.sample(t) - n.lattice(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn is_smooth_between_lattice_points() {
        let n = ValueNoise::new(5, 1000.0);
        let mut prev = n.sample(0.0);
        for k in 1..=1000 {
            let cur = n.sample(k as f64);
            assert!((cur - prev).abs() < 0.02, "jump at {k}");
            prev = cur;
        }
    }

    #[test]
    #[should_panic(expected = "noise period must be positive")]
    fn rejects_zero_period() {
        let _ = ValueNoise::new(0, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one octave")]
    fn fractal_rejects_zero_octaves() {
        let _ = ValueNoise::new(0, 1.0).fractal(0.0, 0);
    }

    #[test]
    fn cursor_sampling_is_bit_identical() {
        let n = ValueNoise::new(77, 3600.0);
        let mut cur = NoiseCursor::default();
        let mut fcur = n.fractal_cursor(3);
        // Fine steps (many cache hits) and coarse jumps (many cell
        // crossings, including backwards and across zero).
        for k in -5_000i64..5_000 {
            let t = k as f64 * 97.3;
            assert_eq!(n.sample(t).to_bits(), n.sample_with(t, &mut cur).to_bits());
            assert_eq!(
                n.fractal(t, 3).to_bits(),
                n.fractal_with(t, &mut fcur).to_bits()
            );
        }
        for k in [-40i64, 13, -7, 0, 40, 39, -40] {
            let t = k as f64 * 86_400.0 * 11.0;
            assert_eq!(n.sample(t).to_bits(), n.sample_with(t, &mut cur).to_bits());
            assert_eq!(
                n.fractal(t, 3).to_bits(),
                n.fractal_with(t, &mut fcur).to_bits()
            );
        }
    }

    #[test]
    fn bank_lanes_are_bit_identical_and_independent() {
        let n = ValueNoise::new(77, 3600.0);
        let mut bank = n.fractal_bank(2, 4);
        assert_eq!(bank.octaves(), 2);
        assert_eq!(bank.lanes(), 4);
        // Lanes sample interleaved at distinct phases (as racks do), and
        // each must match the cold path at its own phase.
        for k in -2_000i64..2_000 {
            for lane in 0..4usize {
                let t = k as f64 * 211.7 + lane as f64 * 4.321e6;
                assert_eq!(
                    n.fractal(t, 2).to_bits(),
                    n.fractal_with_lane(t, &mut bank, lane).to_bits()
                );
            }
        }
    }

    #[test]
    fn lane_kernel_is_bit_identical_to_cold_fractal() {
        let n = ValueNoise::new(77, 3600.0);
        let mut bank = n.fractal_bank(2, 4);
        let stride = 4.321e6;
        let mut out = [0.0f64; 4];
        // Fine steps (cache hits), coarse jumps (cell crossings,
        // backwards and across zero) — cold start included.
        for k in [-2_000i64, -1_999, -1, 0, 1, 40, 39, -40, 2_000, 2_001] {
            let base = k as f64 * 211.7;
            bank.fractal_lanes_into(base, stride, &mut out);
            for (lane, v) in out.iter().enumerate() {
                let t = base + lane as f64 * stride;
                assert_eq!(n.fractal(t, 2).to_bits(), v.to_bits(), "lane {lane} at {t}");
            }
        }
        // Interleaving the batch kernel with scalar lane sampling must
        // not disturb either path (shared cursor state, pure caches).
        for k in -500i64..500 {
            let base = k as f64 * 997.0;
            if k % 3 == 0 {
                for lane in 0..4usize {
                    let t = base + lane as f64 * stride;
                    assert_eq!(
                        n.fractal(t, 2).to_bits(),
                        n.fractal_with_lane(t, &mut bank, lane).to_bits()
                    );
                }
            } else {
                bank.fractal_lanes_into(base, stride, &mut out);
                for (lane, v) in out.iter().enumerate() {
                    let t = base + lane as f64 * stride;
                    assert_eq!(n.fractal(t, 2).to_bits(), v.to_bits());
                }
            }
        }
    }

    #[test]
    fn mean_is_near_zero() {
        let n = ValueNoise::new(11, 500.0);
        let mean: f64 = (0..10_000).map(|k| n.sample(k as f64 * 137.0)).sum::<f64>() / 10_000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }

    proptest! {
        #[test]
        fn bounded(seed in 0u64..1000, t in -1e9f64..1e9) {
            let n = ValueNoise::new(seed, 7200.0);
            let v = n.sample(t);
            prop_assert!((-1.0..=1.0).contains(&v));
            let f = n.fractal(t, 4);
            prop_assert!((-1.0..=1.0).contains(&f));
        }
    }
}
