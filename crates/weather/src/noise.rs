//! Seeded, time-indexed smooth noise.
//!
//! Weather systems arrive on multi-day timescales and are smooth; white
//! noise per sample would be wrong and an AR(1) stepper would make the
//! model order-dependent. [`ValueNoise`] is stateless: it hashes integer
//! lattice points of the time axis and interpolates between them with a
//! smoothstep, so `noise(t)` is a deterministic, C¹-continuous function of
//! `t` alone.

use serde::{Deserialize, Serialize};

/// One-dimensional, seeded value noise over a time axis measured in
/// seconds.
///
/// ```
/// use mira_weather::ValueNoise;
///
/// let n = ValueNoise::new(42, 86_400.0); // one-day lattice
/// let a = n.sample(1_000.0);
/// assert_eq!(a, n.sample(1_000.0));       // pure function
/// assert!((-1.0..=1.0).contains(&a));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValueNoise {
    seed: u64,
    /// Lattice spacing in seconds: the correlation time of the noise.
    period: f64,
}

impl ValueNoise {
    /// Creates a noise source with lattice spacing `period_seconds`.
    ///
    /// # Panics
    ///
    /// Panics unless `period_seconds` is positive and finite.
    #[must_use]
    pub fn new(seed: u64, period_seconds: f64) -> Self {
        assert!(
            period_seconds.is_finite() && period_seconds > 0.0,
            "noise period must be positive"
        );
        Self {
            seed,
            period: period_seconds,
        }
    }

    /// Uniform value in `[-1, 1]` at integer lattice point `i`.
    fn lattice(&self, i: i64) -> f64 {
        // SplitMix64-style avalanche of (seed, i).
        let mut z = (i as u64).wrapping_add(self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / ((1u64 << 53) as f64) * 2.0 - 1.0
    }

    /// Samples the noise at time `t` seconds; smooth, in `[-1, 1]`.
    #[must_use]
    pub fn sample(&self, t: f64) -> f64 {
        let x = t / self.period;
        let i = x.floor();
        let frac = x - i;
        let i = i as i64;
        // Smoothstep interpolation keeps the derivative continuous.
        let s = frac * frac * (3.0 - 2.0 * frac);
        self.lattice(i) * (1.0 - s) + self.lattice(i + 1) * s
    }

    /// Sum of `octaves` noise layers, each halving the period and the
    /// amplitude, normalized back into `[-1, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `octaves` is zero.
    #[must_use]
    pub fn fractal(&self, t: f64, octaves: u32) -> f64 {
        assert!(octaves > 0, "need at least one octave");
        let mut total = 0.0;
        let mut amplitude = 1.0;
        let mut norm = 0.0;
        for o in 0..octaves {
            let layer = ValueNoise {
                seed: self
                    .seed
                    .wrapping_add(u64::from(o).wrapping_mul(0x5851_F42D_4C95_7F2D)),
                period: self.period / f64::from(1u32 << o),
            };
            total += layer.sample(t) * amplitude;
            norm += amplitude;
            amplitude *= 0.5;
        }
        total / norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let a = ValueNoise::new(1, 3600.0);
        let b = ValueNoise::new(1, 3600.0);
        let c = ValueNoise::new(2, 3600.0);
        assert_eq!(a.sample(12_345.6), b.sample(12_345.6));
        assert_ne!(a.sample(12_345.6), c.sample(12_345.6));
    }

    #[test]
    fn interpolates_lattice_values_exactly() {
        let n = ValueNoise::new(9, 100.0);
        // At lattice points the sample equals the lattice value.
        for i in -3i64..4 {
            let t = i as f64 * 100.0;
            assert!((n.sample(t) - n.lattice(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn is_smooth_between_lattice_points() {
        let n = ValueNoise::new(5, 1000.0);
        let mut prev = n.sample(0.0);
        for k in 1..=1000 {
            let cur = n.sample(k as f64);
            assert!((cur - prev).abs() < 0.02, "jump at {k}");
            prev = cur;
        }
    }

    #[test]
    #[should_panic(expected = "noise period must be positive")]
    fn rejects_zero_period() {
        let _ = ValueNoise::new(0, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one octave")]
    fn fractal_rejects_zero_octaves() {
        let _ = ValueNoise::new(0, 1.0).fractal(0.0, 0);
    }

    #[test]
    fn mean_is_near_zero() {
        let n = ValueNoise::new(11, 500.0);
        let mean: f64 = (0..10_000).map(|k| n.sample(k as f64 * 137.0)).sum::<f64>() / 10_000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }

    proptest! {
        #[test]
        fn bounded(seed in 0u64..1000, t in -1e9f64..1e9) {
            let n = ValueNoise::new(seed, 7200.0);
            let v = n.sample(t);
            prop_assert!((-1.0..=1.0).contains(&v));
            let f = n.fractal(t, 4);
            prop_assert!((-1.0..=1.0).contains(&f));
        }
    }
}
