//! The Chicago climate and the building ambient it induces.

use std::f64::consts::TAU;

use serde::{Deserialize, Serialize};

use mira_timeseries::{SimTime, YearCursor};
use mira_units::{convert, dew_point, Fahrenheit, RelHumidity};

use crate::noise::{FractalCursor, NoiseCursor, ValueNoise};

/// Cursor bundle for [`ChicagoClimate::sample_with`]: the year-fraction
/// memo plus one noise cursor per noise call site.
///
/// Every cached value is a pure function of `(seed, cell)` or of the
/// civil year, so cursor-assisted sampling is bit-identical to the cold
/// path from any prior cursor state.
#[derive(Debug, Clone)]
pub struct ClimateCursor {
    year: YearCursor,
    synoptic: FractalCursor,
    moisture: FractalCursor,
    drift: NoiseCursor,
    jitter: FractalCursor,
    excursion: NoiseCursor,
    indoor_moisture: FractalCursor,
}

/// Outdoor and indoor conditions at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeatherSample {
    /// Outdoor dry-bulb temperature.
    pub outdoor_temperature: Fahrenheit,
    /// Outdoor relative humidity.
    pub outdoor_humidity: RelHumidity,
    /// Outdoor dew point (drives the economizer and indoor moisture).
    pub outdoor_dew_point: Fahrenheit,
    /// Room-level data-center ambient temperature (before per-rack
    /// airflow offsets).
    pub indoor_temperature: Fahrenheit,
    /// Room-level data-center relative humidity (before per-rack airflow
    /// factors).
    pub indoor_humidity: RelHumidity,
}

/// Deterministic Chicago climate model.
///
/// All outputs are pure functions of `(seed, time)`:
///
/// - outdoor temperature = annual harmonic (coldest mid-January, hottest
///   mid-July) + diurnal harmonic + multi-day synoptic noise;
/// - outdoor humidity = seasonal moisture cycle + noise;
/// - indoor temperature = regulated ≈80 °F with drift, plus rare
///   excursions (air-handler faults, extreme weather);
/// - indoor humidity = winter-dry/summer-humid cycle spanning the paper's
///   28–37 %RH band (Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChicagoClimate {
    seed: u64,
    synoptic: ValueNoise,
    moisture: ValueNoise,
    indoor_drift: ValueNoise,
    excursion: ValueNoise,
}

/// Outdoor temperature below which the waterside economizer can carry the
/// full chilled-water load.
pub const FULL_FREE_COOLING_BELOW: Fahrenheit = Fahrenheit::new(38.0);

/// Outdoor temperature above which the economizer contributes nothing.
pub const NO_FREE_COOLING_ABOVE: Fahrenheit = Fahrenheit::new(52.0);

impl ChicagoClimate {
    /// Creates the climate model for a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            synoptic: ValueNoise::new(seed ^ 0x5EA5_0000, 4.0 * 86_400.0),
            moisture: ValueNoise::new(seed ^ 0x0151_7AD0, 3.0 * 86_400.0),
            indoor_drift: ValueNoise::new(seed ^ 0xDA7A_CE17, 30.0 * 86_400.0),
            excursion: ValueNoise::new(seed ^ 0x0DD1_7135, 5.0 * 86_400.0),
        }
    }

    /// Samples the full weather state at `t`.
    #[must_use]
    pub fn sample(&self, t: SimTime) -> WeatherSample {
        let outdoor_temperature = self.outdoor_temperature(t);
        let outdoor_humidity = self.outdoor_humidity(t);
        WeatherSample {
            outdoor_temperature,
            outdoor_humidity,
            outdoor_dew_point: dew_point(outdoor_temperature, outdoor_humidity),
            indoor_temperature: self.indoor_temperature(t),
            indoor_humidity: self.indoor_humidity(t),
        }
    }

    /// Builds the cursor bundle for [`Self::sample_with`].
    #[must_use]
    pub fn cursor(&self) -> ClimateCursor {
        ClimateCursor {
            year: YearCursor::default(),
            synoptic: self.synoptic.fractal_cursor(3),
            moisture: self.moisture.fractal_cursor(3),
            drift: NoiseCursor::default(),
            jitter: self.synoptic.fractal_cursor(2),
            excursion: NoiseCursor::default(),
            indoor_moisture: self.moisture.fractal_cursor(3),
        }
    }

    /// [`Self::sample`] through a [`ClimateCursor`]: bit-identical to
    /// the cold path, but the year-fraction bounds, the civil hour, and
    /// the noise lattice hashes are memoized at their natural cadence
    /// (yearly, daily, multi-day) instead of being re-derived per call.
    #[must_use]
    pub fn sample_with(&self, t: SimTime, cursor: &mut ClimateCursor) -> WeatherSample {
        let secs = convert::f64_from_i64(t.epoch_seconds());
        let yf = t.year_fraction_with(&mut cursor.year);

        // Outdoor temperature: same terms as `outdoor_temperature`, with
        // the hour-of-day derived from seconds-of-day arithmetic — the
        // integer hour/minute/second values match `to_datetime`'s fields
        // exactly, so the fractional hour is bit-identical.
        let seasonal = 51.0 - 26.0 * (TAU * (yf - 0.055)).cos();
        let sod = t.epoch_seconds().rem_euclid(86_400);
        let hod = convert::f64_from_i64(sod / 3600)
            + convert::f64_from_i64((sod % 3600) / 60) / 60.0
            + convert::f64_from_i64(sod % 60) / 3600.0;
        let diurnal = 8.0 * (TAU * (hod - 9.0) / 24.0).sin();
        let synoptic = self.synoptic.fractal_with(secs, &mut cursor.synoptic) * 12.0;
        let outdoor_temperature = Fahrenheit::new(seasonal + diurnal + synoptic);

        // Outdoor humidity, as in `outdoor_humidity`.
        let rh_seasonal = 3.0 * (TAU * (yf - 0.10)).cos();
        let rh_noise = self.moisture.fractal_with(secs, &mut cursor.moisture) * 14.0;
        let outdoor_humidity = RelHumidity::new(68.0 + rh_seasonal + rh_noise);

        // Indoor temperature, as in `indoor_temperature`.
        let base = 80.3 + 1.2 * (TAU * (yf - 0.57)).cos();
        let drift = self.indoor_drift.sample_with(secs, &mut cursor.drift) * 1.6;
        let jitter = self
            .synoptic
            .fractal_with(secs * 1.7 + 1.0e7, &mut cursor.jitter)
            * 0.9;
        let e = self.excursion.sample_with(secs, &mut cursor.excursion);
        let excursion = if e > 0.72 {
            (e - 0.72) / 0.28 * 7.5
        } else {
            0.0
        };
        let indoor_temperature = Fahrenheit::new(base + drift + jitter + excursion);

        // Indoor humidity, as in `indoor_humidity`.
        let ih_seasonal = 32.3 + 3.4 * (TAU * (yf - 0.55)).cos();
        let ih_noise = self
            .moisture
            .fractal_with(secs + 3.0e8, &mut cursor.indoor_moisture)
            * 1.9;
        let indoor_humidity = RelHumidity::new(ih_seasonal + ih_noise);

        WeatherSample {
            outdoor_temperature,
            outdoor_humidity,
            outdoor_dew_point: dew_point(outdoor_temperature, outdoor_humidity),
            indoor_temperature,
            indoor_humidity,
        }
    }

    /// Outdoor dry-bulb temperature at `t`.
    #[must_use]
    pub fn outdoor_temperature(&self, t: SimTime) -> Fahrenheit {
        let yf = t.year_fraction();
        // Coldest around Jan 20 (yf ≈ 0.055), hottest around Jul 20.
        let seasonal = 51.0 - 26.0 * (TAU * (yf - 0.055)).cos();
        let hod = t.to_datetime().hour_of_day();
        // Diurnal trough near 5 AM, peak near 3 PM.
        let diurnal = 8.0 * (TAU * (hod - 9.0) / 24.0).sin();
        let synoptic = self
            .synoptic
            .fractal(convert::f64_from_i64(t.epoch_seconds()), 3)
            * 12.0;
        Fahrenheit::new(seasonal + diurnal + synoptic)
    }

    /// Outdoor relative humidity at `t`.
    #[must_use]
    pub fn outdoor_humidity(&self, t: SimTime) -> RelHumidity {
        let yf = t.year_fraction();
        // Chicago's RH is moderately higher in winter mornings, but the
        // *absolute* moisture (dew point) peaks in summer. We model RH
        // around 68 % with noise; the seasonal moisture shows up via the
        // dew point computed against the warm summer air.
        let seasonal = 3.0 * (TAU * (yf - 0.10)).cos();
        let noise = self
            .moisture
            .fractal(convert::f64_from_i64(t.epoch_seconds()), 3)
            * 14.0;
        RelHumidity::new(68.0 + seasonal + noise)
    }

    /// Regulated room-level ambient temperature at `t`.
    #[must_use]
    pub fn indoor_temperature(&self, t: SimTime) -> Fahrenheit {
        let secs = convert::f64_from_i64(t.epoch_seconds());
        let yf = t.year_fraction();
        // Air handlers hold ≈80-81 °F with a small summer rise.
        let base = 80.3 + 1.2 * (TAU * (yf - 0.57)).cos();
        let drift = self.indoor_drift.sample(secs) * 1.6;
        let jitter = self.synoptic.fractal(secs * 1.7 + 1.0e7, 2) * 0.9;
        // Rare excursions: air-cooling faults and extreme weather push the
        // room several degrees up for a few days.
        let e = self.excursion.sample(secs);
        let excursion = if e > 0.72 {
            (e - 0.72) / 0.28 * 7.5
        } else {
            0.0
        };
        Fahrenheit::new(base + drift + jitter + excursion)
    }

    /// Room-level relative humidity at `t` (the Fig. 8 28–37 %RH band).
    #[must_use]
    pub fn indoor_humidity(&self, t: SimTime) -> RelHumidity {
        let secs = convert::f64_from_i64(t.epoch_seconds());
        let yf = t.year_fraction();
        // Summer peak: outdoor moisture infiltrates; winter air is dry.
        let seasonal = 32.3 + 3.4 * (TAU * (yf - 0.55)).cos();
        let noise = self.moisture.fractal(secs + 3.0e8, 3) * 1.9;
        RelHumidity::new(seasonal + noise)
    }

    /// Fraction of the chilled-water load the waterside economizer can
    /// carry at `t`, in `[0, 1]`: 1 in deep winter, 0 in summer, linear
    /// in between.
    #[must_use]
    pub fn free_cooling_fraction(&self, t: SimTime) -> f64 {
        Self::free_cooling_fraction_of(self.outdoor_temperature(t))
    }

    /// [`Self::free_cooling_fraction`] from an outdoor temperature
    /// already in hand: lets the snapshot hot path reuse the temperature
    /// it just sampled instead of recomputing it.
    #[must_use]
    // Dimensionless economizer fraction. mira-lint: allow(raw-f64-in-public-api)
    pub fn free_cooling_fraction_of(outdoor_temperature: Fahrenheit) -> f64 {
        let temp = outdoor_temperature.value();
        let lo = FULL_FREE_COOLING_BELOW.value();
        let hi = NO_FREE_COOLING_ABOVE.value();
        ((hi - temp) / (hi - lo)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mira_timeseries::{Date, Duration};

    fn at(date: Date) -> SimTime {
        SimTime::from_date(date) + Duration::from_hours(12)
    }

    #[test]
    fn seasons_order_correctly() {
        let c = ChicagoClimate::new(3);
        let jan = c.outdoor_temperature(at(Date::new(2015, 1, 15)));
        let apr = c.outdoor_temperature(at(Date::new(2015, 4, 15)));
        let jul = c.outdoor_temperature(at(Date::new(2015, 7, 15)));
        assert!(jan < apr && apr < jul, "{jan} {apr} {jul}");
    }

    #[test]
    fn winter_enables_free_cooling_summer_disables() {
        let c = ChicagoClimate::new(3);
        // Average over a month to wash out synoptic noise.
        let avg_fraction = |y: i32, m: u8| {
            let mut total = 0.0;
            let mut n = 0;
            let mut t = SimTime::from_date(Date::new(y, m, 1));
            for _ in 0..(28 * 8) {
                total += c.free_cooling_fraction(t);
                n += 1;
                t += Duration::from_hours(3);
            }
            total / f64::from(n)
        };
        assert!(avg_fraction(2015, 1) > 0.7, "January mostly free-cooled");
        assert!(avg_fraction(2015, 7) < 0.05, "July has no free cooling");
        assert!(
            (0.05..0.95).contains(&avg_fraction(2015, 4)),
            "April is transitional"
        );
    }

    #[test]
    fn diurnal_cycle_peaks_in_afternoon() {
        let c = ChicagoClimate::new(3);
        let day = Date::new(2015, 6, 10);
        let dawn = c.outdoor_temperature(SimTime::from_date(day) + Duration::from_hours(5));
        let apex = c.outdoor_temperature(SimTime::from_date(day) + Duration::from_hours(15));
        assert!(apex.value() > dawn.value() + 8.0, "{dawn} vs {apex}");
    }

    #[test]
    fn indoor_humidity_in_fig8_band() {
        let c = ChicagoClimate::new(3);
        let mut t = SimTime::from_date(Date::new(2014, 1, 1));
        let end = SimTime::from_date(Date::new(2020, 1, 1));
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        while t < end {
            let rh = c.indoor_humidity(t).value();
            min = min.min(rh);
            max = max.max(rh);
            t += Duration::from_hours(6);
        }
        assert!((25.0..30.0).contains(&min), "min RH {min}");
        assert!((35.0..41.0).contains(&max), "max RH {max}");
    }

    #[test]
    fn indoor_humidity_summer_seasonality() {
        let c = ChicagoClimate::new(3);
        let feb = c.indoor_humidity(at(Date::new(2016, 2, 1)));
        let aug = c.indoor_humidity(at(Date::new(2016, 8, 1)));
        assert!(aug.value() > feb.value() + 3.0, "{feb} vs {aug}");
    }

    #[test]
    fn indoor_temperature_regulated_with_excursions() {
        let c = ChicagoClimate::new(3);
        let mut t = SimTime::from_date(Date::new(2014, 1, 1));
        let end = SimTime::from_date(Date::new(2020, 1, 1));
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        while t < end {
            let v = c.indoor_temperature(t).value();
            min = min.min(v);
            max = max.max(v);
            t += Duration::from_hours(6);
        }
        // Paper band: 76-90 F.
        assert!((74.0..79.0).contains(&min), "min {min}");
        assert!((85.0..92.0).contains(&max), "max {max}");
    }

    #[test]
    fn sample_is_consistent() {
        let c = ChicagoClimate::new(3);
        let t = at(Date::new(2017, 5, 5));
        let s = c.sample(t);
        assert_eq!(s.outdoor_temperature, c.outdoor_temperature(t));
        assert!(s.outdoor_dew_point <= s.outdoor_temperature);
    }

    #[test]
    fn cursor_sampling_is_bit_identical() {
        let c = ChicagoClimate::new(2014);
        let mut cursor = c.cursor();
        // A fine 300 s sweep (mostly cache hits, crossing hour/day/cell
        // boundaries) and a set of jumps (year boundaries, backwards).
        let mut t = SimTime::from_date(Date::new(2015, 12, 28));
        for _ in 0..(10 * 288) {
            assert_eq!(c.sample_with(t, &mut cursor), c.sample(t));
            t += Duration::from_minutes(5);
        }
        for date in [
            Date::new(2014, 1, 1),
            Date::new(2019, 12, 31),
            Date::new(2016, 2, 29),
            Date::new(2016, 7, 1),
            Date::new(2014, 1, 1),
        ] {
            let t = at(date);
            assert_eq!(c.sample_with(t, &mut cursor), c.sample(t));
        }
    }

    #[test]
    fn free_cooling_fraction_of_matches_timed_path() {
        let c = ChicagoClimate::new(7);
        let mut t = SimTime::from_date(Date::new(2015, 1, 1));
        for _ in 0..500 {
            let via_temp = ChicagoClimate::free_cooling_fraction_of(c.outdoor_temperature(t));
            assert_eq!(via_temp.to_bits(), c.free_cooling_fraction(t).to_bits());
            t += Duration::from_hours(7);
        }
    }

    #[test]
    fn seeds_differ_but_are_deterministic() {
        let a = ChicagoClimate::new(1);
        let b = ChicagoClimate::new(2);
        let t = at(Date::new(2018, 3, 3));
        assert_eq!(a.sample(t), ChicagoClimate::new(1).sample(t));
        assert_ne!(
            a.sample(t).outdoor_temperature,
            b.sample(t).outdoor_temperature
        );
    }
}
