//! Concurrency contract of [`mira_serve::ServeState`]: N writers
//! ingesting while M readers query must never observe a torn aggregate,
//! and the final state must be byte-identical to a cold batch sweep.
//!
//! The `RwLock` around the incremental engine is what makes this hold:
//! a reader's clone happens entirely between writer appends, so every
//! count inside the snapshot — system channel bins, all 48 per-rack
//! Welfords, the pooled ambient population — must agree on how many
//! grid instants it covers. A torn read would show mismatched counts.

use std::sync::atomic::{AtomicU64, Ordering};

use mira_core::{Duration, SimConfig, Simulation, SweepSummary};
use mira_serve::ServeState;

const STEP_HOURS: i64 = 6;
const WRITERS: usize = 2;
const INGESTS_PER_WRITER: usize = 25;
const STEPS_PER_INGEST: usize = 8;
const READERS: usize = 4;

/// Every count in a snapshot agrees on the number of covered instants.
fn assert_coherent(summary: &SweepSummary) -> u64 {
    let k = summary.power_mw.bins.overall().count();
    let span_steps = (summary.span.1 - summary.span.0).as_seconds()
        / Duration::from_hours(STEP_HOURS).as_seconds();
    assert_eq!(u64::try_from(span_steps).expect("non-negative"), k, "span");
    for channel in [
        &summary.utilization_pct,
        &summary.flow_gpm,
        &summary.inlet_f,
        &summary.outlet_f,
        &summary.dc_temp_f,
        &summary.dc_rh,
    ] {
        assert_eq!(channel.bins.overall().count(), k, "channel bins");
    }
    assert_eq!(summary.racks.len(), 48);
    for rack in &summary.racks {
        assert_eq!(rack.power.count(), k, "rack power");
        assert_eq!(rack.flow.count(), k, "rack flow");
    }
    assert_eq!(summary.dc_temp_all_racks.count(), 48 * k, "pooled ambient");
    k
}

#[test]
fn concurrent_writers_and_readers_never_tear() {
    let sim = Simulation::new(SimConfig::with_seed(7));
    let state = ServeState::new(sim, Duration::from_hours(STEP_HOURS)).expect("positive step");
    let polls_with_data = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let state = &state;
            scope.spawn(move || {
                for i in 0..INGESTS_PER_WRITER {
                    let id = w * INGESTS_PER_WRITER + i;
                    let reply = state.handle(&format!(
                        "{{\"cmd\":\"ingest\",\"steps\":{STEPS_PER_INGEST},\"id\":{id}}}"
                    ));
                    assert!(reply.contains("\"ok\":true"), "{reply}");
                }
            });
        }
        for r in 0..READERS {
            let state = &state;
            let polls_with_data = &polls_with_data;
            scope.spawn(move || {
                loop {
                    // Exercise the protocol surface concurrently...
                    let status = state.handle("{\"cmd\":\"status\"}");
                    assert!(status.contains("\"ok\":true"), "{status}");
                    let metrics = state.handle("{\"cmd\":\"metrics\"}");
                    assert!(metrics.contains("\"ok\":true"), "{metrics}");
                    if r % 2 == 0 {
                        let fig = state.handle("{\"cmd\":\"figure\",\"figure\":\"fig2\"}");
                        // Empty-span errors are fine before the first
                        // ingest lands; anything else must succeed.
                        assert!(
                            fig.contains("\"ok\":true") || fig.contains("\"kind\":\"sweep\""),
                            "{fig}"
                        );
                    }
                    // ...and check the snapshot for torn reads.
                    if let Ok(summary) = state.snapshot_summary() {
                        assert_coherent(&summary);
                        polls_with_data.fetch_add(1, Ordering::Relaxed);
                    }
                    let total = mira_units::convert::u64_from_usize(
                        WRITERS * INGESTS_PER_WRITER * STEPS_PER_INGEST,
                    );
                    if state.ingested_steps() == total {
                        break;
                    }
                    std::thread::yield_now();
                }
            });
        }
    });

    assert!(
        polls_with_data.load(Ordering::Relaxed) >= READERS as u64,
        "readers should have observed live snapshots"
    );

    // Everything landed...
    let total = WRITERS * INGESTS_PER_WRITER * STEPS_PER_INGEST;
    assert_eq!(
        state.ingested_steps(),
        mira_units::convert::u64_from_usize(total)
    );

    // ...and the final aggregate is byte-identical to a cold batch
    // sweep over the same span.
    let summary = state.snapshot_summary().expect("ingested");
    assert_eq!(
        assert_coherent(&summary),
        mira_units::convert::u64_from_usize(total)
    );
    let batch = state
        .simulation()
        .summarize(summary.span, Duration::from_hours(STEP_HOURS))
        .expect("non-empty span");
    assert_eq!(summary, batch);
    assert_eq!(format!("{summary:?}"), format!("{batch:?}"));
}

#[test]
fn scripted_session_is_deterministic_across_interleavings() {
    // The same request log, replayed twice with different (serialized)
    // timing, produces identical reply bytes for every deterministic
    // query — the property the CI gate checks across thread counts.
    let run = || {
        let sim = Simulation::new(SimConfig::with_seed(7));
        let state = ServeState::new(sim, Duration::from_hours(STEP_HOURS)).expect("step");
        [
            "{\"cmd\":\"ingest\",\"steps\":124}",
            "{\"cmd\":\"status\"}",
            "{\"cmd\":\"figure\",\"figure\":\"fig2\"}",
            "{\"cmd\":\"report\"}",
            "{\"cmd\":\"metrics\"}",
        ]
        .iter()
        .map(|line| state.handle(line))
        .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
