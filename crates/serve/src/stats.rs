//! Server self-observation: deterministic request counters plus
//! wall-clock latency quantiles.
//!
//! The two halves mirror the split `mira_obs::ObsReport` enforces:
//! counters (requests per command, steps ingested) are pure functions
//! of the request sequence and merge into the deterministic metrics
//! snapshot — the CI byte-identity gate compares them across thread
//! counts — while latency (P² quantiles over per-query wall time,
//! total ingest/query nanoseconds) only appears when a client asks for
//! `{"cmd":"metrics","wall":true}`.

use mira_obs::MetricsPartial;
use mira_timeseries::P2Quantile;
use mira_units::convert;

use crate::json::Json;

/// Deterministic metric key: total requests handled.
pub const QUERIES_SERVED: &str = "serve.queries_served";
/// Deterministic metric key: grid instants ingested.
pub const STEPS_INGESTED: &str = "serve.steps_ingested";
/// Deterministic metric key: requests that failed to decode.
pub const QUERIES_INVALID: &str = "serve.queries.invalid";

/// Running server statistics. Lives behind one mutex in
/// [`crate::state::ServeState`]; every method is cheap (a counter bump
/// or two P² pushes).
#[derive(Debug, Clone)]
pub struct ServeStats {
    metrics: MetricsPartial,
    query_us_p50: P2Quantile,
    query_us_p99: P2Quantile,
    ingest_nanos: u64,
    query_nanos: u64,
}

impl Default for ServeStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeStats {
    /// Empty statistics.
    #[must_use]
    pub fn new() -> Self {
        Self {
            metrics: MetricsPartial::new(),
            query_us_p50: P2Quantile::median(),
            query_us_p99: P2Quantile::new(0.99),
            ingest_nanos: 0,
            query_nanos: 0,
        }
    }

    /// Counts one decoded request under its per-command key. Called
    /// *before* dispatch, so a `metrics` reply's snapshot includes the
    /// query that produced it — making the reply a deterministic
    /// function of the request sequence.
    pub fn note_request(&mut self, command_key: &'static str) {
        self.metrics.add(QUERIES_SERVED, 1);
        self.metrics.add(command_key, 1);
    }

    /// Counts one request that failed to decode.
    pub fn note_invalid(&mut self) {
        self.metrics.add(QUERIES_SERVED, 1);
        self.metrics.add(QUERIES_INVALID, 1);
    }

    /// Counts grid instants appended by a successful ingest.
    pub fn note_ingested(&mut self, steps: u64) {
        self.metrics.add(STEPS_INGESTED, steps);
    }

    /// Merges one archive scan's counters under the `store.*` keys, so
    /// replay traffic shows up in the deterministic metrics snapshot
    /// (rows scanned, groups pruned, blocks decoded, bytes read).
    pub fn note_scan(&mut self, scan: &mira_core::ScanStats) {
        scan.record(&mut self.metrics);
    }

    /// Records the wall time an ingest request spent appending.
    pub fn note_ingest_wall(&mut self, nanos: u64) {
        self.ingest_nanos = self.ingest_nanos.saturating_add(nanos);
    }

    /// Records one request's wall time (every command, ingest included).
    pub fn note_query_wall(&mut self, nanos: u64) {
        self.query_nanos = self.query_nanos.saturating_add(nanos);
        let micros = convert::f64_from_u64(nanos) / 1_000.0;
        self.query_us_p50.push(micros);
        self.query_us_p99.push(micros);
    }

    /// The deterministic counters, ready to merge into an
    /// [`mira_obs::ObsReport`]'s metrics.
    #[must_use]
    pub fn deterministic(&self) -> &MetricsPartial {
        &self.metrics
    }

    /// Requests handled so far (invalid ones included).
    #[must_use]
    pub fn queries_served(&self) -> u64 {
        self.metrics.counter(QUERIES_SERVED).unwrap_or(0)
    }

    /// The nondeterministic latency numbers for
    /// `{"cmd":"metrics","wall":true}` replies, as plain data so the
    /// caller can release the stats mutex before rendering. Never part
    /// of the byte-identity comparison.
    #[must_use]
    pub fn wall_snapshot(&self) -> WallSnapshot {
        WallSnapshot {
            query_p50_us: self.query_us_p50.value(),
            query_p99_us: self.query_us_p99.value(),
            query_wall_nanos: self.query_nanos,
            ingest_wall_nanos: self.ingest_nanos,
        }
    }
}

/// One point-in-time copy of the wall-clock latency numbers.
#[derive(Debug, Clone, Copy)]
pub struct WallSnapshot {
    /// Median per-query wall time, microseconds (P² estimate).
    pub query_p50_us: f64,
    /// 99th-percentile per-query wall time, microseconds (P² estimate).
    pub query_p99_us: f64,
    /// Total wall nanoseconds across all requests.
    pub query_wall_nanos: u64,
    /// Wall nanoseconds ingest requests spent appending.
    pub ingest_wall_nanos: u64,
}

impl WallSnapshot {
    /// The `"wall"` reply section.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("query_p50_us", Json::Num(self.query_p50_us)),
            ("query_p99_us", Json::Num(self.query_p99_us)),
            ("query_wall_nanos", Json::from(self.query_wall_nanos)),
            ("ingest_wall_nanos", Json::from(self.ingest_wall_nanos)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_deterministic_and_latency_is_separate() {
        let mut a = ServeStats::new();
        let mut b = ServeStats::new();
        for stats in [&mut a, &mut b] {
            stats.note_request("serve.queries.status");
            stats.note_request("serve.queries.ingest");
            stats.note_ingested(288);
            stats.note_invalid();
        }
        // Different wall timings...
        a.note_query_wall(1_000);
        b.note_query_wall(9_999_999);
        // ...do not perturb the deterministic counters.
        let render = |s: &ServeStats| {
            let mut r = mira_obs::ObsReport::new();
            r.metrics.merge(s.deterministic());
            r.deterministic_json()
        };
        assert_eq!(render(&a), render(&b));
        assert_eq!(a.deterministic().counter(QUERIES_SERVED), Some(3));
        assert_eq!(a.deterministic().counter(STEPS_INGESTED), Some(288));
        assert_eq!(a.deterministic().counter(QUERIES_INVALID), Some(1));
        assert_eq!(a.queries_served(), 3);
    }

    #[test]
    fn wall_snapshot_tracks_quantiles() {
        let mut s = ServeStats::new();
        for n in 1..=100u64 {
            s.note_query_wall(n * 1_000); // 1..=100 us
        }
        s.note_ingest_wall(5_000);
        let wall = s.wall_snapshot().to_json();
        let p50 = wall.get("query_p50_us").and_then(Json::as_f64).unwrap();
        let p99 = wall.get("query_p99_us").and_then(Json::as_f64).unwrap();
        assert!((40.0..=60.0).contains(&p50), "p50 {p50}");
        assert!(p99 > 90.0, "p99 {p99}");
        assert_eq!(
            wall.get("ingest_wall_nanos").and_then(Json::as_u64),
            Some(5_000)
        );
    }
}
