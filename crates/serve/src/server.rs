//! Transport loops: newline-delimited JSON over stdio and TCP.
//!
//! Both loops share one [`ServeState`]; any mix of stdio and TCP
//! clients can ingest and query concurrently. A `shutdown` request (or
//! stdin EOF) flips the shared flag; every loop notices within one
//! poll interval and drains out, so the process exits cleanly with all
//! replies flushed.

use std::io::{self, BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration as StdDuration;

use crate::state::ServeState;

/// How often blocked readers and the acceptor re-check the shutdown
/// flag.
const POLL_INTERVAL: StdDuration = StdDuration::from_millis(50);

/// Serves requests line-by-line from `reader`, writing one reply line
/// each to `writer`. Returns after a `shutdown` request or EOF; EOF
/// also requests global shutdown so companion TCP loops drain.
///
/// # Errors
///
/// Propagates I/O errors from the reader or writer.
pub fn serve_stdio<R: BufRead, W: Write>(
    state: &ServeState,
    reader: R,
    mut writer: W,
) -> io::Result<()> {
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = state.handle(&line);
        writer.write_all(reply.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if state.is_shutdown() {
            return Ok(());
        }
    }
    state.request_shutdown();
    Ok(())
}

/// Accepts TCP connections on `listener` until shutdown, serving each
/// on its own thread against the shared state. Connection threads are
/// scoped: the call returns only after every client has drained.
///
/// # Errors
///
/// Propagates listener configuration errors; per-connection errors
/// only end that connection.
pub fn serve_tcp(state: &ServeState, listener: &TcpListener) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    std::thread::scope(|scope| -> io::Result<()> {
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    scope.spawn(move || {
                        // A failed client connection only ends that
                        // client; the server keeps accepting.
                        let _ = serve_connection(state, stream);
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if state.is_shutdown() {
                        return Ok(());
                    }
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) => return Err(e),
            }
        }
    })
}

/// Serves one TCP client. Read timeouts poll the shutdown flag so the
/// connection drains promptly when another client stops the server.
fn serve_connection(state: &ServeState, stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        // On timeout, any partial line already read stays in `line`
        // and the next pass appends to it — no bytes are lost.
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()),
            Ok(_) => {
                if !line.trim().is_empty() {
                    let reply = state.handle(line.trim_end());
                    writer.write_all(reply.as_bytes())?;
                    writer.write_all(b"\n")?;
                    writer.flush()?;
                }
                line.clear();
                if state.is_shutdown() {
                    return Ok(());
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if state.is_shutdown() {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mira_core::{Duration, SimConfig, Simulation};
    use std::io::Cursor;

    fn state() -> ServeState {
        let sim = Simulation::new(SimConfig::with_seed(7));
        ServeState::new(sim, Duration::from_hours(6)).expect("positive step")
    }

    #[test]
    fn stdio_session_replies_per_line_and_stops_on_shutdown() {
        let s = state();
        let input = "\
{\"cmd\":\"ingest\",\"steps\":8,\"id\":1}\n\
\n\
{\"cmd\":\"status\",\"id\":2}\n\
{\"cmd\":\"shutdown\",\"id\":3}\n\
{\"cmd\":\"status\",\"id\":4}\n";
        let mut out = Vec::new();
        serve_stdio(&s, Cursor::new(input), &mut out).expect("io");
        let text = String::from_utf8(out).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        // The blank line is skipped; the post-shutdown request is never
        // read.
        assert_eq!(lines.len(), 3, "{text}");
        assert!(lines[0].contains("\"ingested\":8"));
        assert!(lines[1].contains("\"steps_ingested\":8"));
        assert!(lines[2].contains("\"shutting_down\":true"));
        assert!(s.is_shutdown());
    }

    #[test]
    fn stdio_eof_requests_shutdown() {
        let s = state();
        let mut out = Vec::new();
        serve_stdio(&s, Cursor::new("{\"cmd\":\"status\"}\n"), &mut out).expect("io");
        assert!(s.is_shutdown(), "EOF must stop companion loops");
    }

    #[test]
    fn tcp_round_trip_and_shutdown() {
        use std::io::{BufRead as _, Write as _};
        use std::net::TcpListener;

        let s = state();
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("addr");
        std::thread::scope(|scope| {
            let server = scope.spawn(|| serve_tcp(&s, &listener));
            let stream = TcpStream::connect(addr).expect("connect");
            let mut writer = stream.try_clone().expect("clone");
            let mut reader = BufReader::new(stream);
            let mut reply = String::new();

            writer
                .write_all(b"{\"cmd\":\"ingest\",\"steps\":4,\"id\":1}\n")
                .expect("write");
            reader.read_line(&mut reply).expect("read");
            assert!(reply.contains("\"ingested\":4"), "{reply}");

            reply.clear();
            writer
                .write_all(b"{\"cmd\":\"shutdown\",\"id\":2}\n")
                .expect("write");
            reader.read_line(&mut reply).expect("read");
            assert!(reply.contains("\"shutting_down\":true"), "{reply}");

            server.join().expect("join").expect("serve_tcp");
        });
    }
}
