//! Long-running analytics service over the incremental sweep engine.
//!
//! `mira-serve` is the library behind `mira-ops serve`: a std-only,
//! multi-threaded server that ingests telemetry grid instants into a
//! [`mira_core::IncrementalSweep`] while answering queries over the
//! running aggregate — `status`, `metrics`, `figure`, `report`,
//! `predict`, `ingest`, `shutdown` — as newline-delimited JSON over
//! stdio and/or TCP (see [`protocol`] for the wire format).
//!
//! Determinism is the design constraint carried over from the batch
//! CLI: every reply except explicitly wall-clock material (the
//! `"wall"` metrics section) is a pure function of the request
//! sequence, so a scripted session replays byte-identically at any
//! `MIRA_SWEEP_THREADS` setting and any number of connections — that
//! is the CI smoke gate. Under the hood the incremental engine is
//! byte-identical to a cold batch sweep of the ingested span, and
//! queries cost one clone of bounded state rather than a recompute.
//!
//! ```
//! use mira_core::{Duration, SimConfig, Simulation};
//! use mira_serve::ServeState;
//!
//! let sim = Simulation::new(SimConfig::with_seed(7));
//! let state = ServeState::new(sim, Duration::from_hours(6)).expect("positive step");
//! let reply = state.handle("{\"cmd\":\"ingest\",\"steps\":4,\"id\":1}");
//! assert!(reply.contains("\"steps_ingested\":4"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod protocol;
pub mod server;
pub mod state;
pub mod stats;

pub use json::{Json, JsonError};
pub use protocol::{parse_request, Request};
pub use server::{serve_stdio, serve_tcp};
pub use state::ServeState;
pub use stats::ServeStats;
