//! A minimal JSON value: enough for the newline-delimited protocol.
//!
//! The workspace's vendored `serde` is a no-op marker-trait stand-in
//! (no `serde_json` exists in this build environment), so the protocol
//! layer parses and renders JSON by hand. Rendering is deterministic:
//! object keys keep insertion order, floats use Rust's shortest
//! round-trip formatting (integral values render without a fraction),
//! and non-finite floats render as `null` — the same convention as
//! `mira_obs::ObsReport::deterministic_json`.

use std::fmt;

use mira_units::convert;

/// Largest magnitude rendered through the integer path: beyond 2^53 an
/// f64 no longer represents every integer exactly.
const MAX_EXACT_INT: f64 = 9_007_199_254_740_992.0;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also the rendering of non-finite numbers).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; JSON does not distinguish integer from float.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on render.
    Obj(Vec<(String, Json)>),
    /// Pre-rendered JSON spliced verbatim into the output. Used to
    /// embed `ObsReport::deterministic_json` byte-for-byte (a parse +
    /// re-render round trip could legally reformat numbers).
    Raw(String),
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid json at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Json::Num(x)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Num(convert::f64_from_u64(n))
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Self {
        Json::Num(convert::f64_from_i64(n))
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Self {
        Json::Arr(items)
    }
}

impl Json {
    /// An object from `(key, value)` pairs, preserving order.
    #[must_use]
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up a key in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one
    /// exactly.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && *x <= MAX_EXACT_INT && x.fract() == 0.0 => {
                Some(convert::i64_from_f64_floor(*x).cast_unsigned())
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders into `out`.
    pub fn render(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => render_number(*x, out),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render(out);
                }
                out.push('}');
            }
            Json::Raw(s) => out.push_str(s),
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, trailing
    /// garbage is an error).
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the byte offset of the first problem.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.render(&mut out);
        f.write_str(&out)
    }
}

/// Deterministic number rendering: exact integers without a fraction,
/// everything else via Rust's shortest-round-trip `Display`, non-finite
/// as `null`.
fn render_number(x: f64, out: &mut String) {
    use fmt::Write as _;
    if !x.is_finite() {
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() <= MAX_EXACT_INT {
        let _ = write!(out, "{}", convert::i64_from_f64_floor(x));
    } else {
        let _ = write!(out, "{x}");
    }
}

fn render_string(s: &str, out: &mut String) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Nesting depth cap: protocol requests are flat, so a deep document is
/// hostile or broken input, not a use case.
const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        // `pos` only ever advances past successfully peeked bytes, so
        // `pos <= len` and the open range cannot start out of bounds.
        // mira-lint: allow(panic-reachability)
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected , or ] in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected , or } in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \uXXXX with a low surrogate.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u')?;
                                    self.pos -= 1; // hex4 expects pos at first digit
                                    self.pos += 1;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(code)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            // hex4 advanced past the digits; skip the
                            // shared pos += 1 below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so byte
                    // boundaries are valid). `pos <= len` as in
                    // `literal`. mira-lint: allow(panic-reachability)
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    match s.chars().next() {
                        Some(c) => {
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                        None => return Err(self.err("unterminated string")),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code: u32 = 0;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        // `start <= pos <= len` by construction: both only advance past
        // peeked bytes. mira-lint: allow(panic-reachability)
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        token.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            offset: start,
            message: "invalid number",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> String {
        Json::parse(src).expect("valid json").to_string()
    }

    #[test]
    fn scalars() {
        assert_eq!(roundtrip("null"), "null");
        assert_eq!(roundtrip("true"), "true");
        assert_eq!(roundtrip("false"), "false");
        assert_eq!(roundtrip("42"), "42");
        assert_eq!(roundtrip("-7"), "-7");
        assert_eq!(roundtrip("2.5"), "2.5");
        assert_eq!(roundtrip("1e3"), "1000");
        assert_eq!(roundtrip("\"hi\""), "\"hi\"");
    }

    #[test]
    fn containers_preserve_order() {
        assert_eq!(
            roundtrip("{\"b\": 1, \"a\": [2, 3], \"c\": {\"x\": null}}"),
            "{\"b\":1,\"a\":[2,3],\"c\":{\"x\":null}}"
        );
        assert_eq!(roundtrip("[]"), "[]");
        assert_eq!(roundtrip("{}"), "{}");
    }

    #[test]
    fn string_escapes() {
        assert_eq!(roundtrip("\"a\\nb\""), "\"a\\nb\"");
        assert_eq!(roundtrip("\"q\\\"q\""), "\"q\\\"q\"");
        assert_eq!(Json::parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
        // Surrogate pair for 😀 (U+1F600).
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("\u{1F600}".into())
        );
        assert!(Json::parse("\"\\ud83d\"").is_err(), "lone surrogate");
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "nul", "1 2", "{\"a\" 1}", "{'a': 1}"] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn non_finite_renders_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn accessors() {
        let doc = Json::parse("{\"cmd\":\"ingest\",\"steps\":12,\"wall\":true}").unwrap();
        assert_eq!(doc.get("cmd").and_then(Json::as_str), Some("ingest"));
        assert_eq!(doc.get("steps").and_then(Json::as_u64), Some(12));
        assert_eq!(doc.get("wall").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-3").unwrap().as_u64(), None);
    }

    #[test]
    fn raw_splices_verbatim() {
        let obj = Json::obj(vec![("metrics", Json::Raw("{\"k\":1}".to_string()))]);
        assert_eq!(obj.to_string(), "{\"metrics\":{\"k\":1}}");
    }

    #[test]
    fn deep_nesting_is_rejected() {
        let deep = "[".repeat(64) + &"]".repeat(64);
        assert!(Json::parse(&deep).is_err());
    }
}
