//! The shared server state and the query dispatcher.
//!
//! One [`ServeState`] is shared by every connection thread:
//!
//! - the [`IncrementalSweep`] sits behind an `RwLock` — `ingest` takes
//!   the write lock, every query takes a read lock, so readers always
//!   see a complete fold (no torn reads) while writers serialize;
//! - [`ServeStats`] sits behind a `Mutex` and is touched briefly per
//!   request;
//! - the trained CMF predictor is cached behind its own `Mutex`, keyed
//!   on `(events, epochs)`, so repeated `predict` queries pay training
//!   once.
//!
//! Queries answer from the incremental aggregate without recomputing:
//! a `figure` query on six ingested years costs one clone of the
//! bounded running state plus the figure's own arithmetic.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

use mira_core::{
    analysis, Archive, CmfPredictor, DatasetBuilder, Duration, Error, FeatureConfig,
    IncrementalSweep, ObsReport, PredictorConfig, Projection, Simulation, SweepSummary,
};
use mira_nn::BinaryMetrics;
use mira_timeseries::{LinearFit, MonthProfile, SimTime, WeekdayProfile, YearProfile};
use mira_units::convert;

use crate::json::Json;
use crate::protocol::{core_error_reply, ok_reply, parse_request, usage_error_reply, Request};
use crate::stats::ServeStats;

/// Figure identifiers the `figure` query accepts.
pub const FIGURE_IDS: &[&str] = &[
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig8",
    "fig10",
    "free_cooling",
];

/// A trained predictor kept for reuse across `predict` queries.
#[derive(Debug)]
struct PredictCache {
    events: usize,
    epochs: usize,
    trained_events: usize,
    builder: DatasetBuilder,
    predictor: CmfPredictor,
    test: BinaryMetrics,
}

/// Shared state behind a running `mira-ops serve`.
#[derive(Debug)]
pub struct ServeState {
    sim: Simulation,
    sweep: RwLock<IncrementalSweep>,
    stats: Mutex<ServeStats>,
    predictor: Mutex<Option<PredictCache>>,
    store: Mutex<Option<Box<dyn Archive + Send>>>,
    shutdown: AtomicBool,
}

impl ServeState {
    /// A server over `sim`, ingesting at `step`, starting empty at the
    /// simulation's configured span start.
    ///
    /// # Errors
    ///
    /// [`Error::Sweep`] when `step` is not positive.
    pub fn new(sim: Simulation, step: Duration) -> Result<Self, Error> {
        let sweep = sim.incremental_sweep(step)?;
        Ok(Self {
            sim,
            sweep: RwLock::new(sweep),
            stats: Mutex::new(ServeStats::new()),
            predictor: Mutex::new(None),
            store: Mutex::new(None),
            shutdown: AtomicBool::new(false),
        })
    }

    /// Attaches a telemetry archive; `replay` queries answer from it
    /// instead of re-simulating. Builder-style: called before the state
    /// is shared across connection threads.
    #[must_use]
    pub fn with_store(mut self, store: Box<dyn Archive + Send>) -> Self {
        self.store = Mutex::new(Some(store));
        self
    }

    /// The simulation being served.
    #[must_use]
    pub fn simulation(&self) -> &Simulation {
        &self.sim
    }

    /// Whether a `shutdown` request has been accepted.
    ///
    /// Acquire pairs with the Release store in
    /// [`Self::request_shutdown`]: a thread that observes the flag also
    /// observes every write the requester made before raising it.
    #[must_use]
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Requests shutdown without a protocol message (e.g. on EOF).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// The aggregate over everything ingested so far — what the test
    /// harness compares against a cold batch sweep.
    ///
    /// # Errors
    ///
    /// [`Error::Sweep`] before the first ingest.
    pub fn snapshot_summary(&self) -> Result<SweepSummary, Error> {
        self.read_sweep().summary()
    }

    /// Grid instants ingested so far.
    ///
    /// Named apart from [`IncrementalSweep::steps_ingested`] on
    /// purpose: this accessor re-acquires the sweep lock, so calling it
    /// while already holding the guard would deadlock behind a queued
    /// writer (the `lock-order` lint resolves method calls by name and
    /// keeps the two distinguishable this way).
    #[must_use]
    pub fn ingested_steps(&self) -> u64 {
        self.read_sweep().steps_ingested()
    }

    /// Requests handled so far (invalid ones included).
    #[must_use]
    pub fn queries_served(&self) -> u64 {
        self.lock_stats().queries_served()
    }

    fn read_sweep(&self) -> RwLockReadGuard<'_, IncrementalSweep> {
        match self.sweep.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn write_sweep(&self) -> RwLockWriteGuard<'_, IncrementalSweep> {
        match self.sweep.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn lock_stats(&self) -> MutexGuard<'_, ServeStats> {
        match self.stats.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The replay store. Scans mutate the archive handle (they commit
    /// buffered appends and seek), hence a mutex rather than an
    /// `RwLock`; replay traffic serializes, which matches the
    /// single-file-handle backend underneath.
    fn lock_store(&self) -> MutexGuard<'_, Option<Box<dyn Archive + Send>>> {
        match self.store.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Unlike [`Self::lock_stats`] — whose monotonic counters are
    /// valid after any partial update — a panic mid-(re)train can leave
    /// a half-built cache behind, so recovery here discards it and the
    /// next `predict` retrains from scratch.
    fn lock_predictor(&self) -> MutexGuard<'_, Option<PredictCache>> {
        match self.predictor.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                // Discarding the suspect cache makes the state valid
                // again, so the poison flag is cleared too — otherwise
                // every later acquisition would re-discard a freshly
                // trained cache.
                self.predictor.clear_poison();
                let mut guard = poisoned.into_inner();
                *guard = None;
                guard
            }
        }
    }

    /// Handles one request line and returns one reply line (without the
    /// trailing newline). Safe to call from any number of threads.
    pub fn handle(&self, line: &str) -> String {
        let started = Instant::now();
        let reply = match parse_request(line) {
            Ok((request, id)) => {
                // Counted before dispatch: a metrics reply's snapshot
                // includes the very query that produced it, keeping the
                // reply a deterministic function of the request log.
                self.lock_stats().note_request(request.metrics_key());
                self.dispatch(&request, &id)
            }
            Err(e) => {
                self.lock_stats().note_invalid();
                usage_error_reply(&e.id, &e.message)
            }
        };
        let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.lock_stats().note_query_wall(nanos);
        reply
    }

    fn dispatch(&self, request: &Request, id: &Json) -> String {
        match request {
            Request::Status => self.status(id),
            Request::Ingest { steps } => self.ingest(id, *steps),
            Request::Metrics { wall } => self.metrics(id, *wall),
            Request::Figure { figure } => self.figure(id, figure),
            Request::Report => self.report(id),
            Request::Predict {
                lead_hours,
                events,
                epochs,
            } => self.predict(id, *lead_hours, *events, *epochs),
            Request::Replay { from, to, limit } => self.replay(id, *from, *to, *limit),
            Request::Shutdown => {
                self.request_shutdown();
                ok_reply(id, vec![("shutting_down", Json::Bool(true))])
            }
        }
    }

    fn status(&self, id: &Json) -> String {
        let (steps, from, next, step) = {
            let inc = self.read_sweep();
            let (from, next) = inc.span();
            (inc.steps_ingested(), from, next, inc.step())
        };
        let queries = self.lock_stats().queries_served();
        ok_reply(
            id,
            vec![
                ("steps_ingested", Json::from(steps)),
                ("from", Json::from(from.to_string())),
                ("next_time", Json::from(next.to_string())),
                ("step_seconds", Json::from(step.as_seconds())),
                ("queries_served", Json::from(queries)),
            ],
        )
    }

    fn ingest(&self, id: &Json, steps: usize) -> String {
        let started = Instant::now();
        let (result, total, next) = {
            let mut inc = self.write_sweep();
            let result = inc.ingest(self.sim.telemetry(), steps);
            (result, inc.steps_ingested(), inc.next_time())
        };
        let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if let Err(e) = result {
            return core_error_reply(id, &e);
        }
        {
            let mut stats = self.lock_stats();
            stats.note_ingested(convert::u64_from_usize(steps));
            stats.note_ingest_wall(nanos);
        }
        ok_reply(
            id,
            vec![
                ("ingested", Json::from(convert::u64_from_usize(steps))),
                ("steps_ingested", Json::from(total)),
                ("next_time", Json::from(next.to_string())),
            ],
        )
    }

    fn metrics(&self, id: &Json, wall: bool) -> String {
        let mut report = {
            let inc = self.read_sweep();
            if inc.steps_ingested() == 0 {
                // Nothing swept yet: serve counters only.
                ObsReport::new()
            } else {
                match inc.obs_report() {
                    Ok(report) => report,
                    Err(e) => return core_error_reply(id, &e),
                }
            }
        };
        // Copy the wall numbers out under the guard; the JSON is built
        // after release so no other request waits on rendering.
        let wall_numbers = {
            let stats = self.lock_stats();
            report.metrics.merge(stats.deterministic());
            wall.then(|| stats.wall_snapshot())
        };
        // Raw splice keeps the embedded document byte-identical to
        // `ObsReport::deterministic_json` — no parse/re-render drift.
        let mut fields = vec![("metrics", Json::Raw(report.deterministic_json()))];
        if let Some(snapshot) = wall_numbers {
            fields.push(("wall", snapshot.to_json()));
        }
        ok_reply(id, fields)
    }

    fn figure(&self, id: &Json, figure: &str) -> String {
        let data = if figure == "fig10" {
            // Fig. 10 reads the RAS log, not the sweep: available from
            // the first request on.
            fig10_json(&analysis::fig10_cmf_timeline(&self.sim))
        } else {
            if !FIGURE_IDS.contains(&figure) {
                return usage_error_reply(
                    id,
                    &format!("unknown figure {figure:?}; expected one of {FIGURE_IDS:?}"),
                );
            }
            let summary = match self.snapshot_summary() {
                Ok(summary) => summary,
                Err(e) => return core_error_reply(id, &e),
            };
            match figure {
                "fig2" => fig2_json(&analysis::fig2_yearly_trends(&summary)),
                "fig3" => fig3_json(&analysis::fig3_coolant_trends(&summary)),
                "fig4" => fig4_json(&analysis::fig4_monthly_profile(&summary)),
                "fig5" => fig5_json(&analysis::fig5_weekday_profile(&summary)),
                "fig6" => fig6_json(&analysis::fig6_rack_power_util(&summary)),
                "fig8" => fig8_json(&analysis::fig8_ambient_trends(&summary)),
                "free_cooling" => free_cooling_json(&analysis::free_cooling_report(&summary)),
                other => {
                    return usage_error_reply(
                        id,
                        &format!("unknown figure {other:?}; expected one of {FIGURE_IDS:?}"),
                    )
                }
            }
        };
        ok_reply(id, vec![("figure", Json::from(figure)), ("data", data)])
    }

    fn report(&self, id: &Json) -> String {
        let summary = match self.snapshot_summary() {
            Ok(summary) => summary,
            Err(e) => return core_error_reply(id, &e),
        };
        let fig2 = analysis::fig2_yearly_trends(&summary);
        let fig3 = analysis::fig3_coolant_trends(&summary);
        let fig6 = analysis::fig6_rack_power_util(&summary);
        let fig10 = analysis::fig10_cmf_timeline(&self.sim);
        let year_mean = |rows: &[YearProfile], last: bool| -> Json {
            let row = if last { rows.last() } else { rows.first() };
            row.map_or(Json::Null, |r| Json::Num(r.mean))
        };
        ok_reply(
            id,
            vec![
                ("span_from", Json::from(summary.span.0.to_string())),
                ("span_to", Json::from(summary.span.1.to_string())),
                ("power_mw_first_year", year_mean(&fig2.power_by_year, false)),
                ("power_mw_last_year", year_mean(&fig2.power_by_year, true)),
                (
                    "utilization_pct_first_year",
                    year_mean(&fig2.utilization_by_year, false),
                ),
                (
                    "utilization_pct_last_year",
                    year_mean(&fig2.utilization_by_year, true),
                ),
                ("flow_before_theta_gpm", Json::Num(fig3.flow_before_theta)),
                ("flow_after_theta_gpm", Json::Num(fig3.flow_after_theta)),
                ("flow_stddev_gpm", Json::Num(fig3.flow_stddev)),
                ("inlet_stddev_f", Json::Num(fig3.inlet_stddev)),
                ("outlet_stddev_f", Json::Num(fig3.outlet_stddev)),
                ("rack_power_spread", Json::Num(fig6.power_spread)),
                (
                    "rack_power_utilization_correlation",
                    Json::Num(fig6.power_utilization_correlation),
                ),
                ("power_leader", Json::from(fig6.power_leader.to_string())),
                ("cmf_total", Json::from(u64::from(fig10.total))),
                ("cmf_share_2016", Json::Num(fig10.share_2016)),
                ("cmf_longest_gap_days", Json::Num(fig10.longest_gap_days)),
            ],
        )
    }

    fn predict(&self, id: &Json, lead_hours: i64, events: usize, epochs: usize) -> String {
        // Training takes seconds; it must not run under the cache
        // mutex, or every concurrent predict (and the poison-recovery
        // path) queues behind it. Check-release-train-relock: training
        // is a pure function of (sim, events, epochs), so two racing
        // trainers produce identical caches and last-write-wins is
        // harmless.
        let hit = matches!(
            self.lock_predictor().as_ref(),
            Some(c) if c.events == events && c.epochs == epochs
        );
        if !hit {
            let mut cmfs = self.sim.cmf_ground_truth();
            cmfs.truncate(events.max(10));
            let trained_events = cmfs.len();
            let builder =
                DatasetBuilder::new(FeatureConfig::mira(), cmfs, self.sim.config().span());
            let config = PredictorConfig {
                epochs,
                ..PredictorConfig::default()
            };
            let (predictor, test) = CmfPredictor::train(self.sim.telemetry(), &builder, &config);
            *self.lock_predictor() = Some(PredictCache {
                events,
                epochs,
                trained_events,
                builder,
                predictor,
                test,
            });
        }
        let cache = self.lock_predictor();
        let Some(c) = cache.as_ref() else {
            return usage_error_reply(id, "predictor cache unavailable");
        };
        let at_lead = c.predictor.evaluate_at(
            self.sim.telemetry(),
            &c.builder,
            Duration::from_hours(lead_hours),
        );
        ok_reply(
            id,
            vec![
                (
                    "events",
                    Json::from(convert::u64_from_usize(c.trained_events)),
                ),
                ("epochs", Json::from(convert::u64_from_usize(c.epochs))),
                ("cached", Json::Bool(hit)),
                ("lead_hours", Json::from(lead_hours)),
                ("test", binary_metrics_json(&c.test)),
                ("at_lead", binary_metrics_json(&at_lead)),
            ],
        )
    }

    fn replay(&self, id: &Json, from: Option<u64>, to: Option<u64>, limit: usize) -> String {
        let epoch = |bound: Option<u64>, default: i64| -> SimTime {
            SimTime::from_epoch_seconds(
                bound.map_or(default, |v| i64::try_from(v).unwrap_or(i64::MAX)),
            )
        };
        let from_t = epoch(from, i64::MIN);
        let to_t = epoch(to, i64::MAX);
        if from_t >= to_t {
            return usage_error_reply(id, "\"from\" must precede \"to\"");
        }
        // Rows are rendered under the store lock (the scan owns the
        // file handle), but the stats lock is only taken after it is
        // released — no request ever holds both.
        let (rows, scan) = {
            let mut guard = self.lock_store();
            let Some(store) = guard.as_mut() else {
                return usage_error_reply(
                    id,
                    "no archive attached; start serve with --store <archive.mstore>",
                );
            };
            let mut rows: Vec<Json> = Vec::new();
            let result = store.scan_span(from_t, to_t, Projection::all(), &mut |rec| {
                if rows.len() < limit {
                    rows.push(Json::Raw(rec.ndjson_row()));
                }
            });
            match result {
                Ok(scan) => (rows, scan),
                Err(e) => return core_error_reply(id, &Error::from(e)),
            }
        };
        self.lock_stats().note_scan(&scan);
        ok_reply(
            id,
            vec![
                ("returned", Json::from(convert::u64_from_usize(rows.len()))),
                ("rows_scanned", Json::from(scan.rows_scanned)),
                ("groups_scanned", Json::from(scan.groups_scanned)),
                ("groups_total", Json::from(scan.groups_total)),
                ("blocks_decoded", Json::from(scan.blocks_decoded)),
                ("rows", Json::Arr(rows)),
            ],
        )
    }
}

fn binary_metrics_json(m: &BinaryMetrics) -> Json {
    Json::obj(vec![
        ("tp", Json::from(m.tp)),
        ("tn", Json::from(m.tn)),
        ("fp", Json::from(m.fp)),
        ("fn", Json::from(m.fn_)),
        ("accuracy", Json::Num(m.accuracy())),
        ("precision", Json::Num(m.precision())),
        ("recall", Json::Num(m.recall())),
        ("f1", Json::Num(m.f1())),
    ])
}

fn fit_json(fit: Option<&LinearFit>) -> Json {
    fit.map_or(Json::Null, |f| {
        Json::obj(vec![
            ("slope", Json::Num(f.slope)),
            ("intercept", Json::Num(f.intercept)),
            ("r_squared", Json::Num(f.r_squared)),
        ])
    })
}

fn year_rows(rows: &[YearProfile]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj(vec![
                    ("year", Json::from(i64::from(r.year))),
                    ("mean", Json::Num(r.mean)),
                    ("median", Json::Num(r.median)),
                    ("min", Json::Num(r.min)),
                    ("max", Json::Num(r.max)),
                    ("count", Json::from(r.count)),
                ])
            })
            .collect(),
    )
}

fn month_rows(rows: &[MonthProfile]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj(vec![
                    ("month", Json::from(u64::from(r.month.number()))),
                    ("median", Json::Num(r.median)),
                    ("mean", Json::Num(r.mean)),
                    ("count", Json::from(r.count)),
                ])
            })
            .collect(),
    )
}

fn weekday_rows(rows: &[WeekdayProfile]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj(vec![
                    ("weekday", Json::from(r.weekday.to_string())),
                    ("median", Json::Num(r.median)),
                    ("mean", Json::Num(r.mean)),
                    ("count", Json::from(r.count)),
                ])
            })
            .collect(),
    )
}

fn f64_arr(values: &[f64]) -> Json {
    Json::Arr(values.iter().map(|v| Json::Num(*v)).collect())
}

fn opt_f64_arr(values: Option<&Vec<f64>>) -> Json {
    values.map_or(Json::Null, |v| f64_arr(v))
}

fn fig2_json(fig: &analysis::Fig2) -> Json {
    Json::obj(vec![
        ("power_by_year", year_rows(&fig.power_by_year)),
        ("utilization_by_year", year_rows(&fig.utilization_by_year)),
        ("power_fit", fit_json(fig.power_fit.as_ref())),
        ("utilization_fit", fit_json(fig.utilization_fit.as_ref())),
    ])
}

fn fig3_json(fig: &analysis::Fig3) -> Json {
    Json::obj(vec![
        ("flow_by_year", year_rows(&fig.flow_by_year)),
        ("inlet_by_year", year_rows(&fig.inlet_by_year)),
        ("outlet_by_year", year_rows(&fig.outlet_by_year)),
        ("flow_stddev", Json::Num(fig.flow_stddev)),
        ("inlet_stddev", Json::Num(fig.inlet_stddev)),
        ("outlet_stddev", Json::Num(fig.outlet_stddev)),
        ("flow_before_theta", Json::Num(fig.flow_before_theta)),
        ("flow_after_theta", Json::Num(fig.flow_after_theta)),
    ])
}

fn fig4_json(fig: &analysis::Fig4) -> Json {
    Json::obj(vec![
        ("power", month_rows(&fig.power)),
        ("utilization", month_rows(&fig.utilization)),
        ("flow", month_rows(&fig.flow)),
        ("inlet", month_rows(&fig.inlet)),
        ("outlet", month_rows(&fig.outlet)),
        (
            "flow_change_from_january",
            opt_f64_arr(fig.flow_change_from_january.as_ref()),
        ),
        (
            "inlet_change_from_january",
            opt_f64_arr(fig.inlet_change_from_january.as_ref()),
        ),
        (
            "outlet_change_from_january",
            opt_f64_arr(fig.outlet_change_from_january.as_ref()),
        ),
    ])
}

fn fig5_json(fig: &analysis::Fig5) -> Json {
    Json::obj(vec![
        ("power", weekday_rows(&fig.power)),
        ("utilization", weekday_rows(&fig.utilization)),
        ("flow", weekday_rows(&fig.flow)),
        ("inlet", weekday_rows(&fig.inlet)),
        ("outlet", weekday_rows(&fig.outlet)),
        ("power_uplift", Json::Num(fig.power_uplift)),
        ("utilization_uplift", Json::Num(fig.utilization_uplift)),
        ("outlet_uplift", Json::Num(fig.outlet_uplift)),
        ("flow_uplift", Json::Num(fig.flow_uplift)),
        ("inlet_uplift", Json::Num(fig.inlet_uplift)),
    ])
}

fn fig6_json(fig: &analysis::Fig6) -> Json {
    Json::obj(vec![
        ("power_kw", f64_arr(&fig.power_kw)),
        ("utilization", f64_arr(&fig.utilization)),
        ("power_spread", Json::Num(fig.power_spread)),
        ("power_leader", Json::from(fig.power_leader.to_string())),
        (
            "utilization_leader",
            Json::from(fig.utilization_leader.to_string()),
        ),
        (
            "utilization_floor",
            Json::from(fig.utilization_floor.to_string()),
        ),
        (
            "power_utilization_correlation",
            Json::Num(fig.power_utilization_correlation),
        ),
        ("row_utilization", f64_arr(&fig.row_utilization)),
    ])
}

fn fig8_json(fig: &analysis::Fig8) -> Json {
    Json::obj(vec![
        ("temperature_stddev", Json::Num(fig.temperature_stddev)),
        (
            "temperature_range",
            Json::Arr(vec![
                Json::Num(fig.temperature_range.0),
                Json::Num(fig.temperature_range.1),
            ]),
        ),
        ("humidity_stddev", Json::Num(fig.humidity_stddev)),
        (
            "humidity_range",
            Json::Arr(vec![
                Json::Num(fig.humidity_range.0),
                Json::Num(fig.humidity_range.1),
            ]),
        ),
        ("humidity_monthly", month_rows(&fig.humidity_monthly)),
        ("temperature_monthly", month_rows(&fig.temperature_monthly)),
    ])
}

fn fig10_json(fig: &analysis::Fig10) -> Json {
    Json::obj(vec![
        (
            "by_year",
            Json::Arr(
                fig.by_year
                    .iter()
                    .map(|(year, count)| {
                        Json::obj(vec![
                            ("year", Json::from(i64::from(*year))),
                            ("count", Json::from(u64::from(*count))),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("total", Json::from(u64::from(fig.total))),
        ("share_2016", Json::Num(fig.share_2016)),
        ("longest_gap_days", Json::Num(fig.longest_gap_days)),
    ])
}

fn free_cooling_json(report: &analysis::FreeCoolingReport) -> Json {
    let by_year = |rows: &[(i32, mira_units::KilowattHours)]| {
        Json::Arr(
            rows.iter()
                .map(|(year, kwh)| {
                    Json::obj(vec![
                        ("year", Json::from(i64::from(*year))),
                        ("kwh", Json::Num(kwh.value())),
                    ])
                })
                .collect(),
        )
    };
    Json::obj(vec![
        ("saved_by_year", by_year(&report.saved_by_year)),
        ("chiller_by_year", by_year(&report.chiller_by_year)),
        ("season_saved_kwh", Json::Num(report.season_saved.value())),
        ("total_saved_kwh", Json::Num(report.total_saved.value())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mira_core::SimConfig;

    fn state() -> ServeState {
        let sim = Simulation::new(SimConfig::with_seed(7));
        ServeState::new(sim, Duration::from_hours(6)).expect("positive step")
    }

    #[test]
    fn status_before_ingest_is_empty() {
        let s = state();
        let reply = s.handle("{\"cmd\":\"status\",\"id\":1}");
        assert!(reply.starts_with("{\"ok\":true,\"id\":1,"), "{reply}");
        assert!(reply.contains("\"steps_ingested\":0"), "{reply}");
        // The status query itself is already counted.
        assert!(reply.contains("\"queries_served\":1"), "{reply}");
    }

    #[test]
    fn queries_before_ingest_report_empty_span() {
        let s = state();
        for line in [
            "{\"cmd\":\"figure\",\"figure\":\"fig2\",\"id\":1}",
            "{\"cmd\":\"report\",\"id\":2}",
        ] {
            let reply = s.handle(line);
            assert!(reply.contains("\"ok\":false"), "{reply}");
            assert!(reply.contains("\"kind\":\"sweep\""), "{reply}");
            assert!(reply.contains("\"exit_code\":3"), "{reply}");
        }
        // fig10 reads the RAS log and works immediately.
        let reply = s.handle("{\"cmd\":\"figure\",\"figure\":\"fig10\",\"id\":3}");
        assert!(reply.contains("\"total\":361"), "{reply}");
    }

    #[test]
    fn ingest_then_figures_match_batch() {
        let s = state();
        let reply = s.handle("{\"cmd\":\"ingest\",\"steps\":124,\"id\":1}");
        assert!(reply.contains("\"ingested\":124"), "{reply}");
        assert!(reply.contains("\"steps_ingested\":124"), "{reply}");

        let summary = s.snapshot_summary().expect("ingested");
        let span = summary.span;
        let batch = s
            .simulation()
            .summarize(span, Duration::from_hours(6))
            .expect("non-empty");
        assert_eq!(summary, batch);

        let reply = s.handle("{\"cmd\":\"figure\",\"figure\":\"fig2\",\"id\":2}");
        assert!(reply.contains("\"figure\":\"fig2\""), "{reply}");
        assert!(reply.contains("\"power_by_year\""), "{reply}");
        let reply = s.handle("{\"cmd\":\"report\",\"id\":3}");
        assert!(reply.contains("\"cmf_total\":361"), "{reply}");
        let reply = s.handle("{\"cmd\":\"figure\",\"figure\":\"free_cooling\",\"id\":4}");
        assert!(reply.contains("\"total_saved_kwh\""), "{reply}");
    }

    #[test]
    fn unknown_figure_is_a_usage_error() {
        let s = state();
        s.handle("{\"cmd\":\"ingest\",\"steps\":4}");
        let reply = s.handle("{\"cmd\":\"figure\",\"figure\":\"fig99\",\"id\":9}");
        assert!(reply.contains("\"kind\":\"usage\""), "{reply}");
        assert!(reply.contains("fig99"), "{reply}");
    }

    #[test]
    fn metrics_reply_is_deterministic_and_counts_itself() {
        // Two fresh servers fed the same request log produce the same
        // metrics reply bytes (the CI gate replays this across
        // MIRA_SWEEP_THREADS settings).
        let script = [
            "{\"cmd\":\"ingest\",\"steps\":124,\"id\":1}",
            "{\"cmd\":\"status\",\"id\":2}",
            "{\"cmd\":\"metrics\",\"id\":3}",
        ];
        let run = |s: &ServeState| {
            let mut last = String::new();
            for line in script {
                last = s.handle(line);
            }
            last
        };
        let a = run(&state());
        let b = run(&state());
        assert_eq!(a, b);
        assert!(a.contains("\"serve.queries_served\":3"), "{a}");
        assert!(a.contains("\"serve.queries.metrics\":1"), "{a}");
        assert!(a.contains("\"serve.steps_ingested\":124"), "{a}");
        // Sweep-side metrics ride along.
        assert!(a.contains("\"sim.steps\":124"), "{a}");
        assert!(!a.contains("\"wall\""), "{a}");

        // The wall section only appears on request.
        let s = state();
        for line in &script[..2] {
            s.handle(line);
        }
        let walled = s.handle("{\"cmd\":\"metrics\",\"wall\":true,\"id\":3}");
        assert!(walled.contains("\"wall\":{\"query_p50_us\":"), "{walled}");
    }

    #[test]
    fn misaligned_and_invalid_requests_do_not_poison_state() {
        let s = state();
        let reply = s.handle("garbage");
        assert!(reply.contains("\"kind\":\"usage\""), "{reply}");
        let reply = s.handle("{\"cmd\":\"ingest\",\"steps\":4,\"id\":1}");
        assert!(reply.contains("\"ok\":true"), "{reply}");
        assert_eq!(s.ingested_steps(), 4);
    }

    #[test]
    fn shutdown_flips_the_flag() {
        let s = state();
        assert!(!s.is_shutdown());
        let reply = s.handle("{\"cmd\":\"shutdown\",\"id\":1}");
        assert!(reply.contains("\"shutting_down\":true"), "{reply}");
        assert!(s.is_shutdown());
    }

    #[test]
    fn panicked_writer_does_not_wedge_replies() {
        let s = state();
        s.handle("{\"cmd\":\"ingest\",\"steps\":8,\"id\":1}");
        // Train once so the predictor mutex holds a cache to discard.
        let predict = "{\"cmd\":\"predict\",\"events\":12,\"epochs\":1,\"lead_hours\":1,\"id\":2}";
        assert!(s.handle(predict).contains("\"cached\":false"));

        // Poison all three locks: a writer panics while holding each.
        std::thread::scope(|scope| {
            let h = scope.spawn(|| {
                let _sweep = s.write_sweep();
                let _stats = s.lock_stats();
                let _cache = s.lock_predictor();
                panic!("writer dies mid-update");
            });
            assert!(h.join().is_err(), "the writer must have panicked");
        });

        // Counters survive poisoning (monotonic, valid at any point)...
        let reply = s.handle("{\"cmd\":\"metrics\",\"id\":3}");
        assert!(reply.contains("\"ok\":true"), "{reply}");
        assert!(reply.contains("\"serve.steps_ingested\":8"), "{reply}");
        let reply = s.handle("{\"cmd\":\"status\",\"id\":4}");
        assert!(reply.contains("\"steps_ingested\":8"), "{reply}");
        // ...but the predictor cache is discarded: a half-built cache
        // cannot be told from a complete one, so predict retrains.
        let reply = s.handle(predict);
        assert!(reply.contains("\"cached\":false"), "{reply}");
        assert!(reply.contains("\"accuracy\":"), "{reply}");
        // And ingest keeps appending where it left off.
        let reply = s.handle("{\"cmd\":\"ingest\",\"steps\":4,\"id\":5}");
        assert!(reply.contains("\"steps_ingested\":12"), "{reply}");
    }

    #[test]
    fn replay_without_store_is_a_usage_error() {
        let s = state();
        let reply = s.handle("{\"cmd\":\"replay\",\"id\":1}");
        assert!(reply.contains("\"kind\":\"usage\""), "{reply}");
        assert!(reply.contains("no archive attached"), "{reply}");
        let reply = s.handle("{\"cmd\":\"replay\",\"from\":10,\"to\":10,\"id\":2}");
        assert!(reply.contains("\"from\\\" must precede"), "{reply}");
    }

    /// Builds a small columnar archive: 8 rows per group, 4 groups,
    /// one row per second starting at epoch 1000.
    fn packed_store(path: &std::path::Path) -> Box<dyn Archive + Send> {
        use mira_core::{RackId, TelemetryRecord};
        let mut ar = mira_store::ColumnarArchive::create(path)
            .expect("create store")
            .with_group_rows(8);
        let rows: Vec<TelemetryRecord> = (0..32i64)
            .map(|i| TelemetryRecord {
                time: SimTime::from_epoch_seconds(1000 + i),
                rack: RackId::new(0, 0),
                milli: [i * 10, 45_000, 190_000, 62_000, 71_000, i * 7],
            })
            .collect();
        ar.append_telemetry(&rows).expect("append");
        ar.flush().expect("flush");
        Box::new(ar)
    }

    #[test]
    fn replay_streams_rows_and_prunes_groups() {
        let dir = std::env::temp_dir().join(format!("mira-serve-replay-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let path = dir.join("replay.mstore");

        let s = state().with_store(packed_store(&path));
        // [1008, 1016) is exactly the second of four 8-row groups.
        let reply = s.handle("{\"cmd\":\"replay\",\"from\":1008,\"to\":1016,\"id\":1}");
        assert!(reply.starts_with("{\"ok\":true,\"id\":1,"), "{reply}");
        assert!(reply.contains("\"returned\":8"), "{reply}");
        assert!(reply.contains("\"rows_scanned\":8"), "{reply}");
        assert!(reply.contains("\"groups_scanned\":1"), "{reply}");
        assert!(reply.contains("\"groups_total\":4"), "{reply}");
        // Rows are the store's NDJSON rendering, spliced in raw.
        assert!(
            reply.contains("\"rack\":\"(0, 0)\"") || reply.contains("\"rack\":"),
            "{reply}"
        );

        // The limit caps the reply without hiding the true scan size.
        let reply = s.handle("{\"cmd\":\"replay\",\"limit\":3,\"id\":2}");
        assert!(reply.contains("\"returned\":3"), "{reply}");
        assert!(reply.contains("\"rows_scanned\":32"), "{reply}");
        assert!(reply.contains("\"groups_scanned\":4"), "{reply}");

        // Scan counters surface in the deterministic metrics snapshot.
        let reply = s.handle("{\"cmd\":\"ingest\",\"steps\":4,\"id\":3}");
        assert!(reply.contains("\"ok\":true"), "{reply}");
        let reply = s.handle("{\"cmd\":\"metrics\",\"id\":4}");
        assert!(reply.contains("\"serve.queries.replay\":2"), "{reply}");
        assert!(reply.contains("\"store.rows_scanned\":40"), "{reply}");
        assert!(reply.contains("\"store.groups_scanned\":5"), "{reply}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_replies_are_deterministic() {
        let dir =
            std::env::temp_dir().join(format!("mira-serve-replay-det-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let script = "{\"cmd\":\"replay\",\"from\":1004,\"to\":1020,\"limit\":50,\"id\":9}";
        let run = |name: &str| {
            let path = dir.join(name);
            let s = state().with_store(packed_store(&path));
            s.handle(script)
        };
        let a = run("a.mstore");
        let b = run("b.mstore");
        assert_eq!(a, b);
        assert!(a.contains("\"returned\":16"), "{a}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn predict_trains_once_and_reuses_the_cache() {
        let s = state();
        let line = "{\"cmd\":\"predict\",\"events\":12,\"epochs\":1,\"lead_hours\":1,\"id\":1}";
        let first = s.handle(line);
        assert!(first.contains("\"cached\":false"), "{first}");
        assert!(first.contains("\"accuracy\":"), "{first}");
        let second = s.handle(line);
        assert!(second.contains("\"cached\":true"), "{second}");
    }
}
