//! The request/reply protocol: newline-delimited JSON.
//!
//! Each request is one JSON object per line, with a `"cmd"` field and
//! optional parameters:
//!
//! ```json
//! {"cmd": "ingest", "steps": 288, "id": 1}
//! {"cmd": "figure", "figure": "fig2", "id": 2}
//! {"cmd": "metrics", "wall": true}
//! ```
//!
//! Every reply is one JSON object per line echoing the request's `"id"`
//! (or `null` when absent):
//!
//! ```json
//! {"ok":true,"id":1,"ingested":288,...}
//! {"ok":false,"id":2,"error":{"kind":"usage","exit_code":2,"message":"..."}}
//! ```
//!
//! Error replies reuse the `mira-ops` exit-code taxonomy via
//! [`mira_core::Error::exit_code`] / [`mira_core::Error::kind`] — a
//! scripted client branches on the same codes a batch invocation would
//! exit with; protocol-level problems (bad JSON, unknown command,
//! missing field) use the CLI's usage code `2` under kind `"usage"`.

use crate::json::Json;

/// A decoded protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `{"cmd":"status"}` — ingest cursor and span.
    Status,
    /// `{"cmd":"metrics"[,"wall":true]}` — the observability report;
    /// `wall` adds the nondeterministic latency section.
    Metrics {
        /// Include wall-clock latency (excluded from determinism gates).
        wall: bool,
    },
    /// `{"cmd":"figure","figure":"fig2"}` — one paper figure over the
    /// ingested span.
    Figure {
        /// Figure identifier (`fig2`, `fig3`, `fig4`, `fig5`, `fig6`,
        /// `fig8`, `fig10`, `free_cooling`).
        figure: String,
    },
    /// `{"cmd":"report"}` — the headline numbers of the figure report.
    Report,
    /// `{"cmd":"predict"[,"lead_hours":3,"events":150,"epochs":30]}` —
    /// train (or reuse) the CMF predictor, evaluate at a lead time.
    Predict {
        /// Lead time to evaluate, in hours.
        lead_hours: i64,
        /// Failures to train on.
        events: usize,
        /// Training epochs.
        epochs: usize,
    },
    /// `{"cmd":"ingest","steps":N}` — advance the incremental sweep by
    /// `N` grid instants.
    Ingest {
        /// Grid instants to append.
        steps: usize,
    },
    /// `{"cmd":"replay"[,"from":EPOCH,"to":EPOCH,"limit":N]}` — stream
    /// archived telemetry rows from the attached columnar store instead
    /// of re-simulating. `from`/`to` are epoch seconds bounding the
    /// half-open span `[from, to)`; omitted bounds mean the full
    /// archive. At most `limit` rows (default 100) are returned; scan
    /// statistics always report the true span.
    Replay {
        /// Inclusive lower bound, epoch seconds (`None` = archive start).
        from: Option<u64>,
        /// Exclusive upper bound, epoch seconds (`None` = archive end).
        to: Option<u64>,
        /// Maximum rows in the reply.
        limit: usize,
    },
    /// `{"cmd":"shutdown"}` — stop accepting work after replying.
    Shutdown,
}

impl Request {
    /// The stable per-command metrics key, `"serve.queries.<cmd>"`.
    #[must_use]
    pub fn metrics_key(&self) -> &'static str {
        match self {
            Request::Status => "serve.queries.status",
            Request::Metrics { .. } => "serve.queries.metrics",
            Request::Figure { .. } => "serve.queries.figure",
            Request::Report => "serve.queries.report",
            Request::Predict { .. } => "serve.queries.predict",
            Request::Ingest { .. } => "serve.queries.ingest",
            Request::Replay { .. } => "serve.queries.replay",
            Request::Shutdown => "serve.queries.shutdown",
        }
    }
}

/// A request that could not be decoded; carries the echoed id.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestError {
    /// The request's `"id"` (or `Json::Null`), echoed in the reply.
    pub id: Json,
    /// Human-readable description of the problem.
    pub message: String,
}

fn bad(id: &Json, message: impl Into<String>) -> RequestError {
    RequestError {
        id: id.clone(),
        message: message.into(),
    }
}

/// Decodes one request line into a [`Request`] and its echo id.
///
/// # Errors
///
/// [`RequestError`] (usage, exit code 2) on malformed JSON, a missing
/// or unknown `"cmd"`, or malformed parameters.
pub fn parse_request(line: &str) -> Result<(Request, Json), RequestError> {
    let doc = match Json::parse(line) {
        Ok(doc) => doc,
        Err(e) => {
            return Err(bad(&Json::Null, format!("{e}")));
        }
    };
    let id = doc.get("id").cloned().unwrap_or(Json::Null);
    let Some(cmd) = doc.get("cmd").and_then(Json::as_str) else {
        return Err(bad(&id, "request must carry a string \"cmd\" field"));
    };
    let request = match cmd {
        "status" => Request::Status,
        "report" => Request::Report,
        "shutdown" => Request::Shutdown,
        "metrics" => Request::Metrics {
            wall: doc.get("wall").and_then(Json::as_bool).unwrap_or(false),
        },
        "figure" => {
            let Some(figure) = doc.get("figure").and_then(Json::as_str) else {
                return Err(bad(&id, "figure requires a string \"figure\" field"));
            };
            Request::Figure {
                figure: figure.to_string(),
            }
        }
        "predict" => Request::Predict {
            lead_hours: field_u64(&doc, &id, "lead_hours", 3)?
                .min(24 * 365)
                .cast_signed(),
            events: usize_field(&doc, &id, "events", 150)?,
            epochs: usize_field(&doc, &id, "epochs", 30)?,
        },
        "ingest" => Request::Ingest {
            steps: usize_field_required(&doc, &id, "steps")?,
        },
        "replay" => Request::Replay {
            from: optional_u64(&doc, &id, "from")?,
            to: optional_u64(&doc, &id, "to")?,
            limit: usize_field(&doc, &id, "limit", 100)?,
        },
        other => {
            return Err(bad(
                &id,
                format!(
                    "unknown cmd {other:?}; expected status, metrics, figure, \
                     report, predict, ingest, replay, or shutdown"
                ),
            ));
        }
    };
    Ok((request, id))
}

fn optional_u64(doc: &Json, id: &Json, key: &str) -> Result<Option<u64>, RequestError> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| bad(id, format!("\"{key}\" must be a non-negative integer"))),
    }
}

fn field_u64(doc: &Json, id: &Json, key: &str, default: u64) -> Result<u64, RequestError> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| bad(id, format!("\"{key}\" must be a non-negative integer"))),
    }
}

fn usize_field(doc: &Json, id: &Json, key: &str, default: usize) -> Result<usize, RequestError> {
    field_u64(doc, id, key, mira_units::convert::u64_from_usize(default))
        .map(mira_units::convert::usize_from_u64)
}

fn usize_field_required(doc: &Json, id: &Json, key: &str) -> Result<usize, RequestError> {
    match doc.get(key) {
        None => Err(bad(id, format!("\"{key}\" is required"))),
        Some(v) => v
            .as_u64()
            .map(mira_units::convert::usize_from_u64)
            .ok_or_else(|| bad(id, format!("\"{key}\" must be a non-negative integer"))),
    }
}

/// A success reply: `{"ok":true,"id":<id>,<fields...>}`.
#[must_use]
pub fn ok_reply(id: &Json, fields: Vec<(&str, Json)>) -> String {
    let mut all = vec![
        ("ok".to_string(), Json::Bool(true)),
        ("id".to_string(), id.clone()),
    ];
    all.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
    Json::Obj(all).to_string()
}

fn error_reply(id: &Json, kind: &str, exit_code: u8, message: &str) -> String {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("id", id.clone()),
        (
            "error",
            Json::obj(vec![
                ("kind", Json::from(kind)),
                ("exit_code", Json::from(u64::from(exit_code))),
                ("message", Json::from(message)),
            ]),
        ),
    ])
    .to_string()
}

/// An error reply for a core failure, carrying the batch CLI's exit
/// code and kind label for that cause.
#[must_use]
pub fn core_error_reply(id: &Json, e: &mira_core::Error) -> String {
    error_reply(id, e.kind(), e.exit_code(), &e.to_string())
}

/// An error reply for a protocol/usage problem (exit code 2, like a bad
/// CLI flag).
#[must_use]
pub fn usage_error_reply(id: &Json, message: &str) -> String {
    error_reply(id, "usage", 2, message)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        let cases: Vec<(&str, Request)> = vec![
            ("{\"cmd\":\"status\"}", Request::Status),
            ("{\"cmd\":\"report\"}", Request::Report),
            ("{\"cmd\":\"shutdown\"}", Request::Shutdown),
            ("{\"cmd\":\"metrics\"}", Request::Metrics { wall: false }),
            (
                "{\"cmd\":\"metrics\",\"wall\":true}",
                Request::Metrics { wall: true },
            ),
            (
                "{\"cmd\":\"figure\",\"figure\":\"fig2\"}",
                Request::Figure {
                    figure: "fig2".to_string(),
                },
            ),
            (
                "{\"cmd\":\"predict\",\"lead_hours\":6,\"events\":20,\"epochs\":2}",
                Request::Predict {
                    lead_hours: 6,
                    events: 20,
                    epochs: 2,
                },
            ),
            (
                "{\"cmd\":\"ingest\",\"steps\":12}",
                Request::Ingest { steps: 12 },
            ),
            (
                "{\"cmd\":\"replay\"}",
                Request::Replay {
                    from: None,
                    to: None,
                    limit: 100,
                },
            ),
            (
                "{\"cmd\":\"replay\",\"from\":1425168000,\"to\":1425254400,\"limit\":5}",
                Request::Replay {
                    from: Some(1_425_168_000),
                    to: Some(1_425_254_400),
                    limit: 5,
                },
            ),
        ];
        for (line, expected) in cases {
            let (req, id) = parse_request(line).expect(line);
            assert_eq!(req, expected, "{line}");
            assert_eq!(id, Json::Null);
        }
    }

    #[test]
    fn predict_defaults_mirror_the_cli() {
        let (req, _) = parse_request("{\"cmd\":\"predict\"}").unwrap();
        assert_eq!(
            req,
            Request::Predict {
                lead_hours: 3,
                events: 150,
                epochs: 30
            }
        );
    }

    #[test]
    fn id_is_echoed_on_success_and_error() {
        let (_, id) = parse_request("{\"cmd\":\"status\",\"id\":7}").unwrap();
        assert_eq!(id, Json::Num(7.0));
        let e = parse_request("{\"cmd\":\"nope\",\"id\":\"q1\"}").unwrap_err();
        assert_eq!(e.id, Json::Str("q1".to_string()));
        assert!(e.message.contains("unknown cmd"));
    }

    #[test]
    fn malformed_requests_are_usage_errors() {
        for line in [
            "not json",
            "{\"cmd\":42}",
            "{}",
            "{\"cmd\":\"ingest\"}",
            "{\"cmd\":\"ingest\",\"steps\":-1}",
            "{\"cmd\":\"ingest\",\"steps\":2.5}",
            "{\"cmd\":\"figure\"}",
            "{\"cmd\":\"replay\",\"from\":-4}",
            "{\"cmd\":\"replay\",\"limit\":\"many\"}",
        ] {
            let e = parse_request(line).unwrap_err();
            let reply = usage_error_reply(&e.id, &e.message);
            assert!(reply.contains("\"exit_code\":2"), "{line} -> {reply}");
            assert!(reply.contains("\"kind\":\"usage\""), "{line} -> {reply}");
        }
    }

    #[test]
    fn core_errors_carry_the_cli_taxonomy() {
        let e = mira_core::Error::from(mira_core::SweepError::EmptySpan);
        let reply = core_error_reply(&Json::Num(3.0), &e);
        assert!(reply.starts_with("{\"ok\":false,\"id\":3,"));
        assert!(reply.contains("\"kind\":\"sweep\""));
        assert!(reply.contains("\"exit_code\":3"));
    }

    #[test]
    fn ok_reply_leads_with_ok_and_id() {
        let reply = ok_reply(&Json::Num(1.0), vec![("steps", Json::from(4u64))]);
        assert_eq!(reply, "{\"ok\":true,\"id\":1,\"steps\":4}");
    }
}
