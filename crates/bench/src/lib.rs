//! Shared setup for the benchmark harness.
//!
//! Every figure bench needs the same expensive artifacts: a built
//! [`Simulation`] and a telemetry [`SweepSummary`]. They are constructed
//! once per process via [`std::sync::OnceLock`] so Criterion's timing
//! loops measure the analyses, not world construction.

use std::sync::OnceLock;

use mira_core::{Duration, FullSpan, SimConfig, Simulation, SweepSummary};

/// The benchmark seed: fixed so printed figures are reproducible.
pub const BENCH_SEED: u64 = 2014;

/// The shared simulation.
pub fn simulation() -> &'static Simulation {
    static SIM: OnceLock<Simulation> = OnceLock::new();
    SIM.get_or_init(|| Simulation::new(SimConfig::with_seed(BENCH_SEED)))
}

/// A full six-year telemetry summary at 1 h resolution (sufficient for
/// every temporal/spatial figure; the paper's native 300 s cadence is
/// benchmarked separately in the `simulation` bench).
pub fn six_year_summary() -> &'static SweepSummary {
    static SUMMARY: OnceLock<SweepSummary> = OnceLock::new();
    SUMMARY.get_or_init(
        || match simulation().summarize(FullSpan, Duration::from_hours(1)) {
            Ok(summary) => summary,
            // The configured six-year span is never empty.
            Err(e) => unreachable!("six-year sweep failed: {e}"),
        },
    )
}

/// Pretty-prints a labelled series of `(label, value)` rows.
pub fn print_rows<L: std::fmt::Display>(title: &str, rows: impl IntoIterator<Item = (L, f64)>) {
    println!("\n--- {title} ---");
    for (label, value) in rows {
        println!("{label:>12} | {value:10.3}");
    }
}
