//! Tracked serve benchmark: drives [`mira_serve::ServeState::handle`]
//! through a scripted NDJSON session and records ingest rate, query
//! throughput, and query latency quantiles in `BENCH_serve.json`.
//!
//! Not a criterion bench: like `sweep_baseline` it writes a
//! machine-readable file and owns its own timing, so ci.sh can run it
//! as the serve perf snapshot.
//!
//! Environment:
//! - `MIRA_BENCH_OUT`: output path (default `<repo>/BENCH_serve.json`).
//! - `MIRA_BENCH_SERVE_STEPS`: total instants to ingest (default 8192
//!   at the 5-minute grid, ≈ 28 simulated days).
//!
//! Latency quantiles are computed exactly (sorted sample) in the bench;
//! the server's own streaming P² estimates are exposed through the
//! `metrics` query's `wall` section and printed for cross-checking.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

use mira_core::{Duration, SimConfig, Simulation};
use mira_serve::ServeState;

const STEP_MINUTES: i64 = 5;
const INGEST_CHUNK: usize = 128;
/// One pass of the query mix; repeated until the sample is stable.
const QUERY_MIX: [&str; 4] = [
    "{\"cmd\":\"status\"}",
    "{\"cmd\":\"metrics\"}",
    "{\"cmd\":\"figure\",\"figure\":\"fig2\"}",
    "{\"cmd\":\"report\"}",
];
const QUERY_ROUNDS: usize = 50;

fn total_steps() -> usize {
    std::env::var("MIRA_BENCH_SERVE_STEPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8192)
}

/// Exact quantile of a sorted sample (nearest-rank).
#[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
#[allow(clippy::cast_sign_loss)]
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

fn main() {
    let sim = Simulation::new(SimConfig::with_seed(2014));
    let state = ServeState::new(sim, Duration::from_minutes(STEP_MINUTES)).expect("positive step");
    let steps = total_steps();

    // Warm-up: first ingest pays lazy engine construction.
    let reply = state.handle(&format!("{{\"cmd\":\"ingest\",\"steps\":{INGEST_CHUNK}}}"));
    assert!(reply.contains("\"ok\":true"), "{reply}");

    // Ingest phase: append the rest of the grid in fixed chunks.
    let remaining = steps.saturating_sub(INGEST_CHUNK);
    let ingest_start = Instant::now();
    let mut appended = 0usize;
    while appended < remaining {
        let chunk = INGEST_CHUNK.min(remaining - appended);
        let reply = state.handle(&format!("{{\"cmd\":\"ingest\",\"steps\":{chunk}}}"));
        assert!(reply.contains("\"ok\":true"), "{reply}");
        appended += chunk;
    }
    let ingest_wall = ingest_start.elapsed().as_secs_f64();
    #[allow(clippy::cast_precision_loss)]
    let ingest_rate = remaining as f64 / ingest_wall;

    // Query phase: a fixed mix, each request timed individually.
    let mut latencies_us: Vec<f64> = Vec::with_capacity(QUERY_ROUNDS * QUERY_MIX.len());
    let query_start = Instant::now();
    for _ in 0..QUERY_ROUNDS {
        for line in QUERY_MIX {
            let t = Instant::now();
            let reply = state.handle(line);
            latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
            assert!(reply.contains("\"ok\":true"), "{reply}");
        }
    }
    let query_wall = query_start.elapsed().as_secs_f64();
    let queries = latencies_us.len();
    #[allow(clippy::cast_precision_loss)]
    let query_rate = queries as f64 / query_wall;
    latencies_us.sort_by(f64::total_cmp);
    let p50 = quantile(&latencies_us, 0.50);
    let p99 = quantile(&latencies_us, 0.99);

    // Cross-check: the server's own streaming estimates, for the log.
    let wall_reply = state.handle("{\"cmd\":\"metrics\",\"wall\":true}");
    assert!(wall_reply.contains("query_p50_us"), "{wall_reply}");

    println!(
        "serve bench: ingest {ingest_rate:.0} steps/s | {query_rate:.0} queries/s | \
         p50 {p50:.0} us | p99 {p99:.0} us ({queries} queries, {steps} steps)"
    );

    let out_path = out_path();
    let mut doc = read_flat_json(&out_path);
    doc.insert("schema".to_string(), "1".to_string());
    let mut set = |key: &str, value: f64| {
        doc.insert(key.to_string(), format!("{value:.6}"));
    };
    #[allow(clippy::cast_precision_loss)]
    {
        set("steps_ingested", steps as f64);
        set("step_seconds", (STEP_MINUTES * 60) as f64);
        set("queries", queries as f64);
    }
    set("ingest_wall_seconds", ingest_wall);
    set("ingest_steps_per_second", ingest_rate);
    set("query_wall_seconds", query_wall);
    set("queries_per_second", query_rate);
    set("query_p50_us", p50);
    set("query_p99_us", p99);
    write_flat_json(&out_path, &doc);
    println!("serve bench: wrote {}", out_path.display());
}

fn out_path() -> PathBuf {
    if let Ok(p) = std::env::var("MIRA_BENCH_OUT") {
        return PathBuf::from(p);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json")
}

/// Flat `{"key": value}` reader matching `sweep_baseline` — unknown
/// keys survive updates; any read/parse miss yields an empty map.
fn read_flat_json(path: &PathBuf) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    let Ok(text) = std::fs::read_to_string(path) else {
        return out;
    };
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        if !key.is_empty() && !value.is_empty() {
            out.insert(key.to_string(), value.to_string());
        }
    }
    out
}

fn write_flat_json(path: &PathBuf, doc: &BTreeMap<String, String>) {
    let mut text = String::from("{\n");
    for (i, (key, value)) in doc.iter().enumerate() {
        let comma = if i + 1 == doc.len() { "" } else { "," };
        text.push_str(&format!("  \"{key}\": {value}{comma}\n"));
    }
    text.push_str("}\n");
    if let Err(e) = std::fs::write(path, text) {
        eprintln!("serve bench: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
}
