//! Tracked sweep benchmark: times the telemetry sweep, measures heap
//! allocations per step with a counting global allocator, and records
//! the numbers in `BENCH_sweep.json` so future changes have a perf
//! trajectory to compare against.
//!
//! This is not a criterion bench: it needs to own the global allocator
//! and to write a machine-readable file, so it drives its own timing.
//!
//! Environment:
//! - `MIRA_BENCH_SPAN`: `full` (default, the configured six years) or
//!   `smoke` (a fixed 3-month window — the ci.sh gate).
//! - `MIRA_BENCH_OUT`: output path (default `<repo>/BENCH_sweep.json`).
//! - `MIRA_BENCH_RESET_BASELINE=1`: re-record the `baseline_*` keys
//!   from this run instead of preserving the committed ones.
//!
//! The process exits non-zero when allocations per step regress above
//! the recorded baseline (plus a 0.5 allocs/step tolerance), which is
//! what lets ci.sh run the smoke span as a regression gate. Wall time
//! is recorded but not gated — CI wall clocks are too noisy to fail on.

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use mira_bench::simulation;
use mira_core::{Date, Duration, SimTime, Simulation};

/// Forwards to the system allocator, counting every allocation (alloc,
/// zeroed alloc, and realloc — each is one trip into the allocator).
#[derive(Debug)]
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// How many allocs/step above baseline still passes: absorbs amortized
/// `Vec` growth in the recorders without letting a real per-step
/// allocation (always ≥ 1.0) slip through.
const ALLOC_TOLERANCE: f64 = 0.5;

const STEP: Duration = Duration::from_minutes(5);

struct SpanChoice {
    name: &'static str,
    from: SimTime,
    to: SimTime,
}

fn resolve_span(sim: &Simulation) -> SpanChoice {
    match std::env::var("MIRA_BENCH_SPAN").as_deref() {
        Ok("smoke") => SpanChoice {
            name: "smoke",
            from: SimTime::from_date(Date::new(2016, 3, 1)),
            to: SimTime::from_date(Date::new(2016, 6, 1)),
        },
        _ => {
            let (from, to) = sim.config().span();
            SpanChoice {
                name: "full",
                from,
                to,
            }
        }
    }
}

/// Calendar-month cuts of `[from, to)` — the same boundaries the sweep
/// executor shards on (each bound clamped into the span).
fn month_bounds(from: SimTime, to: SimTime) -> Vec<(SimTime, SimTime)> {
    let mut bounds = Vec::new();
    let mut lo = from;
    while lo < to {
        let date = lo.date();
        let (year, month) = if date.month().number() == 12 {
            (date.year() + 1, 1)
        } else {
            (date.year(), date.month().number() + 1)
        };
        let hi = SimTime::from_date(Date::new(year, month, 1)).min(to);
        bounds.push((lo, hi));
        lo = hi;
    }
    bounds
}

/// Grid size of `[from, to)` at `STEP` — mirrors the sweep executor.
fn grid_steps(from: SimTime, to: SimTime) -> u64 {
    let step_s = STEP.as_seconds();
    let total_s = (to - from).as_seconds();
    u64::try_from((total_s + step_s - 1) / step_s).unwrap_or(0)
}

fn run_sweep(sim: &Simulation, from: SimTime, to: SimTime, threads: usize) {
    let summary = sim
        .sweep_plan(from..to)
        .step(STEP)
        .threads(threads)
        .summary()
        .expect("non-empty bench span");
    std::hint::black_box(summary);
}

fn main() {
    let sim = simulation();
    let span = resolve_span(sim);
    let steps = grid_steps(span.from, span.to);
    println!(
        "sweep bench: span={} steps={steps} step={}s",
        span.name,
        STEP.as_seconds()
    );

    // Warm-up: populate lazy engine state so the timed run measures the
    // steady-state loop, not first-touch construction.
    run_sweep(sim, span.from, span.from + STEP * 32, 1);

    // Single-threaded timed run, with the allocation counter around it.
    let alloc_before = allocations();
    let t1_start = Instant::now();
    run_sweep(sim, span.from, span.to, 1);
    let t1_wall = t1_start.elapsed().as_secs_f64();
    let allocs_full = allocations() - alloc_before;

    // Allocations over the first half of the same grid: the difference
    // isolates the steady-state per-step cost from per-sweep setup and
    // finish work (shard list, recorder construction, time-series
    // assembly), which the half-span run pays too.
    let half_steps = steps / 2;
    let mid = span.from + STEP * i64::try_from(half_steps).unwrap_or(i64::MAX);
    let alloc_before = allocations();
    run_sweep(sim, span.from, mid, 1);
    let allocs_half = allocations() - alloc_before;
    #[allow(clippy::cast_precision_loss)] // step counts are far below 2^52
    let allocs_per_step =
        allocs_full.saturating_sub(allocs_half) as f64 / (steps - half_steps) as f64;

    // Worker-count scaling: 2, 4, and 8 workers over the identical
    // shard plan, so every run is bit-for-bit the same result; only
    // wall time may differ (on a core-starved container tN ≈ t1).
    let t2_start = Instant::now();
    run_sweep(sim, span.from, span.to, 2);
    let t2_wall = t2_start.elapsed().as_secs_f64();
    let t4_start = Instant::now();
    run_sweep(sim, span.from, span.to, 4);
    let t4_wall = t4_start.elapsed().as_secs_f64();
    let t8_start = Instant::now();
    run_sweep(sim, span.from, span.to, 8);
    let t8_wall = t8_start.elapsed().as_secs_f64();

    // Merge overhead: the parallel path folds one recorder per
    // calendar-month shard and merges them in chronological order on
    // the calling thread. Reproduce that fold on pre-computed partials
    // so the merge cost is timed apart from the sweep itself.
    let partials: Vec<_> = month_bounds(span.from, span.to)
        .into_iter()
        .map(|(a, b)| {
            sim.sweep_plan(a..b)
                .step(STEP)
                .threads(1)
                .summary()
                .expect("non-empty month shard")
        })
        .collect();
    let shard_count = partials.len();
    let merge_start = Instant::now();
    let mut merged = None;
    for partial in &partials {
        match merged.as_mut() {
            Some(acc) => mira_core::SweepSummary::merge(acc, partial),
            None => merged = Some(partial.clone()),
        }
    }
    std::hint::black_box(&merged);
    let merge_wall = merge_start.elapsed().as_secs_f64();

    #[allow(clippy::cast_precision_loss)]
    let steps_per_second = steps as f64 / t1_wall;
    println!(
        "sweep bench: t1={t1_wall:.3}s t2={t2_wall:.3}s t4={t4_wall:.3}s t8={t8_wall:.3}s \
         {steps_per_second:.0} steps/s {allocs_per_step:.4} allocs/step \
         merge={merge_wall:.4}s/{shard_count} shards"
    );

    let out_path = out_path();
    let mut doc = read_flat_json(&out_path);
    doc.insert("schema".to_string(), "1".to_string());
    let set = |doc: &mut BTreeMap<String, String>, key: &str, value: f64| {
        doc.insert(format!("{}_{key}", span.name), format!("{value:.6}"));
    };
    #[allow(clippy::cast_precision_loss)]
    set(&mut doc, "steps", steps as f64);
    #[allow(clippy::cast_precision_loss)]
    set(&mut doc, "step_seconds", STEP.as_seconds() as f64);
    set(&mut doc, "t1_wall_seconds", t1_wall);
    set(&mut doc, "t2_wall_seconds", t2_wall);
    set(&mut doc, "t4_wall_seconds", t4_wall);
    set(&mut doc, "t8_wall_seconds", t8_wall);
    set(&mut doc, "steps_per_second_t1", steps_per_second);
    set(&mut doc, "allocs_per_step", allocs_per_step);
    set(&mut doc, "merge_overhead_seconds", merge_wall);
    #[allow(clippy::cast_precision_loss)]
    set(&mut doc, "merge_shards", shard_count as f64);

    // Baseline keys persist across runs (first run seeds them; reset
    // re-records) so later runs have something to regress against.
    let reset = std::env::var("MIRA_BENCH_RESET_BASELINE").as_deref() == Ok("1");
    let baseline_alloc_key = format!("baseline_{}_allocs_per_step", span.name);
    let baseline_wall_key = format!("baseline_{}_t1_wall_seconds", span.name);
    let prior_baseline: Option<f64> = doc.get(&baseline_alloc_key).and_then(|v| v.parse().ok());
    if reset || prior_baseline.is_none() {
        doc.insert(baseline_alloc_key, format!("{allocs_per_step:.6}"));
        doc.insert(baseline_wall_key, format!("{t1_wall:.6}"));
    }

    write_flat_json(&out_path, &doc);
    println!("sweep bench: wrote {}", out_path.display());

    if let Some(baseline) = prior_baseline {
        if !reset && allocs_per_step > baseline + ALLOC_TOLERANCE {
            eprintln!(
                "sweep bench FAILED: {allocs_per_step:.4} allocs/step exceeds recorded \
                 baseline {baseline:.4} (+{ALLOC_TOLERANCE} tolerance)"
            );
            std::process::exit(1);
        }
        println!("sweep bench: alloc gate OK ({allocs_per_step:.4} <= {baseline:.4} + {ALLOC_TOLERANCE})");
    }
}

fn out_path() -> PathBuf {
    if let Ok(p) = std::env::var("MIRA_BENCH_OUT") {
        return PathBuf::from(p);
    }
    // <repo>/BENCH_sweep.json, anchored on this crate's manifest.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sweep.json")
}

/// Reads a flat `{"key": value}` JSON object previously written by
/// [`write_flat_json`] (one pair per line). Unknown keys are preserved
/// so hand-annotated entries survive updates. Returns empty on any
/// read/parse miss — the bench then simply rewrites the file.
fn read_flat_json(path: &PathBuf) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    let Ok(text) = std::fs::read_to_string(path) else {
        return out;
    };
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        if !key.is_empty() && !value.is_empty() {
            out.insert(key.to_string(), value.to_string());
        }
    }
    out
}

fn write_flat_json(path: &PathBuf, doc: &BTreeMap<String, String>) {
    let mut text = String::from("{\n");
    for (i, (key, value)) in doc.iter().enumerate() {
        let comma = if i + 1 == doc.len() { "" } else { "," };
        text.push_str(&format!("  \"{key}\": {value}{comma}\n"));
    }
    text.push_str("}\n");
    if let Err(e) = std::fs::write(path, text) {
        eprintln!("sweep bench: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
}
