//! One bench group per paper figure. Each group first *prints* the
//! regenerated series (the rows/curves the paper reports), then times
//! the analysis.
//!
//! Run with `cargo bench --bench figures`. The printed output is the
//! reproduction record that EXPERIMENTS.md quotes.

use criterion::{criterion_group, criterion_main, Criterion};

use mira_bench::{print_rows, simulation, six_year_summary};
use mira_core::{analysis, Duration, PredictorConfig};

fn fig02(c: &mut Criterion) {
    let summary = six_year_summary();
    let fig = analysis::fig2_yearly_trends(summary);
    print_rows(
        "Fig. 2a: system power by year (MW) [paper: 2.5 -> 2.9]",
        fig.power_by_year.iter().map(|r| (r.year, r.mean)),
    );
    print_rows(
        "Fig. 2b: utilization by year (%) [paper: ~80 -> ~93]",
        fig.utilization_by_year.iter().map(|r| (r.year, r.mean)),
    );
    if let (Some(p), Some(u)) = (fig.power_fit, fig.utilization_fit) {
        println!(
            "trend slopes: power {:+.4} MW/yr, utilization {:+.2} %/yr",
            p.slope * 365.25,
            u.slope * 365.25
        );
    }
    c.bench_function("fig02_yearly_trends", |b| {
        b.iter(|| analysis::fig2_yearly_trends(summary));
    });
}

fn fig03(c: &mut Criterion) {
    let summary = six_year_summary();
    let fig = analysis::fig3_coolant_trends(summary);
    print_rows(
        "Fig. 3a: loop flow by year (GPM) [paper: 1250 -> 1300 at Theta]",
        fig.flow_by_year.iter().map(|r| (r.year, r.mean)),
    );
    println!(
        "flow step: {:.0} -> {:.0} GPM | sigmas: flow {:.1} (41), inlet {:.2} (0.61), outlet {:.2} (0.71)",
        fig.flow_before_theta,
        fig.flow_after_theta,
        fig.flow_stddev,
        fig.inlet_stddev,
        fig.outlet_stddev
    );
    c.bench_function("fig03_coolant_trends", |b| {
        b.iter(|| analysis::fig3_coolant_trends(summary));
    });
}

fn fig04(c: &mut Criterion) {
    let summary = six_year_summary();
    let fig = analysis::fig4_monthly_profile(summary);
    print_rows(
        "Fig. 4a: monthly power median (MW) [paper: peak December]",
        fig.power.iter().map(|r| (r.month, r.median)),
    );
    print_rows(
        "Fig. 4d: monthly inlet median (F) [paper: higher Dec-Mar]",
        fig.inlet.iter().map(|r| (r.month, r.median)),
    );
    c.bench_function("fig04_monthly_profile", |b| {
        b.iter(|| analysis::fig4_monthly_profile(summary));
    });
}

fn fig05(c: &mut Criterion) {
    let summary = six_year_summary();
    let fig = analysis::fig5_weekday_profile(summary);
    print_rows(
        "Fig. 5a: power by weekday (MW) [paper: Monday lowest]",
        fig.power.iter().map(|r| (r.weekday, r.mean)),
    );
    println!(
        "non-Monday uplifts: power {:+.1}% (paper ~6), util {:+.1}% (~1.5), outlet {:+.1}% (~2), flow {:+.2}%, inlet {:+.2}%",
        fig.power_uplift * 100.0,
        fig.utilization_uplift * 100.0,
        fig.outlet_uplift * 100.0,
        fig.flow_uplift * 100.0,
        fig.inlet_uplift * 100.0
    );
    c.bench_function("fig05_weekday_profile", |b| {
        b.iter(|| analysis::fig5_weekday_profile(summary));
    });
}

fn fig06(c: &mut Criterion) {
    let summary = six_year_summary();
    let fig = analysis::fig6_rack_power_util(summary);
    println!(
        "\nFig. 6: power leader {} [paper (0, D)], util leader {} [(0, A)], floor {} [(2, D)]",
        fig.power_leader, fig.utilization_leader, fig.utilization_floor
    );
    println!(
        "power spread {:.1}% [<=15%], power-util correlation {:.2} [0.45]",
        fig.power_spread * 100.0,
        fig.power_utilization_correlation
    );
    c.bench_function("fig06_rack_power_util", |b| {
        b.iter(|| analysis::fig6_rack_power_util(summary));
    });
}

fn fig07(c: &mut Criterion) {
    let summary = six_year_summary();
    let fig = analysis::fig7_rack_coolant(summary);
    println!(
        "\nFig. 7 spreads: flow {:.1}% [<=11%], inlet {:.1}% [<=1%], outlet {:.1}% [<=3%]",
        fig.flow_spread * 100.0,
        fig.inlet_spread * 100.0,
        fig.outlet_spread * 100.0
    );
    c.bench_function("fig07_rack_coolant", |b| {
        b.iter(|| analysis::fig7_rack_coolant(summary));
    });
}

fn fig08(c: &mut Criterion) {
    let summary = six_year_summary();
    let fig = analysis::fig8_ambient_trends(summary);
    println!(
        "\nFig. 8: DC temp sigma {:.2} F [2.48], range {:.0}-{:.0} [76-90]; humidity sigma {:.2} [3.66], range {:.0}-{:.0} [28-37]",
        fig.temperature_stddev,
        fig.temperature_range.0,
        fig.temperature_range.1,
        fig.humidity_stddev,
        fig.humidity_range.0,
        fig.humidity_range.1
    );
    print_rows(
        "Fig. 8b: monthly humidity median (%RH) [paper: summer bulge]",
        fig.humidity_monthly.iter().map(|r| (r.month, r.median)),
    );
    c.bench_function("fig08_ambient_trends", |b| {
        b.iter(|| analysis::fig8_ambient_trends(summary));
    });
}

fn fig09(c: &mut Criterion) {
    let summary = six_year_summary();
    let fig = analysis::fig9_rack_ambient(summary);
    println!(
        "\nFig. 9: humidity hotspot {} [paper (1, 8)], spreads: humidity {:.0}% [36%], temp {:.0}% [11%]",
        fig.humidity_hotspot,
        fig.humidity_spread * 100.0,
        fig.temperature_spread * 100.0
    );
    c.bench_function("fig09_rack_ambient", |b| {
        b.iter(|| analysis::fig9_rack_ambient(summary));
    });
}

fn fig10(c: &mut Criterion) {
    let sim = simulation();
    let fig = analysis::fig10_cmf_timeline(sim);
    print_rows(
        "Fig. 10: CMFs per year [paper: 361 total, 40% in 2016]",
        fig.by_year.iter().map(|(y, n)| (*y, f64::from(*n))),
    );
    println!(
        "total {} | 2016 share {:.0}% | longest gap {:.0} days",
        fig.total,
        fig.share_2016 * 100.0,
        fig.longest_gap_days
    );
    c.bench_function("fig10_cmf_timeline", |b| {
        b.iter(|| analysis::fig10_cmf_timeline(sim));
    });
}

fn fig11(c: &mut Criterion) {
    let sim = simulation();
    let summary = six_year_summary();
    let fig = analysis::fig11_cmf_by_rack(sim, summary);
    println!(
        "\nFig. 11: max {} at {} [paper: 14 at (1, 8)], min {} at {} [5 at (2, 7)]",
        fig.max_count, fig.max_rack, fig.min_count, fig.min_rack
    );
    println!(
        "correlations: util {:.2} [-0.21], outlet {:.2} [-0.06], humidity {:.2} [0.06]",
        fig.correlation_utilization, fig.correlation_outlet, fig.correlation_humidity
    );
    c.bench_function("fig11_cmf_by_rack", |b| {
        b.iter(|| analysis::fig11_cmf_by_rack(sim, summary));
    });
}

fn fig12(c: &mut Criterion) {
    let sim = simulation();
    let leads: Vec<Duration> = (0..=12).map(|k| Duration::from_minutes(k * 30)).collect();
    let fig = analysis::fig12_cmf_leadup(sim, &leads, usize::MAX);
    println!("\nFig. 12: telemetry lead-up over {} failures", fig.events);
    println!("lead (h) |  flow  | inlet | outlet  (relative to baseline)");
    for p in fig.points.iter().rev() {
        println!(
            "  {:>5.1}  | {:+5.1}% | {:+5.1}% | {:+5.1}%",
            p.lead.as_hours(),
            (p.flow_rel - 1.0) * 100.0,
            (p.inlet_rel - 1.0) * 100.0,
            (p.outlet_rel - 1.0) * 100.0
        );
    }
    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);
    group.bench_function("cmf_leadup_100_events", |b| {
        b.iter(|| analysis::fig12_cmf_leadup(sim, &leads, 100));
    });
    group.finish();
}

fn fig13(c: &mut Criterion) {
    let sim = simulation();
    let leads = [
        Duration::from_hours(6),
        Duration::from_hours(5),
        Duration::from_hours(4),
        Duration::from_hours(3),
        Duration::from_hours(2),
        Duration::from_hours(1),
        Duration::from_minutes(30),
    ];
    let config = PredictorConfig::default();
    let fig = analysis::fig13_predictor_sweep(sim, &leads, usize::MAX, &config);
    println!(
        "\nFig. 13: predictor over {} failures (test accuracy {:.1}%)",
        fig.events,
        fig.test_accuracy * 100.0
    );
    println!("lead (h) | accuracy | precision | recall |  f1   |  fpr");
    for p in &fig.points {
        let m = p.metrics;
        println!(
            "  {:>5.1}  |  {:>5.1}%  |  {:>5.1}%   | {:>5.1}% | {:>4.1}% | {:>4.1}%",
            p.lead.as_hours(),
            m.accuracy() * 100.0,
            m.precision() * 100.0,
            m.recall() * 100.0,
            m.f1() * 100.0,
            m.false_positive_rate() * 100.0
        );
    }
    println!("paper: ~87% at 6 h -> ~97% at 30 min; fpr 6% -> 1.2%");
    let mut group = c.benchmark_group("fig13");
    group.sample_size(10);
    let quick = PredictorConfig {
        epochs: 10,
        ..PredictorConfig::default()
    };
    group.bench_function("predictor_sweep_80_events", |b| {
        b.iter(|| analysis::fig13_predictor_sweep(sim, &leads[..2], 80, &quick));
    });
    group.finish();
}

fn fig14(c: &mut Criterion) {
    let sim = simulation();
    let fig = analysis::fig14_post_cmf(sim);
    print_rows(
        "Fig. 14a: non-CMF failure rate after a CMF (per hour)",
        fig.rate_windows
            .iter()
            .map(|(h, r)| (format!("{h:.0} h"), *r)),
    );
    println!(
        "ratios: 6h/3h {:.2} [<0.75], 48h/3h {:.2} [~0.10]",
        fig.ratio_6h_over_3h, fig.ratio_48h_over_3h
    );
    print_rows(
        "Fig. 14b: follow-on failure mix [paper: AC-DC ~50%]",
        fig.type_mix
            .iter()
            .map(|(k, share)| (k.to_string(), share * 100.0)),
    );
    c.bench_function("fig14_post_cmf", |b| {
        b.iter(|| analysis::fig14_post_cmf(sim));
    });
}

fn fig15(c: &mut Criterion) {
    let sim = simulation();
    let examples = analysis::fig15_storm_examples(sim, 3);
    println!("\nFig. 15: three largest storms");
    for ex in &examples {
        println!(
            "  {} epicenter {} | {} racks | {} follow-ons, mean distance {:.1}",
            ex.time,
            ex.epicenter,
            ex.cascade.len(),
            ex.followons.len(),
            ex.mean_followon_distance
        );
    }
    c.bench_function("fig15_storm_examples", |b| {
        b.iter(|| analysis::fig15_storm_examples(sim, 3));
    });
}

criterion_group!(
    figures, fig02, fig03, fig04, fig05, fig06, fig07, fig08, fig09, fig10, fig11, fig12, fig13,
    fig14, fig15
);
criterion_main!(figures);
