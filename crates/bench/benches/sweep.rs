//! Parallel sweep scaling: the same six-year plan at 1/2/4/8 workers.
//!
//! Every configuration produces a bit-identical `SweepSummary` (the
//! plan shards by calendar month and merges chronologically), so this
//! group measures pure wall-clock scaling, not accuracy trade-offs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use mira_bench::simulation;
use mira_core::{Duration, FullSpan};

fn sweep_scaling(c: &mut Criterion) {
    let sim = simulation();
    let step = Duration::from_hours(6);
    // 2191 days at 4 samples/day, 48 racks each.
    let steps = 2191u64 * 4;

    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.throughput(Throughput::Elements(steps * 48));
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(&format!("six_years_6h_t{threads}"), |b| {
            b.iter(|| {
                sim.sweep_plan(FullSpan)
                    .step(step)
                    .threads(threads)
                    .summary()
                    .expect("non-empty span")
            });
        });
    }
    group.finish();

    // The week-long 300 s sweep the CLI export path uses, at auto
    // threads (single shard: stays sequential by construction).
    let from = mira_core::SimTime::from_date(mira_core::Date::new(2016, 3, 1));
    let mut group = c.benchmark_group("sweep_fine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(7 * 288 * 48));
    group.bench_function("one_week_at_300s_auto", |b| {
        b.iter(|| {
            sim.sweep_plan(from..from + Duration::from_days(7))
                .step(Duration::from_minutes(5))
                .summary()
                .expect("non-empty span")
        });
    });
    group.finish();
}

criterion_group!(benches, sweep_scaling);
criterion_main!(benches);
