//! Benches (and printed mini-reports) for the extension features built
//! from the paper's "Opportunity" paragraphs: the threshold baseline,
//! failure localization, hazard-shape analysis, elastic hole-filling,
//! and checkpoint economics.

use criterion::{criterion_group, criterion_main, Criterion};

use mira_bench::{print_rows, simulation};
use mira_core::{
    compare_policies, CmfPredictor, DatasetBuilder, Duration, FeatureConfig, MitigationCosts,
    PredictorConfig,
};
use mira_predictor::{LocationPredictor, ThresholdDetector};
use mira_ras::{PhaseRates, WeibullFit};
use mira_timeseries::SimTime;
use mira_workload::{hole_filling_experiment, ElasticPool};

fn threshold_vs_network(c: &mut Criterion) {
    let sim = simulation();
    let mut cmfs = sim.cmf_ground_truth();
    cmfs.truncate(150);
    let builder = DatasetBuilder::new(FeatureConfig::mira(), cmfs, sim.config().span());
    let (predictor, _) = CmfPredictor::train(
        sim.telemetry(),
        &builder,
        &PredictorConfig {
            epochs: 30,
            ..PredictorConfig::default()
        },
    );
    let detector = ThresholdDetector::mira();

    println!("\n--- threshold baseline vs neural predictor (accuracy) ---");
    println!("lead (h) | thresholds | network");
    for hours in [6, 4, 2, 1] {
        let lead = Duration::from_hours(hours);
        let thr = detector.evaluate_at(sim.telemetry(), &builder, lead, 3);
        let net = predictor.evaluate_at(sim.telemetry(), &builder, lead);
        println!(
            "  {hours:>4}   |   {:>5.1}%   | {:>5.1}%",
            thr.accuracy() * 100.0,
            net.accuracy() * 100.0
        );
    }

    let mut group = c.benchmark_group("threshold");
    group.sample_size(10);
    group.bench_function("evaluate_at_3h", |b| {
        b.iter(|| detector.evaluate_at(sim.telemetry(), &builder, Duration::from_hours(3), 3));
    });
    group.finish();
}

fn localization(c: &mut Criterion) {
    let sim = simulation();
    let mut cmfs = sim.cmf_ground_truth();
    cmfs.truncate(120);
    let builder = DatasetBuilder::new(FeatureConfig::mira(), cmfs, sim.config().span());
    let (predictor, _) = CmfPredictor::train(
        sim.telemetry(),
        &builder,
        &PredictorConfig {
            epochs: 30,
            ..PredictorConfig::default()
        },
    );
    let loc = LocationPredictor::new(&predictor, &builder);

    println!("\n--- failure localization (which rack?) ---");
    for (k, lead_h) in [(1, 2), (3, 2), (3, 5)] {
        let acc = loc.top_k_accuracy(sim.telemetry(), Duration::from_hours(lead_h), k, 60);
        println!(
            "top-{k} at {lead_h} h lead: hit rate {:.0}% (mean rank {:.1} of 48)",
            acc.hit_rate * 100.0,
            acc.mean_rank
        );
    }

    let mut group = c.benchmark_group("localization");
    group.sample_size(10);
    let t = builder.cmfs()[30].0 - Duration::from_hours(2);
    group.bench_function("rank_all_48_racks", |b| {
        b.iter(|| loc.rank_at(sim.telemetry(), t));
    });
    group.finish();
}

fn hazard_shape(c: &mut Criterion) {
    let sim = simulation();
    let times: Vec<SimTime> = sim.schedule().incidents().iter().map(|i| i.time).collect();
    let gaps: Vec<Duration> = times.windows(2).map(|w| w[1] - w[0]).collect();
    let fit = WeibullFit::fit(&gaps).expect("enough gaps");
    let (start, end) = sim.config().span();
    let rates = PhaseRates::compute(&times, start, end, 6);
    println!(
        "\n--- hazard shape: Weibull k = {:.2} (k<1: clustered, no wear-out) ---",
        fit.shape
    );
    print_rows(
        "failure rate per lifetime phase (per day) [paper: no bathtub]",
        rates
            .per_day
            .iter()
            .enumerate()
            .map(|(i, r)| (format!("phase {i}"), *r)),
    );
    println!("bathtub? {}", rates.is_bathtub());

    c.bench_function("weibull_fit_incident_gaps", |b| {
        b.iter(|| WeibullFit::fit(&gaps));
    });
}

fn elastic_filling(c: &mut Criterion) {
    let report = hole_filling_experiment(7, 14, ElasticPool::mira());
    println!("\n--- elastic hole-filling (paper Opportunity 1) ---");
    print_rows(
        "two-week trace with a capability drain",
        [
            ("rigid mean", report.rigid_utilization),
            ("elastic mean", report.elastic_utilization),
            ("rigid min", report.rigid_minimum),
            ("elastic min", report.elastic_minimum),
            ("uplift", report.uplift()),
        ],
    );
    let mut group = c.benchmark_group("elastic");
    group.sample_size(10);
    group.bench_function("one_week_trace", |b| {
        b.iter(|| hole_filling_experiment(7, 7, ElasticPool::mira()));
    });
    group.finish();
}

fn checkpoint_economics(c: &mut Criterion) {
    let sim = simulation();
    let metrics = mira_nn::BinaryMetrics {
        tp: 97,
        fn_: 3,
        fp: 1,
        tn: 99,
    };
    let costs = MitigationCosts::mira();
    let report = compare_policies(sim, Duration::from_hours(4), metrics, &costs);
    print_rows(
        "checkpoint policies: total node-hours (lost + overhead)",
        [
            ("none", report.none.total()),
            ("periodic 4h", report.periodic.total()),
            ("gated", report.gated.total()),
        ],
    );
    c.bench_function("policy_comparison", |b| {
        b.iter(|| compare_policies(sim, Duration::from_hours(4), metrics, &costs));
    });
}

criterion_group!(
    benches,
    threshold_vs_network,
    localization,
    hazard_shape,
    elastic_filling,
    checkpoint_economics
);
criterion_main!(benches);
