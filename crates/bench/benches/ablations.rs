//! Ablation benches for the design choices DESIGN.md calls out:
//! economizer on/off energy, de-dup window sensitivity, delta-vs-level
//! features, and cascades with/without the clock tree.

use criterion::{criterion_group, criterion_main, Criterion};

use mira_bench::{print_rows, simulation};
use mira_core::{CmfPredictor, DatasetBuilder, Duration, FeatureConfig, PredictorConfig};
use mira_facility::{ClockTree, RackId};
use mira_predictor::pipeline::pooled_dataset;
use mira_predictor::FeatureMode;
use mira_ras::FailureDeduplicator;
use mira_timeseries::{Date, SimTime};

/// Economizer contribution: what the chillers would cost if the
/// waterside economizer did not exist (the free-cooling fraction forced
/// to zero is equivalent to charging the avoided power as spent).
fn economizer_ablation(c: &mut Criterion) {
    let sim = simulation();
    let summary = sim
        .summarize(
            SimTime::from_date(Date::new(2015, 1, 1))..SimTime::from_date(Date::new(2016, 1, 1)),
            Duration::from_hours(1),
        )
        .expect("valid span");
    let report = mira_core::analysis::free_cooling_report(&summary);
    let with = report.chiller_by_year[0].1.value();
    let without = with + report.saved_by_year[0].1.value();
    print_rows(
        "Ablation: 2015 chiller energy (kWh)",
        [
            ("with economizer", with),
            ("without", without),
            ("saved", without - with),
        ],
    );
    println!(
        "economizer cuts chiller energy by {:.0}% over the year",
        (1.0 - with / without) * 100.0
    );
    let mut group = c.benchmark_group("economizer");
    group.sample_size(10);
    group.bench_function("one_year_energy_accounting", |b| {
        b.iter(|| {
            let s = sim
                .summarize(
                    SimTime::from_date(Date::new(2015, 1, 1))
                        ..SimTime::from_date(Date::new(2015, 3, 1)),
                    Duration::from_hours(2),
                )
                .expect("valid span");
            let _ = mira_core::analysis::free_cooling_report(&s).total_saved;
        });
    });
    group.finish();
}

/// De-dup window sensitivity: the counted failure total as the CMF
/// suppression window varies (the paper's 6 h is the rack recovery
/// time; shorter windows over-count storms).
fn dedup_window_ablation(c: &mut Criterion) {
    let sim = simulation();
    let raw = sim.ras_log().raw();
    let counts: Vec<(String, f64)> = [1i64, 3, 6, 12, 24]
        .into_iter()
        .map(|hours| {
            let mut dedup =
                FailureDeduplicator::new(Duration::from_hours(hours), Duration::from_hours(1));
            let cmfs = dedup
                .filter(raw)
                .into_iter()
                .filter(|e| e.kind.is_cmf())
                .count();
            (format!("{hours} h window"), cmfs as f64)
        })
        .collect();
    print_rows(
        "Ablation: counted CMFs vs de-dup window [paper: 361 at 6 h]",
        counts,
    );
    let mut group = c.benchmark_group("dedup");
    group.sample_size(10);
    group.bench_function("filter_full_raw_log", |b| {
        b.iter(|| FailureDeduplicator::mira().filter(raw).len());
    });
    group.finish();
}

/// Change-features vs level-features (the "thresholds are not enough"
/// argument) at a long lead time.
fn feature_ablation(c: &mut Criterion) {
    let sim = simulation();
    let mut cmfs = sim.cmf_ground_truth();
    cmfs.truncate(120);
    let config = PredictorConfig {
        epochs: 25,
        ..PredictorConfig::default()
    };
    let accuracy = |mode: FeatureMode| {
        let features = FeatureConfig {
            mode,
            ..FeatureConfig::mira()
        };
        let builder = DatasetBuilder::new(features, cmfs.clone(), sim.config().span());
        let data = pooled_dataset(
            sim.telemetry(),
            &builder,
            &[Duration::from_hours(5), Duration::from_hours(6)],
        );
        let folds = CmfPredictor::cross_validate(&data, 5, &config);
        folds
            .iter()
            .map(mira_nn::metrics::BinaryMetrics::accuracy)
            .sum::<f64>()
            / folds.len() as f64
    };
    let deltas = accuracy(FeatureMode::Deltas);
    let levels = accuracy(FeatureMode::Levels);
    print_rows(
        "Ablation: 5-fold accuracy at 5-6 h lead",
        [("delta features", deltas), ("level features", levels)],
    );

    let builder = DatasetBuilder::new(FeatureConfig::mira(), cmfs.clone(), sim.config().span());
    let data = pooled_dataset(sim.telemetry(), &builder, &[Duration::from_hours(5)]);
    let mut group = c.benchmark_group("features_ablation");
    group.sample_size(10);
    group.bench_function("cv_delta_features", |b| {
        b.iter(|| CmfPredictor::cross_validate(&data, 5, &config));
    });
    group.finish();
}

/// Cascade scope with and without the clock-dependency tree: how many
/// racks a single epicenter failure takes down.
fn clock_tree_ablation(c: &mut Criterion) {
    let tree = ClockTree::mira();
    let with: f64 = RackId::all()
        .map(|r| tree.affected_by(r).len() as f64)
        .sum::<f64>()
        / 48.0;
    // Without the shared tree every rack would have its own clock card.
    let without = 1.0;
    print_rows(
        "Ablation: mean racks lost per epicenter failure",
        [
            ("with clock tree", with),
            ("isolated clocks", without),
            (
                "master failure",
                tree.affected_by(tree.master()).len() as f64,
            ),
        ],
    );
    c.bench_function("clock_tree_affected_by_all", |b| {
        b.iter(|| {
            let _ = RackId::all()
                .map(|r| tree.affected_by(r).len())
                .sum::<usize>();
        });
    });
}

criterion_group!(
    benches,
    economizer_ablation,
    dedup_window_ablation,
    feature_ablation,
    clock_tree_ablation
);
criterion_main!(benches);
