//! Simulator throughput: what it costs to regenerate the six-year
//! telemetry archive.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use mira_bench::simulation;
use mira_core::{Date, Duration, RackId, SimConfig, SimTime, Simulation, TelemetryProvider};

fn world_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("world");
    group.sample_size(10);
    group.bench_function("build_simulation", |b| {
        b.iter(|| Simulation::new(SimConfig::with_seed(7)));
    });
    group.finish();
}

fn snapshots(c: &mut Criterion) {
    let sim = simulation();
    let t = SimTime::from_date(Date::new(2017, 5, 10));
    let mut group = c.benchmark_group("telemetry");
    group.throughput(Throughput::Elements(48));
    group.bench_function("observe_all_48_racks", |b| {
        b.iter(|| sim.telemetry().observe_all(t));
    });
    group.throughput(Throughput::Elements(1));
    group.bench_function("random_access_sample", |b| {
        b.iter(|| sim.telemetry().sample(RackId::new(1, 8), t));
    });
    group.finish();
}

fn sweeps(c: &mut Criterion) {
    let sim = simulation();
    let from = SimTime::from_date(Date::new(2015, 6, 1));
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    // One week at the coolant monitor's native 300 s cadence:
    // 2016 steps x 48 racks.
    group.throughput(Throughput::Elements(7 * 288 * 48));
    group.bench_function("one_week_at_300s", |b| {
        b.iter(|| {
            sim.summarize(
                from..from + Duration::from_days(7),
                Duration::from_minutes(5),
            )
            .expect("valid span")
        });
    });
    // One year at 1 h (the resolution the figure harness uses).
    group.throughput(Throughput::Elements(365 * 24 * 48));
    group.bench_function("one_year_at_1h", |b| {
        b.iter(|| {
            sim.summarize(
                from..from + Duration::from_days(365),
                Duration::from_hours(1),
            )
            .expect("valid span")
        });
    });
    group.finish();
}

fn ras_assembly(c: &mut Criterion) {
    let mut group = c.benchmark_group("ras");
    group.sample_size(10);
    group.bench_function("generate_schedule", |b| {
        b.iter(|| mira_ras::CmfSchedule::generate(7));
    });
    let schedule = mira_ras::CmfSchedule::generate(7);
    group.bench_function("assemble_log_with_storms", |b| {
        b.iter(|| mira_ras::RasLog::assemble(&schedule, 7));
    });
    group.finish();
}

criterion_group!(benches, world_construction, snapshots, sweeps, ras_assembly);
criterion_main!(benches);
