//! Tracked store benchmark: packs a simulated telemetry span into both
//! the CSV and columnar backends, checks the scans stay byte-identical,
//! and records compression ratio and scan throughput in
//! `BENCH_store.json`.
//!
//! Not a criterion bench: like `sweep_baseline` it writes a
//! machine-readable file and owns its own timing, so ci.sh can run it
//! as the archive perf snapshot and gate on the ≥3× compression claim.
//!
//! Environment:
//! - `MIRA_BENCH_OUT`: output path (default `<repo>/BENCH_store.json`).
//! - `MIRA_BENCH_STORE_DAYS`: simulated days to archive (default 7 at
//!   the 5-minute grid — 2016 instants × 48 racks ≈ 97k rows).

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

use mira_core::{archive, Duration, SimConfig, Simulation};
use mira_store::{Archive, ColumnarArchive, CsvArchive, Projection, TelemetryRecord};
use mira_timeseries::SimTime;

const STEP_MINUTES: i64 = 5;
const SCAN_ROUNDS: usize = 5;

fn bench_days() -> i64 {
    std::env::var("MIRA_BENCH_STORE_DAYS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7)
}

fn scan_all(ar: &mut dyn Archive, sink: &mut dyn FnMut(&TelemetryRecord)) -> u64 {
    ar.scan_span(
        SimTime::from_epoch_seconds(i64::MIN),
        SimTime::from_epoch_seconds(i64::MAX),
        Projection::all(),
        sink,
    )
    .expect("scan")
    .rows_scanned
}

/// Rows per second over `SCAN_ROUNDS` full scans (best round wins, so
/// one scheduler hiccup does not sink the number).
fn scan_rate(ar: &mut dyn Archive) -> f64 {
    let mut best = f64::MAX;
    let mut rows = 0u64;
    for _ in 0..SCAN_ROUNDS {
        let start = Instant::now();
        let mut count = 0u64;
        rows = scan_all(ar, &mut |_| count += 1);
        assert_eq!(count, rows);
        best = best.min(start.elapsed().as_secs_f64());
    }
    mira_units::convert::f64_from_u64(rows) / best
}

fn main() {
    let sim = Simulation::new(SimConfig::with_seed(2014));
    let span = sim.config().span();
    let from = span.0;
    let to = from + Duration::from_hours(bench_days() * 24);
    let step = Duration::from_minutes(STEP_MINUTES);

    let dir = std::env::temp_dir().join(format!("mira-store-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let csv_path = dir.join("tele.csv");
    let col_path = dir.join("tele.mstore");

    // Materialize the span once, through the same quantizing record
    // type every export surface uses.
    let mut rows: Vec<TelemetryRecord> = Vec::new();
    archive::sweep_records(sim.telemetry(), from, to, step, |rec| -> Result<(), ()> {
        rows.push(*rec);
        Ok(())
    })
    .expect("sweep");
    let events = sim.ras_log().counted().to_vec();

    let mut csv = CsvArchive::open(&csv_path).expect("csv open");
    csv.append_telemetry(&rows).expect("csv append");
    csv.append_ras(&events).expect("csv ras");

    let pack_start = Instant::now();
    let mut col = ColumnarArchive::create(&col_path).expect("create");
    col.append_telemetry(&rows).expect("col append");
    col.append_ras(&events).expect("col ras");
    col.flush().expect("flush");
    let pack_wall = pack_start.elapsed().as_secs_f64();

    // Byte-identity gate: both backends must re-render the same CSV.
    let mut col_rendered = String::new();
    scan_all(&mut col, &mut |rec| {
        col_rendered.push_str(&rec.csv_row());
        col_rendered.push('\n');
    });
    let mut csv_rendered = String::new();
    scan_all(&mut csv, &mut |rec| {
        csv_rendered.push_str(&rec.csv_row());
        csv_rendered.push('\n');
    });
    assert_eq!(col_rendered, csv_rendered, "backends diverged byte-wise");
    drop(col_rendered);
    drop(csv_rendered);

    let stat = col.stat().expect("stat");
    let ratio = stat.compression_ratio();
    assert!(
        ratio >= 3.0,
        "compression ratio {ratio:.2} fell below the 3x floor"
    );

    let col_rate = scan_rate(&mut col);
    let csv_rate = scan_rate(&mut csv);

    // Pruning check: the middle third of the span must not read every
    // group (and must read at least one).
    let hours = bench_days() * 24;
    let sub = col
        .scan_span(
            from + Duration::from_hours(hours / 3),
            from + Duration::from_hours(hours * 2 / 3),
            Projection::all(),
            &mut |_| {},
        )
        .expect("sub scan");
    assert!(
        sub.groups_scanned > 0 && sub.groups_scanned < sub.groups_total,
        "sub-span scanned {}/{} groups",
        sub.groups_scanned,
        sub.groups_total
    );

    println!(
        "store bench: {} rows in {} groups | {:.2}x vs csv | columnar {:.0} rows/s | \
         csv {:.0} rows/s | sub-span {}/{} groups",
        stat.rows, stat.groups, ratio, col_rate, csv_rate, sub.groups_scanned, sub.groups_total
    );

    let out_path = out_path();
    let mut doc = read_flat_json(&out_path);
    doc.insert("schema".to_string(), "1".to_string());
    let mut set = |key: &str, value: f64| {
        doc.insert(key.to_string(), format!("{value:.6}"));
    };
    set("rows", mira_units::convert::f64_from_u64(stat.rows));
    set("groups", mira_units::convert::f64_from_u64(stat.groups));
    set(
        "columnar_bytes",
        mira_units::convert::f64_from_u64(stat.file_bytes),
    );
    set(
        "csv_bytes",
        mira_units::convert::f64_from_u64(stat.csv_bytes),
    );
    set("compression_ratio", ratio);
    set("pack_wall_seconds", pack_wall);
    set("columnar_scan_rows_per_second", col_rate);
    set("csv_scan_rows_per_second", csv_rate);
    set("scan_speedup_vs_csv", col_rate / csv_rate);
    set(
        "subspan_groups_scanned",
        mira_units::convert::f64_from_u64(sub.groups_scanned),
    );
    set(
        "subspan_groups_total",
        mira_units::convert::f64_from_u64(sub.groups_total),
    );
    write_flat_json(&out_path, &doc);
    println!("store bench: wrote {}", out_path.display());
    let _ = std::fs::remove_dir_all(&dir);
}

fn out_path() -> PathBuf {
    if let Ok(p) = std::env::var("MIRA_BENCH_OUT") {
        return PathBuf::from(p);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_store.json")
}

/// Flat `{"key": value}` reader matching `sweep_baseline` — unknown
/// keys survive updates; any read/parse miss yields an empty map.
fn read_flat_json(path: &PathBuf) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    let Ok(text) = std::fs::read_to_string(path) else {
        return out;
    };
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        if !key.is_empty() && !value.is_empty() {
            out.insert(key.to_string(), value.to_string());
        }
    }
    out
}

fn write_flat_json(path: &PathBuf, doc: &BTreeMap<String, String>) {
    let mut text = String::from("{\n");
    for (i, (key, value)) in doc.iter().enumerate() {
        let comma = if i + 1 == doc.len() { "" } else { "," };
        text.push_str(&format!("  \"{key}\": {value}{comma}\n"));
    }
    text.push_str("}\n");
    if let Err(e) = std::fs::write(path, text) {
        eprintln!("store bench: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
}
