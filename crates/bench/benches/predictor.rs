//! CMF-predictor pipeline costs: feature extraction, training, and
//! inference — the numbers that decide whether the paper's "low-overhead
//! operationally useful" claim holds.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use mira_bench::simulation;
use mira_core::{CmfPredictor, DatasetBuilder, Duration, FeatureConfig, PredictorConfig};
use mira_nn::{Activation, Mlp, TrainConfig};
use mira_predictor::pipeline::pooled_dataset;

fn features(c: &mut Criterion) {
    let sim = simulation();
    let mut cmfs = sim.cmf_ground_truth();
    cmfs.truncate(50);
    let builder = DatasetBuilder::new(FeatureConfig::mira(), cmfs.clone(), sim.config().span());
    let (cmf_time, rack) = cmfs[10];

    let mut group = c.benchmark_group("features");
    group.throughput(Throughput::Elements(1));
    group.bench_function("six_hour_window_extraction", |b| {
        b.iter(|| builder.window_features(sim.telemetry(), rack, cmf_time));
    });
    group.sample_size(10);
    group.bench_function("balanced_dataset_50_events", |b| {
        b.iter(|| builder.build(sim.telemetry(), Duration::from_minutes(30)));
    });
    group.finish();
}

fn training(c: &mut Criterion) {
    let sim = simulation();
    let mut cmfs = sim.cmf_ground_truth();
    cmfs.truncate(100);
    let builder = DatasetBuilder::new(FeatureConfig::mira(), cmfs, sim.config().span());
    let data = pooled_dataset(
        sim.telemetry(),
        &builder,
        &[Duration::from_minutes(30), Duration::from_hours(3)],
    );
    println!(
        "training set: {} windows x {} features",
        data.len(),
        data.width()
    );

    let mut group = c.benchmark_group("training");
    group.sample_size(10);
    group.bench_function("paper_12_12_6_50_epochs", |b| {
        b.iter(|| {
            CmfPredictor::train_on(
                &data,
                &PredictorConfig {
                    epochs: 50,
                    ..PredictorConfig::default()
                },
            )
        });
    });
    group.bench_function("five_fold_cv_10_epochs", |b| {
        b.iter(|| {
            CmfPredictor::cross_validate(
                &data,
                5,
                &PredictorConfig {
                    epochs: 10,
                    ..PredictorConfig::default()
                },
            )
        });
    });
    group.finish();
}

fn inference(c: &mut Criterion) {
    let sim = simulation();
    let mut cmfs = sim.cmf_ground_truth();
    cmfs.truncate(100);
    let builder = DatasetBuilder::new(FeatureConfig::mira(), cmfs, sim.config().span());
    let data = pooled_dataset(sim.telemetry(), &builder, &[Duration::from_hours(1)]);
    let (predictor, _) = CmfPredictor::train_on(
        &data,
        &PredictorConfig {
            epochs: 20,
            ..PredictorConfig::default()
        },
    );
    let row = data.features()[0].clone();

    let mut group = c.benchmark_group("inference");
    group.throughput(Throughput::Elements(1));
    group.bench_function("single_window_probability", |b| {
        b.iter(|| predictor.predict(&row));
    });
    // Whole-machine scoring: one decision per rack per 300 s tick.
    group.throughput(Throughput::Elements(48));
    group.bench_function("score_all_48_racks", |b| {
        b.iter(|| {
            data.features()
                .iter()
                .take(48)
                .map(|f| predictor.predict(f))
                .sum::<f64>()
        });
    });
    group.finish();
}

fn raw_network(c: &mut Criterion) {
    // The bare MLP, without the pipeline: forward and one epoch.
    let x: Vec<Vec<f64>> = (0..256)
        .map(|i| {
            (0..36)
                .map(|j| ((i * 7 + j * 13) % 100) as f64 / 100.0)
                .collect()
        })
        .collect();
    let y: Vec<f64> = (0..256).map(|i| f64::from(u8::from(i % 2 == 0))).collect();
    let net = Mlp::new(
        &[36, 12, 12, 6, 1],
        Activation::Relu,
        Activation::Sigmoid,
        1,
    );

    let mut group = c.benchmark_group("mlp");
    group.throughput(Throughput::Elements(1));
    group.bench_function("forward_12_12_6", |b| b.iter(|| net.predict(&x[0])));
    group.sample_size(20);
    group.throughput(Throughput::Elements(256));
    group.bench_function("one_epoch_256_samples", |b| {
        b.iter(|| {
            let mut n = net.clone();
            n.train(
                &x,
                &y,
                &TrainConfig {
                    epochs: 1,
                    ..TrainConfig::default()
                },
            )
        });
    });
    group.finish();
}

criterion_group!(benches, features, training, inference, raw_network);
criterion_main!(benches);
