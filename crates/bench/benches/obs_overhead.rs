//! Observability overhead: the same sweep plain, instrumented-but-off,
//! and instrumented-on.
//!
//! The obs layer's contract is that a disabled recorder costs nothing
//! measurable: `summarize_observed(.., ObsMode::Off)` folds one extra
//! branch per step next to the summary recorder. The `gate` section
//! below enforces that contract — it interleaves min-of-N timings of
//! the plain and obs-off paths and fails the process when the obs-off
//! overhead exceeds the limit (default 2%, override with
//! `MIRA_OBS_OVERHEAD_LIMIT_PCT`), so `ci.sh` can run this bench as a
//! regression gate.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use mira_bench::simulation;
use mira_core::{Date, Duration, ObsMode, SimTime, Simulation};

fn span() -> (SimTime, SimTime) {
    (
        SimTime::from_date(Date::new(2016, 3, 1)),
        SimTime::from_date(Date::new(2016, 7, 1)),
    )
}

const STEP_HOURS: i64 = 6;

fn run_plain(sim: &Simulation) {
    let (from, to) = span();
    let summary = sim
        .sweep_plan(from..to)
        .step(Duration::from_hours(STEP_HOURS))
        .threads(1)
        .summary()
        .expect("non-empty span");
    black_box(summary);
}

fn run_observed(sim: &Simulation, mode: ObsMode) {
    let observed = sim
        .summarize_observed(span(), Duration::from_hours(STEP_HOURS), 1, mode)
        .expect("non-empty span");
    black_box(observed);
}

fn obs_overhead(c: &mut Criterion) {
    let sim = simulation();
    // 122 days at 4 instants/day, 48 racks each.
    let steps = 122u64 * 4;

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);
    group.throughput(Throughput::Elements(steps * 48));
    group.bench_function("plain_summary", |b| b.iter(|| run_plain(sim)));
    group.bench_function("observed_off", |b| {
        b.iter(|| run_observed(sim, ObsMode::Off));
    });
    group.bench_function("observed_on", |b| {
        b.iter(|| run_observed(sim, ObsMode::On));
    });
    group.finish();
}

/// Best-of-`reps` seconds per call of `f`, `iters` calls per rep.
fn best_seconds_per_call<F: FnMut()>(reps: usize, iters: u32, f: &mut F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() / f64::from(iters));
    }
    best
}

fn overhead_gate(_c: &mut Criterion) {
    let sim = simulation();
    let limit_pct: f64 = std::env::var("MIRA_OBS_OVERHEAD_LIMIT_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);

    // Warm both paths, then interleave the timed reps so drift in
    // machine load hits both sides equally; min-of-reps discards the
    // noisy samples.
    run_plain(sim);
    run_observed(sim, ObsMode::Off);
    const REPS: usize = 10;
    const ITERS: u32 = 4;
    let mut plain = f64::INFINITY;
    let mut off = f64::INFINITY;
    for _ in 0..REPS {
        plain = plain.min(best_seconds_per_call(1, ITERS, &mut || run_plain(sim)));
        off = off.min(best_seconds_per_call(1, ITERS, &mut || {
            run_observed(sim, ObsMode::Off);
        }));
    }

    let overhead_pct = (off - plain) / plain * 100.0;
    println!(
        "obs-overhead gate: plain={:.3} ms, obs-off={:.3} ms, overhead={overhead_pct:+.2}% \
         (limit {limit_pct:.2}%)",
        plain * 1e3,
        off * 1e3,
    );
    if overhead_pct > limit_pct {
        eprintln!("obs-overhead gate FAILED: disabled instrumentation must be free");
        std::process::exit(1);
    }
    println!("obs-overhead gate: OK");
}

criterion_group!(benches, obs_overhead, overhead_gate);
criterion_main!(benches);
