//! The in-memory backend: the round-trip oracle the file-backed
//! backends are tested against, and a cheap store for ephemeral use.

use std::path::Path;

use mira_ras::RasEvent;
use mira_timeseries::SimTime;
use mira_units::convert;

use crate::error::StoreError;
use crate::record::{Projection, TelemetryRecord};
use crate::{Archive, ArchiveStat, ScanStats};

/// An in-memory archive; `open` ignores its path and starts empty.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemArchive {
    rows: Vec<TelemetryRecord>,
    ras: Vec<RasEvent>,
}

impl MemArchive {
    /// An empty in-memory archive.
    #[must_use]
    pub fn new() -> Self {
        MemArchive::default()
    }

    /// Direct access to the stored rows, in append order.
    #[must_use]
    pub fn rows(&self) -> &[TelemetryRecord] {
        &self.rows
    }
}

impl Archive for MemArchive {
    fn open(_path: &Path) -> Result<Self, StoreError> {
        Ok(MemArchive::new())
    }

    fn append_telemetry(&mut self, rows: &[TelemetryRecord]) -> Result<(), StoreError> {
        self.rows.extend_from_slice(rows);
        Ok(())
    }

    fn append_ras(&mut self, events: &[RasEvent]) -> Result<(), StoreError> {
        self.ras.extend_from_slice(events);
        Ok(())
    }

    fn scan_span(
        &mut self,
        from: SimTime,
        to: SimTime,
        projection: Projection,
        sink: &mut dyn FnMut(&TelemetryRecord),
    ) -> Result<ScanStats, StoreError> {
        let (from_s, to_s) = (from.epoch_seconds(), to.epoch_seconds());
        let mut stats = ScanStats {
            groups_total: u64::from(!self.rows.is_empty()),
            ..ScanStats::default()
        };
        if !self.rows.is_empty() {
            stats.groups_scanned = 1;
            stats.blocks_decoded = 2 + u64::from(projection.value_count());
        }
        for rec in &self.rows {
            let t = rec.time.epoch_seconds();
            if t >= from_s && t < to_s {
                stats.rows_scanned += 1;
                sink(rec);
            }
        }
        Ok(stats)
    }

    fn ras_events(&mut self) -> Result<Vec<RasEvent>, StoreError> {
        Ok(self.ras.clone())
    }

    fn stat(&mut self) -> Result<ArchiveStat, StoreError> {
        let mut time_range: Option<(i64, i64)> = None;
        let mut zones: Option<[(i64, i64); 6]> = None;
        for rec in &self.rows {
            let t = rec.time.epoch_seconds();
            time_range = Some(match time_range {
                None => (t, t),
                Some((lo, hi)) => (lo.min(t), hi.max(t)),
            });
            zones = Some(match zones {
                None => {
                    let mut z = [(0i64, 0i64); 6];
                    for (zi, m) in z.iter_mut().zip(rec.milli.iter()) {
                        *zi = (*m, *m);
                    }
                    z
                }
                Some(mut z) => {
                    for (zi, m) in z.iter_mut().zip(rec.milli.iter()) {
                        zi.0 = zi.0.min(*m);
                        zi.1 = zi.1.max(*m);
                    }
                    z
                }
            });
        }
        Ok(ArchiveStat {
            rows: convert::u64_from_usize(self.rows.len()),
            ras_events: convert::u64_from_usize(self.ras.len()),
            groups: u64::from(!self.rows.is_empty()),
            file_bytes: 0,
            csv_bytes: 0,
            time_range: time_range.map(|(lo, hi)| {
                (
                    SimTime::from_epoch_seconds(lo),
                    SimTime::from_epoch_seconds(hi),
                )
            }),
            zones,
        })
    }

    fn flush(&mut self) -> Result<(), StoreError> {
        Ok(())
    }
}
