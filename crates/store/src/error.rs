//! The structured store error: I/O, text parse, and binary corruption
//! causes, each carrying enough context to locate the fault.

use std::fmt;
use std::io;

use crate::record::Channel;

/// Errors arising from any [`crate::Archive`] backend.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed text (CSV) row, with its 1-based line number.
    Parse {
        /// 1-based line number of the offending row.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A structurally invalid columnar file: bad magic, truncated
    /// footer, or an undecodable block.
    Corrupt {
        /// Byte offset into the file where the problem was detected.
        offset: u64,
        /// Row-group index, when the fault lies inside a group.
        group: Option<u32>,
        /// Column whose block failed to decode, when known.
        channel: Option<Channel>,
        /// What was wrong.
        message: String,
    },
}

impl StoreError {
    /// A corruption error with no group/channel context (header,
    /// footer, and trailer faults).
    #[must_use]
    pub fn corrupt(offset: u64, message: impl Into<String>) -> Self {
        StoreError::Corrupt {
            offset,
            group: None,
            channel: None,
            message: message.into(),
        }
    }

    /// A corruption error positioned inside a row group's column block.
    #[must_use]
    pub fn corrupt_block(
        offset: u64,
        group: u32,
        channel: Option<Channel>,
        message: impl Into<String>,
    ) -> Self {
        StoreError::Corrupt {
            offset,
            group: Some(group),
            channel,
            message: message.into(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Parse { line, message } => {
                write!(f, "store parse error at line {line}: {message}")
            }
            StoreError::Corrupt {
                offset,
                group,
                channel,
                message,
            } => {
                write!(f, "store corrupt at byte {offset}")?;
                if let Some(g) = group {
                    write!(f, ", group {g}")?;
                }
                if let Some(c) = channel {
                    write!(f, ", channel {}", c.tag())?;
                }
                write!(f, ": {message}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Parse { .. } | StoreError::Corrupt { .. } => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_every_context_field() {
        let e = StoreError::corrupt_block(128, 3, Some(Channel::FlowGpm), "bad varint");
        let text = e.to_string();
        assert!(text.contains("byte 128"), "{text}");
        assert!(text.contains("group 3"), "{text}");
        assert!(text.contains("flow_gpm"), "{text}");
        assert!(text.contains("bad varint"), "{text}");

        let e = StoreError::corrupt(0, "bad magic");
        assert!(!e.to_string().contains("group"), "{e}");
    }

    #[test]
    fn io_source_is_walkable() {
        use std::error::Error as _;
        let e = StoreError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
        assert!(StoreError::corrupt(0, "x").source().is_none());
    }
}
