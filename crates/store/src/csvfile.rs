//! The CSV backend: the pre-existing text format behind the same
//! [`Archive`] trait as the columnar store.
//!
//! Telemetry lives at the archive path itself (header plus one
//! `{:.3}`-rendered row per sample); RAS events live in a `.ras`
//! sidecar next to it. Text is the storage format, so the
//! "compression" ratio of this backend is 1.0 by definition — it *is*
//! the baseline the columnar backend is measured against.

use std::ffi::OsString;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use mira_facility::RackId;
use mira_ras::{FailureKind, RasEvent, Severity};
use mira_timeseries::SimTime;

use crate::columnar::ras_csv_row;
use crate::error::StoreError;
use crate::record::{milli_from_str, TelemetryRecord, TELEMETRY_HEADER};
use crate::{Archive, ArchiveStat, Projection, ScanStats, RAS_HEADER};

/// The CSV-file archive backend (telemetry file + `.ras` sidecar).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvArchive {
    path: PathBuf,
}

impl CsvArchive {
    /// The telemetry CSV path this archive is backed by.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The RAS sidecar path (`<path>.ras`).
    #[must_use]
    pub fn ras_path(&self) -> PathBuf {
        let mut s: OsString = self.path.as_os_str().to_os_string();
        s.push(".ras");
        PathBuf::from(s)
    }

    fn append_lines(
        path: &Path,
        header: &str,
        lines: impl Iterator<Item = String>,
    ) -> Result<(), StoreError> {
        let fresh = std::fs::metadata(path).map_or(true, |m| m.len() == 0);
        let file = File::options().append(true).create(true).open(path)?;
        let mut w = BufWriter::new(file);
        if fresh {
            writeln!(w, "{header}")?;
        }
        for line in lines {
            writeln!(w, "{line}")?;
        }
        w.flush()?;
        Ok(())
    }
}

/// Parses one telemetry CSV row (no header) into a record. Channel
/// fields convert text-to-integer when canonically formatted, so a
/// parse → re-render round trip is byte-identical.
///
/// # Errors
///
/// [`StoreError::Parse`] carrying `lineno` on any malformed field.
pub fn parse_telemetry_row(line: &str, lineno: usize) -> Result<TelemetryRecord, StoreError> {
    let parse_err = |message: String| StoreError::Parse {
        line: lineno,
        message,
    };
    // Rack ids contain a comma ("(1, 8)"), so "(r, c)" spans two
    // comma-fields: 9 fields total.
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != 9 {
        return Err(parse_err("expected 9 comma fields".into()));
    }
    let field = |i: usize| fields.get(i).copied().unwrap_or_default();
    let secs: i64 = field(0)
        .trim()
        .parse()
        .map_err(|_| parse_err("bad timestamp".into()))?;
    let rack_str = format!("{},{}", field(1), field(2));
    let rack = RackId::parse(&rack_str).map_err(|e| parse_err(format!("bad rack: {e}")))?;
    let mut milli = [0i64; 6];
    for (vi, m) in milli.iter_mut().enumerate() {
        let raw = field(vi + 3);
        *m = milli_from_str(raw)
            .ok_or_else(|| parse_err(format!("bad number in field {}", vi + 3)))?;
    }
    Ok(TelemetryRecord {
        time: SimTime::from_epoch_seconds(secs),
        rack,
        milli,
    })
}

/// Parses one RAS CSV row (no header) into an event.
///
/// # Errors
///
/// [`StoreError::Parse`] carrying `lineno` on any malformed field.
pub fn parse_ras_row(line: &str, lineno: usize) -> Result<RasEvent, StoreError> {
    let parse_err = |message: String| StoreError::Parse {
        line: lineno,
        message,
    };
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != 5 {
        return Err(parse_err("expected 5 comma fields".into()));
    }
    let field = |i: usize| fields.get(i).copied().unwrap_or_default();
    let secs: i64 = field(0)
        .trim()
        .parse()
        .map_err(|_| parse_err("bad timestamp".into()))?;
    let rack_str = format!("{},{}", field(1), field(2));
    let rack = RackId::parse(&rack_str).map_err(|e| parse_err(format!("bad rack: {e}")))?;
    let kind_tag = field(3).trim();
    let kind = FailureKind::ALL
        .iter()
        .copied()
        .find(|k| k.tag() == kind_tag)
        .ok_or_else(|| parse_err(format!("unknown failure kind {kind_tag}")))?;
    let severity = match field(4).trim() {
        "warn" => Severity::Warn,
        "fatal" => Severity::Fatal,
        other => return Err(parse_err(format!("unknown severity {other}"))),
    };
    Ok(RasEvent {
        time: SimTime::from_epoch_seconds(secs),
        rack,
        kind,
        severity,
    })
}

/// Walks a CSV file row by row, validating the header and delivering
/// parsed records; a missing file reads as empty.
fn for_each_row<T>(
    path: &Path,
    header: &str,
    parse: impl Fn(&str, usize) -> Result<T, StoreError>,
    mut sink: impl FnMut(T),
) -> Result<u64, StoreError> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e.into()),
    };
    let bytes = file.metadata()?.len();
    for (idx, line) in BufReader::new(file).lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        if idx == 0 {
            if line.trim() != header {
                return Err(StoreError::Parse {
                    line: lineno,
                    message: format!("unexpected header (want {header})"),
                });
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        sink(parse(&line, lineno)?);
    }
    Ok(bytes)
}

impl Archive for CsvArchive {
    fn open(path: &Path) -> Result<Self, StoreError> {
        Ok(CsvArchive {
            path: path.to_path_buf(),
        })
    }

    fn append_telemetry(&mut self, rows: &[TelemetryRecord]) -> Result<(), StoreError> {
        CsvArchive::append_lines(
            &self.path,
            TELEMETRY_HEADER,
            rows.iter().map(TelemetryRecord::csv_row),
        )
    }

    fn append_ras(&mut self, events: &[RasEvent]) -> Result<(), StoreError> {
        CsvArchive::append_lines(&self.ras_path(), RAS_HEADER, events.iter().map(ras_csv_row))
    }

    fn scan_span(
        &mut self,
        from: SimTime,
        to: SimTime,
        _projection: Projection,
        sink: &mut dyn FnMut(&TelemetryRecord),
    ) -> Result<ScanStats, StoreError> {
        let (from_s, to_s) = (from.epoch_seconds(), to.epoch_seconds());
        let mut stats = ScanStats::default();
        let bytes = for_each_row(&self.path, TELEMETRY_HEADER, parse_telemetry_row, |rec| {
            let t = rec.time.epoch_seconds();
            if t >= from_s && t < to_s {
                stats.rows_scanned += 1;
                sink(&rec);
            }
        })?;
        if bytes > 0 {
            // Text has no block structure: one "group" spanning the
            // file, every column decoded, every byte read.
            stats.groups_total = 1;
            stats.groups_scanned = 1;
            stats.blocks_decoded = 8;
            stats.bytes_read = bytes;
        }
        Ok(stats)
    }

    fn ras_events(&mut self) -> Result<Vec<RasEvent>, StoreError> {
        let mut out = Vec::new();
        for_each_row(&self.ras_path(), RAS_HEADER, parse_ras_row, |e| out.push(e))?;
        Ok(out)
    }

    fn stat(&mut self) -> Result<ArchiveStat, StoreError> {
        let mut rows = 0u64;
        let mut time_range: Option<(i64, i64)> = None;
        let mut zones: Option<[(i64, i64); 6]> = None;
        let tele_bytes = for_each_row(&self.path, TELEMETRY_HEADER, parse_telemetry_row, |rec| {
            rows += 1;
            let t = rec.time.epoch_seconds();
            time_range = Some(match time_range {
                None => (t, t),
                Some((lo, hi)) => (lo.min(t), hi.max(t)),
            });
            zones = Some(match zones {
                None => {
                    let mut z = [(0i64, 0i64); 6];
                    for (zi, m) in z.iter_mut().zip(rec.milli.iter()) {
                        *zi = (*m, *m);
                    }
                    z
                }
                Some(mut z) => {
                    for (zi, m) in z.iter_mut().zip(rec.milli.iter()) {
                        zi.0 = zi.0.min(*m);
                        zi.1 = zi.1.max(*m);
                    }
                    z
                }
            });
        })?;
        let mut ras_events = 0u64;
        let ras_bytes = for_each_row(&self.ras_path(), RAS_HEADER, parse_ras_row, |_| {
            ras_events += 1;
        })?;
        let file_bytes = tele_bytes + ras_bytes;
        Ok(ArchiveStat {
            rows,
            ras_events,
            groups: u64::from(rows > 0),
            file_bytes,
            // Text *is* CSV, so the baseline equals the footprint.
            csv_bytes: file_bytes,
            time_range: time_range.map(|(lo, hi)| {
                (
                    SimTime::from_epoch_seconds(lo),
                    SimTime::from_epoch_seconds(hi),
                )
            }),
            zones,
        })
    }

    fn flush(&mut self) -> Result<(), StoreError> {
        Ok(())
    }
}
