//! The binary columnar backend.
//!
//! On-disk layout (all integers varint-encoded except the fixed-width
//! trailer; signed values zigzag-folded first):
//!
//! ```text
//! [magic "MSTORE1\n" : 8 bytes]
//! [row group]*
//!     varint row_count
//!     8 column blocks (time, rack, dc_temp_f, dc_rh, flow_gpm,
//!                      inlet_f, outlet_f, power_kw), each:
//!         varint payload_len
//!         varint zigzag(min), varint zigzag(max)      -- zone map
//!         payload: delta + zigzag + varint stream
//! [footer]
//!     magic "FTR1"
//!     varint group_count
//!     per group: varint offset, varint byte_len, varint rows,
//!                zigzag(t_min), zigzag(t_max),
//!                6 x (zigzag(min), zigzag(max))       -- time index
//!     varint csv_bytes                 -- equivalent-CSV accounting
//!     varint ras_count
//!     4 RAS column blocks (time, rack, kind, severity), each:
//!         varint payload_len + delta stream
//! [trailer]
//!     u64 LE footer_len, magic "MSTOREND"             -- 16 bytes
//! ```
//!
//! A reader seeks to the trailer, loads the footer, and prunes row
//! groups against the query span via the time index before touching
//! any data bytes; within a touched group, only the column blocks the
//! projection asks for are decoded. Appending truncates the footer,
//! appends new groups, and rewrites it — version bumps change the
//! leading magic, so every reader fails closed on formats it does not
//! speak.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use mira_facility::RackId;
use mira_ras::{FailureKind, RasEvent, Severity};
use mira_timeseries::SimTime;
use mira_units::convert;

use crate::codec::{
    decode_deltas, encode_deltas, read_varint, write_varint, zigzag_decode, zigzag_encode,
};
use crate::error::StoreError;
use crate::record::{Channel, Projection, TelemetryRecord, TELEMETRY_HEADER};
use crate::{Archive, ArchiveStat, ScanStats};

const MAGIC: &[u8; 8] = b"MSTORE1\n";
const FOOTER_MAGIC: &[u8; 4] = b"FTR1";
const TRAILER_MAGIC: &[u8; 8] = b"MSTOREND";
const TRAILER_LEN: u64 = 16;

/// Rows per row group unless overridden; small enough that a narrow
/// span touches few bytes, large enough that varint deltas amortize.
pub const DEFAULT_GROUP_ROWS: usize = 4096;

/// Footer metadata for one row group: where it lives and what the
/// zone maps admit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct GroupMeta {
    offset: u64,
    len: u64,
    rows: u64,
    t_min: i64,
    t_max: i64,
    zones: [(i64, i64); 6],
}

/// The columnar file-backed archive.
///
/// Appends buffer in memory and flush as full row groups; the footer
/// is (re)written by [`Archive::flush`], any scan, or drop, so the
/// file on disk is always either the previous consistent state or the
/// new one.
#[derive(Debug)]
pub struct ColumnarArchive {
    path: PathBuf,
    file: File,
    groups: Vec<GroupMeta>,
    ras: Vec<RasEvent>,
    pending: Vec<TelemetryRecord>,
    group_rows: usize,
    csv_bytes: u64,
    data_end: u64,
    synced: bool,
}

impl ColumnarArchive {
    /// Creates (or truncates) a columnar store at `path`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the file cannot be created or written.
    pub fn create(path: &Path) -> Result<Self, StoreError> {
        let mut file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(MAGIC)?;
        let mut store = ColumnarArchive {
            path: path.to_path_buf(),
            file,
            groups: Vec::new(),
            ras: Vec::new(),
            pending: Vec::new(),
            group_rows: DEFAULT_GROUP_ROWS,
            csv_bytes: header_bytes(),
            data_end: u64_len(MAGIC.len()),
            synced: false,
        };
        store.write_footer()?;
        Ok(store)
    }

    /// Overrides the row-group size (rows per group) for subsequent
    /// appends. Smaller groups prune harder; larger groups compress
    /// slightly better.
    #[must_use]
    pub fn with_group_rows(mut self, rows: usize) -> Self {
        self.group_rows = rows.max(1);
        self
    }

    /// The file this archive is backed by.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn flush_group(&mut self, take: usize) -> Result<(), StoreError> {
        if take == 0 {
            return Ok(());
        }
        let rows: Vec<TelemetryRecord> = self.pending.drain(..take).collect();
        let row_count = rows.len();
        let mut buf = Vec::new();
        write_varint(&mut buf, u64_len(row_count));

        let mut t_min = i64::MAX;
        let mut t_max = i64::MIN;
        let mut zones = [(0i64, 0i64); 6];
        let mut column = Vec::with_capacity(row_count);
        for ch in Channel::ALL {
            column.clear();
            match ch.value_index() {
                None if ch == Channel::Time => {
                    column.extend(rows.iter().map(|r| r.time.epoch_seconds()));
                }
                None => {
                    column.extend(rows.iter().map(|r| convert::i64_from_usize(r.rack.index())));
                }
                Some(vi) => {
                    column.extend(rows.iter().map(|r| r.milli.get(vi).copied().unwrap_or(0)));
                }
            }
            let lo = column.iter().copied().min().unwrap_or(0);
            let hi = column.iter().copied().max().unwrap_or(0);
            if ch == Channel::Time {
                t_min = lo;
                t_max = hi;
            }
            if let Some(vi) = ch.value_index() {
                if let Some(z) = zones.get_mut(vi) {
                    *z = (lo, hi);
                }
            }
            let mut payload = Vec::new();
            encode_deltas(&column, &mut payload);
            write_varint(&mut buf, u64_len(payload.len()));
            write_varint(&mut buf, zigzag_encode(lo));
            write_varint(&mut buf, zigzag_encode(hi));
            buf.extend_from_slice(&payload);
        }

        self.file.seek(SeekFrom::Start(self.data_end))?;
        self.file.write_all(&buf)?;
        self.groups.push(GroupMeta {
            offset: self.data_end,
            len: u64_len(buf.len()),
            rows: u64_len(row_count),
            t_min,
            t_max,
            zones,
        });
        self.data_end += u64_len(buf.len());
        self.synced = false;
        Ok(())
    }

    fn write_footer(&mut self) -> Result<(), StoreError> {
        let mut buf = Vec::new();
        buf.extend_from_slice(FOOTER_MAGIC);
        write_varint(&mut buf, u64_len(self.groups.len()));
        for g in &self.groups {
            write_varint(&mut buf, g.offset);
            write_varint(&mut buf, g.len);
            write_varint(&mut buf, g.rows);
            write_varint(&mut buf, zigzag_encode(g.t_min));
            write_varint(&mut buf, zigzag_encode(g.t_max));
            for (lo, hi) in g.zones {
                write_varint(&mut buf, zigzag_encode(lo));
                write_varint(&mut buf, zigzag_encode(hi));
            }
        }
        write_varint(&mut buf, self.csv_bytes);
        write_varint(&mut buf, u64_len(self.ras.len()));
        let ras_columns: [Vec<i64>; 4] = [
            self.ras.iter().map(|e| e.time.epoch_seconds()).collect(),
            self.ras
                .iter()
                .map(|e| convert::i64_from_usize(e.rack.index()))
                .collect(),
            self.ras.iter().map(|e| kind_index(e.kind)).collect(),
            self.ras
                .iter()
                .map(|e| severity_index(e.severity))
                .collect(),
        ];
        for column in &ras_columns {
            let mut payload = Vec::new();
            encode_deltas(column, &mut payload);
            write_varint(&mut buf, u64_len(payload.len()));
            buf.extend_from_slice(&payload);
        }

        self.file.seek(SeekFrom::Start(self.data_end))?;
        self.file.write_all(&buf)?;
        self.file.write_all(&u64_len(buf.len()).to_le_bytes())?;
        self.file.write_all(TRAILER_MAGIC)?;
        self.file
            .set_len(self.data_end + u64_len(buf.len()) + TRAILER_LEN)?;
        self.file.flush()?;
        self.synced = true;
        Ok(())
    }

    /// Flushes pending rows into a (possibly partial) final group and
    /// rewrites the footer, leaving the file consistent.
    fn commit(&mut self) -> Result<(), StoreError> {
        if !self.pending.is_empty() {
            let take = self.pending.len();
            self.flush_group(take)?;
        }
        if !self.synced {
            self.write_footer()?;
        }
        Ok(())
    }

    fn read_group(&mut self, index: usize, buf: &mut Vec<u8>) -> Result<GroupMeta, StoreError> {
        let Some(meta) = self.groups.get(index).copied() else {
            return Err(StoreError::corrupt(0, format!("no such group {index}")));
        };
        buf.clear();
        buf.resize(usize_len(meta.len), 0);
        self.file.seek(SeekFrom::Start(meta.offset))?;
        self.file.read_exact(buf)?;
        Ok(meta)
    }
}

impl Drop for ColumnarArchive {
    fn drop(&mut self) {
        // Best-effort durability; explicit flush() reports errors.
        let _ = self.commit();
    }
}

fn group_id(index: usize) -> u32 {
    u32::try_from(index).unwrap_or(u32::MAX)
}

fn kind_index(kind: FailureKind) -> i64 {
    convert::i64_from_usize(
        FailureKind::ALL
            .iter()
            .position(|k| *k == kind)
            .unwrap_or(0),
    )
}

fn kind_from_index(i: i64) -> Option<FailureKind> {
    usize::try_from(i)
        .ok()
        .and_then(|i| FailureKind::ALL.get(i).copied())
}

fn severity_index(s: Severity) -> i64 {
    match s {
        Severity::Warn => 0,
        Severity::Fatal => 1,
    }
}

fn severity_from_index(i: i64) -> Option<Severity> {
    match i {
        0 => Some(Severity::Warn),
        1 => Some(Severity::Fatal),
        _ => None,
    }
}

fn rack_from_column(value: i64) -> Option<RackId> {
    usize::try_from(value)
        .ok()
        .filter(|i| *i < RackId::COUNT)
        .map(RackId::from_index)
}

/// Telemetry-header bytes counted once into the equivalent-CSV size.
fn header_bytes() -> u64 {
    u64_len(TELEMETRY_HEADER.len() + 1)
}

fn u64_len(n: usize) -> u64 {
    convert::u64_from_usize(n)
}

fn usize_len(n: u64) -> usize {
    convert::usize_from_u64(n)
}

/// Opens an existing columnar store, parsing and validating its
/// footer.
///
/// # Errors
///
/// [`StoreError::Io`] when the file is missing or unreadable;
/// [`StoreError::Corrupt`] (with the failing offset) on bad magic, a
/// truncated trailer, or an undecodable footer.
fn open_columnar(path: &Path) -> Result<ColumnarArchive, StoreError> {
    let mut file = File::options().read(true).write(true).open(path)?;
    let file_len = file.metadata()?.len();
    let min_len = u64_len(MAGIC.len()) + u64_len(FOOTER_MAGIC.len()) + TRAILER_LEN;
    if file_len < min_len {
        return Err(StoreError::corrupt(
            file_len,
            "file too short for magic + footer + trailer",
        ));
    }
    let mut magic = [0u8; 8];
    file.seek(SeekFrom::Start(0))?;
    file.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(StoreError::corrupt(0, "bad magic (not a MSTORE1 file)"));
    }
    let mut trailer = [0u8; 16];
    file.seek(SeekFrom::Start(file_len - TRAILER_LEN))?;
    file.read_exact(&mut trailer)?;
    let (len_bytes, trailer_magic) = trailer.split_at(8);
    if trailer_magic != TRAILER_MAGIC {
        return Err(StoreError::corrupt(
            file_len - 8,
            "bad trailer magic (truncated or overwritten file)",
        ));
    }
    let footer_len = u64::from_le_bytes(len_bytes.try_into().unwrap_or([0u8; 8]));
    let Some(footer_start) = file_len
        .checked_sub(TRAILER_LEN)
        .and_then(|v| v.checked_sub(footer_len))
        .filter(|start| *start >= u64_len(MAGIC.len()))
    else {
        return Err(StoreError::corrupt(
            file_len - TRAILER_LEN,
            "footer length exceeds file",
        ));
    };
    let mut footer = vec![0u8; usize_len(footer_len)];
    file.seek(SeekFrom::Start(footer_start))?;
    file.read_exact(&mut footer)?;

    let at = |pos: usize| footer_start + u64_len(pos);
    let corrupt = |pos: usize, message: &str| StoreError::corrupt(at(pos), message.to_string());
    if footer.len() < FOOTER_MAGIC.len() || !footer.starts_with(FOOTER_MAGIC) {
        return Err(corrupt(0, "bad footer magic"));
    }
    let mut pos = FOOTER_MAGIC.len();
    fn next(footer: &[u8], pos: &mut usize, base: u64) -> Result<u64, StoreError> {
        read_varint(footer, pos).map_err(|e| {
            StoreError::corrupt(base + u64_len(e.offset), format!("footer: {}", e.message))
        })
    }
    let group_count = usize_len(next(&footer, &mut pos, footer_start)?);
    let mut groups = Vec::with_capacity(group_count.min(1 << 20));
    for gi in 0..group_count {
        let offset = next(&footer, &mut pos, footer_start)?;
        let len = next(&footer, &mut pos, footer_start)?;
        let rows = next(&footer, &mut pos, footer_start)?;
        let t_min = zigzag_decode(next(&footer, &mut pos, footer_start)?);
        let t_max = zigzag_decode(next(&footer, &mut pos, footer_start)?);
        let mut zones = [(0i64, 0i64); 6];
        for z in &mut zones {
            let lo = zigzag_decode(next(&footer, &mut pos, footer_start)?);
            let hi = zigzag_decode(next(&footer, &mut pos, footer_start)?);
            *z = (lo, hi);
        }
        let end = offset.saturating_add(len);
        if offset < u64_len(MAGIC.len()) || end > footer_start {
            return Err(StoreError::corrupt_block(
                at(pos),
                group_id(gi),
                None,
                "group extent escapes the data section",
            ));
        }
        groups.push(GroupMeta {
            offset,
            len,
            rows,
            t_min,
            t_max,
            zones,
        });
    }
    let csv_bytes = next(&footer, &mut pos, footer_start)?;
    let ras_count = usize_len(next(&footer, &mut pos, footer_start)?);
    let mut ras_columns: [Vec<i64>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for column in &mut ras_columns {
        let payload_len = usize_len(next(&footer, &mut pos, footer_start)?);
        let start = pos;
        let Some(payload) = start
            .checked_add(payload_len)
            .and_then(|end| footer.get(start..end))
        else {
            return Err(corrupt(start, "ras payload extends past footer"));
        };
        column.reserve(ras_count);
        decode_deltas(payload, ras_count, column).map_err(|e| {
            StoreError::corrupt(at(start + e.offset), format!("ras column: {}", e.message))
        })?;
        pos = start + payload_len;
    }
    let mut ras = Vec::with_capacity(ras_count);
    let [times, racks, kinds, severities] = &ras_columns;
    for i in 0..ras_count {
        let get = |v: &Vec<i64>| v.get(i).copied().unwrap_or(0);
        let rack = rack_from_column(get(racks))
            .ok_or_else(|| corrupt(pos, "ras rack index out of range"))?;
        let kind = kind_from_index(get(kinds))
            .ok_or_else(|| corrupt(pos, "ras failure kind out of range"))?;
        let severity = severity_from_index(get(severities))
            .ok_or_else(|| corrupt(pos, "ras severity out of range"))?;
        ras.push(RasEvent {
            time: SimTime::from_epoch_seconds(get(times)),
            rack,
            kind,
            severity,
        });
    }

    Ok(ColumnarArchive {
        path: path.to_path_buf(),
        file,
        groups,
        ras,
        pending: Vec::new(),
        group_rows: DEFAULT_GROUP_ROWS,
        csv_bytes,
        data_end: footer_start,
        synced: true,
    })
}

impl Archive for ColumnarArchive {
    fn open(path: &Path) -> Result<Self, StoreError> {
        open_columnar(path)
    }

    fn append_telemetry(&mut self, rows: &[TelemetryRecord]) -> Result<(), StoreError> {
        for row in rows {
            self.csv_bytes += u64_len(row.csv_row().len() + 1);
            self.pending.push(*row);
            self.synced = false;
        }
        while self.pending.len() >= self.group_rows {
            self.flush_group(self.group_rows)?;
        }
        Ok(())
    }

    fn append_ras(&mut self, events: &[RasEvent]) -> Result<(), StoreError> {
        for e in events {
            self.csv_bytes += u64_len(ras_csv_row(e).len() + 1);
            self.ras.push(*e);
            self.synced = false;
        }
        Ok(())
    }

    fn scan_span(
        &mut self,
        from: SimTime,
        to: SimTime,
        projection: Projection,
        sink: &mut dyn FnMut(&TelemetryRecord),
    ) -> Result<ScanStats, StoreError> {
        self.commit()?;
        let (from_s, to_s) = (from.epoch_seconds(), to.epoch_seconds());
        let mut stats = ScanStats {
            groups_total: u64_len(self.groups.len()),
            ..ScanStats::default()
        };
        let mut buf = Vec::new();
        let mut columns: Vec<Vec<i64>> = vec![Vec::new(); Channel::ALL.len()];
        for gi in 0..self.groups.len() {
            let Some(meta) = self.groups.get(gi).copied() else {
                continue;
            };
            // Zone-map pruning: skip any group whose time range misses
            // the half-open query span entirely.
            if meta.t_max < from_s || meta.t_min >= to_s {
                continue;
            }
            stats.groups_scanned += 1;
            stats.bytes_read += meta.len;
            let meta = self.read_group(gi, &mut buf)?;
            let mut pos = 0usize;
            let block_err = |pos: usize, ch: Option<Channel>, message: String| {
                StoreError::corrupt_block(meta.offset + u64_len(pos), group_id(gi), ch, message)
            };
            let rows = usize_len(
                read_varint(&buf, &mut pos)
                    .map_err(|e| block_err(e.offset, None, e.message.to_string()))?,
            );
            if rows != usize_len(meta.rows) {
                return Err(block_err(
                    0,
                    None,
                    "group row count disagrees with footer".into(),
                ));
            }
            for (ci, ch) in Channel::ALL.iter().enumerate() {
                let payload_len = usize_len(
                    read_varint(&buf, &mut pos)
                        .map_err(|e| block_err(e.offset, Some(*ch), e.message.to_string()))?,
                );
                let _zone_lo = read_varint(&buf, &mut pos)
                    .map_err(|e| block_err(e.offset, Some(*ch), e.message.to_string()))?;
                let _zone_hi = read_varint(&buf, &mut pos)
                    .map_err(|e| block_err(e.offset, Some(*ch), e.message.to_string()))?;
                let Some(column) = columns.get_mut(ci) else {
                    continue;
                };
                column.clear();
                let start = pos;
                let Some(payload) = buf.get(start..start + payload_len) else {
                    return Err(block_err(
                        start,
                        Some(*ch),
                        "column payload extends past group".into(),
                    ));
                };
                if projection.contains(*ch) {
                    stats.blocks_decoded += 1;
                    decode_deltas(payload, rows, column).map_err(|e| {
                        block_err(start + e.offset, Some(*ch), e.message.to_string())
                    })?;
                }
                pos = start + payload_len;
            }
            if pos != buf.len() {
                return Err(block_err(
                    pos,
                    None,
                    "trailing bytes after final block".into(),
                ));
            }
            let value_column = |vi: usize, i: usize| -> i64 {
                columns
                    .get(vi + 2)
                    .and_then(|c| c.get(i))
                    .copied()
                    .unwrap_or(0)
            };
            for i in 0..rows {
                let t = columns.first().and_then(|c| c.get(i)).copied().unwrap_or(0);
                if t < from_s || t >= to_s {
                    continue;
                }
                let rack_raw = columns.get(1).and_then(|c| c.get(i)).copied().unwrap_or(-1);
                let Some(rack) = rack_from_column(rack_raw) else {
                    return Err(block_err(
                        0,
                        Some(Channel::Rack),
                        format!("rack index {rack_raw} out of range"),
                    ));
                };
                let record = TelemetryRecord {
                    time: SimTime::from_epoch_seconds(t),
                    rack,
                    milli: [
                        value_column(0, i),
                        value_column(1, i),
                        value_column(2, i),
                        value_column(3, i),
                        value_column(4, i),
                        value_column(5, i),
                    ],
                };
                stats.rows_scanned += 1;
                sink(&record);
            }
        }
        Ok(stats)
    }

    fn ras_events(&mut self) -> Result<Vec<RasEvent>, StoreError> {
        self.commit()?;
        Ok(self.ras.clone())
    }

    fn stat(&mut self) -> Result<ArchiveStat, StoreError> {
        self.commit()?;
        let file_bytes = self.file.metadata()?.len();
        let mut rows = 0u64;
        let mut time_range: Option<(i64, i64)> = None;
        let mut zones: Option<[(i64, i64); 6]> = None;
        for g in &self.groups {
            rows += g.rows;
            time_range = Some(match time_range {
                None => (g.t_min, g.t_max),
                Some((lo, hi)) => (lo.min(g.t_min), hi.max(g.t_max)),
            });
            zones = Some(match zones {
                None => g.zones,
                Some(mut merged) => {
                    for (m, z) in merged.iter_mut().zip(g.zones.iter()) {
                        m.0 = m.0.min(z.0);
                        m.1 = m.1.max(z.1);
                    }
                    merged
                }
            });
        }
        Ok(ArchiveStat {
            rows,
            ras_events: u64_len(self.ras.len()),
            groups: u64_len(self.groups.len()),
            file_bytes,
            csv_bytes: self.csv_bytes,
            time_range: time_range.map(|(lo, hi)| {
                (
                    SimTime::from_epoch_seconds(lo),
                    SimTime::from_epoch_seconds(hi),
                )
            }),
            zones,
        })
    }

    fn flush(&mut self) -> Result<(), StoreError> {
        self.commit()
    }
}

/// Renders a RAS event as its CSV row (no newline) — the accounting
/// basis for the equivalent-CSV size and the text backend's format.
#[must_use]
pub fn ras_csv_row(e: &RasEvent) -> String {
    format!(
        "{},{},{},{}",
        e.time.epoch_seconds(),
        e.rack,
        e.kind.tag(),
        e.severity
    )
}
