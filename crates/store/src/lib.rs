//! # mira-store — the columnar telemetry archive
//!
//! A standard-library-only storage layer for Mira's coolant-monitor
//! telemetry and RAS log, fronted by one [`Archive`] trait with three
//! backends:
//!
//! - [`ColumnarArchive`]: the binary columnar format — per-channel
//!   column blocks (delta + zigzag + varint) grouped into row groups,
//!   each block carrying a min/max zone map, with a footer time index
//!   so span queries read only the row groups that intersect the span
//!   and decode only the column blocks the projection asks for.
//! - [`CsvArchive`]: the pre-existing CSV format (telemetry file plus
//!   a `.ras` sidecar), kept as a backend so every query surface works
//!   against either representation.
//! - [`MemArchive`]: an in-memory backend for tests and round-trip
//!   oracles.
//!
//! All backends speak [`TelemetryRecord`] — channel values quantized
//! to milli-units *through* the `{:.3}` rendering the exports use — so
//! a span scanned from the columnar store, from CSV, or from a live
//! simulation re-renders byte-identical output.

pub mod codec;
pub mod columnar;
pub mod csvfile;
pub mod error;
pub mod mem;
pub mod record;

use std::path::Path;

use mira_obs::MetricsPartial;
use mira_ras::RasEvent;
use mira_timeseries::SimTime;
use mira_units::convert;

pub use columnar::{ras_csv_row, ColumnarArchive, DEFAULT_GROUP_ROWS};
pub use csvfile::CsvArchive;
pub use error::StoreError;
pub use mem::MemArchive;
pub use record::{
    f64_from_milli, format_milli, milli_from_f64, milli_from_str, Channel, Projection,
    TelemetryRecord, TELEMETRY_HEADER,
};

/// The RAS CSV header shared by the CSV backend and the core exports.
pub const RAS_HEADER: &str = "time,rack,kind,severity";

/// Counters describing what one [`Archive::scan_span`] call touched —
/// the observable basis for the "reads only intersecting blocks"
/// guarantee.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Rows delivered to the sink (rows inside the query span).
    pub rows_scanned: u64,
    /// Row groups in the archive, scanned or not.
    pub groups_total: u64,
    /// Row groups whose zone map intersected the span and were read.
    pub groups_scanned: u64,
    /// Column blocks actually decoded (pruned groups and unprojected
    /// channels decode nothing).
    pub blocks_decoded: u64,
    /// Data bytes read from the backing file.
    pub bytes_read: u64,
}

impl ScanStats {
    /// Folds another scan's counters into this one.
    pub fn absorb(&mut self, other: ScanStats) {
        self.rows_scanned += other.rows_scanned;
        self.groups_total += other.groups_total;
        self.groups_scanned += other.groups_scanned;
        self.blocks_decoded += other.blocks_decoded;
        self.bytes_read += other.bytes_read;
    }

    /// Records the counters into a metrics partial under `store.*`
    /// keys, so scans show up in the observability surface.
    pub fn record(&self, metrics: &mut MetricsPartial) {
        metrics.add("store.rows_scanned", self.rows_scanned);
        metrics.add("store.groups_total", self.groups_total);
        metrics.add("store.groups_scanned", self.groups_scanned);
        metrics.add("store.blocks_decoded", self.blocks_decoded);
        metrics.add("store.bytes_read", self.bytes_read);
    }
}

/// Archive-wide shape and size summary, as printed by
/// `mira-ops archive stat`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchiveStat {
    /// Telemetry rows stored.
    pub rows: u64,
    /// RAS events stored.
    pub ras_events: u64,
    /// Row groups (1 for non-columnar backends with any rows).
    pub groups: u64,
    /// Bytes the archive occupies on disk.
    pub file_bytes: u64,
    /// Bytes the same data occupies as CSV (the compression baseline).
    pub csv_bytes: u64,
    /// Archived time range (min, max), when any rows exist.
    pub time_range: Option<(SimTime, SimTime)>,
    /// Global per-channel (min, max) zone maps in milli-units,
    /// [`Channel::VALUES`] order, when any rows exist.
    pub zones: Option<[(i64, i64); 6]>,
}

impl ArchiveStat {
    /// CSV bytes per stored byte — how much smaller than CSV the
    /// archive is.
    #[must_use]
    pub fn compression_ratio(&self) -> f64 {
        if self.file_bytes == 0 {
            return 0.0;
        }
        convert::f64_from_u64(self.csv_bytes) / convert::f64_from_u64(self.file_bytes)
    }
}

/// The unified archive API: open a store, append telemetry and RAS
/// rows, and scan a time span with channel projection.
///
/// Scans deliver rows through a sink callback in deterministic order
/// (append order, filtered to the half-open span `[from, to)`) and
/// report [`ScanStats`] so callers can assert how much data was
/// touched. Implementations buffer appends; [`Archive::flush`] (and
/// drop, best-effort) makes them durable.
///
/// `Debug` is a supertrait so `Box<dyn Archive>` can sit inside
/// `#[derive(Debug)]` service state (e.g. the replay store behind
/// `mira-ops serve`).
pub trait Archive: std::fmt::Debug {
    /// Opens an existing archive at `path`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the file cannot be opened;
    /// [`StoreError::Corrupt`] when it is not a valid archive.
    fn open(path: &Path) -> Result<Self, StoreError>
    where
        Self: Sized;

    /// Appends telemetry rows (kept in append order).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when buffered groups cannot be written.
    fn append_telemetry(&mut self, rows: &[TelemetryRecord]) -> Result<(), StoreError>;

    /// Appends RAS events (kept in append order).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the backing file cannot be written.
    fn append_ras(&mut self, events: &[RasEvent]) -> Result<(), StoreError>;

    /// Scans the half-open span `[from, to)`, delivering each matching
    /// row to `sink` with at least the projected channels materialized
    /// (unprojected channels read as `0`).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on read failure, [`StoreError::Corrupt`] /
    /// [`StoreError::Parse`] when stored data cannot be decoded.
    fn scan_span(
        &mut self,
        from: SimTime,
        to: SimTime,
        projection: Projection,
        sink: &mut dyn FnMut(&TelemetryRecord),
    ) -> Result<ScanStats, StoreError>;

    /// All stored RAS events in append order.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] / [`StoreError::Parse`] when the RAS section
    /// cannot be read.
    fn ras_events(&mut self) -> Result<Vec<RasEvent>, StoreError>;

    /// Shape and size summary of the archive.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the backing file cannot be inspected.
    fn stat(&mut self) -> Result<ArchiveStat, StoreError>;

    /// Makes all appended data durable.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when writing fails.
    fn flush(&mut self) -> Result<(), StoreError>;
}

/// Opens `path` as whichever on-disk backend it actually is: columnar
/// when the file leads with the `MSTORE1` magic, CSV otherwise.
///
/// # Errors
///
/// [`StoreError::Io`] when the file is missing or unreadable;
/// [`StoreError::Corrupt`] when a columnar file fails validation.
pub fn open_archive(path: &Path) -> Result<Box<dyn Archive + Send>, StoreError> {
    let head = {
        use std::io::Read;
        let mut f = std::fs::File::open(path)?;
        let mut head = [0u8; 8];
        let n = f.read(&mut head)?;
        head.get(..n).unwrap_or_default().to_vec()
    };
    if head.starts_with(b"MSTORE1\n") {
        Ok(Box::new(ColumnarArchive::open(path)?))
    } else {
        Ok(Box::new(CsvArchive::open(path)?))
    }
}
