//! The canonical telemetry row model shared by every archive backend.
//!
//! Channel values are held as **milli-units** (`i64`, three implied
//! decimals) derived from the same `{:.3}` rendering the CSV and
//! NDJSON exports use. Quantizing *through the rendered string* is the
//! backbone of the byte-identity guarantee: a row written to CSV, a
//! row packed into the columnar store, and a row re-simulated all pass
//! through the identical decimal text, so any export path re-renders
//! the exact same bytes.

use mira_cooling::CoolantMonitorSample;
use mira_facility::RackId;
use mira_timeseries::SimTime;
use mira_units::{convert, Fahrenheit, Gpm, Kilowatts, RelHumidity};

/// One archived column: the two key columns plus the six telemetry
/// channels, in on-disk block order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Channel {
    /// Sample timestamp (epoch seconds).
    Time,
    /// Rack identity (grid index).
    Rack,
    /// Drop ceiling dry-bulb temperature, °F.
    DcTempF,
    /// Drop ceiling relative humidity, %RH.
    DcRh,
    /// Coolant flow, GPM.
    FlowGpm,
    /// Inlet coolant temperature, °F.
    InletF,
    /// Outlet coolant temperature, °F.
    OutletF,
    /// Rack power, kW.
    PowerKw,
}

impl Channel {
    /// Every column, in on-disk block order.
    pub const ALL: [Channel; 8] = [
        Channel::Time,
        Channel::Rack,
        Channel::DcTempF,
        Channel::DcRh,
        Channel::FlowGpm,
        Channel::InletF,
        Channel::OutletF,
        Channel::PowerKw,
    ];

    /// The six value channels (everything but the time/rack keys), in
    /// CSV column order.
    pub const VALUES: [Channel; 6] = [
        Channel::DcTempF,
        Channel::DcRh,
        Channel::FlowGpm,
        Channel::InletF,
        Channel::OutletF,
        Channel::PowerKw,
    ];

    /// The stable column tag used in headers, NDJSON keys, and error
    /// context.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            Channel::Time => "time",
            Channel::Rack => "rack",
            Channel::DcTempF => "dc_temp_f",
            Channel::DcRh => "dc_rh",
            Channel::FlowGpm => "flow_gpm",
            Channel::InletF => "inlet_f",
            Channel::OutletF => "outlet_f",
            Channel::PowerKw => "power_kw",
        }
    }

    /// This channel's position in [`Channel::VALUES`], or `None` for
    /// the time/rack key columns.
    #[must_use]
    pub fn value_index(self) -> Option<usize> {
        Channel::VALUES.iter().position(|c| *c == self)
    }
}

/// A channel projection: which value columns a scan must decode. The
/// time and rack key columns are always included.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Projection {
    mask: u8,
}

impl Projection {
    /// Every channel (the default for full-row exports).
    #[must_use]
    pub fn all() -> Self {
        Projection { mask: 0x3f }
    }

    /// Keys only: time and rack, no value channels decoded.
    #[must_use]
    pub fn keys_only() -> Self {
        Projection { mask: 0 }
    }

    /// Just the named channels (time/rack entries are ignored; they
    /// are always present).
    #[must_use]
    pub fn only(channels: &[Channel]) -> Self {
        let mut mask = 0u8;
        for ch in channels {
            if let Some(i) = ch.value_index() {
                mask |= 1 << i;
            }
        }
        Projection { mask }
    }

    /// Whether a scan must materialize `channel`. Always true for the
    /// time/rack keys.
    #[must_use]
    pub fn contains(self, channel: Channel) -> bool {
        match channel.value_index() {
            None => true,
            Some(i) => self.mask & (1 << i) != 0,
        }
    }

    /// How many value channels this projection decodes.
    #[must_use]
    pub fn value_count(self) -> u32 {
        self.mask.count_ones()
    }
}

impl Default for Projection {
    fn default() -> Self {
        Projection::all()
    }
}

/// The telemetry CSV header every text surface shares.
pub const TELEMETRY_HEADER: &str = "time,rack,dc_temp_f,dc_rh,flow_gpm,inlet_f,outlet_f,power_kw";

/// One archived coolant-monitor row: keys plus the six channel values
/// in milli-units, [`Channel::VALUES`] order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryRecord {
    /// Sample timestamp.
    pub time: SimTime,
    /// Sampled rack.
    pub rack: RackId,
    /// Channel values in milli-units (value × 1000, quantized through
    /// the `{:.3}` rendering), [`Channel::VALUES`] order.
    pub milli: [i64; 6],
}

impl TelemetryRecord {
    /// Quantizes a live sample into its archived form — the same
    /// rounding the CSV export applies.
    #[must_use]
    pub fn from_sample(s: &CoolantMonitorSample) -> Self {
        TelemetryRecord {
            time: s.time,
            rack: s.rack,
            milli: [
                milli_from_f64(s.dc_temperature.value()),
                milli_from_f64(s.dc_humidity.value()),
                milli_from_f64(s.flow.value()),
                milli_from_f64(s.inlet.value()),
                milli_from_f64(s.outlet.value()),
                milli_from_f64(s.power.value()),
            ],
        }
    }

    /// Rehydrates the quantized sample (3-decimal precision).
    #[must_use]
    pub fn to_sample(&self) -> CoolantMonitorSample {
        let f = |i: usize| self.milli.get(i).map_or(0.0, |m| f64_from_milli(*m));
        CoolantMonitorSample {
            time: self.time,
            rack: self.rack,
            dc_temperature: Fahrenheit::new(f(0)),
            dc_humidity: RelHumidity::new(f(1)),
            flow: Gpm::new(f(2)),
            inlet: Fahrenheit::new(f(3)),
            outlet: Fahrenheit::new(f(4)),
            power: Kilowatts::new(f(5)),
        }
    }

    /// The milli-unit value of one channel (`None` for the time/rack
    /// key columns, which are not milli-scaled).
    #[must_use]
    pub fn value_milli(&self, channel: Channel) -> Option<i64> {
        channel
            .value_index()
            .and_then(|i| self.milli.get(i).copied())
    }

    /// This row as a CSV line (no trailing newline), byte-identical to
    /// the `{:.3}`-rendered export row.
    #[must_use]
    pub fn csv_row(&self) -> String {
        let m = &self.milli;
        let f = |i: usize| m.get(i).map_or_else(String::new, |v| format_milli(*v));
        format!(
            "{},{},{},{},{},{},{},{}",
            self.time.epoch_seconds(),
            self.rack,
            f(0),
            f(1),
            f(2),
            f(3),
            f(4),
            f(5),
        )
    }

    /// This row as an NDJSON object (no trailing newline), matching
    /// the NDJSON telemetry export byte for byte.
    #[must_use]
    pub fn ndjson_row(&self) -> String {
        let m = &self.milli;
        let f = |i: usize| m.get(i).map_or_else(String::new, |v| format_milli(*v));
        format!(
            "{{\"time\":{},\"rack\":\"{}\",\"dc_temp_f\":{},\"dc_rh\":{},\
             \"flow_gpm\":{},\"inlet_f\":{},\"outlet_f\":{},\"power_kw\":{}}}",
            self.time.epoch_seconds(),
            self.rack,
            f(0),
            f(1),
            f(2),
            f(3),
            f(4),
            f(5),
        )
    }
}

/// Quantizes a float to milli-units through its `{:.3}` rendering, so
/// the quantized integer re-renders to the identical decimal text.
/// Non-finite values quantize to `0`; magnitudes beyond ±4e15 clamp
/// (far outside any physical channel range). `-0.0005 < v <= -0.0`
/// renders as `-0.000` but quantizes to plain `0` (integers carry no
/// negative zero); [`format_milli`] therefore emits `0.000` — both
/// export paths share this normalization, so identity still holds.
#[must_use]
pub fn milli_from_f64(v: f64) -> i64 {
    let v = if v.is_finite() {
        v.clamp(-4.0e15, 4.0e15)
    } else {
        0.0
    };
    milli_from_canonical(&format!("{v:.3}")).unwrap_or(0)
}

/// Parses a decimal field into milli-units. Canonical fields
/// (`[-]digits[.frac]` with at most three fractional digits) convert
/// exactly, text-to-integer; anything else falls back to an `f64`
/// parse plus [`milli_from_f64`] quantization. `None` when the field
/// is not a number at all.
#[must_use]
pub fn milli_from_str(s: &str) -> Option<i64> {
    let t = s.trim();
    match milli_from_canonical(t) {
        Some(m) => Some(m),
        None => t.parse::<f64>().ok().map(milli_from_f64),
    }
}

fn milli_from_canonical(t: &str) -> Option<i64> {
    let (neg, body) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let (int_part, frac_part) = match body.split_once('.') {
        Some((i, f)) => (i, f),
        None => (body, ""),
    };
    let digits = |s: &str| !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit());
    if !digits(int_part) || frac_part.len() > 3 || !(frac_part.is_empty() || digits(frac_part)) {
        return None;
    }
    let int: i64 = int_part.parse().ok()?;
    let frac: i64 = if frac_part.is_empty() {
        0
    } else {
        format!("{frac_part:0<3}").parse().ok()?
    };
    let magnitude = int.checked_mul(1000)?.checked_add(frac)?;
    Some(if neg { -magnitude } else { magnitude })
}

/// Renders milli-units exactly as `{:.3}` renders the value they were
/// quantized from.
#[must_use]
pub fn format_milli(m: i64) -> String {
    let sign = if m < 0 { "-" } else { "" };
    let a = m.unsigned_abs();
    format!("{sign}{}.{:03}", a / 1000, a % 1000)
}

/// The float a milli-unit value decodes to — identical to parsing its
/// decimal rendering (both are the correctly-rounded double of the
/// same real number).
#[must_use]
pub fn f64_from_milli(m: i64) -> f64 {
    convert::f64_from_i64(m) / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_milli_matches_float_rendering() {
        for v in [
            0.0, 1.0, -1.0, 70.1234, 25.9995, 64.0005, -12.345, 99999.111, 0.001, -0.001,
        ] {
            let m = milli_from_f64(v);
            assert_eq!(format_milli(m), format!("{v:.3}"), "{v}");
        }
    }

    #[test]
    fn negative_zero_band_normalizes() {
        // {:.3} renders these as "-0.000"; the integer domain folds
        // them to plain zero and every backend renders "0.000".
        for v in [-0.0, -0.0004] {
            assert_eq!(milli_from_f64(v), 0);
            assert_eq!(format_milli(milli_from_f64(v)), "0.000");
        }
    }

    #[test]
    fn non_finite_quantizes_to_zero() {
        assert_eq!(milli_from_f64(f64::NAN), 0);
        assert_eq!(milli_from_f64(f64::INFINITY), 0);
        assert_eq!(milli_from_f64(f64::NEG_INFINITY), 0);
    }

    #[test]
    fn canonical_fields_parse_exactly() {
        assert_eq!(milli_from_str("70.123"), Some(70_123));
        assert_eq!(milli_from_str("-3.5"), Some(-3_500));
        assert_eq!(milli_from_str("42"), Some(42_000));
        assert_eq!(milli_from_str(" 0.000 "), Some(0));
        // Non-canonical but numeric: falls back to float quantization.
        assert_eq!(milli_from_str("1e3"), Some(1_000_000));
        assert_eq!(milli_from_str("70.12345"), Some(70_123));
        assert_eq!(milli_from_str("nope"), None);
    }

    #[test]
    fn f64_from_milli_matches_text_parse() {
        for m in [0i64, 70_123, -12_345, 999_999_999, 1, -1] {
            let text = format_milli(m);
            let parsed: f64 = text.parse().expect("decimal");
            assert_eq!(f64_from_milli(m).to_bits(), parsed.to_bits(), "{text}");
        }
    }

    #[test]
    fn projection_masks_value_channels_only() {
        let p = Projection::only(&[Channel::FlowGpm, Channel::Time]);
        assert!(p.contains(Channel::Time));
        assert!(p.contains(Channel::Rack));
        assert!(p.contains(Channel::FlowGpm));
        assert!(!p.contains(Channel::PowerKw));
        assert_eq!(p.value_count(), 1);
        assert_eq!(Projection::all().value_count(), 6);
        assert_eq!(Projection::keys_only().value_count(), 0);
    }

    #[test]
    fn channel_tags_compose_the_header() {
        let tags: Vec<&str> = Channel::ALL.iter().map(|c| c.tag()).collect();
        assert_eq!(tags.join(","), TELEMETRY_HEADER);
    }
}
