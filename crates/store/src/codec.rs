//! The integer codecs every column block is built from: LEB128
//! varints, zigzag sign folding, and delta chains.
//!
//! All three compose into the block payload encoding: a column of
//! `i64` values is stored as `zigzag(v[0]), zigzag(v[1] - v[0]), ...`
//! with each zigzagged word written as a varint. Deltas use *wrapping*
//! subtraction so the chain is total over the full `i64` domain
//! (`i64::MIN - i64::MAX` wraps instead of overflowing); decoding
//! wraps the additions back, so round-trips are exact everywhere.

/// A decode failure inside one payload, positioned by byte offset so
/// callers can lift it into a structured corruption error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Byte offset within the payload where decoding failed.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

/// Folds a signed value into an unsigned one with the sign in bit 0,
/// so small-magnitude values of either sign become small varints.
///
/// Runs in the `u64` domain (bit-cast via little-endian bytes) because
/// `i64 << 1` overflows for half the domain.
#[must_use]
pub fn zigzag_encode(n: i64) -> u64 {
    let bits = u64::from_le_bytes(n.to_le_bytes());
    (bits << 1) ^ (bits >> 63).wrapping_neg()
}

/// Inverse of [`zigzag_encode`]; total over all of `u64`.
#[must_use]
pub fn zigzag_decode(z: u64) -> i64 {
    i64::from_le_bytes(((z >> 1) ^ (z & 1).wrapping_neg()).to_le_bytes())
}

/// Appends `v` as an LEB128 varint (1–10 bytes, 7 payload bits per
/// byte, high bit = continuation).
pub fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let low = u8::try_from(v & 0x7f).unwrap_or(0);
        v >>= 7;
        if v == 0 {
            buf.push(low);
            return;
        }
        buf.push(low | 0x80);
    }
}

/// Reads one LEB128 varint starting at `*pos`, advancing `*pos` past
/// it.
///
/// # Errors
///
/// [`CodecError`] when the payload ends mid-varint or the varint runs
/// longer than the 10 bytes a `u64` can need (an overlong or corrupt
/// encoding).
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut value: u64 = 0;
    let mut shift: u32 = 0;
    let start = *pos;
    loop {
        let Some(&byte) = bytes.get(*pos) else {
            return Err(CodecError {
                offset: start,
                message: "truncated varint",
            });
        };
        *pos += 1;
        if shift >= 63 && byte > 1 {
            return Err(CodecError {
                offset: start,
                message: "varint overflows u64",
            });
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(CodecError {
                offset: start,
                message: "varint longer than 10 bytes",
            });
        }
    }
}

/// Encodes a column of values as a delta + zigzag + varint stream:
/// the first value absolute, every later one as a wrapping delta from
/// its predecessor. Empty columns produce an empty payload.
pub fn encode_deltas(values: &[i64], out: &mut Vec<u8>) {
    let mut prev: i64 = 0;
    let mut first = true;
    for &v in values {
        let delta = if first { v } else { v.wrapping_sub(prev) };
        write_varint(out, zigzag_encode(delta));
        prev = v;
        first = false;
    }
}

/// Decodes exactly `count` values from a [`encode_deltas`] payload,
/// appending them to `out`.
///
/// # Errors
///
/// [`CodecError`] when the payload is truncated, malformed, or carries
/// trailing bytes beyond the `count` values it claims.
pub fn decode_deltas(bytes: &[u8], count: usize, out: &mut Vec<i64>) -> Result<(), CodecError> {
    let mut pos = 0usize;
    let mut prev: i64 = 0;
    for i in 0..count {
        let z = read_varint(bytes, &mut pos)?;
        let delta = zigzag_decode(z);
        let value = if i == 0 {
            delta
        } else {
            prev.wrapping_add(delta)
        };
        out.push(value);
        prev = value;
    }
    if pos != bytes.len() {
        return Err(CodecError {
            offset: pos,
            message: "trailing bytes after final value",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[i64]) {
        let mut buf = Vec::new();
        encode_deltas(values, &mut buf);
        let mut back = Vec::new();
        decode_deltas(&buf, values.len(), &mut back).expect("decode");
        assert_eq!(back, values);
    }

    #[test]
    fn zigzag_folds_small_magnitudes_small() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        assert_eq!(zigzag_encode(i64::MAX), u64::MAX - 1);
        assert_eq!(zigzag_encode(i64::MIN), u64::MAX);
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for n in [
            0,
            1,
            -1,
            42,
            -42,
            i64::MAX,
            i64::MIN,
            i64::MAX - 1,
            i64::MIN + 1,
        ] {
            assert_eq!(zigzag_decode(zigzag_encode(n)), n, "{n}");
        }
    }

    #[test]
    fn varint_round_trips_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Ok(v), "{v}");
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_detects_truncation_and_overflow() {
        // A continuation bit with nothing after it.
        let mut pos = 0;
        let e = read_varint(&[0x80], &mut pos).unwrap_err();
        assert_eq!(e.message, "truncated varint");
        // Eleven continuation bytes cannot encode a u64.
        let mut pos = 0;
        let e = read_varint(&[0x80; 11], &mut pos).unwrap_err();
        assert!(e.message.contains("varint"), "{}", e.message);
        // A tenth byte carrying more than the single remaining bit.
        let mut bytes = vec![0x80u8; 9];
        bytes.push(0x02);
        let mut pos = 0;
        let e = read_varint(&bytes, &mut pos).unwrap_err();
        assert_eq!(e.message, "varint overflows u64");
    }

    #[test]
    fn delta_chain_round_trips_wrapping_extremes() {
        roundtrip(&[]);
        roundtrip(&[7]);
        roundtrip(&[i64::MIN]);
        roundtrip(&[i64::MAX]);
        roundtrip(&[i64::MIN, i64::MAX, i64::MIN, 0, -1, 1]);
        roundtrip(&[5, 4, 3, 100, -100, 0, 0, 0]);
    }

    #[test]
    fn delta_decode_rejects_trailing_bytes() {
        let mut buf = Vec::new();
        encode_deltas(&[1, 2, 3], &mut buf);
        buf.push(0);
        let mut out = Vec::new();
        let e = decode_deltas(&buf, 3, &mut out).unwrap_err();
        assert_eq!(e.message, "trailing bytes after final value");
    }

    #[test]
    fn delta_decode_rejects_truncation() {
        let mut buf = Vec::new();
        encode_deltas(&[1, 2, 3], &mut buf);
        buf.pop();
        let mut out = Vec::new();
        assert!(decode_deltas(&buf, 3, &mut out).is_err());
    }
}
