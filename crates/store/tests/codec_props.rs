//! Property tests for the storage codecs: zigzag, LEB128 varint, and
//! delta encoding round-trip exactly over the full `i64`/`u64` domain,
//! including the boundary values the columnar format leans on (first
//! absolute value, negative deltas, `i64::MIN`/`MAX` wrap-around).
//!
//! Decoding is also exercised against truncated and trailing-garbage
//! inputs: every failure must be a structured [`CodecError`], never a
//! panic.

use proptest::prelude::*;

use mira_store::codec::{
    decode_deltas, encode_deltas, read_varint, write_varint, zigzag_decode, zigzag_encode,
};

/// Spread samples across the whole magnitude range: plain draws from
/// `i64::MIN..=MAX` almost never produce small numbers, but small
/// deltas are the codec's hot path.
fn stretch(raw: i64, shift: u32) -> i64 {
    raw >> (shift % 64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn zigzag_round_trips(raw in i64::MIN..=i64::MAX, shift in 0u32..64) {
        let n = stretch(raw, shift);
        prop_assert_eq!(zigzag_decode(zigzag_encode(n)), n);
    }

    #[test]
    fn zigzag_keeps_small_magnitudes_small(n in -1000i64..1000) {
        // The point of zigzag: |n| ≤ 1000 must encode below 2001, so
        // the varint stays in two bytes.
        prop_assert!(zigzag_encode(n) <= 2000);
    }

    #[test]
    fn varint_round_trips(raw in 0u64..=u64::MAX, shift in 0u32..64) {
        let v = raw >> (shift % 64);
        let mut buf = Vec::new();
        write_varint(&mut buf, v);
        prop_assert!(buf.len() <= 10);
        let mut pos = 0;
        prop_assert_eq!(read_varint(&buf, &mut pos).expect("round trip"), v);
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncated_varints_error_not_panic(raw in 0u64..=u64::MAX, cut in 0usize..10) {
        let mut buf = Vec::new();
        write_varint(&mut buf, raw | (1 << 63)); // force a long encoding
        let cut = cut.min(buf.len() - 1);
        let mut pos = 0;
        let err = read_varint(&buf[..cut], &mut pos).expect_err("truncated");
        prop_assert!(err.message.contains("truncated"), "{}", err.message);
    }

    #[test]
    fn deltas_round_trip(
        raws in proptest::collection::vec(i64::MIN..=i64::MAX, 0..200),
        shift in 0u32..64,
    ) {
        let values: Vec<i64> = raws.iter().map(|&r| stretch(r, shift)).collect();
        let mut buf = Vec::new();
        encode_deltas(&values, &mut buf);
        let mut out = Vec::new();
        decode_deltas(&buf, values.len(), &mut out).expect("round trip");
        prop_assert_eq!(out, values);
    }

    #[test]
    fn delta_payloads_reject_trailing_bytes(
        raws in proptest::collection::vec(-1_000_000i64..1_000_000, 1..50),
        garbage in 1u8..=255,
    ) {
        let mut buf = Vec::new();
        encode_deltas(&raws, &mut buf);
        buf.push(garbage);
        let mut out = Vec::new();
        let err = decode_deltas(&buf, raws.len(), &mut out).expect_err("trailing byte");
        prop_assert!(!err.message.is_empty());
    }
}

#[test]
fn boundary_values_round_trip_exactly() {
    // Adjacent extremes force the largest possible wrapping deltas.
    let cases: &[&[i64]] = &[
        &[],
        &[0],
        &[i64::MIN],
        &[i64::MAX],
        &[i64::MIN, i64::MAX],
        &[i64::MAX, i64::MIN],
        &[i64::MIN, i64::MAX, i64::MIN, 0, i64::MAX],
        &[0, -1, 1, -2, 2],
    ];
    for values in cases {
        let mut buf = Vec::new();
        encode_deltas(values, &mut buf);
        let mut out = Vec::new();
        decode_deltas(&buf, values.len(), &mut out).unwrap_or_else(|e| {
            panic!("decode of {values:?} failed: {e:?}");
        });
        assert_eq!(&out, values, "{values:?}");
    }
    for v in [0, 1, u64::MAX, u64::MAX - 1, 127, 128, 1 << 62] {
        let mut buf = Vec::new();
        write_varint(&mut buf, v);
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos).expect("varint"), v);
    }
    for n in [i64::MIN, i64::MIN + 1, -1, 0, 1, i64::MAX - 1, i64::MAX] {
        assert_eq!(zigzag_decode(zigzag_encode(n)), n);
    }
}

#[test]
fn overlong_varints_are_rejected() {
    // 11 continuation bytes: any continuation byte at bit 63 already
    // overflows a u64, so the decoder stops at the 10th byte.
    let overlong = [0x80u8; 11];
    let mut pos = 0;
    let err = read_varint(&overlong, &mut pos).expect_err("overlong");
    assert!(err.message.contains("overflows"), "{}", err.message);

    // 10 bytes whose top byte overflows 64 bits.
    let mut overflow = vec![0xFFu8; 9];
    overflow.push(0x7F);
    let mut pos = 0;
    let err = read_varint(&overflow, &mut pos).expect_err("overflow");
    assert!(err.message.contains("overflows"), "{}", err.message);

    // The canonical u64::MAX encoding (9×0xFF then 0x01) is the
    // longest VALID varint and must still decode.
    let mut max = vec![0xFFu8; 9];
    max.push(0x01);
    let mut pos = 0;
    assert_eq!(read_varint(&max, &mut pos).expect("u64::MAX"), u64::MAX);
}
