//! Cross-backend round-trip properties: the columnar store, the CSV
//! backend, and the in-memory oracle must agree byte-for-byte on every
//! scan, and a damaged columnar file must always surface a structured
//! [`StoreError`] — never a panic.

use std::path::{Path, PathBuf};

use proptest::prelude::*;

use mira_facility::RackId;
use mira_ras::{FailureKind, RasEvent, Severity};
use mira_store::{
    open_archive, Archive, Channel, ColumnarArchive, CsvArchive, MemArchive, Projection,
    StoreError, TelemetryRecord,
};
use mira_timeseries::SimTime;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mira-store-props-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Decodes one sampled integer into a telemetry record. Times advance
/// strictly (row `i` lands in `[7i, 7i+7)` past the seed epoch, so
/// append order is time order); values cover both signs and several
/// magnitudes while staying inside the quantizer's exact range.
fn record(i: usize, raw: u64) -> TelemetryRecord {
    let i = i as i64;
    let time = SimTime::from_epoch_seconds(1_420_000_000 + i * 7 + (raw % 7) as i64);
    let rack = RackId::from_index((raw % 48) as usize);
    let mut milli = [0i64; 6];
    for (slot, m) in milli.iter_mut().enumerate() {
        let bits = raw.rotate_left((slot as u32) * 11);
        let magnitude = (bits % 2_000_000_000) as i64;
        *m = if bits & 1 == 0 { magnitude } else { -magnitude };
    }
    TelemetryRecord { time, rack, milli }
}

fn ras_event(i: usize, raw: u64) -> RasEvent {
    RasEvent {
        time: SimTime::from_epoch_seconds(1_420_000_000 + (i as i64) * 61),
        rack: RackId::from_index((raw % 48) as usize),
        kind: FailureKind::ALL[(raw % 7) as usize],
        severity: if raw.is_multiple_of(3) {
            Severity::Warn
        } else {
            Severity::Fatal
        },
    }
}

/// Full-span scan into a vector of records.
fn scan_all(ar: &mut dyn Archive) -> Vec<TelemetryRecord> {
    let mut rows = Vec::new();
    ar.scan_span(
        SimTime::from_epoch_seconds(i64::MIN),
        SimTime::from_epoch_seconds(i64::MAX),
        Projection::all(),
        &mut |rec| rows.push(*rec),
    )
    .expect("full scan");
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole guarantee: the same rows pushed through all three
    /// backends come back identical — as records AND as rendered bytes
    /// (CSV rows and NDJSON rows), for the full span and a random
    /// sub-span.
    #[test]
    fn columnar_csv_and_mem_agree_bytewise(
        raws in proptest::collection::vec(0u64..=u64::MAX, 1..300),
        group_rows in 1usize..64,
        span_lo in 0usize..300,
        span_len in 0usize..300,
    ) {
        let dir = scratch("tri");
        let rows: Vec<TelemetryRecord> =
            raws.iter().enumerate().map(|(i, &r)| record(i, r)).collect();
        let events: Vec<RasEvent> =
            raws.iter().enumerate().take(40).map(|(i, &r)| ras_event(i, r)).collect();

        let mut col = ColumnarArchive::create(&dir.join("a.mstore"))
            .expect("create")
            .with_group_rows(group_rows);
        col.append_telemetry(&rows).expect("append");
        col.append_ras(&events).expect("ras");
        col.flush().expect("flush");

        let mut csv = CsvArchive::open(&dir.join("a.csv")).expect("csv open");
        csv.append_telemetry(&rows).expect("append");
        csv.append_ras(&events).expect("ras");

        let mut mem = MemArchive::new();
        mem.append_telemetry(&rows).expect("append");
        mem.append_ras(&events).expect("ras");

        let from_col = scan_all(&mut col);
        let from_csv = scan_all(&mut csv);
        let from_mem = scan_all(&mut mem);
        prop_assert_eq!(&from_col, &rows);
        prop_assert_eq!(&from_csv, &rows);
        prop_assert_eq!(&from_mem, &rows);

        let render = |rs: &[TelemetryRecord]| -> (String, String) {
            (
                rs.iter().map(TelemetryRecord::csv_row).collect::<Vec<_>>().join("\n"),
                rs.iter().map(TelemetryRecord::ndjson_row).collect::<Vec<_>>().join("\n"),
            )
        };
        prop_assert_eq!(render(&from_col), render(&from_csv));

        // RAS events survive both on-disk formats.
        prop_assert_eq!(col.ras_events().expect("ras"), events.clone());
        prop_assert_eq!(csv.ras_events().expect("ras"), events.clone());

        // Sub-span scans agree too (the columnar side prunes groups,
        // the CSV side filters rows — same bytes either way).
        let lo = span_lo.min(rows.len() - 1);
        let hi = (lo + span_len).min(rows.len() - 1);
        let (from_t, to_t) = (rows[lo].time, rows[hi].time);
        let sub = |ar: &mut dyn Archive| -> Vec<TelemetryRecord> {
            let mut out = Vec::new();
            ar.scan_span(from_t, to_t, Projection::all(), &mut |rec| out.push(*rec))
                .expect("sub scan");
            out
        };
        let expected: Vec<TelemetryRecord> = rows
            .iter()
            .filter(|r| r.time >= from_t && r.time < to_t)
            .copied()
            .collect();
        prop_assert_eq!(sub(&mut col), expected.clone());
        prop_assert_eq!(sub(&mut csv), expected.clone());
        prop_assert_eq!(sub(&mut mem), expected);

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Reopening a packed file yields the same rows the writer held —
    /// the on-disk format is self-contained.
    #[test]
    fn reopen_round_trips(
        raws in proptest::collection::vec(0u64..=u64::MAX, 0..120),
        group_rows in 1usize..32,
    ) {
        let dir = scratch("reopen");
        let path = dir.join("r.mstore");
        let rows: Vec<TelemetryRecord> =
            raws.iter().enumerate().map(|(i, &r)| record(i, r)).collect();
        {
            let mut col = ColumnarArchive::create(&path)
                .expect("create")
                .with_group_rows(group_rows);
            col.append_telemetry(&rows).expect("append");
            col.flush().expect("flush");
        }
        let mut reopened = open_archive(&path).expect("reopen");
        prop_assert_eq!(scan_all(reopened.as_mut()), rows);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Damage anywhere in the file — truncation at any byte, or a
    /// flipped byte — must produce `Ok` or a structured `StoreError`,
    /// never a panic. (Flipping payload bytes can decode to different
    /// values; the property is about *failure shape*, not detection.)
    #[test]
    fn damaged_files_never_panic(
        raws in proptest::collection::vec(0u64..=u64::MAX, 1..80),
        cut_frac in 0.0f64..1.0,
        flip_frac in 0.0f64..1.0,
        flip_bits in 1u8..=255,
    ) {
        let dir = scratch("damage");
        let path = dir.join("d.mstore");
        let rows: Vec<TelemetryRecord> =
            raws.iter().enumerate().map(|(i, &r)| record(i, r)).collect();
        {
            let mut col = ColumnarArchive::create(&path)
                .expect("create")
                .with_group_rows(8);
            col.append_telemetry(&rows).expect("append");
            col.flush().expect("flush");
        }
        let bytes = std::fs::read(&path).expect("read back");

        let exercise = |mutated: &[u8], label: &str| {
            let p = dir.join("mut.mstore");
            std::fs::write(&p, mutated).expect("write mutant");
            match open_archive(&p) {
                Err(e) => {
                    // Structured and renderable, not a panic.
                    assert!(!e.to_string().is_empty(), "{label}");
                }
                Ok(mut ar) => {
                    // Opening can succeed (payload damage, or a short
                    // prefix that no longer carries the magic and falls
                    // back to the CSV backend); scanning must still be
                    // panic-free.
                    let result = ar.scan_span(
                        SimTime::from_epoch_seconds(i64::MIN),
                        SimTime::from_epoch_seconds(i64::MAX),
                        Projection::all(),
                        &mut |_| {},
                    );
                    if let Err(e) = result {
                        assert!(!e.to_string().is_empty(), "{label}");
                    }
                }
            }
        };

        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        exercise(&bytes[..cut.min(bytes.len())], "truncated");

        let mut flipped = bytes.clone();
        let at = ((flipped.len() as f64) * flip_frac) as usize;
        let at = at.min(flipped.len() - 1);
        flipped[at] ^= flip_bits;
        exercise(&flipped, "flipped");

        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn zone_map_pruning_is_observable_through_metrics() {
    let dir = scratch("prune");
    let path = dir.join("p.mstore");
    // 10 groups of 16 rows, one row per second.
    let rows: Vec<TelemetryRecord> = (0..160i64)
        .map(|i| TelemetryRecord {
            time: SimTime::from_epoch_seconds(2000 + i),
            rack: RackId::from_index((i % 48) as usize),
            milli: [i * 3, -i, 0, i, 500, -500],
        })
        .collect();
    let mut col = ColumnarArchive::create(&path)
        .expect("create")
        .with_group_rows(16);
    col.append_telemetry(&rows).expect("append");
    col.flush().expect("flush");

    // [2032, 2064) covers exactly groups 2 and 3.
    let stats = col
        .scan_span(
            SimTime::from_epoch_seconds(2032),
            SimTime::from_epoch_seconds(2064),
            Projection::all(),
            &mut |_| {},
        )
        .expect("scan");
    assert_eq!(stats.rows_scanned, 32);
    assert_eq!(stats.groups_total, 10);
    assert_eq!(stats.groups_scanned, 2, "{stats:?}");
    // All 8 blocks per intersecting group under a full projection.
    assert_eq!(stats.blocks_decoded, 16, "{stats:?}");

    // The same counters surface through mira-obs, which is how the CI
    // gate asserts "reads only intersecting blocks" from the outside.
    let mut metrics = mira_obs::MetricsPartial::new();
    stats.record(&mut metrics);
    assert_eq!(metrics.counter("store.rows_scanned"), Some(32));
    assert_eq!(metrics.counter("store.groups_total"), Some(10));
    assert_eq!(metrics.counter("store.groups_scanned"), Some(2));
    assert_eq!(metrics.counter("store.blocks_decoded"), Some(16));
    assert!(metrics.counter("store.bytes_read").unwrap_or(0) > 0);

    // A channel projection narrows decoding to time + rack + 1 block.
    let stats = col
        .scan_span(
            SimTime::from_epoch_seconds(2032),
            SimTime::from_epoch_seconds(2064),
            Projection::only(&[Channel::FlowGpm]),
            &mut |_| {},
        )
        .expect("scan");
    assert_eq!(stats.blocks_decoded, 6, "{stats:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncation_points_yield_structured_errors() {
    let dir = scratch("trunc");
    let path = dir.join("t.mstore");
    let rows: Vec<TelemetryRecord> = (0..64i64)
        .map(|i| TelemetryRecord {
            time: SimTime::from_epoch_seconds(9000 + i),
            rack: RackId::from_index(0),
            milli: [i; 6],
        })
        .collect();
    let mut col = ColumnarArchive::create(&path)
        .expect("create")
        .with_group_rows(16);
    col.append_telemetry(&rows).expect("append");
    col.flush().expect("flush");
    drop(col);
    let bytes = std::fs::read(&path).expect("read");

    // Every prefix from the magic onward is damaged somewhere; each
    // must fail to open with a corrupt error, never panic. (Prefixes
    // shorter than the magic fall back to the CSV backend and are
    // covered by the property test above.)
    for cut in 8..bytes.len() {
        let p = dir.join("cut.mstore");
        std::fs::write(&p, &bytes[..cut]).expect("write");
        match open_archive(&p) {
            Err(StoreError::Corrupt { offset, .. }) => {
                assert!(offset <= bytes.len() as u64, "cut {cut}");
            }
            Err(other) => panic!("cut {cut}: expected corruption, got {other}"),
            Ok(_) => panic!("truncation at {cut} of {} opened cleanly", bytes.len()),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_and_single_row_archives_round_trip() {
    let dir = scratch("tiny");
    for (name, rows) in [
        ("empty", Vec::new()),
        (
            "single",
            vec![TelemetryRecord {
                time: SimTime::from_epoch_seconds(5),
                rack: RackId::from_index(47),
                milli: [i64::from(i32::MIN), i64::from(i32::MAX), 0, -1, 1, 999],
            }],
        ),
    ] {
        let path = dir.join(format!("{name}.mstore"));
        let mut col = ColumnarArchive::create(&path).expect("create");
        col.append_telemetry(&rows).expect("append");
        col.flush().expect("flush");
        drop(col);
        let mut re = open_archive(&path).expect("reopen");
        assert_eq!(scan_all(re.as_mut()), rows, "{name}");
        let stat = re.stat().expect("stat");
        assert_eq!(stat.rows, rows.len() as u64, "{name}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn archive_trait_stays_object_safe() {
    let _open: fn(&Path) -> Result<Box<dyn Archive + Send>, StoreError> = open_archive;
}
