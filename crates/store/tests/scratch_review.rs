use mira_store::{Archive, ColumnarArchive};

fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let low = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(low);
            return;
        }
        buf.push(low | 0x80);
    }
}

#[test]
fn corrupt_huge_ras_payload_len_is_structured_error_not_panic() {
    let path = std::env::temp_dir().join(format!("rev-huge-{}.mstore", std::process::id()));
    let mut file: Vec<u8> = Vec::new();
    file.extend_from_slice(b"MSTORE1\n");
    let mut footer: Vec<u8> = Vec::new();
    footer.extend_from_slice(b"FTR1");
    write_varint(&mut footer, 0); // group_count
    write_varint(&mut footer, 0); // csv_bytes
    write_varint(&mut footer, 1); // ras_count
    write_varint(&mut footer, u64::MAX); // payload_len: huge
    let flen = footer.len() as u64;
    file.extend_from_slice(&footer);
    file.extend_from_slice(&flen.to_le_bytes());
    file.extend_from_slice(b"MSTOREND");
    std::fs::write(&path, &file).unwrap();
    let r = ColumnarArchive::open(&path);
    let _ = std::fs::remove_file(&path);
    assert!(r.is_err(), "must be a structured error");
}

#[test]
fn readonly_file_scan_works() {
    use mira_facility::RackId;
    use mira_store::{Projection, TelemetryRecord};
    use mira_timeseries::SimTime;
    let path = std::env::temp_dir().join(format!("rev-ro-{}.mstore", std::process::id()));
    {
        let mut ar = ColumnarArchive::create(&path).unwrap();
        let rows: Vec<TelemetryRecord> = (0..4i64)
            .map(|i| TelemetryRecord {
                time: SimTime::from_epoch_seconds(1000 + i),
                rack: RackId::new(0, 0),
                milli: [0, 0, 0, 0, 0, 0],
            })
            .collect();
        ar.append_telemetry(&rows).unwrap();
        ar.flush().unwrap();
    }
    let mut perms = std::fs::metadata(&path).unwrap().permissions();
    perms.set_readonly(true);
    std::fs::set_permissions(&path, perms).unwrap();
    let r = ColumnarArchive::open(&path);
    let ok = match r {
        Ok(mut ar) => ar
            .scan_span(
                SimTime::from_epoch_seconds(0),
                SimTime::from_epoch_seconds(2000),
                Projection::all(),
                &mut |_| {},
            )
            .is_ok(),
        Err(e) => {
            eprintln!("open failed: {e}");
            false
        }
    };
    let mut perms = std::fs::metadata(&path).unwrap().permissions();
    // Restoring write permission on a temp file that is removed on the
    // next line; world-writability never outlives the test.
    #[allow(clippy::permissions_set_readonly_false)]
    perms.set_readonly(false);
    std::fs::set_permissions(&path, perms).unwrap();
    let _ = std::fs::remove_file(&path);
    assert!(ok, "read-only archive should be scannable");
}
