//! Property tests for the unit conversions the workspace leans on:
//! °C↔°F, GPM↔L/s, and kW↔BTU/h round-trip within float tolerance over
//! the physically plausible ranges, and the non-finite edges (NaN, ±inf)
//! propagate instead of silently turning into numbers.

use proptest::prelude::*;

use mira_units::{Celsius, Fahrenheit, Gpm, Kilowatts};

/// Relative-ish tolerance: absolute for small magnitudes, relative for
/// large ones.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    #[test]
    fn fahrenheit_celsius_round_trip(f in -200.0f64..400.0) {
        let back = Fahrenheit::new(f).to_celsius().to_fahrenheit();
        prop_assert!(close(back.value(), f), "{f} -> {}", back.value());
    }

    #[test]
    fn celsius_fahrenheit_round_trip(c in -150.0f64..250.0) {
        let back = Celsius::new(c).to_fahrenheit().to_celsius();
        prop_assert!(close(back.value(), c), "{c} -> {}", back.value());
    }

    #[test]
    fn gpm_litres_per_second_round_trip(gpm in 0.0f64..5_000.0) {
        let back = Gpm::from_litres_per_second(Gpm::new(gpm).to_litres_per_second());
        prop_assert!(close(back.value(), gpm), "{gpm} -> {}", back.value());
    }

    #[test]
    fn litres_per_second_gpm_round_trip(lps in 0.0f64..300.0) {
        let back = Gpm::from_litres_per_second(lps).to_litres_per_second();
        prop_assert!(close(back, lps), "{lps} -> {back}");
    }

    #[test]
    fn kilowatts_btu_round_trip(kw in 0.0f64..20_000.0) {
        let back = Kilowatts::from_btu_per_hour(Kilowatts::new(kw).to_btu_per_hour());
        prop_assert!(close(back.value(), kw), "{kw} -> {}", back.value());
    }

    #[test]
    fn btu_kilowatts_round_trip(btu in 0.0f64..1.0e7) {
        let back = Kilowatts::from_btu_per_hour(btu).to_btu_per_hour();
        prop_assert!(close(back, btu), "{btu} -> {back}");
    }

    #[test]
    fn conversions_preserve_ordering(a in -100.0f64..300.0, b in -100.0f64..300.0) {
        // Affine conversions with positive slope never reorder readings.
        let (fa, fb) = (Fahrenheit::new(a), Fahrenheit::new(b));
        prop_assert_eq!(a < b, fa.to_celsius().value() < fb.to_celsius().value());
    }
}

#[test]
fn known_anchor_points() {
    assert!(close(Fahrenheit::new(32.0).to_celsius().value(), 0.0));
    assert!(close(Fahrenheit::new(212.0).to_celsius().value(), 100.0));
    assert!(close(Celsius::new(-40.0).to_fahrenheit().value(), -40.0));
    // 1250 GPM (Mira's loop) is about 78.9 L/s.
    assert!((Gpm::new(1250.0).to_litres_per_second() - 78.862).abs() < 0.01);
    // One ton of refrigeration is 12,000 BTU/h ≈ 3.517 kW.
    assert!((Kilowatts::from_btu_per_hour(12_000.0).value() - 3.5168).abs() < 1e-3);
}

#[test]
fn nan_propagates_through_conversions() {
    assert!(Fahrenheit::new(f64::NAN).to_celsius().value().is_nan());
    assert!(Celsius::new(f64::NAN).to_fahrenheit().value().is_nan());
    assert!(Gpm::new(f64::NAN).to_litres_per_second().is_nan());
    assert!(Gpm::from_litres_per_second(f64::NAN).value().is_nan());
    assert!(Kilowatts::new(f64::NAN).to_btu_per_hour().is_nan());
    assert!(Kilowatts::from_btu_per_hour(f64::NAN).value().is_nan());
}

#[test]
fn infinities_stay_infinite_with_sign() {
    assert_eq!(
        Fahrenheit::new(f64::INFINITY).to_celsius().value(),
        f64::INFINITY
    );
    assert_eq!(
        Fahrenheit::new(f64::NEG_INFINITY).to_celsius().value(),
        f64::NEG_INFINITY
    );
    assert_eq!(
        Gpm::new(f64::INFINITY).to_litres_per_second(),
        f64::INFINITY
    );
    assert_eq!(
        Kilowatts::new(f64::NEG_INFINITY).to_btu_per_hour(),
        f64::NEG_INFINITY
    );
}
