//! Dimensionless quantities: fractions and percentages.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A dimensionless fraction, conventionally in `[0, 1]` but not clamped —
/// relative *changes* (e.g. "inlet temperature dropped by 7 %") are signed.
///
/// ```
/// use mira_units::Ratio;
/// let change = Ratio::relative_change(64.0, 59.5);
/// assert!((change.to_percent().value() + 7.03).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Ratio(f64);

/// A percentage — `Ratio` scaled by 100 for display and for quantities the
/// paper reports in percent (utilization, relative spreads).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Percent(f64);

impl Ratio {
    /// Creates a ratio from a raw fraction.
    #[must_use]
    pub const fn new(fraction: f64) -> Self {
        Self(fraction)
    }

    /// The relative change from `baseline` to `value`:
    /// `(value − baseline) / baseline`.
    ///
    /// # Panics
    ///
    /// Panics if `baseline` is zero.
    #[must_use]
    pub fn relative_change(baseline: f64, value: f64) -> Self {
        // Exact-zero divide guard. mira-lint: allow(nan-unsafe-compare)
        assert!(baseline != 0.0, "relative change needs a nonzero baseline");
        Self((value - baseline) / baseline)
    }

    /// Returns the raw fraction.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to a percentage.
    #[must_use]
    pub fn to_percent(self) -> Percent {
        Percent(self.0 * 100.0)
    }

    /// Clamps into `[0, 1]`, for quantities that are by construction
    /// fractions of a whole (utilization, duty cycles).
    #[must_use]
    pub fn clamped(self) -> Self {
        Self(self.0.clamp(0.0, 1.0))
    }

    /// Absolute value of the ratio.
    #[must_use]
    pub fn abs(self) -> Self {
        Self(self.0.abs())
    }
}

impl Percent {
    /// Creates a percentage from a raw percent value.
    #[must_use]
    pub const fn new(percent: f64) -> Self {
        Self(percent)
    }

    /// Returns the raw percent value.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to a fraction.
    #[must_use]
    pub fn to_ratio(self) -> Ratio {
        Ratio(self.0 / 100.0)
    }
}

impl From<Ratio> for Percent {
    fn from(r: Ratio) -> Self {
        r.to_percent()
    }
}

impl From<Percent> for Ratio {
    fn from(p: Percent) -> Self {
        p.to_ratio()
    }
}

macro_rules! impl_ratio_ops {
    ($ty:ident) => {
        impl Add for $ty {
            type Output = $ty;
            fn add(self, rhs: $ty) -> $ty {
                $ty(self.0 + rhs.0)
            }
        }
        impl Sub for $ty {
            type Output = $ty;
            fn sub(self, rhs: $ty) -> $ty {
                $ty(self.0 - rhs.0)
            }
        }
        impl AddAssign for $ty {
            fn add_assign(&mut self, rhs: $ty) {
                self.0 += rhs.0;
            }
        }
        impl SubAssign for $ty {
            fn sub_assign(&mut self, rhs: $ty) {
                self.0 -= rhs.0;
            }
        }
        impl Mul<f64> for $ty {
            type Output = $ty;
            fn mul(self, rhs: f64) -> $ty {
                $ty(self.0 * rhs)
            }
        }
        impl Div<f64> for $ty {
            type Output = $ty;
            fn div(self, rhs: f64) -> $ty {
                $ty(self.0 / rhs)
            }
        }
        impl Sum for $ty {
            fn sum<I: Iterator<Item = $ty>>(iter: I) -> $ty {
                $ty(iter.map(|v| v.0).sum())
            }
        }
    };
}

impl_ratio_ops!(Ratio);
impl_ratio_ops!(Percent);

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

impl fmt::Display for Percent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} %", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn relative_change_signs() {
        assert!(Ratio::relative_change(100.0, 93.0).value() < 0.0);
        assert!(Ratio::relative_change(100.0, 106.0).value() > 0.0);
        assert_eq!(Ratio::relative_change(50.0, 50.0).value(), 0.0);
    }

    #[test]
    #[should_panic(expected = "nonzero baseline")]
    fn relative_change_rejects_zero_baseline() {
        let _ = Ratio::relative_change(0.0, 1.0);
    }

    #[test]
    fn percent_round_trip() {
        let p = Percent::new(93.0);
        assert_eq!(p.to_ratio().to_percent(), p);
    }

    #[test]
    fn clamped_restricts_to_unit_interval() {
        assert_eq!(Ratio::new(1.4).clamped().value(), 1.0);
        assert_eq!(Ratio::new(-0.2).clamped().value(), 0.0);
        assert_eq!(Ratio::new(0.8).clamped().value(), 0.8);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Percent::new(87.0).to_string(), "87.00 %");
        assert_eq!(Ratio::new(0.45).to_string(), "0.4500");
    }

    proptest! {
        #[test]
        fn conversion_round_trip(x in -10.0f64..10.0) {
            let r = Ratio::new(x);
            prop_assert!((Ratio::from(Percent::from(r)).value() - x).abs() < 1e-12);
        }
    }
}
