//! Electrical energy, used by the free-cooling efficiency accounting.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Energy in kilowatt-hours.
///
/// The paper's headline efficiency numbers are energies: 17,820 kWh can be
/// saved per day when the waterside economizer covers 100 % of the chilled
/// water plant's load, and 2,174,040 kWh per December–March free-cooling
/// season.
///
/// ```
/// use mira_units::KilowattHours;
/// let per_day = KilowattHours::new(17_820.0);
/// let season = per_day * 122.0; // December through March
/// assert!((season.value() - 2_174_040.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct KilowattHours(f64);

impl KilowattHours {
    /// Creates an energy value from raw kilowatt-hours.
    #[must_use]
    pub const fn new(kwh: f64) -> Self {
        Self(kwh)
    }

    /// Returns the raw value in kilowatt-hours.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to megawatt-hours.
    #[must_use]
    pub fn to_megawatt_hours(self) -> f64 {
        self.0 / 1000.0
    }

    /// Converts to joules (1 kWh = 3.6 MJ).
    #[must_use]
    pub fn to_joules(self) -> f64 {
        self.0 * 3.6e6
    }
}

impl Add for KilowattHours {
    type Output = KilowattHours;
    fn add(self, rhs: KilowattHours) -> KilowattHours {
        KilowattHours(self.0 + rhs.0)
    }
}

impl Sub for KilowattHours {
    type Output = KilowattHours;
    fn sub(self, rhs: KilowattHours) -> KilowattHours {
        KilowattHours(self.0 - rhs.0)
    }
}

impl AddAssign for KilowattHours {
    fn add_assign(&mut self, rhs: KilowattHours) {
        self.0 += rhs.0;
    }
}

impl SubAssign for KilowattHours {
    fn sub_assign(&mut self, rhs: KilowattHours) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for KilowattHours {
    type Output = KilowattHours;
    fn mul(self, rhs: f64) -> KilowattHours {
        KilowattHours(self.0 * rhs)
    }
}

impl Div<f64> for KilowattHours {
    type Output = KilowattHours;
    fn div(self, rhs: f64) -> KilowattHours {
        KilowattHours(self.0 / rhs)
    }
}

impl Sum for KilowattHours {
    fn sum<I: Iterator<Item = KilowattHours>>(iter: I) -> KilowattHours {
        KilowattHours(iter.map(|v| v.0).sum())
    }
}

impl fmt::Display for KilowattHours {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0} kWh", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joule_conversion() {
        assert_eq!(KilowattHours::new(1.0).to_joules(), 3.6e6);
    }

    #[test]
    fn mwh_conversion() {
        assert_eq!(KilowattHours::new(2_500.0).to_megawatt_hours(), 2.5);
    }

    #[test]
    fn seasonal_accumulation() {
        let mut season = KilowattHours::new(0.0);
        for _ in 0..122 {
            season += KilowattHours::new(17_820.0);
        }
        assert!((season.value() - 2_174_040.0).abs() < 1e-6);
    }

    #[test]
    fn display_rounds_to_whole_kwh() {
        assert_eq!(KilowattHours::new(17_820.4).to_string(), "17820 kWh");
    }
}
