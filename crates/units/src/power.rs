//! Electrical power quantities.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::energy::KilowattHours;

/// Power in kilowatts — the scale of a single rack's bulk power module.
///
/// Each of Mira's 48 racks draws 50–90 kW depending on load; the coolant
/// monitor reports the aggregate of the rack's four power enclosures.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Kilowatts(f64);

/// Power in watts — the scale of heat flowing into a rack's coolant
/// loop.
///
/// Heat-transfer formulas (`Q = m_dot * c_p * dT`) work in SI watts, so the
/// thermal side of the workspace carries `Watts` and converts to
/// [`Kilowatts`] only at the electrical boundary.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Watts(f64);

impl Watts {
    /// Creates a heat flow from raw watts.
    #[must_use]
    pub const fn new(w: f64) -> Self {
        Self(w)
    }

    /// Returns the raw value in watts.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to kilowatts.
    #[must_use]
    pub fn to_kilowatts(self) -> Kilowatts {
        Kilowatts(self.0 / 1000.0)
    }
}

impl From<Watts> for Kilowatts {
    fn from(w: Watts) -> Self {
        w.to_kilowatts()
    }
}

/// Power in megawatts — the scale of the whole system.
///
/// Mira is provisioned for 6 MW and averaged ≈4 MW total load; the
/// compute-rack aggregate analyzed by the paper moved from ≈2.5 MW (2014)
/// to ≈2.9 MW (2019).
///
/// ```
/// use mira_units::{Kilowatts, Megawatts};
/// let rack = Kilowatts::new(60.0);
/// let system: Megawatts = (rack * 48.0).to_megawatts();
/// assert!((system.value() - 2.88).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Megawatts(f64);

impl Kilowatts {
    /// Creates a power value from raw kilowatts.
    #[must_use]
    pub const fn new(kw: f64) -> Self {
        Self(kw)
    }

    /// Returns the raw value in kilowatts.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to megawatts.
    #[must_use]
    pub fn to_megawatts(self) -> Megawatts {
        Megawatts(self.0 / 1000.0)
    }

    /// Heat dissipated into the coolant in watts (electrical power is
    /// assumed fully converted to heat, the standard data-center
    /// assumption).
    #[must_use]
    pub fn heat_watts(self) -> f64 {
        self.0 * 1000.0
    }

    /// Energy delivered when this power is sustained for `hours`.
    #[must_use]
    pub fn for_hours(self, hours: f64) -> KilowattHours {
        KilowattHours::new(self.0 * hours)
    }

    /// Converts to BTU per hour (1 kW = 3412.142 BTU/h), the unit
    /// chiller capacity is quoted in.
    #[must_use]
    pub fn to_btu_per_hour(self) -> f64 {
        self.0 * 3_412.142
    }

    /// Creates a power value from BTU per hour.
    #[must_use]
    pub fn from_btu_per_hour(btu_h: f64) -> Self {
        Self(btu_h / 3_412.142)
    }

    /// Returns the larger of two readings.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Returns the smaller of two readings.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }
}

impl Megawatts {
    /// Creates a power value from raw megawatts.
    #[must_use]
    pub const fn new(mw: f64) -> Self {
        Self(mw)
    }

    /// Returns the raw value in megawatts.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to kilowatts.
    #[must_use]
    pub fn to_kilowatts(self) -> Kilowatts {
        Kilowatts(self.0 * 1000.0)
    }
}

impl From<Kilowatts> for Megawatts {
    fn from(kw: Kilowatts) -> Self {
        kw.to_megawatts()
    }
}

impl From<Megawatts> for Kilowatts {
    fn from(mw: Megawatts) -> Self {
        mw.to_kilowatts()
    }
}

macro_rules! impl_power_ops {
    ($ty:ident) => {
        impl Add for $ty {
            type Output = $ty;
            fn add(self, rhs: $ty) -> $ty {
                $ty(self.0 + rhs.0)
            }
        }
        impl Sub for $ty {
            type Output = $ty;
            fn sub(self, rhs: $ty) -> $ty {
                $ty(self.0 - rhs.0)
            }
        }
        impl AddAssign for $ty {
            fn add_assign(&mut self, rhs: $ty) {
                self.0 += rhs.0;
            }
        }
        impl SubAssign for $ty {
            fn sub_assign(&mut self, rhs: $ty) {
                self.0 -= rhs.0;
            }
        }
        impl Mul<f64> for $ty {
            type Output = $ty;
            fn mul(self, rhs: f64) -> $ty {
                $ty(self.0 * rhs)
            }
        }
        impl Div<f64> for $ty {
            type Output = $ty;
            fn div(self, rhs: f64) -> $ty {
                $ty(self.0 / rhs)
            }
        }
        impl Sum for $ty {
            fn sum<I: Iterator<Item = $ty>>(iter: I) -> $ty {
                $ty(iter.map(|v| v.0).sum())
            }
        }
    };
}

impl_power_ops!(Kilowatts);
impl_power_ops!(Watts);
impl_power_ops!(Megawatts);

impl fmt::Display for Kilowatts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} kW", self.0)
    }
}

impl fmt::Display for Megawatts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} MW", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn kw_mw_round_trip() {
        let kw = Kilowatts::new(2500.0);
        assert_eq!(kw.to_megawatts().value(), 2.5);
        assert_eq!(kw.to_megawatts().to_kilowatts(), kw);
    }

    #[test]
    fn energy_integration() {
        // 742.5 kW sustained for 24 h is the paper's 17,820 kWh/day
        // free-cooling saving.
        let saved = Kilowatts::new(742.5).for_hours(24.0);
        assert!((saved.value() - 17_820.0).abs() < 1e-9);
    }

    #[test]
    fn heat_watts_matches_electrical() {
        assert_eq!(Kilowatts::new(60.0).heat_watts(), 60_000.0);
    }

    #[test]
    fn sum_and_scale() {
        let total: Kilowatts = (0..48).map(|_| Kilowatts::new(55.0)).sum();
        assert!((total.to_megawatts().value() - 2.64).abs() < 1e-9);
    }

    #[test]
    fn display_has_units() {
        assert_eq!(Megawatts::new(2.5).to_string(), "2.500 MW");
        assert_eq!(Kilowatts::new(60.04).to_string(), "60.0 kW");
    }

    proptest! {
        #[test]
        fn round_trip_lossless(kw in 0.0f64..1e7) {
            let k = Kilowatts::new(kw);
            prop_assert!((Megawatts::from(k).to_kilowatts().value() - kw).abs() < 1e-6);
        }
    }
}
