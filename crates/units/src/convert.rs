//! Documented numeric conversions between counts, indices, and `f64`.
//!
//! A bare `as` cast silently truncates, wraps, or rounds; `mira-lint`'s
//! `lossy-cast` rule flags every one of them. These helpers are the
//! sanctioned alternative: each contains exactly one cast, states the
//! domain over which it is exact, and debug-asserts that domain, so call
//! sites document their intent instead of sprinkling `as`.

/// An integer count as an `f64`.
///
/// Exact for counts below 2^53 (~9e15). Every count in this workspace —
/// samples, racks, failures, epochs — is far below that, which the
/// debug assertion pins down.
#[must_use]
pub fn f64_from_usize(n: usize) -> f64 {
    debug_assert!(n < (1_usize << 53), "count {n} exceeds exact f64 range");
    // Exact below 2^53, asserted above. mira-lint: allow(lossy-cast)
    n as f64
}

/// An unsigned 64-bit count as an `f64`.
///
/// Exact for counts below 2^53, debug-asserted.
#[must_use]
pub fn f64_from_u64(n: u64) -> f64 {
    debug_assert!(n < (1_u64 << 53), "count {n} exceeds exact f64 range");
    // Exact below 2^53, asserted above. mira-lint: allow(lossy-cast)
    n as f64
}

/// A signed 64-bit value (epoch seconds, offsets) as an `f64`.
///
/// Exact for magnitudes below 2^53, debug-asserted. Epoch seconds stay
/// below 2^35 until the year 3058.
#[must_use]
pub fn f64_from_i64(n: i64) -> f64 {
    debug_assert!(
        n.unsigned_abs() < (1_u64 << 53),
        "value {n} exceeds exact f64 range"
    );
    // Exact below 2^53 magnitude, asserted above. mira-lint: allow(lossy-cast)
    n as f64
}

/// A 32-bit count as an `f64` (always exact).
#[must_use]
pub fn f64_from_u32(n: u32) -> f64 {
    f64::from(n)
}

/// A `u32` count as a `usize` index — lossless on every supported
/// target (`usize` is at least 32 bits here).
#[must_use]
pub fn usize_from_u32(n: u32) -> usize {
    usize::try_from(n).unwrap_or(usize::MAX)
}

/// A `usize` count as a `u32` (saturating above `u32::MAX`).
///
/// `const` so compile-time counts (rack totals, midplane totals) can use
/// it in constant expressions; small fleet-shaped counts never saturate.
#[must_use]
pub const fn u32_from_usize(n: usize) -> u32 {
    // Saturate explicitly: `try_from` is not const-stable enough here.
    // mira-lint: allow(lossy-cast)
    if n > u32::MAX as usize {
        u32::MAX
    } else {
        // Bounded by the branch above. mira-lint: allow(lossy-cast)
        n as u32
    }
}

/// A `u64` as a `usize` index (saturating on 32-bit targets).
///
/// Every 64-bit target this workspace runs on makes this exact; the
/// saturation only matters on hypothetical 32-bit hosts.
#[must_use]
pub fn usize_from_u64(n: u64) -> usize {
    usize::try_from(n).unwrap_or(usize::MAX)
}

/// A `usize` count as an `i64` (saturating above `i64::MAX`).
#[must_use]
pub fn i64_from_usize(n: usize) -> i64 {
    i64::try_from(n).unwrap_or(i64::MAX)
}

/// A `u64` as an `i64` (saturating above `i64::MAX`).
#[must_use]
pub fn i64_from_u64(n: u64) -> i64 {
    i64::try_from(n).unwrap_or(i64::MAX)
}

/// A `usize` count as a `u64`. Lossless on every supported target
/// (`usize` is at most 64 bits); the saturation only matters on
/// hypothetical 128-bit hosts.
#[must_use]
pub fn u64_from_usize(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

/// A non-negative `i64` (a step count, an index) as a `usize`.
///
/// Negative inputs clamp to 0, which the debug assertion flags; exact
/// for every non-negative value on 64-bit targets.
#[must_use]
pub fn usize_from_i64(n: i64) -> usize {
    debug_assert!(n >= 0, "index from negative {n}");
    usize::try_from(n).unwrap_or(0)
}

/// Floor of a non-negative `f64` as a `usize` index.
///
/// NaN and negative inputs clamp to 0; values beyond `usize::MAX` clamp
/// to `usize::MAX`. Intended for bin/index computations where the input
/// is a finite non-negative quantity by construction.
#[must_use]
pub fn usize_from_f64_floor(x: f64) -> usize {
    debug_assert!(!x.is_nan(), "index from NaN");
    debug_assert!(x >= 0.0, "index from negative {x}");
    // Saturating float-to-int semantics do the clamping. mira-lint: allow(lossy-cast)
    x as usize
}

/// Ceiling of a non-negative `f64` as a `usize` index.
///
/// NaN and negative inputs clamp to 0; values beyond `usize::MAX` clamp
/// to `usize::MAX`.
#[must_use]
pub fn usize_from_f64_ceil(x: f64) -> usize {
    debug_assert!(!x.is_nan(), "index from NaN");
    debug_assert!(x >= 0.0, "index from negative {x}");
    // Saturating float-to-int semantics do the clamping. mira-lint: allow(lossy-cast)
    x.ceil() as usize
}

/// Nearest-integer rounding of an `f64` to a `usize`.
///
/// NaN and negative inputs clamp to 0; out-of-range values saturate.
#[must_use]
pub fn usize_from_f64_round(x: f64) -> usize {
    debug_assert!(!x.is_nan(), "count from NaN");
    debug_assert!(x >= -0.5, "count from negative {x}");
    // Saturating float-to-int semantics do the clamping. mira-lint: allow(lossy-cast)
    x.round() as usize
}

/// Nearest-integer rounding of an `f64` to a `u32` count.
///
/// NaN and negative inputs clamp to 0; values beyond `u32::MAX`
/// saturate. Intended for small counts (midplanes, jobs) produced by
/// scaling a fraction.
#[must_use]
pub fn u32_from_f64_round(x: f64) -> u32 {
    debug_assert!(!x.is_nan(), "count from NaN");
    debug_assert!(x >= -0.5, "count from negative {x}");
    // Saturating float-to-int semantics do the clamping. mira-lint: allow(lossy-cast)
    x.round() as u32
}

/// Floor of a non-negative `f64` as a `u32` count.
///
/// NaN and negative inputs clamp to 0; values beyond `u32::MAX`
/// saturate.
#[must_use]
pub fn u32_from_f64_floor(x: f64) -> u32 {
    debug_assert!(!x.is_nan(), "count from NaN");
    debug_assert!(x >= 0.0, "count from negative {x}");
    // Saturating float-to-int semantics do the clamping. mira-lint: allow(lossy-cast)
    x as u32
}

/// An exact-integer `f64` counter back as a `u64`.
///
/// Intended for counters staged through `f64` lanes (batched Welford
/// folds): counts stay far below 2⁵³, where every increment of 1.0 is
/// exact, so the round-trip through `f64` is lossless.
#[must_use]
pub fn u64_from_f64_exact(x: f64) -> u64 {
    debug_assert!(!x.is_nan(), "count from NaN");
    debug_assert!(x >= 0.0, "count from negative {x}");
    debug_assert!(
        x == x.trunc() && x < 9_007_199_254_740_992.0,
        "non-exact count {x}"
    );
    // Saturating float-to-int semantics do the clamping. mira-lint: allow(lossy-cast)
    x as u64
}

/// Floor of an `f64` as an `i64` (saturating at the `i64` range, NaN → 0).
///
/// Implemented as truncate-and-adjust rather than `x.floor() as i64`:
/// on baseline x86-64 (no SSE4.1 `roundsd`) `f64::floor` is a libm
/// call, and this sits under every noise sample on the sweep hot path.
/// The result is identical for every input — truncation rounds toward
/// zero, so only negative non-integers need the `-1` adjustment, and
/// both paths saturate the same way at the `i64` range.
#[must_use]
pub fn i64_from_f64_floor(x: f64) -> i64 {
    debug_assert!(!x.is_nan(), "integer from NaN");
    // Saturating float-to-int semantics do the clamping. mira-lint: allow(lossy-cast)
    let t = x as i64;
    // Exact below 2^53 magnitude; above it f64 holds integers only and
    // the comparison is false. mira-lint: allow(lossy-cast)
    if t as f64 > x {
        t.saturating_sub(1)
    } else {
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_exact() {
        assert_eq!(f64_from_usize(0), 0.0);
        assert_eq!(f64_from_usize(48), 48.0);
        assert_eq!(f64_from_u64(630_000), 630_000.0);
        assert_eq!(f64_from_i64(-86_400), -86_400.0);
        assert_eq!(f64_from_u32(u32::MAX), 4_294_967_295.0);
    }

    #[test]
    fn u32_from_usize_is_const_and_saturates() {
        const FORTY_EIGHT: u32 = u32_from_usize(48);
        assert_eq!(FORTY_EIGHT, 48);
        assert_eq!(u32_from_usize(0), 0);
        assert_eq!(u32_from_usize(usize::MAX), u32::MAX);
    }

    #[test]
    fn usize_from_i64_clamps_negatives() {
        assert_eq!(usize_from_i64(42), 42);
        assert_eq!(usize_from_i64(0), 0);
    }

    #[test]
    fn floor_and_round_behave() {
        assert_eq!(usize_from_f64_floor(3.99), 3);
        assert_eq!(usize_from_f64_ceil(3.01), 4);
        assert_eq!(usize_from_f64_ceil(3.0), 3);
        assert_eq!(usize_from_f64_round(3.5), 4);
        assert_eq!(i64_from_f64_floor(-2.5), -3);
        assert_eq!(i64_from_f64_floor(7.9), 7);
    }

    #[test]
    fn integer_floor_matches_libm_floor() {
        // The truncate-and-adjust floor must equal `x.floor() as i64`
        // everywhere, including exact integers, negatives, and values
        // near the f64 integer-precision edge.
        let mut probes = vec![
            0.0, -0.0, 1.0, -1.0, 0.5, -0.5, 2.999, -2.999, 1e-300, -1e-300,
        ];
        for k in -2000..2000 {
            probes.push(f64::from(k) * 0.37);
            probes.push(f64::from(k) * 86_400.123);
        }
        probes.push(9_007_199_254_740_991.0); // 2^53 - 1
        probes.push(-9_007_199_254_740_991.0);
        for x in probes {
            // The reference implementation this replaced.
            // mira-lint: allow(lossy-cast)
            let reference = x.floor() as i64;
            assert_eq!(i64_from_f64_floor(x), reference, "at {x}");
        }
    }

    #[test]
    fn saturation_edges() {
        // Release builds must clamp rather than wrap.
        assert_eq!(usize_from_f64_floor(f64::MAX), usize::MAX);
        assert_eq!(i64_from_f64_floor(f64::MAX), i64::MAX);
        assert_eq!(i64_from_f64_floor(f64::MIN), i64::MIN);
    }
}
