//! Relative humidity and the psychrometric helpers behind the paper's
//! coolant-monitor-failure trigger.
//!
//! A CMF fires when condensation risk appears: the dew-point temperature of
//! the air near a rack approaches the temperature of cold surfaces (inlet
//! coolant lines). [`dew_point`] implements the Magnus–Tetens
//! approximation; [`condensation_margin`] is the distance between a surface
//! temperature and the dew point, the quantity the monitor's alarm
//! threshold is defined over.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::temperature::{Celsius, Fahrenheit};

/// Relative humidity in percent (0–100 %RH).
///
/// Mira's data-center ambient ranged 28–37 %RH over the six years, with a
/// strong summer seasonality inherited from Chicago's outdoor humidity.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct RelHumidity(f64);

impl RelHumidity {
    /// Creates a relative-humidity reading, clamped to the physical
    /// `[0, 100]` range.
    #[must_use]
    pub fn new(percent: f64) -> Self {
        Self(percent.clamp(0.0, 100.0))
    }

    /// Returns the raw value in %RH.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Returns the value as a fraction in `[0, 1]`.
    #[must_use]
    pub fn fraction(self) -> f64 {
        self.0 / 100.0
    }

    /// Returns the larger of two readings.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Returns the smaller of two readings.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }
}

impl Add for RelHumidity {
    type Output = RelHumidity;
    fn add(self, rhs: RelHumidity) -> RelHumidity {
        RelHumidity::new(self.0 + rhs.0)
    }
}

impl Sub for RelHumidity {
    type Output = RelHumidity;
    fn sub(self, rhs: RelHumidity) -> RelHumidity {
        RelHumidity::new(self.0 - rhs.0)
    }
}

impl AddAssign for RelHumidity {
    fn add_assign(&mut self, rhs: RelHumidity) {
        *self = *self + rhs;
    }
}

impl SubAssign for RelHumidity {
    fn sub_assign(&mut self, rhs: RelHumidity) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for RelHumidity {
    type Output = RelHumidity;
    fn mul(self, rhs: f64) -> RelHumidity {
        RelHumidity::new(self.0 * rhs)
    }
}

impl Div<f64> for RelHumidity {
    type Output = RelHumidity;
    fn div(self, rhs: f64) -> RelHumidity {
        RelHumidity::new(self.0 / rhs)
    }
}

impl Sum for RelHumidity {
    fn sum<I: Iterator<Item = RelHumidity>>(iter: I) -> RelHumidity {
        RelHumidity::new(iter.map(|v| v.0).sum())
    }
}

impl fmt::Display for RelHumidity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} %RH", self.0)
    }
}

/// Magnus–Tetens coefficients (Alduchov & Eskridge 1996), valid for
/// −40 °C … +50 °C, the full range a data center can see.
const MAGNUS_A: f64 = 17.625;
const MAGNUS_B: f64 = 243.04;

/// Computes the dew-point temperature from ambient temperature and
/// relative humidity using the Magnus–Tetens approximation.
///
/// The dew point is the temperature at which the air would become
/// saturated; any surface colder than it collects condensation. It is the
/// composite metric the Blue Gene/Q coolant monitor alarms on.
///
/// ```
/// use mira_units::{dew_point, Fahrenheit, RelHumidity};
/// // 80 F at 35 %RH gives a dew point around 48-50 F.
/// let dp = dew_point(Fahrenheit::new(80.0), RelHumidity::new(35.0));
/// assert!(dp.value() > 45.0 && dp.value() < 52.0);
/// ```
#[must_use]
pub fn dew_point(ambient: Fahrenheit, humidity: RelHumidity) -> Fahrenheit {
    let t = ambient.to_celsius().value();
    // Guard against ln(0): treat totally dry air as an extremely low dew
    // point rather than a NaN.
    let rh = humidity.fraction().max(1e-6);
    let gamma = rh.ln() + MAGNUS_A * t / (MAGNUS_B + t);
    let dp = MAGNUS_B * gamma / (MAGNUS_A - gamma);
    Celsius::new(dp).to_fahrenheit()
}

/// Margin between a cold surface (typically the inlet coolant line) and the
/// local dew point.
///
/// Positive margins are safe; as the margin approaches zero condensation
/// begins to form on the surface and the coolant monitor raises a fatal
/// CMF, closing the rack's solenoid valve and cutting power.
#[must_use]
pub fn condensation_margin(
    surface: Fahrenheit,
    ambient: Fahrenheit,
    humidity: RelHumidity,
) -> Fahrenheit {
    surface - dew_point(ambient, humidity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn saturated_air_dew_point_equals_ambient() {
        let t = Fahrenheit::new(75.0);
        let dp = dew_point(t, RelHumidity::new(100.0));
        assert!((dp.value() - t.value()).abs() < 0.05, "dp = {dp}");
    }

    #[test]
    fn drier_air_has_lower_dew_point() {
        let t = Fahrenheit::new(80.0);
        let humid = dew_point(t, RelHumidity::new(60.0));
        let dry = dew_point(t, RelHumidity::new(25.0));
        assert!(dry < humid);
    }

    #[test]
    fn typical_mira_conditions_are_safe() {
        // 64 F inlet lines in an 80 F / 35 %RH room: > 10 F of margin.
        let m = condensation_margin(
            Fahrenheit::new(64.0),
            Fahrenheit::new(80.0),
            RelHumidity::new(35.0),
        );
        assert!(m.value() > 10.0, "margin = {m}");
    }

    #[test]
    fn high_humidity_erodes_margin() {
        let cold = Fahrenheit::new(55.0);
        let ambient = Fahrenheit::new(80.0);
        let m = condensation_margin(cold, ambient, RelHumidity::new(85.0));
        assert!(m.value() < 0.0, "cold line in humid air condenses: {m}");
    }

    #[test]
    fn humidity_is_clamped() {
        assert_eq!(RelHumidity::new(150.0).value(), 100.0);
        assert_eq!(RelHumidity::new(-5.0).value(), 0.0);
    }

    #[test]
    fn zero_humidity_is_finite() {
        let dp = dew_point(Fahrenheit::new(80.0), RelHumidity::new(0.0));
        assert!(dp.value().is_finite());
        assert!(dp.value() < -100.0);
    }

    #[test]
    fn display_has_unit() {
        assert_eq!(RelHumidity::new(32.25).to_string(), "32.2 %RH");
    }

    proptest! {
        #[test]
        fn dew_point_below_ambient(t in 40.0f64..100.0, rh in 1.0f64..99.9) {
            let dp = dew_point(Fahrenheit::new(t), RelHumidity::new(rh));
            prop_assert!(dp.value() <= t + 1e-9);
        }

        #[test]
        fn dew_point_monotonic_in_humidity(
            t in 40.0f64..100.0,
            rh in 2.0f64..98.0,
        ) {
            let lo = dew_point(Fahrenheit::new(t), RelHumidity::new(rh - 1.0));
            let hi = dew_point(Fahrenheit::new(t), RelHumidity::new(rh + 1.0));
            prop_assert!(lo < hi);
        }

        #[test]
        fn dew_point_monotonic_in_temperature(
            t in 40.0f64..99.0,
            rh in 5.0f64..95.0,
        ) {
            let lo = dew_point(Fahrenheit::new(t), RelHumidity::new(rh));
            let hi = dew_point(Fahrenheit::new(t + 1.0), RelHumidity::new(rh));
            prop_assert!(lo < hi);
        }
    }
}
