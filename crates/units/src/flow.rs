//! Coolant volumetric flow rate.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A volumetric flow rate in US gallons per minute (GPM).
///
/// Mira's external loop ran at ≈1250 GPM (≈26 GPM per rack) until the Theta
/// system joined the loop in July 2016, after which the setpoint was raised
/// to ≈1300 GPM.
///
/// ```
/// use mira_units::Gpm;
/// let loop_flow = Gpm::new(1250.0);
/// let per_rack = loop_flow / 48.0;
/// assert!((per_rack.value() - 26.04).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Gpm(f64);

impl Gpm {
    /// Creates a flow rate from a raw GPM reading.
    #[must_use]
    pub const fn new(gpm: f64) -> Self {
        Self(gpm)
    }

    /// Returns the raw value in gallons per minute.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to litres per minute (1 US gal = 3.785411784 L).
    #[must_use]
    pub fn to_litres_per_minute(self) -> f64 {
        self.0 * 3.785_411_784
    }

    /// Converts to litres per second.
    #[must_use]
    pub fn to_litres_per_second(self) -> f64 {
        self.to_litres_per_minute() / 60.0
    }

    /// Creates a flow rate from litres per second.
    #[must_use]
    pub fn from_litres_per_second(lps: f64) -> Self {
        Self(lps * 60.0 / 3.785_411_784)
    }

    /// Coolant mass flow in kg/s, assuming water density 0.997 kg/L.
    ///
    /// Used by the heat-exchanger model to convert heat load into a coolant
    /// temperature delta via `Q = m· · c_p · ΔT`.
    #[must_use]
    pub fn mass_flow_kg_per_s(self) -> f64 {
        self.to_litres_per_minute() * 0.997 / 60.0
    }

    /// Returns the smaller of two readings.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }

    /// Returns the larger of two readings.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Clamps the flow to be non-negative; a pump cannot reverse the loop.
    #[must_use]
    pub fn saturating(self) -> Self {
        Self(self.0.max(0.0))
    }
}

impl Add for Gpm {
    type Output = Gpm;
    fn add(self, rhs: Gpm) -> Gpm {
        Gpm(self.0 + rhs.0)
    }
}

impl Sub for Gpm {
    type Output = Gpm;
    fn sub(self, rhs: Gpm) -> Gpm {
        Gpm(self.0 - rhs.0)
    }
}

impl AddAssign for Gpm {
    fn add_assign(&mut self, rhs: Gpm) {
        self.0 += rhs.0;
    }
}

impl SubAssign for Gpm {
    fn sub_assign(&mut self, rhs: Gpm) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Gpm {
    type Output = Gpm;
    fn mul(self, rhs: f64) -> Gpm {
        Gpm(self.0 * rhs)
    }
}

impl Div<f64> for Gpm {
    type Output = Gpm;
    fn div(self, rhs: f64) -> Gpm {
        Gpm(self.0 / rhs)
    }
}

impl Sum for Gpm {
    fn sum<I: Iterator<Item = Gpm>>(iter: I) -> Gpm {
        Gpm(iter.map(|v| v.0).sum())
    }
}

impl fmt::Display for Gpm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} GPM", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn per_rack_split_matches_paper() {
        let per_rack = Gpm::new(1250.0) / 48.0;
        assert!((per_rack.value() - 26.0).abs() < 0.1);
    }

    #[test]
    fn mass_flow_is_physical() {
        // 26 GPM of water is roughly 1.6 kg/s.
        let m = Gpm::new(26.0).mass_flow_kg_per_s();
        assert!((m - 1.636).abs() < 0.01, "got {m}");
    }

    #[test]
    fn saturating_floors_at_zero() {
        assert_eq!((Gpm::new(5.0) - Gpm::new(9.0)).saturating().value(), 0.0);
        assert_eq!(Gpm::new(5.0).saturating().value(), 5.0);
    }

    #[test]
    fn sum_over_racks() {
        let total: Gpm = (0..48).map(|_| Gpm::new(26.0)).sum();
        assert!((total.value() - 1248.0).abs() < 1e-9);
    }

    #[test]
    fn display_has_unit() {
        assert_eq!(Gpm::new(1300.0).to_string(), "1300.0 GPM");
    }

    proptest! {
        #[test]
        fn litre_conversion_scales_linearly(g in 0.0f64..5000.0, k in 0.1f64..10.0) {
            let a = Gpm::new(g).to_litres_per_minute();
            let b = Gpm::new(g * k).to_litres_per_minute();
            prop_assert!((b - a * k).abs() < 1e-6 * (1.0 + b.abs()));
        }
    }
}
