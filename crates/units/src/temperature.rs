//! Temperature quantities in the two scales the facility uses.
//!
//! Coolant-monitor telemetry is reported in Fahrenheit (the scale used by
//! the paper and by ALCF operations); the psychrometric formulas are
//! defined over Celsius. Both are thin `f64` newtypes with explicit,
//! loss-less conversions.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A temperature in degrees Fahrenheit.
///
/// This is the native scale of Mira's coolant monitor: inlet coolant around
/// 64 °F, outlet around 79 °F, data-center ambient 76–90 °F.
///
/// ```
/// use mira_units::Fahrenheit;
/// let inlet = Fahrenheit::new(64.0);
/// assert!((inlet.to_celsius().value() - 17.777).abs() < 1e-2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Fahrenheit(f64);

/// A temperature in degrees Celsius, used by the psychrometric math.
///
/// ```
/// use mira_units::Celsius;
/// let freezing = Celsius::new(0.0);
/// assert_eq!(freezing.to_fahrenheit().value(), 32.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Celsius(f64);

impl Fahrenheit {
    /// Creates a temperature from a raw Fahrenheit reading.
    #[must_use]
    pub const fn new(degrees: f64) -> Self {
        Self(degrees)
    }

    /// Returns the raw value in degrees Fahrenheit.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to Celsius (`(F − 32) × 5⁄9`).
    #[must_use]
    pub fn to_celsius(self) -> Celsius {
        Celsius((self.0 - 32.0) * 5.0 / 9.0)
    }

    /// Returns the smaller of two readings.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }

    /// Returns the larger of two readings.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Clamps the reading into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn clamp(self, lo: Self, hi: Self) -> Self {
        assert!(lo.0 <= hi.0, "invalid clamp range");
        Self(self.0.clamp(lo.0, hi.0))
    }

    /// Linear interpolation between `self` and `other` at parameter `t`.
    ///
    /// `t = 0` yields `self`; `t = 1` yields `other`. Values of `t` outside
    /// `[0, 1]` extrapolate.
    #[must_use]
    pub fn lerp(self, other: Self, t: f64) -> Self {
        Self(self.0 + (other.0 - self.0) * t)
    }
}

impl Celsius {
    /// Creates a temperature from a raw Celsius value.
    #[must_use]
    pub const fn new(degrees: f64) -> Self {
        Self(degrees)
    }

    /// Returns the raw value in degrees Celsius.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to Fahrenheit (`C × 9⁄5 + 32`).
    #[must_use]
    pub fn to_fahrenheit(self) -> Fahrenheit {
        Fahrenheit(self.0 * 9.0 / 5.0 + 32.0)
    }
}

impl From<Celsius> for Fahrenheit {
    fn from(c: Celsius) -> Self {
        c.to_fahrenheit()
    }
}

impl From<Fahrenheit> for Celsius {
    fn from(f: Fahrenheit) -> Self {
        f.to_celsius()
    }
}

macro_rules! impl_linear_ops {
    ($ty:ident) => {
        impl Add for $ty {
            type Output = $ty;
            fn add(self, rhs: $ty) -> $ty {
                $ty(self.0 + rhs.0)
            }
        }
        impl Sub for $ty {
            type Output = $ty;
            fn sub(self, rhs: $ty) -> $ty {
                $ty(self.0 - rhs.0)
            }
        }
        impl AddAssign for $ty {
            fn add_assign(&mut self, rhs: $ty) {
                self.0 += rhs.0;
            }
        }
        impl SubAssign for $ty {
            fn sub_assign(&mut self, rhs: $ty) {
                self.0 -= rhs.0;
            }
        }
        impl Mul<f64> for $ty {
            type Output = $ty;
            fn mul(self, rhs: f64) -> $ty {
                $ty(self.0 * rhs)
            }
        }
        impl Div<f64> for $ty {
            type Output = $ty;
            fn div(self, rhs: f64) -> $ty {
                $ty(self.0 / rhs)
            }
        }
        impl Neg for $ty {
            type Output = $ty;
            fn neg(self) -> $ty {
                $ty(-self.0)
            }
        }
        impl Sum for $ty {
            fn sum<I: Iterator<Item = $ty>>(iter: I) -> $ty {
                $ty(iter.map(|v| v.0).sum())
            }
        }
    };
}

impl_linear_ops!(Fahrenheit);
impl_linear_ops!(Celsius);

impl fmt::Display for Fahrenheit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} F", self.0)
    }
}

impl fmt::Display for Celsius {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} C", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fahrenheit_celsius_known_points() {
        assert!((Fahrenheit::new(32.0).to_celsius().value()).abs() < 1e-12);
        assert!((Fahrenheit::new(212.0).to_celsius().value() - 100.0).abs() < 1e-12);
        assert!((Celsius::new(-40.0).to_fahrenheit().value() + 40.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_behaves_linearly() {
        let a = Fahrenheit::new(60.0);
        let b = Fahrenheit::new(20.0);
        assert_eq!((a + b).value(), 80.0);
        assert_eq!((a - b).value(), 40.0);
        assert_eq!((a * 0.5).value(), 30.0);
        assert_eq!((a / 2.0).value(), 30.0);
        assert_eq!((-b).value(), -20.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Fahrenheit::new(64.0);
        let b = Fahrenheit::new(79.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert!((a.lerp(b, 0.5).value() - 71.5).abs() < 1e-12);
    }

    #[test]
    fn clamp_and_minmax() {
        let t = Fahrenheit::new(95.0);
        let clamped = t.clamp(Fahrenheit::new(60.0), Fahrenheit::new(90.0));
        assert_eq!(clamped.value(), 90.0);
        assert_eq!(t.min(clamped), clamped);
        assert_eq!(t.max(clamped), t);
    }

    #[test]
    #[should_panic(expected = "invalid clamp range")]
    fn clamp_rejects_inverted_range() {
        let _ = Fahrenheit::new(0.0).clamp(Fahrenheit::new(10.0), Fahrenheit::new(5.0));
    }

    #[test]
    fn sum_of_readings() {
        let total: Fahrenheit = [1.0, 2.0, 3.0].iter().map(|&v| Fahrenheit::new(v)).sum();
        assert_eq!(total.value(), 6.0);
    }

    #[test]
    fn display_formats_with_unit() {
        assert_eq!(Fahrenheit::new(64.1).to_string(), "64.10 F");
        assert_eq!(Celsius::new(17.0).to_string(), "17.00 C");
    }

    proptest! {
        #[test]
        fn round_trip_is_lossless(deg in -200.0f64..400.0) {
            let f = Fahrenheit::new(deg);
            let back = f.to_celsius().to_fahrenheit();
            prop_assert!((back.value() - deg).abs() < 1e-9);
        }

        #[test]
        fn conversion_is_monotonic(a in -100.0f64..200.0, b in -100.0f64..200.0) {
            let (fa, fb) = (Fahrenheit::new(a), Fahrenheit::new(b));
            prop_assert_eq!(a < b, fa.to_celsius().value() < fb.to_celsius().value());
        }
    }
}
