//! Typed physical quantities for liquid-cooled data-center telemetry.
//!
//! The Mira coolant monitor reports temperatures in degrees Fahrenheit,
//! coolant flow in gallons per minute, power in kilowatts/megawatts, and
//! ambient humidity in percent relative humidity. Mixing those up in raw
//! `f64`s is exactly the kind of bug a facility dashboard cannot afford, so
//! every channel gets its own newtype with explicit conversions
//! ([`Fahrenheit::to_celsius`], [`Megawatts::to_kilowatts`], …) and the
//! psychrometric helpers the paper's failure analysis relies on
//! ([`dew_point`], [`condensation_margin`]).
//!
//! # Example
//!
//! ```
//! use mira_units::{Fahrenheit, RelHumidity, dew_point};
//!
//! let dc_temp = Fahrenheit::new(80.0);
//! let dc_rh = RelHumidity::new(35.0);
//! let dp = dew_point(dc_temp, dc_rh);
//! assert!(dp < dc_temp, "dew point is below ambient at RH < 100%");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convert;
pub mod energy;
pub mod flow;
pub mod humidity;
pub mod power;
pub mod ratio;
pub mod temperature;

pub use energy::KilowattHours;
pub use flow::Gpm;
pub use humidity::{condensation_margin, dew_point, RelHumidity};
pub use power::{Kilowatts, Megawatts, Watts};
pub use ratio::{Percent, Ratio};
pub use temperature::{Celsius, Fahrenheit};
