//! The underfloor airflow map.
//!
//! The spatial analysis of the paper (Fig. 9) traced rack-to-rack ambient
//! differences to underfloor airflow: flow is obstructed near the ends of
//! each row (the last three or four racks run drier and hotter), and
//! airflow-blocking objects — plumbing pipes, air-cooling vents, torus
//! cables — create localized humidity hotspots such as rack `(1, 8)`.
//!
//! [`AirflowMap`] encodes those per-rack modifiers: a humidity
//! multiplier and an ambient-temperature offset applied on top of the
//! room-level conditions produced by the weather model.

use serde::{Deserialize, Serialize};

use mira_units::{convert, Fahrenheit};

use crate::rack::RackId;

/// Per-rack ambient modifiers induced by underfloor airflow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RackAirflow {
    /// Relative underfloor airflow at this rack (1 = unobstructed).
    pub airflow: f64,
    /// Multiplier applied to the room-level relative humidity.
    pub humidity_factor: f64,
    /// Offset added to the room-level ambient temperature.
    pub temperature_offset: Fahrenheit,
}

/// Map from rack to its airflow-induced ambient modifiers.
///
/// ```
/// use mira_facility::{AirflowMap, RackId};
///
/// let map = AirflowMap::mira();
/// let end = map.at(RackId::new(0, 0));
/// let center = map.at(RackId::new(0, 7));
/// // Row ends are drier and hotter than row centers.
/// assert!(end.humidity_factor < center.humidity_factor);
/// assert!(end.temperature_offset > center.temperature_offset);
/// // (1, 8) is the paper's humidity hotspot.
/// let hotspot = map.at(RackId::parse("(1, 8)").unwrap());
/// assert!(hotspot.humidity_factor > 1.05);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AirflowMap {
    racks: Vec<RackAirflow>,
}

impl AirflowMap {
    /// Builds the Mira underfloor map: row-end obstruction plus the
    /// `(1, 8)` hotspot, with mild deterministic per-rack variation from
    /// cable-layout differences.
    #[must_use]
    pub fn mira() -> Self {
        let racks = RackId::all()
            .map(|rack| {
                // Row-end effect: the last 3-4 racks on either side sit
                // behind obstructive surfaces.
                let d = rack.distance_from_row_end();
                let (end_airflow_penalty, end_temp, end_humidity) = match d {
                    0 => (0.35, 6.0, -0.16),
                    1 => (0.28, 4.5, -0.13),
                    2 => (0.20, 3.0, -0.09),
                    3 => (0.12, 1.8, -0.05),
                    _ => (0.0, 0.0, 0.0),
                };

                // Deterministic per-rack jitter from the cable layout
                // (fixed wiring, so a hash, not an RNG).
                let h = (rack.index() as u64).wrapping_mul(0xD131_0BA6_98DF_B5AC);
                let jitter = convert::f64_from_u64((h >> 16) & 0xFFFF) / 65_535.0 - 0.5; // [-0.5, 0.5]

                let mut airflow = 1.0 - end_airflow_penalty + jitter * 0.06;
                let mut humidity_factor = 1.0 + end_humidity + jitter * 0.04;
                let mut temperature_offset = end_temp + jitter * 0.8;

                // Localized obstructions under specific racks: (1, 8) is
                // the paper's humidity hotspot (plumbing + torus cables).
                if rack == RackId::new(1, 8) {
                    airflow -= 0.30;
                    humidity_factor = 1.14;
                    temperature_offset += 1.0;
                }
                // A couple of milder documented obstructions.
                if rack == RackId::new(2, 2) {
                    airflow -= 0.12;
                    humidity_factor += 0.05;
                }
                if rack == RackId::new(0, 6) {
                    airflow -= 0.10;
                    humidity_factor += 0.04;
                }

                RackAirflow {
                    airflow: airflow.clamp(0.2, 1.0),
                    humidity_factor: humidity_factor.clamp(0.7, 1.25),
                    temperature_offset: Fahrenheit::new(temperature_offset),
                }
            })
            .collect();
        Self { racks }
    }

    /// The modifiers for one rack.
    #[must_use]
    pub fn at(&self, rack: RackId) -> RackAirflow {
        self.racks[rack.index()]
    }

    /// Iterates over `(rack, modifiers)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RackId, RackAirflow)> + '_ {
        RackId::all().map(move |r| (r, self.racks[r.index()]))
    }

    /// The rack with the highest humidity factor (the hotspot).
    #[must_use]
    pub fn humidity_hotspot(&self) -> RackId {
        RackId::all()
            .max_by(|a, b| {
                self.at(*a)
                    .humidity_factor
                    .total_cmp(&self.at(*b).humidity_factor)
            })
            .unwrap_or_else(|| RackId::from_index(0))
    }
}

impl Default for AirflowMap {
    fn default() -> Self {
        Self::mira()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotspot_is_one_eight() {
        let map = AirflowMap::mira();
        assert_eq!(map.humidity_hotspot(), RackId::new(1, 8));
    }

    #[test]
    fn row_ends_are_drier_and_hotter() {
        let map = AirflowMap::mira();
        for row in 0..3 {
            let end = map.at(RackId::new(row, 15));
            let center = map.at(RackId::new(row, 7));
            assert!(end.humidity_factor < center.humidity_factor, "row {row}");
            assert!(
                end.temperature_offset.value() > center.temperature_offset.value() + 2.0,
                "row {row}"
            );
            assert!(end.airflow < center.airflow, "row {row}");
        }
    }

    #[test]
    fn humidity_spread_matches_fig9_scale() {
        let map = AirflowMap::mira();
        let factors: Vec<f64> = map.iter().map(|(_, a)| a.humidity_factor).collect();
        let min = factors.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = factors.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let spread = (max - min) / min;
        // Paper: humidity differs by up to 36 % across racks.
        assert!(
            (0.25..=0.45).contains(&spread),
            "humidity spread {spread} outside Fig. 9 band"
        );
    }

    #[test]
    fn temperature_offsets_bounded() {
        let map = AirflowMap::mira();
        for (rack, a) in map.iter() {
            assert!(
                (-2.0..=8.0).contains(&a.temperature_offset.value()),
                "{rack} offset {}",
                a.temperature_offset
            );
        }
    }

    #[test]
    fn airflow_in_physical_range() {
        let map = AirflowMap::mira();
        for (_, a) in map.iter() {
            assert!((0.2..=1.0).contains(&a.airflow));
            assert!((0.7..=1.25).contains(&a.humidity_factor));
        }
    }

    #[test]
    fn map_is_deterministic() {
        assert_eq!(AirflowMap::mira(), AirflowMap::mira());
    }
}
