//! Mira Blue Gene/Q machine topology, power system, and airflow map.
//!
//! This crate is the *static* description of the machine the paper
//! studied: 48 liquid-cooled compute racks in 3 rows of 16 (plus
//! air-cooled I/O racks), each rack with two midplanes, 16 node boards per
//! midplane, 32 compute cards per node board — 1,024 nodes per rack,
//! 49,152 nodes system-wide.
//!
//! - [`rack`] — [`RackId`] addressing in the paper's `(row, column)`
//!   notation with hexadecimal columns, e.g. `(0, D)` or `(1, 8)`.
//! - [`topology`] — machine constants and the [`Machine`] description.
//! - [`clock`] — the clock-signal distribution tree: rack `(1, 4)` feeds
//!   every clock domain, `(0, 9)` hangs off `(0, A)`, and failures
//!   propagate along these edges without spatial locality.
//! - [`power`] — the per-rack bulk power module (BPM) model mapping
//!   utilization and job CPU-intensity to electrical draw.
//! - [`airflow`] — the underfloor airflow map that creates the rack-level
//!   ambient temperature and humidity variation of Fig. 9.
//! - [`queues`] — scheduling queues and their row affinities (`prod-long`
//!   runs on row 0).
//!
//! # Example
//!
//! ```
//! use mira_facility::{Machine, RackId};
//!
//! let machine = Machine::mira();
//! assert_eq!(machine.compute_racks().count(), 48);
//! assert_eq!(machine.total_nodes(), 49_152);
//! let epicenter = RackId::parse("(1, 4)").unwrap();
//! // The clock master takes the whole system down with it.
//! assert_eq!(machine.clock_tree().affected_by(epicenter).len(), 48);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod airflow;
pub mod clock;
pub mod power;
pub mod queues;
pub mod rack;
pub mod topology;

pub use airflow::AirflowMap;
pub use clock::ClockTree;
pub use power::BulkPowerModule;
pub use queues::{Queue, QueueMap};
pub use rack::{ParseRackIdError, RackId, COLUMNS, ROWS};
pub use topology::{Machine, NODES_PER_RACK, TOTAL_NODES};
