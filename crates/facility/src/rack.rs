//! Rack addressing in the paper's `(row, column)` notation.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// Number of compute-rack rows on the floor.
pub const ROWS: u8 = 3;

/// Number of compute racks per row, labeled with hexadecimal columns
/// `0`–`F`.
pub const COLUMNS: u8 = 16;

/// Identifier of one of Mira's 48 compute racks.
///
/// The paper writes racks as `(row, column)` with a hexadecimal column
/// digit — `(0, D)` is row 0, column 13. `RackId` keeps that notation for
/// display and parsing, and provides a dense [`RackId::index`] for array
/// storage.
///
/// ```
/// use mira_facility::RackId;
///
/// let r = RackId::new(1, 8);
/// assert_eq!(r.to_string(), "(1, 8)");
/// assert_eq!(RackId::parse("(0, D)").unwrap().column(), 13);
/// assert_eq!(RackId::from_index(r.index()), r);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RackId {
    row: u8,
    column: u8,
}

impl RackId {
    /// Total number of compute racks.
    // u8 → usize widening cannot lose values; `as` is required in
    // const context. mira-lint: allow(lossy-cast)
    pub const COUNT: usize = (ROWS as usize) * (COLUMNS as usize);

    /// Creates a rack id.
    ///
    /// # Panics
    ///
    /// Panics if `row >= 3` or `column >= 16`.
    #[must_use]
    pub fn new(row: u8, column: u8) -> Self {
        assert!(row < ROWS, "row out of range: {row}");
        assert!(column < COLUMNS, "column out of range: {column}");
        Self { row, column }
    }

    /// The rack's row (0–2).
    #[must_use]
    pub fn row(self) -> u8 {
        self.row
    }

    /// The rack's column (0–15, displayed as a hex digit).
    #[must_use]
    pub fn column(self) -> u8 {
        self.column
    }

    /// Dense index in row-major order (`row * 16 + column`), in
    /// `0..RackId::COUNT`.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.row) * usize::from(COLUMNS) + usize::from(self.column)
    }

    /// Builds a rack id from its dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= RackId::COUNT`.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        assert!(index < Self::COUNT, "rack index out of range: {index}");
        // index < COUNT bounds both digits well inside u8, so the
        // fallbacks are unreachable.
        Self {
            row: u8::try_from(index / usize::from(COLUMNS)).unwrap_or(0),
            column: u8::try_from(index % usize::from(COLUMNS)).unwrap_or(0),
        }
    }

    /// Iterates over all 48 racks in row-major order.
    pub fn all() -> impl Iterator<Item = RackId> {
        (0..Self::COUNT).map(Self::from_index)
    }

    /// Parses the paper's notation, e.g. `"(0, D)"` (whitespace after the
    /// comma optional, column case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`ParseRackIdError`] when the string is not of the form
    /// `(<row>, <hex column>)` with row in `0..3`.
    pub fn parse(s: &str) -> Result<Self, ParseRackIdError> {
        let inner = s
            .trim()
            .strip_prefix('(')
            .and_then(|r| r.strip_suffix(')'))
            .ok_or(ParseRackIdError)?;
        let (row_s, col_s) = inner.split_once(',').ok_or(ParseRackIdError)?;
        let row: u8 = row_s.trim().parse().map_err(|_| ParseRackIdError)?;
        let col_s = col_s.trim();
        if col_s.len() != 1 {
            return Err(ParseRackIdError);
        }
        let column = u8::from_str_radix(col_s, 16).map_err(|_| ParseRackIdError)?;
        if row >= ROWS || column >= COLUMNS {
            return Err(ParseRackIdError);
        }
        Ok(Self { row, column })
    }

    /// Distance (in rack slots) from the nearest end of the rack's row.
    ///
    /// The underfloor airflow study found obstructed flow near row ends —
    /// the last three or four racks on either side of every row run
    /// drier and hotter.
    #[must_use]
    pub fn distance_from_row_end(self) -> u8 {
        self.column.min(COLUMNS - 1 - self.column)
    }

    /// Racks physically adjacent in the same row.
    #[must_use]
    pub fn row_neighbors(self) -> Vec<RackId> {
        let mut out = Vec::with_capacity(2);
        if self.column > 0 {
            out.push(RackId::new(self.row, self.column - 1));
        }
        if self.column + 1 < COLUMNS {
            out.push(RackId::new(self.row, self.column + 1));
        }
        out
    }

    /// Manhattan distance on the floor grid (rows are ~aisle-width apart).
    #[must_use]
    pub fn grid_distance(self, other: RackId) -> u8 {
        self.row.abs_diff(other.row) + self.column.abs_diff(other.column)
    }
}

impl fmt::Display for RackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {:X})", self.row, self.column)
    }
}

impl FromStr for RackId {
    type Err = ParseRackIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

/// Error returned when a rack id string cannot be parsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseRackIdError;

impl fmt::Display for ParseRackIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid rack id; expected \"(<row>, <hex column>)\"")
    }
}

impl std::error::Error for ParseRackIdError {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(RackId::new(0, 13).to_string(), "(0, D)");
        assert_eq!(RackId::new(1, 8).to_string(), "(1, 8)");
        assert_eq!(RackId::new(2, 7).to_string(), "(2, 7)");
    }

    #[test]
    fn parse_accepts_paper_notation() {
        assert_eq!(RackId::parse("(0, D)").unwrap(), RackId::new(0, 13));
        assert_eq!(RackId::parse("(1,8)").unwrap(), RackId::new(1, 8));
        assert_eq!(RackId::parse(" (2, a) ").unwrap(), RackId::new(2, 10));
        assert_eq!("(0, A)".parse::<RackId>().unwrap(), RackId::new(0, 10));
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in ["", "(3, 0)", "(0, G)", "0, A", "(0 A)", "(0, AA)", "(x, 1)"] {
            assert!(RackId::parse(bad).is_err(), "{bad} should fail");
        }
        let err = RackId::parse("nope").unwrap_err();
        assert!(err.to_string().contains("invalid rack id"));
    }

    #[test]
    fn all_covers_every_rack_once() {
        let racks: Vec<RackId> = RackId::all().collect();
        assert_eq!(racks.len(), 48);
        let mut seen = std::collections::HashSet::new();
        for r in &racks {
            assert!(seen.insert(*r));
        }
    }

    #[test]
    fn distance_from_row_end_symmetry() {
        assert_eq!(RackId::new(0, 0).distance_from_row_end(), 0);
        assert_eq!(RackId::new(0, 15).distance_from_row_end(), 0);
        assert_eq!(RackId::new(0, 7).distance_from_row_end(), 7);
        assert_eq!(RackId::new(0, 8).distance_from_row_end(), 7);
    }

    #[test]
    fn neighbors_at_edges() {
        assert_eq!(RackId::new(1, 0).row_neighbors(), vec![RackId::new(1, 1)]);
        assert_eq!(
            RackId::new(1, 5).row_neighbors(),
            vec![RackId::new(1, 4), RackId::new(1, 6)]
        );
    }

    #[test]
    fn grid_distance_is_manhattan() {
        assert_eq!(RackId::new(0, 0).grid_distance(RackId::new(2, 15)), 17);
        assert_eq!(RackId::new(1, 4).grid_distance(RackId::new(1, 4)), 0);
    }

    #[test]
    #[should_panic(expected = "row out of range")]
    fn new_rejects_bad_row() {
        let _ = RackId::new(3, 0);
    }

    #[test]
    #[should_panic(expected = "rack index out of range")]
    fn from_index_rejects_overflow() {
        let _ = RackId::from_index(48);
    }

    proptest! {
        #[test]
        fn index_round_trip(i in 0usize..48) {
            prop_assert_eq!(RackId::from_index(i).index(), i);
        }

        #[test]
        fn display_parse_round_trip(i in 0usize..48) {
            let r = RackId::from_index(i);
            prop_assert_eq!(RackId::parse(&r.to_string()).unwrap(), r);
        }
    }
}
