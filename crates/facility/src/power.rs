//! The per-rack bulk power module (BPM) model.
//!
//! Each rack's BPM converts 480 V three-phase AC from the 13.2 kV
//! substations into DC for the two midplanes, over four 60 A line cords.
//! The coolant monitor's "power" channel is the aggregate draw of the
//! rack's four power enclosures — compute load plus fans plus conversion
//! loss. This module maps (utilization, job CPU-intensity) to that
//! aggregate draw.

use serde::{Deserialize, Serialize};

use mira_units::{Kilowatts, Watts};

/// Per-rack AC→DC bulk power module.
///
/// The model is affine in compute activity:
///
/// `P = (idle + span · utilization · intensity) / efficiency`
///
/// - `idle` — draw of an empty, powered rack (fans, DC house-keeping,
///   leakage). Mira racks never fully idle in production, and burner jobs
///   keep them warm during maintenance.
/// - `span` — additional draw between idle and a fully-busy rack running
///   maximally CPU-intensive work.
/// - `intensity` — how hard the running jobs drive the cores (`0..=1`);
///   this is what decorrelates power from plain utilization (the paper
///   measured only 0.45 correlation).
/// - `efficiency` — AC→DC conversion efficiency of the BPM.
///
/// ```
/// use mira_facility::BulkPowerModule;
///
/// let bpm = BulkPowerModule::mira();
/// let idle = bpm.draw(0.0, 0.5);
/// let busy = bpm.draw(1.0, 1.0);
/// assert!(busy.value() > idle.value());
/// // 48 busy racks stay within the 6 MW provisioning.
/// assert!(busy.value() * 48.0 <= 6_000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BulkPowerModule {
    idle_kw: f64,
    span_kw: f64,
    efficiency: f64,
}

/// Number of 480 V line cords feeding each rack's BPM.
pub const LINE_CORDS_PER_RACK: u32 = 4;

/// Line-cord current rating in amperes.
pub const LINE_CORD_AMPS: f64 = 60.0;

impl BulkPowerModule {
    /// The Mira BPM calibration.
    ///
    /// Chosen so the 48-rack aggregate reproduces the paper's trajectory:
    /// ≈2.5 MW at 2014 utilization/intensity and ≈2.9 MW at 2019 levels,
    /// with headroom to the 6 MW provisioning limit.
    #[must_use]
    pub fn mira() -> Self {
        Self {
            idle_kw: 27.0,
            span_kw: 42.0,
            efficiency: 0.94,
        }
    }

    /// Creates a custom BPM model.
    ///
    /// # Panics
    ///
    /// Panics unless `idle_kw >= 0`, `span_kw >= 0`, and
    /// `0 < efficiency <= 1`.
    #[must_use]
    pub fn new(idle_kw: f64, span_kw: f64, efficiency: f64) -> Self {
        assert!(idle_kw >= 0.0, "idle draw must be non-negative");
        assert!(span_kw >= 0.0, "span must be non-negative");
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0, 1]"
        );
        Self {
            idle_kw,
            span_kw,
            efficiency,
        }
    }

    /// AC-side draw for a rack at `utilization` (fraction of nodes busy)
    /// running jobs of the given mean CPU `intensity` (both clamped to
    /// `[0, 1]`).
    #[must_use]
    pub fn draw(&self, utilization: f64, intensity: f64) -> Kilowatts {
        let u = utilization.clamp(0.0, 1.0);
        let i = intensity.clamp(0.0, 1.0);
        Kilowatts::new((self.idle_kw + self.span_kw * u * i) / self.efficiency)
    }

    /// Heat dissipated into the rack's coolant loop, in watts.
    ///
    /// All DC power becomes heat in the rack; conversion loss heats the
    /// BPM enclosure (air-side) and is excluded from the liquid loop.
    #[must_use]
    // Dimensionless utilization/intensity fractions. mira-lint: allow(raw-f64-in-public-api)
    pub fn heat_to_coolant_watts(&self, utilization: f64, intensity: f64) -> Watts {
        Watts::new(self.draw(utilization, intensity).value() * self.efficiency * 1000.0)
    }

    /// Idle (zero-utilization) AC draw.
    #[must_use]
    pub fn idle_draw(&self) -> Kilowatts {
        self.draw(0.0, 0.0)
    }

    /// Maximum AC draw (full utilization, maximal intensity).
    #[must_use]
    pub fn max_draw(&self) -> Kilowatts {
        self.draw(1.0, 1.0)
    }

    /// AC→DC conversion efficiency.
    #[must_use]
    pub fn efficiency(&self) -> f64 {
        self.efficiency
    }

    /// Theoretical line-cord capacity at 480 V three-phase, in kW.
    #[must_use]
    pub fn line_capacity_kw(&self) -> Kilowatts {
        // P = √3 · V · I per cord.
        Kilowatts::new(
            f64::from(LINE_CORDS_PER_RACK) * 3f64.sqrt() * 480.0 * LINE_CORD_AMPS / 1000.0,
        )
    }
}

impl Default for BulkPowerModule {
    fn default() -> Self {
        Self::mira()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mira_power_trajectory_brackets_paper() {
        let bpm = BulkPowerModule::mira();
        // 2014: ~80 % utilization, moderate intensity.
        let early = bpm.draw(0.80, 0.72).value() * 48.0 / 1000.0;
        // 2019: ~93 % utilization, higher intensity mix.
        let late = bpm.draw(0.93, 0.80).value() * 48.0 / 1000.0;
        assert!((2.3..2.7).contains(&early), "2014 ≈ 2.5 MW, got {early}");
        assert!((2.7..3.1).contains(&late), "2019 ≈ 2.9 MW, got {late}");
    }

    #[test]
    fn draw_clamps_inputs() {
        let bpm = BulkPowerModule::mira();
        assert_eq!(bpm.draw(-1.0, 0.5), bpm.draw(0.0, 0.5));
        assert_eq!(bpm.draw(2.0, 1.5), bpm.draw(1.0, 1.0));
    }

    #[test]
    fn max_draw_within_line_capacity() {
        let bpm = BulkPowerModule::mira();
        assert!(bpm.max_draw().value() < bpm.line_capacity_kw().value());
    }

    #[test]
    fn heat_excludes_conversion_loss() {
        let bpm = BulkPowerModule::mira();
        let heat = bpm.heat_to_coolant_watts(1.0, 1.0).value();
        let ac = bpm.max_draw().value() * 1000.0;
        assert!(heat < ac);
        assert!((heat / ac - bpm.efficiency()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "efficiency must be in (0, 1]")]
    fn rejects_bad_efficiency() {
        let _ = BulkPowerModule::new(10.0, 10.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "idle draw must be non-negative")]
    fn rejects_negative_idle() {
        let _ = BulkPowerModule::new(-1.0, 10.0, 0.9);
    }

    proptest! {
        #[test]
        fn draw_is_monotone_in_utilization(
            a in 0.0f64..1.0, b in 0.0f64..1.0, i in 0.01f64..1.0,
        ) {
            let bpm = BulkPowerModule::mira();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(bpm.draw(lo, i).value() <= bpm.draw(hi, i).value());
        }

        #[test]
        fn draw_bounded(u in -2.0f64..2.0, i in -2.0f64..2.0) {
            let bpm = BulkPowerModule::mira();
            let p = bpm.draw(u, i);
            prop_assert!(p.value() >= bpm.idle_draw().value() - 1e-12);
            prop_assert!(p.value() <= bpm.max_draw().value() + 1e-12);
        }
    }
}
