//! Machine-level constants and description.

use serde::{Deserialize, Serialize};

use crate::airflow::AirflowMap;
use crate::clock::ClockTree;
use crate::queues::QueueMap;
use crate::rack::RackId;

/// Midplanes per rack.
pub const MIDPLANES_PER_RACK: u32 = 2;

/// Node boards per midplane.
pub const NODE_BOARDS_PER_MIDPLANE: u32 = 16;

/// Compute cards (nodes) per node board.
pub const NODES_PER_BOARD: u32 = 32;

/// Nodes per rack (2 × 16 × 32).
pub const NODES_PER_RACK: u32 = MIDPLANES_PER_RACK * NODE_BOARDS_PER_MIDPLANE * NODES_PER_BOARD;

/// Nodes in the whole system (48 racks).
// RackId::COUNT is 48, well inside u32; `as` is required in const
// context. mira-lint: allow(lossy-cast)
pub const TOTAL_NODES: u32 = NODES_PER_RACK * RackId::COUNT as u32;

/// Cores usable for computation per node (18 on the A2 die, 16 active).
pub const ACTIVE_CORES_PER_NODE: u32 = 16;

/// Memory per node in GiB of DDR3.
pub const MEMORY_PER_NODE_GIB: u32 = 16;

/// I/O-forwarding-node racks (air-cooled), two at the end of each row.
pub const ION_RACKS: u32 = 6;

/// Static description of the machine: rack grid, clock-signal tree,
/// queue→row affinities, and the underfloor airflow map.
///
/// `Machine` is immutable configuration; the dynamic state (utilization,
/// temperatures, failures) lives in the simulator crates layered on top.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Machine {
    clock_tree: ClockTree,
    queues: QueueMap,
    airflow: AirflowMap,
}

impl Machine {
    /// The Mira configuration described in the paper.
    #[must_use]
    pub fn mira() -> Self {
        Self {
            clock_tree: ClockTree::mira(),
            queues: QueueMap::mira(),
            airflow: AirflowMap::mira(),
        }
    }

    /// Iterates over all 48 compute racks.
    pub fn compute_racks(&self) -> impl Iterator<Item = RackId> {
        RackId::all()
    }

    /// Total compute nodes (49,152 for Mira).
    #[must_use]
    pub fn total_nodes(&self) -> u32 {
        TOTAL_NODES
    }

    /// Total active compute cores (786,432 for Mira).
    #[must_use]
    pub fn total_cores(&self) -> u32 {
        TOTAL_NODES * ACTIVE_CORES_PER_NODE
    }

    /// Total memory in TiB (768 for Mira).
    #[must_use]
    pub fn total_memory_tib(&self) -> u32 {
        TOTAL_NODES * MEMORY_PER_NODE_GIB / 1024
    }

    /// The clock-signal distribution tree.
    #[must_use]
    pub fn clock_tree(&self) -> &ClockTree {
        &self.clock_tree
    }

    /// Queue definitions and rack affinities.
    #[must_use]
    pub fn queues(&self) -> &QueueMap {
        &self.queues
    }

    /// The underfloor airflow map.
    #[must_use]
    pub fn airflow(&self) -> &AirflowMap {
        &self.airflow
    }
}

impl Default for Machine {
    fn default() -> Self {
        Self::mira()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_the_paper() {
        assert_eq!(NODES_PER_RACK, 1024);
        assert_eq!(TOTAL_NODES, 49_152);
        let m = Machine::mira();
        assert_eq!(m.total_cores(), 786_432);
        assert_eq!(m.total_memory_tib(), 768);
        assert_eq!(m.compute_racks().count(), 48);
    }

    #[test]
    fn default_is_mira() {
        let m = Machine::default();
        assert_eq!(m.total_nodes(), 49_152);
    }
}
