//! Scheduling queues and their rack affinities.
//!
//! Mira's Cobalt scheduler routed jobs by queue: `prod-long` jobs (the
//! multi-day capability runs) were placed on row 0, which is why row 0
//! shows the highest utilization *and* power in Fig. 6. `prod-short` and
//! `backfill` fill the remaining rows.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::rack::{RackId, COLUMNS};

/// A scheduling queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Queue {
    /// Long-running capability jobs (row 0).
    ProdLong,
    /// Standard production jobs.
    ProdShort,
    /// Backfill jobs squeezed into drain windows.
    Backfill,
}

impl Queue {
    /// All queues.
    pub const ALL: [Queue; 3] = [Queue::ProdLong, Queue::ProdShort, Queue::Backfill];

    /// The queue's Cobalt name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Queue::ProdLong => "prod-long",
            Queue::ProdShort => "prod-short",
            Queue::Backfill => "backfill",
        }
    }
}

impl fmt::Display for Queue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Maps queues to the racks they may occupy.
///
/// ```
/// use mira_facility::{Queue, QueueMap, RackId};
///
/// let map = QueueMap::mira();
/// assert!(map.racks(Queue::ProdLong).iter().all(|r| r.row() == 0));
/// assert_eq!(map.queue_for(RackId::new(0, 3)), Queue::ProdLong);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueMap {
    prod_long: Vec<RackId>,
    prod_short: Vec<RackId>,
    backfill: Vec<RackId>,
}

impl QueueMap {
    /// Mira's production queue layout: `prod-long` on all of row 0,
    /// `prod-short` on rows 1–2, `backfill` overlapping rows 1–2.
    #[must_use]
    pub fn mira() -> Self {
        let prod_long = (0..COLUMNS).map(|c| RackId::new(0, c)).collect();
        let prod_short = (1..3)
            .flat_map(|row| (0..COLUMNS).map(move |c| RackId::new(row, c)))
            .collect();
        let backfill = (1..3)
            .flat_map(|row| (0..COLUMNS).map(move |c| RackId::new(row, c)))
            .collect();
        Self {
            prod_long,
            prod_short,
            backfill,
        }
    }

    /// Racks a queue may occupy.
    #[must_use]
    pub fn racks(&self, queue: Queue) -> &[RackId] {
        match queue {
            Queue::ProdLong => &self.prod_long,
            Queue::ProdShort => &self.prod_short,
            Queue::Backfill => &self.backfill,
        }
    }

    /// The primary queue owning a rack (`prod-long` for row 0, otherwise
    /// `prod-short`).
    #[must_use]
    pub fn queue_for(&self, rack: RackId) -> Queue {
        if rack.row() == 0 {
            Queue::ProdLong
        } else {
            Queue::ProdShort
        }
    }
}

impl Default for QueueMap {
    fn default() -> Self {
        Self::mira()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prod_long_is_row_zero() {
        let map = QueueMap::mira();
        let racks = map.racks(Queue::ProdLong);
        assert_eq!(racks.len(), 16);
        assert!(racks.iter().all(|r| r.row() == 0));
    }

    #[test]
    fn short_and_backfill_cover_other_rows() {
        let map = QueueMap::mira();
        assert_eq!(map.racks(Queue::ProdShort).len(), 32);
        assert_eq!(map.racks(Queue::Backfill).len(), 32);
        assert!(map
            .racks(Queue::ProdShort)
            .iter()
            .all(|r| r.row() == 1 || r.row() == 2));
    }

    #[test]
    fn queue_for_maps_rows() {
        let map = QueueMap::mira();
        assert_eq!(map.queue_for(RackId::new(0, 9)), Queue::ProdLong);
        assert_eq!(map.queue_for(RackId::new(2, 1)), Queue::ProdShort);
    }

    #[test]
    fn queue_names() {
        assert_eq!(Queue::ProdLong.to_string(), "prod-long");
        assert_eq!(Queue::Backfill.name(), "backfill");
    }
}
