//! The clock-signal distribution tree.
//!
//! Not every Blue Gene/Q rack has its own clock card. Racks without one
//! receive their clock through a leader rack, and every leader is fed by
//! the clock master — rack `(1, 4)` on Mira. The paper's two concrete
//! examples are encoded here: `(0, 9)` hangs off `(0, A)`, and a failure
//! of `(1, 4)` takes down the entire system. Crucially, the leader
//! assignment is *not* spatially correlated — which is why post-CMF
//! cascades land on racks far from the epicenter (Fig. 15).

use serde::{Deserialize, Serialize};

use mira_units::convert;

use crate::rack::RackId;

/// Clock-signal dependency tree over the 48 compute racks.
///
/// ```
/// use mira_facility::{ClockTree, RackId};
///
/// let tree = ClockTree::mira();
/// // (0, 9) has no clock card of its own; it fails with (0, A).
/// let a = RackId::parse("(0, A)").unwrap();
/// let nine = RackId::parse("(0, 9)").unwrap();
/// assert!(tree.affected_by(a).contains(&nine));
/// // The clock master takes everything down.
/// assert_eq!(tree.affected_by(tree.master()).len(), 48);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClockTree {
    /// `parent[i]` is the rack that rack `i` receives its clock from;
    /// `None` for the master.
    parents: Vec<Option<RackId>>,
    master: RackId,
}

impl ClockTree {
    /// Builds Mira's clock tree: master `(1, 4)`, a deterministic
    /// non-spatial set of leader racks with their own clock cards, and
    /// the remaining racks distributed across the leaders.
    #[must_use]
    pub fn mira() -> Self {
        let master = RackId::new(1, 4);
        // Leader racks own a clock card and are fed directly by the
        // master. The set is fixed (it is machine wiring, not policy) and
        // includes (0, A) so the paper's (0, A) -> (0, 9) example holds.
        let leaders = [
            RackId::new(0, 10), // (0, A)
            RackId::new(0, 3),
            RackId::new(0, 14),
            RackId::new(1, 0),
            RackId::new(1, 11),
            RackId::new(2, 5),
            RackId::new(2, 9),
            RackId::new(2, 15),
        ];

        let mut parents: Vec<Option<RackId>> = vec![None; RackId::COUNT];
        for leader in leaders {
            parents[leader.index()] = Some(master);
        }

        // Followers are assigned to leaders via a fixed multiplicative
        // hash: deliberately uncorrelated with floor position.
        let mut leader_cursor = 0usize;
        for rack in RackId::all() {
            if rack == master || leaders.contains(&rack) {
                continue;
            }
            if rack == RackId::new(0, 9) {
                // Paper example: (0, 9) gets its clock through (0, A).
                parents[rack.index()] = Some(RackId::new(0, 10));
                continue;
            }
            let h = (rack.index() as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(17);
            let pick = convert::usize_from_u64(h).wrapping_add(leader_cursor) % leaders.len();
            leader_cursor += 1;
            // pick is reduced mod leaders.len(), which is non-zero:
            // row 0 always has leaders. mira-lint: allow(panic-reachability)
            parents[rack.index()] = Some(leaders[pick]);
        }
        parents[master.index()] = None;

        Self { parents, master }
    }

    /// The clock master rack (`(1, 4)` on Mira).
    #[must_use]
    pub fn master(&self) -> RackId {
        self.master
    }

    /// The rack that `rack` receives its clock from, or `None` for the
    /// master.
    #[must_use]
    pub fn parent(&self, rack: RackId) -> Option<RackId> {
        self.parents[rack.index()]
    }

    /// Whether `rack` owns a clock card (master or leader).
    #[must_use]
    pub fn has_clock_card(&self, rack: RackId) -> bool {
        self.parents[rack.index()] == Some(self.master) || rack == self.master
    }

    /// Whether `dependent`'s clock path passes through `source`.
    #[must_use]
    pub fn depends_on(&self, dependent: RackId, source: RackId) -> bool {
        let mut cur = dependent;
        loop {
            if cur == source {
                return true;
            }
            match self.parent(cur) {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// All racks that lose their clock when `rack` goes down, including
    /// `rack` itself.
    #[must_use]
    pub fn affected_by(&self, rack: RackId) -> Vec<RackId> {
        RackId::all()
            .filter(|&r| self.depends_on(r, rack))
            .collect()
    }

    /// Depth of `rack` in the tree (master = 0).
    #[must_use]
    pub fn depth(&self, rack: RackId) -> usize {
        let mut depth = 0;
        let mut cur = rack;
        while let Some(p) = self.parent(cur) {
            depth += 1;
            cur = p;
        }
        depth
    }
}

impl Default for ClockTree {
    fn default() -> Self {
        Self::mira()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn master_is_one_four() {
        let t = ClockTree::mira();
        assert_eq!(t.master(), RackId::new(1, 4));
        assert_eq!(t.parent(t.master()), None);
        assert_eq!(t.depth(t.master()), 0);
    }

    #[test]
    fn master_failure_kills_everything() {
        let t = ClockTree::mira();
        assert_eq!(t.affected_by(RackId::new(1, 4)).len(), 48);
    }

    #[test]
    fn paper_example_zero_nine_via_zero_a() {
        let t = ClockTree::mira();
        let nine = RackId::new(0, 9);
        let a = RackId::new(0, 10);
        assert_eq!(t.parent(nine), Some(a));
        assert!(t.affected_by(a).contains(&nine));
        assert!(t.depends_on(nine, a));
        assert!(!t.depends_on(a, nine));
    }

    #[test]
    fn every_rack_reaches_the_master() {
        let t = ClockTree::mira();
        for r in RackId::all() {
            assert!(t.depends_on(r, t.master()), "{r} must reach master");
            assert!(t.depth(r) <= 2, "{r} depth {} too deep", t.depth(r));
        }
    }

    #[test]
    fn leaf_failure_is_isolated() {
        let t = ClockTree::mira();
        // Find a depth-2 rack (a follower); its failure affects only
        // itself.
        let leaf = RackId::all().find(|&r| t.depth(r) == 2).expect("a leaf");
        assert_eq!(t.affected_by(leaf), vec![leaf]);
    }

    #[test]
    fn leader_failure_affects_followers_not_master() {
        let t = ClockTree::mira();
        let leader = RackId::new(0, 10);
        let affected = t.affected_by(leader);
        assert!(affected.len() > 1, "leaders have followers");
        assert!(!affected.contains(&t.master()));
    }

    #[test]
    fn follower_assignment_is_not_spatial() {
        // At least one follower must be assigned to a leader in a
        // different row: the paper stresses links are not proximity-based.
        let t = ClockTree::mira();
        let cross_row = RackId::all()
            .any(|r| matches!(t.parent(r), Some(p) if p != t.master() && p.row() != r.row()));
        assert!(cross_row);
    }

    #[test]
    fn tree_is_deterministic() {
        assert_eq!(ClockTree::mira(), ClockTree::mira());
    }
}
