//! Proactive-mitigation economics: what is a CMF predictor worth?
//!
//! The paper's Sec. VI-B/D: a prediction three-to-six hours out "can be
//! used to checkpoint active jobs, alert data center users, and kick
//! off backup and restorative actions", but "any proactive measure … is
//! likely to incur high overhead since a CMF impacts the whole rack, at
//! minimum. Therefore, the false positives need to be minimized."
//!
//! This module makes that trade-off computable. Three policies are
//! priced in lost plus spent node-hours over the six-year failure
//! record:
//!
//! - **no checkpointing** — every rack failure loses all progress since
//!   job start;
//! - **periodic checkpointing** — bounded loss, but the whole machine
//!   pays the write overhead all the time (the "high overhead … not
//!   practical for production" option);
//! - **predictor-gated** — checkpoint a rack only when the predictor
//!   alerts: true alerts bound the loss on that rack, false alerts
//!   charge the overhead needlessly, misses pay the full loss.

use serde::{Deserialize, Serialize};

use mira_facility::{RackId, NODES_PER_RACK};
use mira_nn::BinaryMetrics;
use mira_timeseries::Duration;
use mira_units::convert;

use crate::simulation::Simulation;

/// Cost-model parameters, all in node-hours unless noted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MitigationCosts {
    /// Mean job progress lost when an unprotected rack dies (the paper's
    /// job mix runs several hours to a day; half a mean runtime).
    pub unprotected_loss_hours: f64,
    /// Wall-clock cost of writing one rack's checkpoint, in hours
    /// (incremental application-level checkpoints; ≈6 minutes).
    pub checkpoint_write_hours: f64,
    /// Mean utilization of a rack (busy nodes pay checkpoint overhead).
    pub utilization: f64,
    /// How often a fresh alert decision is made per rack. Alerts
    /// suppress re-fires within the prediction horizon, so one decision
    /// per rack per few hours, not per monitor sample.
    pub decisions_per_rack_per_hour: f64,
}

impl MitigationCosts {
    /// Mira-plausible defaults.
    #[must_use]
    pub fn mira() -> Self {
        Self {
            unprotected_loss_hours: 6.0,
            checkpoint_write_hours: 0.1,
            utilization: 0.87,
            decisions_per_rack_per_hour: 0.25,
        }
    }

    fn nodes(&self) -> f64 {
        f64::from(NODES_PER_RACK) * self.utilization
    }
}

/// A checkpointing policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CheckpointPolicy {
    /// Never checkpoint.
    None,
    /// Checkpoint every rack every `interval`.
    Periodic {
        /// Time between checkpoints.
        interval: Duration,
    },
    /// Checkpoint a rack when the predictor (with the given quality at
    /// its operating lead time) raises an alert.
    PredictorGated {
        /// Predictor quality at the chosen lead time (from Fig. 13).
        metrics: BinaryMetrics,
    },
}

/// The priced outcome of one policy over the failure record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyOutcome {
    /// Node-hours of job progress lost to failures.
    pub lost_node_hours: f64,
    /// Node-hours spent writing checkpoints.
    pub overhead_node_hours: f64,
    /// Number of checkpoints written.
    pub checkpoints: f64,
}

impl PolicyOutcome {
    /// Total cost: lost plus spent.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.lost_node_hours + self.overhead_node_hours
    }
}

/// Prices a policy over a simulation's failure record and span.
#[must_use]
pub fn evaluate_policy(
    sim: &Simulation,
    policy: CheckpointPolicy,
    costs: &MitigationCosts,
) -> PolicyOutcome {
    let failures = f64::from(sim.schedule().total_rack_failures());
    let (start, end) = sim.config().span();
    let span_hours = (end - start).as_hours();
    let nodes = costs.nodes();

    match policy {
        CheckpointPolicy::None => PolicyOutcome {
            lost_node_hours: failures * nodes * costs.unprotected_loss_hours,
            overhead_node_hours: 0.0,
            checkpoints: 0.0,
        },
        CheckpointPolicy::Periodic { interval } => {
            let per_rack = span_hours / interval.as_hours();
            let checkpoints = per_rack * convert::f64_from_usize(RackId::COUNT);
            PolicyOutcome {
                // Expected progress since the last checkpoint: half the
                // interval (capped by the unprotected loss).
                lost_node_hours: failures
                    * nodes
                    * (interval.as_hours() / 2.0).min(costs.unprotected_loss_hours),
                overhead_node_hours: checkpoints * nodes * costs.checkpoint_write_hours,
                checkpoints,
            }
        }
        CheckpointPolicy::PredictorGated { metrics } => {
            let recall = metrics.recall();
            let fpr = metrics.false_positive_rate();
            // True alerts bound the loss to roughly the final approach
            // (the last half hour the paper says flow collapses in);
            // misses pay the unprotected loss.
            let caught = failures * recall;
            let missed = failures - caught;
            let lost = caught * nodes * 0.5 + missed * nodes * costs.unprotected_loss_hours;
            // Every healthy rack-decision false-fires at the FPR.
            let decisions = span_hours
                * costs.decisions_per_rack_per_hour
                * convert::f64_from_usize(RackId::COUNT);
            let false_alerts = decisions * fpr;
            let checkpoints = caught + false_alerts;
            PolicyOutcome {
                lost_node_hours: lost,
                overhead_node_hours: checkpoints * nodes * costs.checkpoint_write_hours,
                checkpoints,
            }
        }
    }
}

/// Side-by-side comparison of the three policies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MitigationReport {
    /// No checkpointing.
    pub none: PolicyOutcome,
    /// Periodic checkpointing at the given interval.
    pub periodic: PolicyOutcome,
    /// Predictor-gated checkpointing.
    pub gated: PolicyOutcome,
}

/// Evaluates all three policies with one call.
#[must_use]
pub fn compare_policies(
    sim: &Simulation,
    periodic_interval: Duration,
    predictor_metrics: BinaryMetrics,
    costs: &MitigationCosts,
) -> MitigationReport {
    MitigationReport {
        none: evaluate_policy(sim, CheckpointPolicy::None, costs),
        periodic: evaluate_policy(
            sim,
            CheckpointPolicy::Periodic {
                interval: periodic_interval,
            },
            costs,
        ),
        gated: evaluate_policy(
            sim,
            CheckpointPolicy::PredictorGated {
                metrics: predictor_metrics,
            },
            costs,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::SimConfig;

    fn sim() -> Simulation {
        Simulation::new(SimConfig::with_seed(9))
    }

    fn good_predictor() -> BinaryMetrics {
        // Fig. 13-like operating point at a 3 h lead.
        BinaryMetrics {
            tp: 97,
            fn_: 3,
            fp: 1,
            tn: 99,
        }
    }

    #[test]
    fn none_loses_the_most_progress() {
        let s = sim();
        let costs = MitigationCosts::mira();
        let report = compare_policies(&s, Duration::from_hours(4), good_predictor(), &costs);
        assert!(report.none.lost_node_hours > report.periodic.lost_node_hours);
        assert!(report.none.lost_node_hours > report.gated.lost_node_hours);
        assert_eq!(report.none.overhead_node_hours, 0.0);
    }

    #[test]
    fn good_predictor_beats_both_alternatives() {
        let s = sim();
        let costs = MitigationCosts::mira();
        let report = compare_policies(&s, Duration::from_hours(4), good_predictor(), &costs);
        assert!(
            report.gated.total() < report.none.total(),
            "gated {} vs none {}",
            report.gated.total(),
            report.none.total()
        );
        assert!(
            report.gated.total() < report.periodic.total(),
            "gated {} vs periodic {}",
            report.gated.total(),
            report.periodic.total()
        );
    }

    #[test]
    fn high_false_positive_rate_destroys_the_advantage() {
        // The paper's warning: false positives must be minimized.
        let s = sim();
        let costs = MitigationCosts::mira();
        let sloppy = BinaryMetrics {
            tp: 97,
            fn_: 3,
            fp: 40,
            tn: 60,
        };
        let good = evaluate_policy(
            &s,
            CheckpointPolicy::PredictorGated {
                metrics: good_predictor(),
            },
            &costs,
        );
        let bad = evaluate_policy(
            &s,
            CheckpointPolicy::PredictorGated { metrics: sloppy },
            &costs,
        );
        assert!(bad.overhead_node_hours > good.overhead_node_hours * 10.0);
        let none = evaluate_policy(&s, CheckpointPolicy::None, &costs);
        assert!(
            bad.total() > none.total(),
            "a sloppy predictor ({} node-h) is worse than no protection at all ({})",
            bad.total(),
            none.total()
        );
    }

    #[test]
    fn periodic_interval_trade_off() {
        let s = sim();
        let costs = MitigationCosts::mira();
        let tight = evaluate_policy(
            &s,
            CheckpointPolicy::Periodic {
                interval: Duration::from_hours(1),
            },
            &costs,
        );
        let loose = evaluate_policy(
            &s,
            CheckpointPolicy::Periodic {
                interval: Duration::from_hours(12),
            },
            &costs,
        );
        assert!(tight.lost_node_hours < loose.lost_node_hours);
        assert!(tight.overhead_node_hours > loose.overhead_node_hours);
    }
}
