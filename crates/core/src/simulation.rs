//! The top-level simulation: six years of Mira in one object.

use serde::{Deserialize, Serialize};

use mira_facility::{Machine, RackId};
use mira_ras::{CmfSchedule, RasLog};
use mira_timeseries::{Date, Duration, SimTime};

use crate::error::Error;
use crate::summary::SweepSummary;
use crate::sweep::{SweepPlan, SweepSpan};
use crate::telemetry::TelemetryEngine;

/// Simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Master seed: everything stochastic derives from it.
    pub seed: u64,
    /// First simulated day (Mira production start).
    pub start: Date,
    /// First day after the simulation (production end).
    pub end: Date,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            seed: 0x4D49_5241, // "MIRA"
            start: Date::new(2014, 1, 1),
            end: Date::new(2020, 1, 1),
        }
    }
}

impl SimConfig {
    /// A config with everything default but the seed.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// A builder starting from the defaults.
    ///
    /// ```
    /// use mira_core::SimConfig;
    /// use mira_timeseries::Date;
    ///
    /// let cfg = SimConfig::builder()
    ///     .seed(99)
    ///     .start(Date::new(2015, 1, 1))
    ///     .end(Date::new(2016, 1, 1))
    ///     .build();
    /// assert_eq!(cfg.seed, 99);
    /// ```
    #[must_use]
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::default()
    }

    /// The simulated span as instants.
    #[must_use]
    pub fn span(&self) -> (SimTime, SimTime) {
        (SimTime::from_date(self.start), SimTime::from_date(self.end))
    }
}

/// Builder for [`SimConfig`], starting from the defaults.
#[derive(Debug, Clone, Default)]
pub struct SimConfigBuilder {
    config: SimConfig,
}

impl SimConfigBuilder {
    /// Sets the master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the first simulated day.
    #[must_use]
    pub fn start(mut self, start: Date) -> Self {
        self.config.start = start;
        self
    }

    /// Sets the first day after the simulation.
    #[must_use]
    pub fn end(mut self, end: Date) -> Self {
        self.config.end = end;
        self
    }

    /// Finishes the configuration.
    #[must_use]
    pub fn build(self) -> SimConfig {
        self.config
    }
}

/// The assembled simulation: failure ground truth, RAS log, and the
/// telemetry engine, ready for sweeps and analyses.
///
/// ```
/// use mira_core::{SimConfig, Simulation};
///
/// let sim = Simulation::new(SimConfig::with_seed(7));
/// assert_eq!(sim.schedule().total_rack_failures(), 361);
/// ```
#[derive(Debug, Clone)]
pub struct Simulation {
    config: SimConfig,
    schedule: CmfSchedule,
    ras_log: RasLog,
    engine: TelemetryEngine,
}

impl Simulation {
    /// Builds the simulation: generates the CMF schedule, assembles the
    /// RAS log, and wires the telemetry engine.
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        let schedule = CmfSchedule::generate(config.seed);
        let ras_log = RasLog::assemble(&schedule, config.seed);
        let engine = TelemetryEngine::new(config.seed, &schedule, &ras_log);
        Self {
            config,
            schedule,
            ras_log,
            engine,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The CMF ground truth.
    #[must_use]
    pub fn schedule(&self) -> &CmfSchedule {
        &self.schedule
    }

    /// The assembled RAS log.
    #[must_use]
    pub fn ras_log(&self) -> &RasLog {
        &self.ras_log
    }

    /// The telemetry engine (implements
    /// [`mira_predictor::TelemetryProvider`]).
    #[must_use]
    pub fn telemetry(&self) -> &TelemetryEngine {
        &self.engine
    }

    /// The machine description.
    #[must_use]
    pub fn machine(&self) -> &Machine {
        self.engine.machine()
    }

    /// The per-rack CMF list as `(time, rack)` pairs — the predictor's
    /// ground truth (361 entries for the full run).
    #[must_use]
    pub fn cmf_ground_truth(&self) -> Vec<(SimTime, RackId)> {
        let mut out = Vec::new();
        for incident in self.schedule.incidents() {
            for &rack in &incident.affected {
                out.push((incident.time, rack));
            }
        }
        out.sort_by_key(|(t, _)| *t);
        out
    }

    /// The operational blackout mask for console-style alerting: a
    /// `(rack, t)` is blacked out while the trailing feature window
    /// overlaps scheduled maintenance (burner-job transitions swing
    /// power and outlet benignly) or the rack's own outage/recovery.
    pub fn blackout_mask(&self) -> impl Fn(RackId, SimTime) -> bool + '_ {
        let maintenance = *self.engine.workload().demand().maintenance();
        move |rack: RackId, t: SimTime| {
            // Feature windows trail six hours; probe a few points.
            let probes = [0i64, 2, 4, 6];
            let maint = probes
                .iter()
                .any(|&h| maintenance.in_window(t - Duration::from_hours(h)));
            // Down now, or was down within the window (recovery swing);
            // pad by the window length plus the 6 h outage.
            let outage = probes.iter().chain([8, 10, 13].iter()).any(|&h| {
                !self
                    .engine
                    .availability()
                    .is_up(rack, t - Duration::from_hours(h))
            });
            maint || outage
        }
    }

    /// A [`SweepPlan`] over `span` — anything span-like:
    /// [`crate::FullSpan`], a `(from, to)` tuple, or a `from..to` range.
    /// Configure step and threads on the plan, then call
    /// [`SweepPlan::summary`] or [`SweepPlan::run`].
    #[must_use]
    pub fn sweep_plan(&self, span: impl Into<SweepSpan>) -> SweepPlan<'_> {
        let (from, to) = span.into().resolve(self.config.span());
        SweepPlan::new(&self.engine, from, to)
    }

    /// Sweeps `span` at `step` and aggregates.
    ///
    /// # Errors
    ///
    /// [`Error::Sweep`] when the span is empty or the step is not
    /// positive.
    pub fn summarize(
        &self,
        span: impl Into<SweepSpan>,
        step: Duration,
    ) -> Result<SweepSummary, Error> {
        self.sweep_plan(span).step(step).summary()
    }
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new(SimConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_wires_everything() {
        let sim = Simulation::new(SimConfig::with_seed(3));
        assert_eq!(sim.schedule().total_rack_failures(), 361);
        assert_eq!(sim.cmf_ground_truth().len(), 361);
        assert!(sim.ras_log().raw().len() > 10_000);
        assert_eq!(sim.machine().total_nodes(), 49_152);
    }

    #[test]
    fn ground_truth_is_time_ordered() {
        let sim = Simulation::new(SimConfig::with_seed(3));
        let gt = sim.cmf_ground_truth();
        for pair in gt.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
        }
    }

    #[test]
    fn config_span() {
        let cfg = SimConfig::default();
        let (from, to) = cfg.span();
        assert_eq!((to - from).as_days(), 2191.0); // 2014-2019 inclusive
    }

    #[test]
    fn same_seed_same_world() {
        let a = Simulation::new(SimConfig::with_seed(5));
        let b = Simulation::new(SimConfig::with_seed(5));
        assert_eq!(a.schedule(), b.schedule());
        let t = SimTime::from_date(Date::new(2018, 4, 1));
        assert_eq!(
            a.telemetry().observe_all(t).1,
            b.telemetry().observe_all(t).1
        );
    }
}
