//! The operator console: the deployed form of everything above.
//!
//! The paper's closing pitch is operational: telemetry should feed a
//! monitor that warns hours before a coolant failure so staff can
//! checkpoint, alert users, and pre-stage recovery. [`OperatorConsole`]
//! is that loop, runnable over any span of the simulated years: every
//! monitor tick it extracts each rack's trailing-window features, asks
//! the trained predictor for a failure probability, debounces alerts,
//! and logs them — then [`AlertLog::score_against`] grades the run
//! against the ground truth: how early was each failure flagged, and
//! how often did the console cry wolf?

use serde::{Deserialize, Serialize};

use mira_facility::RackId;
use mira_predictor::{CmfPredictor, DatasetBuilder, TelemetryProvider};
use mira_timeseries::{Duration, SimTime};
use mira_units::convert;

use crate::simulation::Simulation;

/// One raised alert.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// When the console raised it.
    pub time: SimTime,
    /// The rack flagged.
    pub rack: RackId,
    /// The predictor's probability at that instant.
    pub probability: f64,
}

/// Console configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConsoleConfig {
    /// Probability above which an alert fires.
    pub alert_threshold: f64,
    /// How often each rack is scored.
    pub cadence: Duration,
    /// Suppress repeat alerts on a rack for this long.
    pub debounce: Duration,
}

impl Default for ConsoleConfig {
    fn default() -> Self {
        Self {
            alert_threshold: 0.9,
            cadence: Duration::from_minutes(30),
            debounce: Duration::from_hours(6),
        }
    }
}

/// The alert log of one console run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertLog {
    /// Alerts in time order.
    pub alerts: Vec<Alert>,
    /// Span replayed.
    pub span: (SimTime, SimTime),
}

/// How a console run scored against the failure ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsoleScore {
    /// Failures in the span whose rack was alerted within the horizon
    /// beforehand, with the achieved warning time.
    pub warned: Vec<(SimTime, RackId, Duration)>,
    /// Failures in the span that got no warning.
    pub missed: Vec<(SimTime, RackId)>,
    /// Alerts not followed by a failure on that rack within the horizon.
    pub false_alerts: usize,
    /// Mean warning time across warned failures.
    pub mean_warning: Duration,
}

impl ConsoleScore {
    /// Fraction of failures warned.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        let total = self.warned.len() + self.missed.len();
        if total == 0 {
            0.0
        } else {
            convert::f64_from_usize(self.warned.len()) / convert::f64_from_usize(total)
        }
    }

    /// False alerts per simulated week.
    #[must_use]
    pub fn false_alerts_per_week(&self, span: (SimTime, SimTime)) -> f64 {
        let weeks = (span.1 - span.0).as_days() / 7.0;
        convert::f64_from_usize(self.false_alerts) / weeks.max(1e-9)
    }
}

/// The replayable operator console.
#[derive(Debug)]
pub struct OperatorConsole<'a> {
    predictor: &'a CmfPredictor,
    builder: &'a DatasetBuilder,
    config: ConsoleConfig,
}

impl<'a> OperatorConsole<'a> {
    /// Wires a console from a trained predictor and its window
    /// extractor.
    #[must_use]
    pub fn new(
        predictor: &'a CmfPredictor,
        builder: &'a DatasetBuilder,
        config: ConsoleConfig,
    ) -> Self {
        Self {
            predictor,
            builder,
            config,
        }
    }

    /// Replays `[from, to)`, scoring every rack at the configured
    /// cadence.
    ///
    /// # Panics
    ///
    /// Panics if the span is empty.
    #[must_use]
    pub fn replay<P: TelemetryProvider>(
        &self,
        provider: &P,
        from: SimTime,
        to: SimTime,
    ) -> AlertLog {
        self.replay_masked(provider, from, to, |_, _| false)
    }

    /// [`OperatorConsole::replay`] with an operational blackout mask:
    /// `(rack, t)` pairs for which the mask returns true are not scored.
    ///
    /// Real consoles mute prediction during scheduled maintenance and
    /// while a rack is recovering from an outage — telemetry there
    /// swings for known, benign reasons, and alerting on it buries the
    /// real precursors. [`Simulation::blackout_mask`] provides Mira's
    /// mask.
    ///
    /// # Panics
    ///
    /// Panics if the span is empty.
    #[must_use]
    pub fn replay_masked<P, F>(&self, provider: &P, from: SimTime, to: SimTime, mask: F) -> AlertLog
    where
        P: TelemetryProvider,
        F: Fn(RackId, SimTime) -> bool,
    {
        assert!(from < to, "empty replay span");
        let mut alerts = Vec::new();
        let mut muted_until = [None::<SimTime>; RackId::COUNT];
        let mut t = from;
        while t < to {
            for rack in RackId::all() {
                if let Some(mute) = muted_until[rack.index()] {
                    if t < mute {
                        continue;
                    }
                }
                if mask(rack, t) {
                    continue;
                }
                let Some(features) = self.builder.window_features(provider, rack, t) else {
                    continue;
                };
                let probability = self.predictor.predict(&features);
                if probability >= self.config.alert_threshold {
                    alerts.push(Alert {
                        time: t,
                        rack,
                        probability,
                    });
                    muted_until[rack.index()] = Some(t + self.config.debounce);
                }
            }
            t += self.config.cadence;
        }
        AlertLog {
            alerts,
            span: (from, to),
        }
    }
}

impl AlertLog {
    /// Grades the log against the world's CMF ground truth: an alert
    /// warns a failure if it fires on the failing rack within `horizon`
    /// beforehand.
    #[must_use]
    pub fn score_against(&self, sim: &Simulation, horizon: Duration) -> ConsoleScore {
        let (from, to) = self.span;
        let failures: Vec<(SimTime, RackId)> = sim
            .cmf_ground_truth()
            .into_iter()
            .filter(|(t, _)| *t >= from && *t < to)
            .collect();

        let mut warned = Vec::new();
        let mut missed = Vec::new();
        let mut used = vec![false; self.alerts.len()];
        for &(failure_time, rack) in &failures {
            let best = self
                .alerts
                .iter()
                .enumerate()
                .filter(|(_, a)| {
                    a.rack == rack && a.time <= failure_time && failure_time - a.time <= horizon
                })
                .min_by_key(|(_, a)| a.time);
            match best {
                Some((idx, alert)) => {
                    if let Some(flag) = used.get_mut(idx) {
                        *flag = true;
                    }
                    warned.push((failure_time, rack, failure_time - alert.time));
                }
                None => missed.push((failure_time, rack)),
            }
        }
        // Any unused alert that also has no failure in its forward
        // horizon is a false alert (later alerts for the same incident
        // are debounced echoes, already suppressed by construction).
        let false_alerts = self
            .alerts
            .iter()
            .enumerate()
            .filter(|(idx, a)| {
                // used has one flag per alert; idx comes from the same
                // enumerate. mira-lint: allow(panic-reachability)
                !used[*idx]
                    && !failures
                        .iter()
                        .any(|&(ft, fr)| fr == a.rack && ft >= a.time && ft - a.time <= horizon)
            })
            .count();

        let mean_warning = if warned.is_empty() {
            Duration::ZERO
        } else {
            Duration::from_seconds(
                warned.iter().map(|(_, _, d)| d.as_seconds()).sum::<i64>()
                    / i64::try_from(warned.len()).unwrap_or(i64::MAX),
            )
        };
        ConsoleScore {
            warned,
            missed,
            false_alerts,
            mean_warning,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::SimConfig;
    use mira_predictor::{FeatureConfig, PredictorConfig};

    fn world() -> (Simulation, CmfPredictor, DatasetBuilder) {
        let sim = Simulation::new(SimConfig::with_seed(88));
        let mut cmfs = sim.cmf_ground_truth();
        cmfs.truncate(150);
        // The deployable configuration: differential (rack-over-floor)
        // features cancel benign common-mode swings, and hard negatives
        // teach the model what recoveries and maintenance look like.
        let features = FeatureConfig {
            mode: mira_predictor::FeatureMode::DifferentialDeltas,
            ..FeatureConfig::mira()
        };
        let builder = DatasetBuilder::new(features, cmfs, sim.config().span());
        let (predictor, _) = CmfPredictor::train(
            sim.telemetry(),
            &builder,
            &PredictorConfig {
                epochs: 30,
                seed: 2,
                hard_negatives: true,
                ..PredictorConfig::default()
            },
        );
        (sim, predictor, builder)
    }

    #[test]
    fn console_warns_before_failures_with_hours_of_lead() {
        let (sim, predictor, builder) = world();
        // Replay a window around a few 2014 incidents.
        let incidents = &sim.schedule().incidents()[..3];
        let from = incidents[0].time - Duration::from_days(2);
        let to = incidents[2].time + Duration::from_hours(1);
        let console = OperatorConsole::new(&predictor, &builder, ConsoleConfig::default());
        let log = console.replay_masked(sim.telemetry(), from, to, sim.blackout_mask());
        let score = log.score_against(&sim, Duration::from_hours(12));

        assert!(
            score.coverage() > 0.6,
            "coverage {} (warned {:?}, missed {:?})",
            score.coverage(),
            score.warned.len(),
            score.missed.len()
        );
        assert!(
            score.mean_warning.as_hours() >= 1.0,
            "mean warning {}",
            score.mean_warning
        );
        // A two-day window across the whole floor should stay quiet
        // between incidents.
        assert!(
            score.false_alerts_per_week(log.span) < 40.0,
            "false alerts/week {}",
            score.false_alerts_per_week(log.span)
        );
    }

    #[test]
    fn debounce_suppresses_alert_storms() {
        let (sim, predictor, builder) = world();
        let incident = &sim.schedule().incidents()[0];
        let from = incident.time - Duration::from_hours(8);
        let to = incident.time;
        let console = OperatorConsole::new(&predictor, &builder, ConsoleConfig::default());
        let log = console.replay(sim.telemetry(), from, to);
        // At a 30-minute cadence with no debounce there could be ~16
        // alerts per sick rack; with a 6 h debounce at most 2.
        for rack in incident.affected.iter().take(3) {
            let count = log.alerts.iter().filter(|a| a.rack == *rack).count();
            assert!(count <= 2, "{rack} alerted {count} times");
        }
    }

    #[test]
    fn quiet_year_stays_mostly_quiet() {
        let (sim, predictor, builder) = world();
        // 2017 had zero failures.
        let from = SimTime::from_date(mira_timeseries::Date::new(2017, 4, 1));
        let to = from + Duration::from_days(7);
        let console = OperatorConsole::new(&predictor, &builder, ConsoleConfig::default());
        let log = console.replay_masked(sim.telemetry(), from, to, sim.blackout_mask());
        let score = log.score_against(&sim, Duration::from_hours(12));
        assert!(score.warned.is_empty() && score.missed.is_empty());
        assert!(
            score.false_alerts_per_week(log.span) < 25.0,
            "false alerts/week {} over a quiet week",
            score.false_alerts_per_week(log.span)
        );
    }
}
