//! Sweep instrumentation: an extra [`Recorder`] that rides the sharded
//! telemetry pass and produces a deterministic [`ObsReport`].
//!
//! # Determinism across worker counts
//!
//! Everything the recorder counts is a pure function of the sweep grid,
//! so the only hazard is state that crosses a step boundary: rack
//! up/down transitions and economizer engagements compare each step
//! against its predecessor, and a shard's first step has no predecessor
//! *inside* the shard. The recorder therefore keeps a **boundary
//! monoid**: each partial remembers the rack/economizer state at its
//! first and last step, in-shard transitions are counted from the
//! second step on, and [`Recorder::merge`] counts the transitions that
//! straddle the shard seam before adopting the later partial's trailing
//! edge. The merged result is exactly the single sequential fold, so
//! the deterministic snapshot is byte-identical for any
//! `MIRA_SWEEP_THREADS` setting.
//!
//! Wall-clock time never enters the recorder: the observed-sweep entry
//! points measure the whole run through an injected
//! [`mira_obs::Clock`] and file it under the report's nondeterministic
//! `timings` section.

use mira_obs::{Clock, MetricsPartial, ObsMode, ObsReport, SpanStats, WallClock};
use mira_timeseries::{Duration, SimTime};
use mira_units::convert;

use crate::error::Error;
use crate::simulation::Simulation;
use crate::summary::SweepSummary;
use crate::sweep::{month_shards, Recorder, SweepSpan, SweepStep};
use crate::telemetry::SweepBlock;

/// Metric keys emitted by the sweep recorder, public so tests and
/// downstream dashboards reference one vocabulary.
pub mod keys {
    /// Sweep instants folded.
    pub const SIM_STEPS: &str = "sim.steps";
    /// Coolant-monitor samples emitted (48 per instant).
    pub const SIM_SAMPLES: &str = "sim.samples";
    /// Rack up→down transitions (coolant-monitor failures taking the
    /// rack out).
    pub const RAS_CMF_TRANSITIONS: &str = "ras.cmf_transitions";
    /// Rack down→up transitions (repair completions).
    pub const RAS_RACK_RECOVERIES: &str = "ras.rack_recoveries";
    /// Steps on which two or more racks went down at once (storm
    /// cascades).
    pub const RAS_CASCADE_STEPS: &str = "ras.cascade_steps";
    /// Mean racks down per step.
    pub const RAS_RACKS_DOWN: &str = "ras.racks_down";
    /// Economizer engagement/disengagement edges.
    pub const COOLING_FREE_COOLING_TRANSITIONS: &str = "cooling.free_cooling_transitions";
    /// Mean fraction of the load the economizer carries.
    pub const COOLING_ECONOMIZER_DUTY: &str = "cooling.economizer_duty";
    /// Rack isolation-valve actuations (each rack state change).
    pub const COOLING_VALVE_ACTUATIONS: &str = "cooling.valve_actuations";
    /// Mean chiller electrical draw (kW).
    pub const COOLING_CHILLER_POWER_KW: &str = "cooling.chiller_power_kw";
    /// Mean system power (MW).
    pub const POWER_SYSTEM_MW: &str = "power.system_mw";
    /// System power distribution (MW histogram).
    pub const POWER_SYSTEM_MW_DIST: &str = "power.system_mw.dist";
    /// Mean system utilization (percent).
    pub const UTILIZATION_PCT: &str = "utilization.pct";
    /// System utilization distribution (percent histogram).
    pub const UTILIZATION_PCT_DIST: &str = "utilization.pct.dist";
    /// Calendar-month shards in the executed plan.
    pub const SWEEP_SHARDS: &str = "sweep.shards";
    /// Chronological partial merges performed.
    pub const SWEEP_MERGES: &str = "sweep.merges";
    /// Distribution of shard sizes in grid steps.
    pub const SWEEP_SHARD_STEPS: &str = "sweep.shard_steps";
    /// The whole-sweep span name (and its wall-clock timing key).
    pub const SWEEP_RUN: &str = "sweep.run";
    /// Wall-clock timing key for the observed sweep.
    pub const SWEEP_WALL: &str = "sweep.wall";
    /// Hydraulic-solve memo hits during the observed sweep.
    pub const COOLING_HYDRO_CACHE_HITS: &str = "cooling.hydro_cache_hits";
    /// Hydraulic-solve memo misses (actual flow-network solves).
    pub const COOLING_HYDRO_CACHE_MISSES: &str = "cooling.hydro_cache_misses";
}

/// System power histogram bounds (MW). Mira idles near 2 MW and peaks
/// under 6 MW.
const POWER_MW_BOUNDS: &[f64] = &[2.0, 3.0, 4.0, 5.0, 6.0];

/// Utilization histogram bounds (percent).
const UTILIZATION_BOUNDS: &[f64] = &[25.0, 50.0, 75.0, 90.0];

/// Shard-size histogram bounds (grid steps per calendar-month shard).
const SHARD_STEP_BOUNDS: &[f64] = &[100.0, 1_000.0, 10_000.0, 100_000.0];

/// Records the executor-shape metrics for a sweep over
/// `[from, to)` at `step`: shard count, chronological merges, and the
/// shard-size distribution. The shard plan is a pure function of the
/// span and step — never of the worker count or of how the fold was
/// actually scheduled — so both the batch executor and the incremental
/// engine emit byte-identical values for the same span.
pub(crate) fn record_executor_shape(
    metrics: &mut MetricsPartial,
    from: SimTime,
    to: SimTime,
    step: Duration,
) {
    let shards = month_shards(from, to, step);
    metrics.add(keys::SWEEP_SHARDS, convert::u64_from_usize(shards.len()));
    metrics.add(
        keys::SWEEP_MERGES,
        convert::u64_from_usize(shards.len().saturating_sub(1)),
    );
    for (lo, hi) in &shards {
        metrics.observe(
            keys::SWEEP_SHARD_STEPS,
            SHARD_STEP_BOUNDS,
            convert::f64_from_usize(hi - lo),
        );
    }
}

/// Rack and economizer state at one edge of a recorded range, kept so
/// merging can count the transitions that straddle a shard seam.
#[derive(Debug, Clone, PartialEq, Eq)]
struct EdgeState {
    rack_up: Vec<bool>,
    economizer_on: bool,
}

impl EdgeState {
    fn of(step: &SweepStep) -> Self {
        Self {
            rack_up: step.snapshot.rack_up.clone(),
            economizer_on: step.snapshot.free_cooling_fraction > 0.0,
        }
    }
}

/// The sweep-instrumentation recorder. Pair it with a [`SweepSummary`]
/// in a tuple recorder to observe a pass without a second sweep; with
/// [`ObsMode::Off`] every fold is a single branch.
#[derive(Debug, Clone)]
pub struct SweepObsRecorder {
    enabled: bool,
    metrics: MetricsPartial,
    steps: u64,
    first: Option<EdgeState>,
    last: Option<EdgeState>,
}

impl SweepObsRecorder {
    /// A recorder in the given mode.
    #[must_use]
    pub fn new(mode: ObsMode) -> Self {
        Self {
            enabled: mode.is_on(),
            metrics: MetricsPartial::new(),
            steps: 0,
            first: None,
            last: None,
        }
    }

    /// Counts the transitions between two adjacent instants' states
    /// into `metrics` — used both for in-shard neighbors and for the
    /// seam between two merged partials.
    fn count_transitions(metrics: &mut MetricsPartial, prev: &EdgeState, cur: &EdgeState) {
        Self::count_transitions_raw(
            metrics,
            &prev.rack_up,
            prev.economizer_on,
            &cur.rack_up,
            cur.economizer_on,
        );
    }

    /// Slice-form transition counter — the block path compares adjacent
    /// availability rows in place without building [`EdgeState`]s.
    fn count_transitions_raw(
        metrics: &mut MetricsPartial,
        prev_up: &[bool],
        prev_econ: bool,
        cur_up: &[bool],
        cur_econ: bool,
    ) {
        let mut newly_down = 0u64;
        let mut newly_up = 0u64;
        for (was, is) in prev_up.iter().zip(cur_up) {
            if *was && !*is {
                newly_down += 1;
            }
            if !*was && *is {
                newly_up += 1;
            }
        }
        if newly_down > 0 {
            metrics.add(keys::RAS_CMF_TRANSITIONS, newly_down);
        }
        if newly_up > 0 {
            metrics.add(keys::RAS_RACK_RECOVERIES, newly_up);
        }
        if newly_down >= 2 {
            metrics.add(keys::RAS_CASCADE_STEPS, 1);
        }
        if newly_down + newly_up > 0 {
            metrics.add(keys::COOLING_VALVE_ACTUATIONS, newly_down + newly_up);
        }
        if prev_econ != cur_econ {
            metrics.add(keys::COOLING_FREE_COOLING_TRANSITIONS, 1);
        }
    }
}

impl Recorder for SweepObsRecorder {
    type Output = ObsReport;

    fn record(&mut self, step: &SweepStep) {
        if !self.enabled {
            return;
        }
        self.steps += 1;
        self.metrics.add(keys::SIM_STEPS, 1);
        self.metrics.add(
            keys::SIM_SAMPLES,
            convert::u64_from_usize(step.samples.len()),
        );

        let snap = &step.snapshot;
        let down = snap.rack_up.iter().filter(|up| !**up).count();
        self.metrics
            .gauge(keys::RAS_RACKS_DOWN, convert::f64_from_usize(down));
        self.metrics
            .gauge(keys::COOLING_ECONOMIZER_DUTY, snap.free_cooling_fraction);
        self.metrics
            .gauge(keys::COOLING_CHILLER_POWER_KW, snap.chiller_power.value());

        let mut power_kw = 0.0;
        let mut util = 0.0;
        for (sample, truth) in step.samples.iter().zip(&step.truths) {
            power_kw += sample.power.value();
            util += truth.utilization;
        }
        let power_mw = power_kw / 1000.0;
        let util_pct = util / convert::f64_from_usize(step.truths.len().max(1)) * 100.0;
        self.metrics.gauge(keys::POWER_SYSTEM_MW, power_mw);
        self.metrics
            .observe(keys::POWER_SYSTEM_MW_DIST, POWER_MW_BOUNDS, power_mw);
        self.metrics.gauge(keys::UTILIZATION_PCT, util_pct);
        self.metrics
            .observe(keys::UTILIZATION_PCT_DIST, UTILIZATION_BOUNDS, util_pct);

        let edge = EdgeState::of(step);
        if let Some(prev) = &self.last {
            Self::count_transitions(&mut self.metrics, prev, &edge);
        }
        if self.first.is_none() {
            self.first = Some(edge.clone());
        }
        self.last = Some(edge);
    }

    /// Lane-direct fold of one batched block: identical metric updates
    /// to per-step [`Recorder::record`] — counter bumps are exact u64
    /// sums batched once per block, per-key gauge/histogram samples
    /// arrive in the same chronological order, and availability
    /// transitions are counted between adjacent block rows (the block's
    /// first row against the carried trailing edge) — so the
    /// deterministic snapshot is byte-identical either way.
    // Row indexing is bounded: `k < block.len()` with emptiness checked
    // up front, and adjacent-row reads use `k - 1` only when `k > 0`.
    // mira-lint: allow(panic-reachability)
    fn record_block(&mut self, block: &SweepBlock, _staging: &mut SweepStep) {
        if !self.enabled || block.is_empty() {
            return;
        }
        let n = block.len();
        let n_u64 = convert::u64_from_usize(n);
        self.steps += n_u64;
        self.metrics.add(keys::SIM_STEPS, n_u64);
        let samples_per_step = convert::u64_from_usize(block.up[0].len());
        self.metrics
            .add(keys::SIM_SAMPLES, n_u64 * samples_per_step);

        let econ = |k: usize| block.plants[k].free_cooling_fraction > 0.0;
        for k in 0..n {
            let plant = &block.plants[k];
            let down = block.up[k].iter().filter(|up| !**up).count();
            self.metrics
                .gauge(keys::RAS_RACKS_DOWN, convert::f64_from_usize(down));
            self.metrics
                .gauge(keys::COOLING_ECONOMIZER_DUTY, plant.free_cooling_fraction);
            self.metrics
                .gauge(keys::COOLING_CHILLER_POWER_KW, plant.chiller_power.value());

            let mut power_kw = 0.0;
            let mut util = 0.0;
            for (power, u) in block.obs[5][k].iter().zip(&block.util[k]) {
                power_kw += power;
                util += u;
            }
            let power_mw = power_kw / 1000.0;
            let util_pct = util / convert::f64_from_usize(block.util[k].len().max(1)) * 100.0;
            self.metrics.gauge(keys::POWER_SYSTEM_MW, power_mw);
            self.metrics
                .observe(keys::POWER_SYSTEM_MW_DIST, POWER_MW_BOUNDS, power_mw);
            self.metrics.gauge(keys::UTILIZATION_PCT, util_pct);
            self.metrics
                .observe(keys::UTILIZATION_PCT_DIST, UTILIZATION_BOUNDS, util_pct);

            if k > 0 {
                Self::count_transitions_raw(
                    &mut self.metrics,
                    &block.up[k - 1],
                    econ(k - 1),
                    &block.up[k],
                    econ(k),
                );
            } else if let Some(prev) = &self.last {
                Self::count_transitions_raw(
                    &mut self.metrics,
                    &prev.rack_up,
                    prev.economizer_on,
                    &block.up[0],
                    econ(0),
                );
            }
        }

        if self.first.is_none() {
            self.first = Some(EdgeState {
                // One-time leading-edge capture on the first block ever
                // seen, not per-step. mira-lint: allow(alloc-in-hot-path)
                rack_up: block.up[0].to_vec(),
                economizer_on: econ(0),
            });
        }
        // Reuse the trailing edge's buffer: warm blocks allocate nothing.
        match &mut self.last {
            Some(last) => {
                last.rack_up.clear();
                last.rack_up.extend_from_slice(&block.up[n - 1]);
                last.economizer_on = econ(n - 1);
            }
            None => {
                self.last = Some(EdgeState {
                    // One-time trailing-edge seed on the first block ever
                    // seen, not per-step. mira-lint: allow(alloc-in-hot-path)
                    rack_up: block.up[n - 1].to_vec(),
                    economizer_on: econ(n - 1),
                });
            }
        }
    }

    fn merge(&mut self, later: Self) {
        if !self.enabled {
            return;
        }
        self.metrics.merge(&later.metrics);
        self.steps += later.steps;
        // The seam: the later partial never saw our trailing state, so
        // its first step's transitions are counted here. This is what
        // makes the sharded fold equal the sequential one.
        if let (Some(prev), Some(cur)) = (&self.last, &later.first) {
            Self::count_transitions(&mut self.metrics, prev, cur);
        }
        if self.first.is_none() {
            self.first = later.first;
        }
        if later.last.is_some() {
            self.last = later.last;
        }
    }

    fn finish(self) -> ObsReport {
        let mut report = ObsReport::new();
        if self.enabled {
            report.metrics = self.metrics;
            report.record_span(
                keys::SWEEP_RUN,
                SpanStats {
                    count: 1,
                    steps: self.steps,
                },
            );
        }
        report
    }
}

/// A sweep's aggregate plus the observability report gathered on the
/// same pass.
#[derive(Debug, Clone)]
pub struct ObservedSweep {
    /// The usual sweep aggregate.
    pub summary: SweepSummary,
    /// Metrics, span tallies, and wall-clock timings for the pass.
    pub report: ObsReport,
}

impl Simulation {
    /// Like [`Simulation::summarize`], but also gathers an
    /// [`ObsReport`] on the same telemetry pass. `threads` follows
    /// [`crate::SweepPlan::threads`] semantics (`0` = auto); with
    /// [`ObsMode::Off`] the extra recorder folds a single branch per
    /// step and the report comes back empty.
    ///
    /// Wall-clock time is measured against the real monotonic clock;
    /// use [`Simulation::summarize_observed_with_clock`] to inject a
    /// [`mira_obs::ManualClock`] in tests.
    ///
    /// # Errors
    ///
    /// [`Error::Sweep`] when the span is empty or the step is not
    /// positive.
    pub fn summarize_observed(
        &self,
        span: impl Into<SweepSpan>,
        step: Duration,
        threads: usize,
        mode: ObsMode,
    ) -> Result<ObservedSweep, Error> {
        self.summarize_observed_with_clock(span, step, threads, mode, &WallClock::default())
    }

    /// [`Simulation::summarize_observed`] with an injected clock for
    /// the nondeterministic `timings` section. The deterministic
    /// snapshot never reads the clock.
    ///
    /// # Errors
    ///
    /// [`Error::Sweep`] when the span is empty or the step is not
    /// positive.
    pub fn summarize_observed_with_clock<C: Clock>(
        &self,
        span: impl Into<SweepSpan>,
        step: Duration,
        threads: usize,
        mode: ObsMode,
        clock: &C,
    ) -> Result<ObservedSweep, Error> {
        let plan = self.sweep_plan(span).step(step).threads(threads);
        let (from, to) = plan.span();
        let (hydro_hits_before, hydro_misses_before) = self.telemetry().hydro_cache_stats();
        let begin = clock.nanos();
        let (summary, mut report) = plan.run(|| {
            (
                SweepSummary::empty((from, to), step),
                SweepObsRecorder::new(mode),
            )
        })?;
        let elapsed = clock.nanos().saturating_sub(begin);

        if mode.is_on() {
            record_executor_shape(&mut report.metrics, from, to, step);
            // Hydraulic-memo traffic attributable to this sweep. The
            // scratch path solves once per step (a miss each) and never
            // consults the memo, so the deltas are pure functions of
            // the plan — identical at every thread count.
            let (hits, misses) = self.telemetry().hydro_cache_stats();
            report.metrics.add(
                keys::COOLING_HYDRO_CACHE_HITS,
                hits.saturating_sub(hydro_hits_before),
            );
            report.metrics.add(
                keys::COOLING_HYDRO_CACHE_MISSES,
                misses.saturating_sub(hydro_misses_before),
            );
            report.timings.record(keys::SWEEP_WALL, elapsed);
        }
        Ok(ObservedSweep { summary, report })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::SimConfig;
    use crate::sweep::SweepPlan;
    use mira_obs::ManualClock;
    use mira_timeseries::{Date, SimTime};

    fn sim() -> Simulation {
        Simulation::new(SimConfig::with_seed(7))
    }

    fn t(y: i32, m: u8, d: u8) -> SimTime {
        SimTime::from_date(Date::new(y, m, d))
    }

    #[test]
    fn off_mode_reports_nothing_and_matches_plain_summary() {
        let sim = sim();
        let span = (t(2015, 2, 1), t(2015, 3, 1));
        let step = Duration::from_hours(6);
        let observed = sim
            .summarize_observed(span, step, 1, ObsMode::Off)
            .expect("valid span");
        assert!(observed.report.is_empty());
        let plain = sim.summarize(span, step).expect("valid span");
        assert_eq!(observed.summary, plain);
    }

    #[test]
    fn executor_fold_matches_hand_sharded_fold_exactly() {
        let sim = sim();
        // Crosses three month boundaries, so merge seams are exercised.
        let span = (t(2015, 1, 15), t(2015, 4, 10));
        let step = Duration::from_hours(2);

        // Emulate the executor by hand: one fresh recorder per
        // calendar-month shard, merged chronologically. The seam
        // transitions must come out of `merge`, not `record`.
        let shards = month_shards(span.0, span.1, step);
        assert!(shards.len() >= 3, "span must cross month boundaries");
        let mut merged: Option<SweepObsRecorder> = None;
        for &(lo, hi) in &shards {
            let mut partial = SweepObsRecorder::new(ObsMode::On);
            for k in lo..hi {
                let at = span.0 + step * convert::i64_from_usize(k);
                // Deliberately the deprecated one-shot: the hand fold
                // must not share scratch state across shards.
                #[allow(deprecated)]
                partial.record(&sim.telemetry().sweep_step(at));
            }
            match merged.as_mut() {
                Some(acc) => acc.merge(partial),
                None => merged = Some(partial),
            }
        }
        let by_hand = merged.expect("non-empty span").finish();

        let plan = SweepPlan::new(sim.telemetry(), span.0, span.1).step(step);
        let executed = plan
            .run(|| SweepObsRecorder::new(ObsMode::On))
            .expect("valid span");
        assert_eq!(executed.deterministic_json(), by_hand.deterministic_json());
        // Conflict-free vocabulary: every key maps to exactly one kind.
        assert_eq!(executed.metrics.counter("obs.conflicts"), None);
    }

    #[test]
    fn thread_counts_agree_bytewise() {
        let sim = sim();
        let span = (t(2016, 5, 10), t(2016, 8, 20));
        let step = Duration::from_hours(4);
        let clock = ManualClock::new();
        let base = sim
            .summarize_observed_with_clock(span, step, 1, ObsMode::On, &clock)
            .expect("valid span");
        for threads in [2, 4] {
            let other = sim
                .summarize_observed_with_clock(span, step, threads, ObsMode::On, &clock)
                .expect("valid span");
            assert_eq!(
                other.report.deterministic_json(),
                base.report.deterministic_json(),
                "threads={threads}"
            );
            assert_eq!(other.summary, base.summary);
        }
    }

    #[test]
    fn report_counts_the_grid_and_the_plan() {
        let sim = sim();
        let span = (t(2015, 1, 1), t(2015, 3, 1));
        let step = Duration::from_hours(6);
        let clock = ManualClock::new();
        clock.advance(17);
        let observed = sim
            .summarize_observed_with_clock(span, step, 2, ObsMode::On, &clock)
            .expect("valid span");
        let report = &observed.report;
        let steps = u64::try_from((31 + 28) * 4).expect("small");
        assert_eq!(report.metrics.counter(keys::SIM_STEPS), Some(steps));
        assert_eq!(
            report.metrics.counter(keys::SIM_SAMPLES),
            Some(steps * 48),
            "48 racks per instant"
        );
        assert_eq!(report.metrics.counter(keys::SWEEP_SHARDS), Some(2));
        assert_eq!(report.metrics.counter(keys::SWEEP_MERGES), Some(1));
        assert_eq!(report.spans[keys::SWEEP_RUN], SpanStats { count: 1, steps });
        // The injected clock never advanced during the run, so the
        // timing is present but zero.
        assert_eq!(report.timings.nanos(keys::SWEEP_WALL), Some(0));
    }
}
