//! Six-year simulation and analysis of a liquid-cooled petascale system.
//!
//! This crate is the headline API of the `mira-ops` workspace — a
//! reproduction of *"Operating Liquid-Cooled Large-Scale Systems:
//! Long-Term Monitoring, Reliability Analysis, and Efficiency Measures"*
//! (HPCA 2021). The paper is a measurement study of the Mira Blue Gene/Q
//! supercomputer over 2014–2019; since its production telemetry is not
//! public, this workspace rebuilds the *system*: a physics- and
//! operations-informed simulator calibrated against every quantitative
//! anchor the paper reports, plus the full analysis and ML stack that
//! turns six years of coolant-monitor telemetry into the paper's
//! fourteen figures.
//!
//! # Layers
//!
//! - [`Simulation`] — builds the world from a seed: the coolant-monitor
//!   failure ground truth ([`mira_ras::CmfSchedule`], 361 rack failures),
//!   the assembled RAS log, and the [`TelemetryEngine`].
//! - [`TelemetryEngine`] — deterministic `(rack, time) → sample`
//!   telemetry: Chicago weather, the chilled-water plant with its
//!   waterside economizer, the flow network, per-rack heat exchangers,
//!   the workload model with allocation-year seasonality and Monday
//!   maintenance, and pre-failure signatures.
//! - [`SweepSummary`] — one streaming pass over any span, producing the
//!   calendar bins, weekly series, per-rack statistics, and energy
//!   ledgers every figure consumes.
//! - [`analysis`] — one function per paper figure (`fig2_…` through
//!   `fig15_…`).
//!
//! # Quickstart
//!
//! ```
//! use mira_core::{analysis, SimConfig, Simulation};
//! use mira_timeseries::{Date, Duration, SimTime};
//!
//! let sim = Simulation::new(SimConfig::with_seed(7));
//! // Fig. 10 needs no sweep: it reads the RAS log.
//! let fig10 = analysis::fig10_cmf_timeline(&sim);
//! assert_eq!(fig10.total, 361);
//!
//! // Temporal figures aggregate a telemetry sweep (a short one here).
//! // Spans are anything span-like: `FullSpan`, a `(from, to)` tuple,
//! // or a `from..to` range.
//! let summary = sim
//!     .summarize(
//!         SimTime::from_date(Date::new(2015, 1, 1))..SimTime::from_date(Date::new(2015, 2, 1)),
//!         Duration::from_hours(6),
//!     )
//!     .expect("non-empty span");
//! let fig2 = analysis::fig2_yearly_trends(&summary);
//! assert_eq!(fig2.power_by_year.len(), 1);
//! ```
//!
//! Long sweeps parallelize without changing the result — see
//! [`sweep::SweepPlan`]:
//!
//! ```no_run
//! use mira_core::{Duration, FullSpan, SimConfig, Simulation};
//!
//! let sim = Simulation::new(SimConfig::default());
//! let summary = sim
//!     .sweep_plan(FullSpan)
//!     .step(Duration::from_hours(1))
//!     .threads(4) // bit-for-bit identical to .threads(1)
//!     .summary()
//!     .expect("non-empty span");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod archive;
pub mod error;
pub mod incremental;
pub mod mitigation;
pub mod obs;
pub mod operator;
pub mod simulation;
pub mod summary;
pub mod sweep;
pub mod telemetry;
pub mod timeline;

pub use analysis::{full_report, FigureReport};
pub use error::Error;
pub use incremental::{IncrementalSweep, IncrementalSweepBuilder};
pub use mitigation::{
    compare_policies, evaluate_policy, CheckpointPolicy, MitigationCosts, MitigationReport,
};
pub use obs::{ObservedSweep, SweepObsRecorder};
pub use operator::{Alert, AlertLog, ConsoleConfig, ConsoleScore, OperatorConsole};
pub use simulation::{SimConfig, SimConfigBuilder, Simulation};
pub use summary::{ChannelAggregate, RackAggregate, SweepSummary};
pub use sweep::{FullSpan, Recorder, SweepError, SweepPlan, SweepSpan, SweepStep};
pub use telemetry::{
    CmfCursor, RackTruth, SweepBlock, SweepScratch, SystemSnapshot, TelemetryEngine,
};
pub use timeline::OperationalTimeline;

// Re-export the workspace's main types so downstream users need only
// one dependency.
pub use mira_cooling::{CoolantMonitorSample, PrecursorSignature};
pub use mira_facility::{Machine, RackId};
pub use mira_obs::{ObsMode, ObsReport};
pub use mira_predictor::{
    CmfPredictor, DatasetBuilder, FeatureConfig, PredictorConfig, TelemetryProvider,
};
pub use mira_ras::{CmfSchedule, FailureKind, RasEvent, RasLog, Severity};
pub use mira_store::{Archive, ArchiveStat, Projection, ScanStats, StoreError, TelemetryRecord};
pub use mira_timeseries::{Date, DateTime, Duration, SimTime};
