//! The parallel sweep executor: calendar-month shards, mergeable
//! recorders, and a builder that replaces ad-hoc sweep loops.
//!
//! # Determinism
//!
//! [`TelemetryEngine::snapshot`] is a pure function of time, so a sweep
//! over `[from, to)` can be computed in any order. What makes the
//! *aggregates* reproducible across worker counts is that the execution
//! plan never depends on the worker count:
//!
//! 1. The span is cut into **calendar-month shards** whose boundaries
//!    are a function of the span and step alone. Shard `k` covers a
//!    contiguous range of indices on the global sample grid
//!    `t = from + i·step`, so every thread count visits exactly the
//!    same instants.
//! 2. Each shard is folded sequentially into its own fresh recorder.
//! 3. Partial recorders are merged **in chronological shard order** on
//!    the calling thread.
//!
//! Threads only change *who* computes a shard, never *what* a shard is
//! or the order partials are merged — so the result is bit-for-bit
//! identical for 1, 2, or N threads. (Note the canonical result is the
//! sharded fold itself; merging two arbitrary sub-span summaries by
//! hand re-associates the floating-point folds and agrees only to
//! rounding error.)

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use mira_cooling::CoolantMonitorSample;
use mira_timeseries::{CivilParts, Date, Duration, SimTime};
use mira_units::convert;

use crate::error::Error;
use crate::summary::SweepSummary;
use crate::telemetry::{RackTruth, SweepBlock, SweepScratch, SystemSnapshot, TelemetryEngine};

/// Environment variable overriding the worker count when
/// [`SweepPlan::threads`] is left on auto.
pub const THREADS_ENV: &str = "MIRA_SWEEP_THREADS";

/// Number of consecutive instants the batched sweep kernel
/// ([`TelemetryEngine::sweep_steps_into`]) processes per block.
///
/// Large enough to amortize per-block overhead (cursor advances, the
/// summary fold's staging load/store) and give the staged lane kernels
/// long runs, small enough (~95 KB of block rows) that a block stays
/// L2-resident per worker — measured fastest among 8/16/32/64 on the
/// full-span bench.
pub const SWEEP_BLOCK: usize = 16;

/// Why a sweep could not run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SweepError {
    /// The span is empty (`from >= to`).
    EmptySpan,
    /// The sampling step is zero or negative.
    NonPositiveStep,
    /// An incremental append skipped or repeated a grid instant: the
    /// engine only accepts the next instant on the sample grid.
    MisalignedAppend {
        /// The next grid instant the engine expects.
        expected: SimTime,
        /// The instant actually appended.
        got: SimTime,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::EmptySpan => write!(f, "sweep span is empty (from >= to)"),
            SweepError::NonPositiveStep => write!(f, "sweep step must be positive"),
            SweepError::MisalignedAppend { expected, got } => write!(
                f,
                "misaligned append: expected grid instant {expected}, got {got}"
            ),
        }
    }
}

impl std::error::Error for SweepError {}

/// A sweep span: either the simulation's full configured span or an
/// explicit `[from, to)` window.
///
/// Anything span-like converts into it: `FullSpan`, a `(from, to)`
/// tuple, or a `from..to` range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepSpan {
    /// The simulation's full configured span.
    Full,
    /// An explicit `[from, to)` window.
    Between(SimTime, SimTime),
}

/// Marker selecting the simulation's full configured span (the default
/// for [`crate::Simulation::summarize`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FullSpan;

impl From<FullSpan> for SweepSpan {
    fn from(_: FullSpan) -> Self {
        SweepSpan::Full
    }
}

impl From<(SimTime, SimTime)> for SweepSpan {
    fn from((from, to): (SimTime, SimTime)) -> Self {
        SweepSpan::Between(from, to)
    }
}

impl From<std::ops::Range<SimTime>> for SweepSpan {
    fn from(r: std::ops::Range<SimTime>) -> Self {
        SweepSpan::Between(r.start, r.end)
    }
}

impl SweepSpan {
    /// Resolves against a concrete full span.
    #[must_use]
    pub fn resolve(self, full: (SimTime, SimTime)) -> (SimTime, SimTime) {
        match self {
            SweepSpan::Full => full,
            SweepSpan::Between(from, to) => (from, to),
        }
    }
}

/// Everything the engine knows about one sweep instant: the system
/// snapshot plus per-rack ground truth and monitor observations, each
/// computed exactly once.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepStep {
    /// The shared per-instant state.
    pub snapshot: SystemSnapshot,
    /// Civil-calendar decomposition of the instant (a pure function of
    /// [`SystemSnapshot::time`]), so calendar-keyed recorders bin
    /// without re-deriving the date.
    pub civil: CivilParts,
    /// Ground-truth physical state per rack (index = [`RackId::index`]).
    pub truths: Vec<RackTruth>,
    /// Coolant-monitor observations per rack.
    pub samples: Vec<CoolantMonitorSample>,
}

impl TelemetryEngine {
    /// Computes one full [`SweepStep`] at `t`: one snapshot, then one
    /// truth + observation per rack (the truth is *not* recomputed for
    /// the observation, unlike calling [`TelemetryEngine::rack_truth`]
    /// and [`TelemetryEngine::observe`] separately).
    ///
    /// One-shot convenience over [`TelemetryEngine::sweep_step_into`];
    /// loops should build a [`crate::SweepScratch`] once and reuse it.
    #[deprecated(note = "allocates a fresh scratch per call; reuse a SweepScratch via \
                sweep_scratch()/sweep_step_into, or feed an IncrementalSweep \
                via IncrementalSweep::ingest")]
    #[must_use]
    pub fn sweep_step(&self, t: SimTime) -> SweepStep {
        let mut scratch = self.sweep_scratch();
        self.sweep_step_into(t, &mut scratch);
        scratch.into_step()
    }
}

/// A streaming analysis that can run sharded: fold [`SweepStep`]s,
/// merge with a later partial of the same type, and finish into its
/// output.
///
/// Tuples of recorders implement `Recorder` too, so several analyses
/// share one pass over the telemetry.
pub trait Recorder: Sized {
    /// What [`Recorder::finish`] produces.
    type Output;

    /// Folds one sweep instant into the state.
    fn record(&mut self, step: &SweepStep);

    /// Folds a contiguous block of instants produced by the batched
    /// kernel ([`TelemetryEngine::sweep_steps_into`]).
    ///
    /// The default materializes each instant into `staging` and calls
    /// [`Recorder::record`], so every recorder sees the identical
    /// per-instant view either way. Recorders on the hot path override
    /// this to read the block's structure-of-arrays lanes directly and
    /// skip the materialization.
    fn record_block(&mut self, block: &SweepBlock, staging: &mut SweepStep) {
        for k in 0..block.len() {
            block.materialize_into(k, staging);
            self.record(staging);
        }
    }

    /// Absorbs a partial that covers the span immediately *after* this
    /// one's.
    fn merge(&mut self, later: Self);

    /// Finalizes the state into the output.
    fn finish(self) -> Self::Output;
}

impl<A: Recorder, B: Recorder> Recorder for (A, B) {
    type Output = (A::Output, B::Output);

    fn record(&mut self, step: &SweepStep) {
        self.0.record(step);
        self.1.record(step);
    }

    fn record_block(&mut self, block: &SweepBlock, staging: &mut SweepStep) {
        self.0.record_block(block, staging);
        self.1.record_block(block, staging);
    }

    fn merge(&mut self, later: Self) {
        self.0.merge(later.0);
        self.1.merge(later.1);
    }

    fn finish(self) -> Self::Output {
        (self.0.finish(), self.1.finish())
    }
}

impl<A: Recorder, B: Recorder, C: Recorder> Recorder for (A, B, C) {
    type Output = (A::Output, B::Output, C::Output);

    fn record(&mut self, step: &SweepStep) {
        self.0.record(step);
        self.1.record(step);
        self.2.record(step);
    }

    fn record_block(&mut self, block: &SweepBlock, staging: &mut SweepStep) {
        self.0.record_block(block, staging);
        self.1.record_block(block, staging);
        self.2.record_block(block, staging);
    }

    fn merge(&mut self, later: Self) {
        self.0.merge(later.0);
        self.1.merge(later.1);
        self.2.merge(later.2);
    }

    fn finish(self) -> Self::Output {
        (self.0.finish(), self.1.finish(), self.2.finish())
    }
}

/// Builder for a (possibly parallel) telemetry sweep.
///
/// ```
/// use mira_core::{Duration, FullSpan, SimConfig, Simulation};
///
/// let sim = Simulation::new(SimConfig::with_seed(7));
/// let summary = sim
///     .sweep_plan((
///         mira_core::SimTime::from_date(mira_core::Date::new(2015, 1, 1)),
///         mira_core::SimTime::from_date(mira_core::Date::new(2015, 3, 1)),
///     ))
///     .step(Duration::from_hours(6))
///     .threads(2)
///     .summary()
///     .expect("non-empty span");
/// assert_eq!(summary.power_mw.bins.overall().count(), 59 * 4);
/// ```
#[derive(Debug, Clone)]
pub struct SweepPlan<'e> {
    engine: &'e TelemetryEngine,
    from: SimTime,
    to: SimTime,
    step: Duration,
    threads: Option<usize>,
}

impl<'e> SweepPlan<'e> {
    /// A plan over `[from, to)` at the default 300 s step, auto threads.
    #[must_use]
    pub fn new(engine: &'e TelemetryEngine, from: SimTime, to: SimTime) -> Self {
        Self {
            engine,
            from,
            to,
            step: Duration::from_minutes(5),
            threads: None,
        }
    }

    /// Sets the sampling step.
    #[must_use]
    pub fn step(mut self, step: Duration) -> Self {
        self.step = step;
        self
    }

    /// Sets the worker count. `0` restores auto selection (the
    /// `MIRA_SWEEP_THREADS` environment variable if set, otherwise the
    /// machine's available parallelism).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 { None } else { Some(threads) };
        self
    }

    /// The sweep span.
    #[must_use]
    pub fn span(&self) -> (SimTime, SimTime) {
        (self.from, self.to)
    }

    /// Runs the sweep, folding every instant into recorders produced by
    /// `factory` (one per shard) and merging them chronologically.
    ///
    /// # Errors
    ///
    /// [`Error::Sweep`] carrying [`SweepError::EmptySpan`] when
    /// `from >= to`, or [`SweepError::NonPositiveStep`] when the step is
    /// not positive.
    // Per-sweep setup only: the shard list, result slots, and recorder
    // vector are built once per run; the per-step k-loop folds through a
    // reused SweepScratch and allocates nothing (BENCH_sweep.json gates
    // this). mira-lint: allow(alloc-in-hot-path)
    pub fn run<R, F>(&self, factory: F) -> Result<R::Output, Error>
    where
        R: Recorder + Send,
        F: Fn() -> R + Sync,
    {
        if self.step.as_seconds() <= 0 {
            return Err(SweepError::NonPositiveStep.into());
        }
        if self.from >= self.to {
            return Err(SweepError::EmptySpan.into());
        }

        let shards = month_shards(self.from, self.to, self.step);
        let threads = self.resolved_threads(shards.len());
        let engine = self.engine;
        let (from, step) = (self.from, self.step);
        let run_shard = |&(lo, hi): &(usize, usize), scratch: &mut SweepScratch| -> R {
            let mut recorder = factory();
            let mut k = lo;
            while k < hi {
                let n = (hi - k).min(SWEEP_BLOCK);
                let t = from + step * convert::i64_from_usize(k);
                engine.sweep_steps_into(t, step, n, scratch);
                let (block, staging) = scratch.block_parts();
                recorder.record_block(block, staging);
                k += n;
            }
            recorder
        };

        // One scratch per *worker*, reused across every shard it picks
        // up: the cursors a scratch carries refill bit-neutrally from
        // any prior state (which shard a worker ran last is
        // nondeterministic under contention, so outputs could not be
        // deterministic otherwise), and reuse keeps shard turnover off
        // the allocator — only worker startup pays the block-row and
        // cursor construction cost.
        let partials: Vec<Option<R>> = if threads <= 1 {
            let mut scratch = engine.sweep_scratch();
            shards
                .iter()
                .map(|b| Some(run_shard(b, &mut scratch)))
                .collect()
        } else {
            let slots: Vec<Mutex<Option<R>>> = shards.iter().map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| {
                        let mut scratch = engine.sweep_scratch();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let (Some(bounds), Some(slot)) = (shards.get(i), slots.get(i)) else {
                                break;
                            };
                            let recorder = run_shard(bounds, &mut scratch);
                            *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(recorder);
                        }
                    });
                }
            });
            slots
                .into_iter()
                .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner))
                .collect()
        };

        // Merge in chronological shard order — identical regardless of
        // which worker produced which partial.
        let mut merged: Option<R> = None;
        for partial in partials.into_iter().flatten() {
            match merged.as_mut() {
                Some(acc) => acc.merge(partial),
                None => merged = Some(partial),
            }
        }
        match merged {
            Some(recorder) => Ok(recorder.finish()),
            // Unreachable: a non-empty span always yields >= 1 shard.
            None => Err(SweepError::EmptySpan.into()),
        }
    }

    /// Runs the sweep into a [`SweepSummary`] — the common case.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SweepPlan::run`].
    pub fn summary(&self) -> Result<SweepSummary, Error> {
        let span = (self.from, self.to);
        let step = self.step;
        self.run(|| SweepSummary::empty(span, step))
    }

    /// Resolves the worker count: explicit request, else the
    /// `MIRA_SWEEP_THREADS` environment variable, else available
    /// parallelism — clamped to `[1, shard_count]`.
    fn resolved_threads(&self, shard_count: usize) -> usize {
        let requested = self
            .threads
            .or_else(|| {
                std::env::var(THREADS_ENV)
                    .ok()
                    .and_then(|v| v.trim().parse().ok())
            })
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            });
        requested.clamp(1, shard_count.max(1))
    }
}

/// Cuts the sample grid `t = from + k·step`, `k < n`, into
/// calendar-month shards: shard boundaries sit at the first grid index
/// at or after each first-of-month inside the span. Depends only on
/// `(from, to, step)` — never on the worker count.
// Runs once per sweep to cut the grid into shards; the boundary vector
// is proportional to span months, not step count, and this is never
// called from the per-step loop. mira-lint: allow(alloc-in-hot-path)
pub(crate) fn month_shards(from: SimTime, to: SimTime, step: Duration) -> Vec<(usize, usize)> {
    let step_s = step.as_seconds();
    let total_s = (to - from).as_seconds();
    // Number of grid points in [from, to): ceil(total / step).
    let n = convert::usize_from_i64((total_s + step_s - 1) / step_s);

    let mut starts: Vec<usize> = vec![0];
    let first = from.date();
    let (mut year, mut month) = (first.year(), first.month().number());
    loop {
        month += 1;
        if month > 12 {
            month = 1;
            year += 1;
        }
        let boundary = SimTime::from_date(Date::new(year, month, 1));
        if boundary >= to {
            break;
        }
        let offset = (boundary - from).as_seconds();
        let idx = convert::usize_from_i64((offset + step_s - 1) / step_s);
        if idx >= n {
            break;
        }
        // A step longer than a month can land two boundaries on the
        // same grid index; keep shard starts strictly increasing.
        if starts.last().is_some_and(|&last| idx > last) {
            starts.push(idx);
        }
    }

    starts
        .iter()
        .zip(starts.iter().skip(1).chain(std::iter::once(&n)))
        .map(|(&lo, &hi)| (lo, hi))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mira_facility::RackId;
    use mira_ras::{CmfSchedule, RasLog};

    fn engine() -> TelemetryEngine {
        let schedule = CmfSchedule::generate(9);
        let log = RasLog::assemble(&schedule, 9);
        TelemetryEngine::new(9, &schedule, &log)
    }

    fn t(y: i32, m: u8, d: u8) -> SimTime {
        SimTime::from_date(Date::new(y, m, d))
    }

    #[test]
    fn shards_partition_the_grid() {
        let shards = month_shards(t(2015, 1, 15), t(2015, 4, 10), Duration::from_hours(6));
        // 17 + 28 + 31 + 9 days, 4 samples/day.
        let n = (17 + 28 + 31 + 9) * 4;
        assert_eq!(shards.len(), 3 + 1);
        assert_eq!(shards[0].0, 0);
        assert_eq!(shards.last().map(|s| s.1), Some(n));
        for pair in shards.windows(2) {
            assert_eq!(pair[0].1, pair[1].0, "contiguous");
            assert!(pair[0].0 < pair[0].1, "non-empty");
        }
    }

    #[test]
    fn shards_ignore_worker_count_inputs() {
        // Boundaries are a pure function of (from, to, step).
        let a = month_shards(t(2014, 1, 1), t(2020, 1, 1), Duration::from_hours(1));
        let b = month_shards(t(2014, 1, 1), t(2020, 1, 1), Duration::from_hours(1));
        assert_eq!(a, b);
        assert_eq!(a.len(), 72, "one shard per month over six years");
    }

    #[test]
    fn huge_step_collapses_to_one_shard() {
        let shards = month_shards(t(2015, 1, 1), t(2015, 12, 31), Duration::from_days(400));
        assert_eq!(shards, vec![(0, 1)]);
    }

    #[test]
    fn sub_month_span_is_one_shard() {
        let shards = month_shards(t(2016, 2, 3), t(2016, 2, 20), Duration::from_hours(2));
        assert_eq!(shards, vec![(0, 17 * 12)]);
    }

    #[test]
    fn plan_validates_inputs() {
        let e = engine();
        let err = SweepPlan::new(&e, t(2015, 2, 1), t(2015, 1, 1))
            .summary()
            .unwrap_err();
        assert!(matches!(err, Error::Sweep(SweepError::EmptySpan)));
        let err = SweepPlan::new(&e, t(2015, 1, 1), t(2015, 2, 1))
            .step(Duration::ZERO)
            .summary()
            .unwrap_err();
        assert!(matches!(err, Error::Sweep(SweepError::NonPositiveStep)));
        assert_eq!(err.to_string(), "sweep step must be positive");
    }

    #[test]
    fn thread_counts_agree_exactly() {
        let e = engine();
        let plan = |threads| {
            SweepPlan::new(&e, t(2015, 2, 10), t(2015, 5, 20))
                .step(Duration::from_hours(4))
                .threads(threads)
                .summary()
                .expect("valid plan")
        };
        let sequential = plan(1);
        for threads in [2, 3, 8] {
            assert_eq!(plan(threads), sequential, "threads={threads}");
        }
    }

    #[test]
    fn tuple_recorder_shares_the_pass() {
        let e = engine();
        let span = (t(2015, 3, 1), t(2015, 3, 10));
        let step = Duration::from_hours(6);
        let plan = SweepPlan::new(&e, span.0, span.1).step(step).threads(2);
        let (a, b) = plan
            .run(|| {
                (
                    SweepSummary::empty(span, step),
                    SweepSummary::empty(span, step),
                )
            })
            .expect("valid plan");
        assert_eq!(a, b);
        assert_eq!(a, plan.summary().expect("valid plan"));
    }

    #[test]
    // The one-shot entry point stays correct while deprecated.
    #[allow(deprecated)]
    fn sweep_step_matches_piecewise_queries() {
        let e = engine();
        let at = t(2017, 6, 15) + Duration::from_hours(7);
        let step = e.sweep_step(at);
        let snap = e.snapshot(at);
        assert_eq!(step.snapshot, snap);
        for rack in RackId::all() {
            assert_eq!(step.truths[rack.index()], e.rack_truth(rack, &snap));
            assert_eq!(step.samples[rack.index()], e.observe(rack, &snap));
        }
    }

    #[test]
    fn span_conversions() {
        let full = (t(2014, 1, 1), t(2020, 1, 1));
        assert_eq!(SweepSpan::from(FullSpan).resolve(full), full);
        let window = (t(2015, 1, 1), t(2015, 6, 1));
        assert_eq!(SweepSpan::from(window).resolve(full), window);
        assert_eq!(SweepSpan::from(window.0..window.1).resolve(full), window);
    }
}
