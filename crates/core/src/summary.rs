//! One-pass aggregation of a telemetry sweep: everything the paper's
//! figures need, in bounded memory.

use serde::{Deserialize, Serialize};

use mira_cooling::plant::FreeCoolingLedger;
use mira_facility::RackId;
use mira_timeseries::{CalendarBins, Duration, SimTime, TimeSeries, Welford};
use mira_units::{convert, KilowattHours};

use crate::telemetry::{SystemSnapshot, TelemetryEngine};

/// Calendar bins plus a weekly-mean series for one system-level channel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChannelAggregate {
    /// Calendar-keyed statistics (yearly/monthly/weekday bins).
    pub bins: CalendarBins,
    /// Weekly-mean time series (for trend fits and plotting).
    pub weekly: TimeSeries,
    week_acc: Welford,
    week_start: Option<SimTime>,
}

impl Default for ChannelAggregate {
    fn default() -> Self {
        Self::new()
    }
}

impl ChannelAggregate {
    /// Creates an empty aggregate.
    #[must_use]
    pub fn new() -> Self {
        Self {
            bins: CalendarBins::new(),
            weekly: TimeSeries::new(),
            week_acc: Welford::new(),
            week_start: None,
        }
    }

    fn push(&mut self, t: SimTime, value: f64) {
        self.bins.push(t, value);
        let week =
            SimTime::from_epoch_seconds(t.epoch_seconds().div_euclid(7 * 86_400) * 7 * 86_400);
        match self.week_start {
            Some(ws) if ws == week => {}
            Some(ws) => {
                if !self.week_acc.is_empty() {
                    self.weekly.push(ws, self.week_acc.mean());
                }
                self.week_acc = Welford::new();
                self.week_start = Some(week);
            }
            None => self.week_start = Some(week),
        }
        self.week_acc.push(value);
    }

    fn finish(&mut self) {
        if let (Some(ws), false) = (self.week_start, self.week_acc.is_empty()) {
            self.weekly.push(ws, self.week_acc.mean());
            self.week_acc = Welford::new();
            self.week_start = None;
        }
    }
}

/// Per-rack lifetime statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RackAggregate {
    /// Rack power (kW).
    pub power: Welford,
    /// Rack utilization (fraction).
    pub utilization: Welford,
    /// Rack coolant flow (GPM).
    pub flow: Welford,
    /// Inlet coolant temperature (F).
    pub inlet: Welford,
    /// Outlet coolant temperature (F).
    pub outlet: Welford,
    /// Ambient temperature at the rack (F).
    pub ambient_temperature: Welford,
    /// Ambient humidity at the rack (%RH).
    pub ambient_humidity: Welford,
}

/// The full six-year (or any-span) sweep summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepSummary {
    /// Sampling step used.
    pub step: Duration,
    /// Sweep span.
    pub span: (SimTime, SimTime),
    /// System power in MW.
    pub power_mw: ChannelAggregate,
    /// System utilization in percent of nodes.
    pub utilization_pct: ChannelAggregate,
    /// Total loop flow in GPM (sum of rack monitors).
    pub flow_gpm: ChannelAggregate,
    /// Mean inlet coolant temperature across racks (F).
    pub inlet_f: ChannelAggregate,
    /// Mean outlet coolant temperature across racks (F).
    pub outlet_f: ChannelAggregate,
    /// Mean data-center ambient temperature across racks (F).
    pub dc_temp_f: ChannelAggregate,
    /// Mean data-center ambient humidity across racks (%RH).
    pub dc_rh: ChannelAggregate,
    /// Ambient temperature pooled over *all* rack samples (spatial +
    /// temporal variation together — the population Fig. 8's σ
    /// describes).
    pub dc_temp_all_racks: Welford,
    /// Ambient humidity pooled over all rack samples.
    pub dc_rh_all_racks: Welford,
    /// Per-rack lifetime statistics.
    pub racks: Vec<RackAggregate>,
    /// Free-cooling ledger per calendar year.
    pub yearly_energy: Vec<(i32, FreeCoolingLedger)>,
    /// Economizer savings during December–March months only.
    pub season_saved: KilowattHours,
}

impl SweepSummary {
    /// Runs a sweep over `[from, to)` at `step` and aggregates.
    ///
    /// # Panics
    ///
    /// Panics if the span is empty or the step non-positive.
    #[must_use]
    pub fn sweep(engine: &TelemetryEngine, from: SimTime, to: SimTime, step: Duration) -> Self {
        assert!(from < to, "empty sweep span");
        assert!(step.as_seconds() > 0, "step must be positive");

        let mut summary = Self {
            step,
            span: (from, to),
            power_mw: ChannelAggregate::new(),
            utilization_pct: ChannelAggregate::new(),
            flow_gpm: ChannelAggregate::new(),
            inlet_f: ChannelAggregate::new(),
            outlet_f: ChannelAggregate::new(),
            dc_temp_f: ChannelAggregate::new(),
            dc_rh: ChannelAggregate::new(),
            dc_temp_all_racks: Welford::new(),
            dc_rh_all_racks: Welford::new(),
            racks: (0..RackId::COUNT)
                .map(|_| RackAggregate::default())
                .collect(),
            yearly_energy: Vec::new(),
            season_saved: KilowattHours::new(0.0),
        };

        let mut t = from;
        while t < to {
            let snap = engine.snapshot(t);
            summary.ingest(engine, &snap);
            t += step;
        }
        summary.power_mw.finish();
        summary.utilization_pct.finish();
        summary.flow_gpm.finish();
        summary.inlet_f.finish();
        summary.outlet_f.finish();
        summary.dc_temp_f.finish();
        summary.dc_rh.finish();
        summary
    }

    fn ingest(&mut self, engine: &TelemetryEngine, snap: &SystemSnapshot) {
        let t = snap.time;
        let mut power_kw = 0.0;
        let mut util = 0.0;
        let mut flow = 0.0;
        let mut inlet = 0.0;
        let mut outlet = 0.0;
        let mut dc_t = 0.0;
        let mut dc_h = 0.0;

        for rack in RackId::all() {
            let truth = engine.rack_truth(rack, snap);
            let sample = engine.observe(rack, snap);
            let agg = &mut self.racks[rack.index()];
            agg.power.push(sample.power.value());
            agg.utilization.push(truth.utilization);
            agg.flow.push(sample.flow.value());
            agg.inlet.push(sample.inlet.value());
            agg.outlet.push(sample.outlet.value());
            agg.ambient_temperature.push(sample.dc_temperature.value());
            agg.ambient_humidity.push(sample.dc_humidity.value());
            self.dc_temp_all_racks.push(sample.dc_temperature.value());
            self.dc_rh_all_racks.push(sample.dc_humidity.value());

            power_kw += sample.power.value();
            util += truth.utilization;
            flow += sample.flow.value();
            inlet += sample.inlet.value();
            outlet += sample.outlet.value();
            dc_t += sample.dc_temperature.value();
            dc_h += sample.dc_humidity.value();
        }
        let n = convert::f64_from_usize(RackId::COUNT);
        self.power_mw.push(t, power_kw / 1000.0);
        self.utilization_pct.push(t, util / n * 100.0);
        self.flow_gpm.push(t, flow);
        self.inlet_f.push(t, inlet / n);
        self.outlet_f.push(t, outlet / n);
        self.dc_temp_f.push(t, dc_t / n);
        self.dc_rh.push(t, dc_h / n);

        // Energy accounting.
        let year = t.date().year();
        let idx = match self.yearly_energy.iter().position(|(y, _)| *y == year) {
            Some(i) => i,
            None => {
                // Insert in sorted position so the index is known without
                // a second search.
                let at = self.yearly_energy.partition_point(|(y, _)| *y < year);
                self.yearly_energy
                    .insert(at, (year, FreeCoolingLedger::new()));
                at
            }
        };
        let ledger = &mut self.yearly_energy[idx].1;
        let plant_load = mira_cooling::PlantLoad {
            supply_temperature: snap.supply_temperature,
            free_cooling_fraction: snap.free_cooling_fraction,
            chiller_power: snap.chiller_power,
            avoided_power: snap.avoided_power,
        };
        ledger.record(&plant_load, self.step);
        if t.date().month().is_free_cooling_season() {
            self.season_saved += snap.avoided_power.for_hours(self.step.as_hours());
        }
    }

    /// Per-rack mean of a channel selected by `f`, in rack-index order.
    #[must_use]
    pub fn rack_means<F: Fn(&RackAggregate) -> &Welford>(&self, f: F) -> Vec<f64> {
        self.racks.iter().map(|r| f(r).mean()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mira_ras::{CmfSchedule, RasLog};
    use mira_timeseries::Date;

    fn small_summary() -> SweepSummary {
        let schedule = CmfSchedule::generate(31);
        let log = RasLog::assemble(&schedule, 31);
        let engine = TelemetryEngine::new(31, &schedule, &log);
        SweepSummary::sweep(
            &engine,
            SimTime::from_date(Date::new(2015, 3, 1)),
            SimTime::from_date(Date::new(2015, 5, 1)),
            Duration::from_hours(2),
        )
    }

    #[test]
    fn aggregates_cover_the_span() {
        let s = small_summary();
        // 61 days x 12 samples/day.
        assert_eq!(s.power_mw.bins.overall().count(), 61 * 12);
        assert!(!s.power_mw.weekly.is_empty());
        assert!(s.racks.iter().all(|r| r.power.count() == 61 * 12));
    }

    #[test]
    fn system_levels_are_sane() {
        let s = small_summary();
        let mw = s.power_mw.bins.overall().mean();
        assert!((2.2..3.0).contains(&mw), "power {mw} MW");
        let util = s.utilization_pct.bins.overall().mean();
        assert!((70.0..92.0).contains(&util), "util {util} %");
        let flow = s.flow_gpm.bins.overall().mean();
        assert!((1200.0..1320.0).contains(&flow), "flow {flow} GPM");
        let inlet = s.inlet_f.bins.overall().mean();
        assert!((62.0..67.0).contains(&inlet), "inlet {inlet} F");
        let outlet = s.outlet_f.bins.overall().mean();
        assert!((75.0..84.0).contains(&outlet), "outlet {outlet} F");
    }

    #[test]
    fn weekly_series_is_weekly() {
        let s = small_summary();
        let times = s.weekly_power_times();
        for pair in times.windows(2) {
            assert_eq!((pair[1] - pair[0]).as_days(), 7.0);
        }
    }

    #[test]
    fn energy_ledger_accumulates() {
        let s = small_summary();
        assert_eq!(s.yearly_energy.len(), 1);
        assert_eq!(s.yearly_energy[0].0, 2015);
        let ledger = &s.yearly_energy[0].1;
        // March has free cooling; total saved energy must be positive.
        assert!(ledger.saved().value() > 0.0);
        assert!(s.season_saved.value() > 0.0);
        // April-May run chillers.
        assert!(ledger.chiller_energy().value() > 0.0);
    }

    impl SweepSummary {
        fn weekly_power_times(&self) -> Vec<SimTime> {
            self.power_mw.weekly.times().to_vec()
        }
    }
}
