//! One-pass aggregation of a telemetry sweep: everything the paper's
//! figures need, in bounded memory.

use serde::{Deserialize, Serialize};

use mira_cooling::plant::FreeCoolingLedger;
use mira_facility::RackId;
use mira_timeseries::{
    CalendarBins, CivilParts, Duration, SimTime, TimeSeries, Welford, WelfordRows,
};
use mira_units::{convert, KilowattHours};

use crate::sweep::{Recorder, SweepStep, SWEEP_BLOCK};
use crate::telemetry::SweepBlock;

/// Calendar bins plus a weekly-mean series for one system-level channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelAggregate {
    /// Calendar-keyed statistics (yearly/monthly/weekday bins).
    pub bins: CalendarBins,
    /// Weekly-mean time series (for trend fits and plotting). Rebuilt
    /// from the per-week accumulators on finish; empty on unfinished
    /// partials.
    pub weekly: TimeSeries,
    /// One accumulator per calendar week (keyed by the global 7-day
    /// grid), kept sorted by week start.
    weeks: Vec<(SimTime, Welford)>,
}

impl Default for ChannelAggregate {
    fn default() -> Self {
        Self::new()
    }
}

impl ChannelAggregate {
    /// Creates an empty aggregate.
    #[must_use]
    pub fn new() -> Self {
        Self {
            bins: CalendarBins::new(),
            weekly: TimeSeries::new(),
            weeks: Vec::new(),
        }
    }

    fn push(&mut self, t: SimTime, parts: CivilParts, value: f64) {
        // Week key on a global 7-day grid — a pure function of t, so
        // shard boundaries never shift which week a sample lands in.
        let week =
            SimTime::from_epoch_seconds(t.epoch_seconds().div_euclid(7 * 86_400) * 7 * 86_400);
        self.push_keyed(parts, week, value);
    }

    /// [`Self::push`] with the week key already derived — the batched
    /// block fold computes each instant's key once and shares it across
    /// all seven channels instead of re-deriving it per channel.
    fn push_keyed(&mut self, parts: CivilParts, week: SimTime, value: f64) {
        self.bins.push_parts(parts, value);
        match self.weeks.last_mut() {
            Some((ws, acc)) if *ws == week => acc.push(value),
            Some((ws, _)) if *ws < week => {
                let mut acc = Welford::new();
                acc.push(value);
                self.weeks.push((week, acc));
            }
            _ => {
                // Out-of-chronological-order push (never happens on the
                // sweep path, but keep the structure correct).
                let at = self.weeks.partition_point(|(ws, _)| *ws < week);
                if let Some(entry) = self.weeks.get_mut(at).filter(|(ws, _)| *ws == week) {
                    entry.1.push(value);
                } else {
                    let mut acc = Welford::new();
                    acc.push(value);
                    self.weeks.insert(at, (week, acc));
                }
            }
        }
    }

    /// Absorbs an aggregate covering the span after this one's. The
    /// boundary week (if a calendar week straddles the shard cut) is
    /// pooled via [`Welford::merge`].
    pub fn merge(&mut self, later: &ChannelAggregate) {
        self.bins.merge(&later.bins);
        for (week, acc) in &later.weeks {
            match self.weeks.last_mut() {
                Some((ws, mine)) if *ws == *week => mine.merge(acc),
                Some((ws, _)) if *ws < *week => self.weeks.push((*week, *acc)),
                _ => {
                    let at = self.weeks.partition_point(|(ws, _)| *ws < *week);
                    if let Some(entry) = self.weeks.get_mut(at).filter(|(ws, _)| *ws == *week) {
                        entry.1.merge(acc);
                    } else {
                        self.weeks.insert(at, (*week, *acc));
                    }
                }
            }
        }
    }

    fn finish(&mut self) {
        let mut weekly = TimeSeries::new();
        for (week, acc) in &self.weeks {
            if !acc.is_empty() {
                weekly.push(*week, acc.mean());
            }
        }
        self.weekly = weekly;
    }
}

/// Per-rack lifetime statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RackAggregate {
    /// Rack power (kW).
    pub power: Welford,
    /// Rack utilization (fraction).
    pub utilization: Welford,
    /// Rack coolant flow (GPM).
    pub flow: Welford,
    /// Inlet coolant temperature (F).
    pub inlet: Welford,
    /// Outlet coolant temperature (F).
    pub outlet: Welford,
    /// Ambient temperature at the rack (F).
    pub ambient_temperature: Welford,
    /// Ambient humidity at the rack (%RH).
    pub ambient_humidity: Welford,
}

impl RackAggregate {
    /// Pools another rack aggregate into this one (channel-wise
    /// [`Welford::merge`]).
    pub fn merge(&mut self, later: &RackAggregate) {
        self.power.merge(&later.power);
        self.utilization.merge(&later.utilization);
        self.flow.merge(&later.flow);
        self.inlet.merge(&later.inlet);
        self.outlet.merge(&later.outlet);
        self.ambient_temperature.merge(&later.ambient_temperature);
        self.ambient_humidity.merge(&later.ambient_humidity);
    }
}

/// The full six-year (or any-span) sweep summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSummary {
    /// Sampling step used.
    pub step: Duration,
    /// Sweep span.
    pub span: (SimTime, SimTime),
    /// System power in MW.
    pub power_mw: ChannelAggregate,
    /// System utilization in percent of nodes.
    pub utilization_pct: ChannelAggregate,
    /// Total loop flow in GPM (sum of rack monitors).
    pub flow_gpm: ChannelAggregate,
    /// Mean inlet coolant temperature across racks (F).
    pub inlet_f: ChannelAggregate,
    /// Mean outlet coolant temperature across racks (F).
    pub outlet_f: ChannelAggregate,
    /// Mean data-center ambient temperature across racks (F).
    pub dc_temp_f: ChannelAggregate,
    /// Mean data-center ambient humidity across racks (%RH).
    pub dc_rh: ChannelAggregate,
    /// Ambient temperature pooled over *all* rack samples (spatial +
    /// temporal variation together — the population Fig. 8's σ
    /// describes).
    pub dc_temp_all_racks: Welford,
    /// Ambient humidity pooled over all rack samples.
    pub dc_rh_all_racks: Welford,
    /// Per-rack lifetime statistics.
    pub racks: Vec<RackAggregate>,
    /// Free-cooling ledger per calendar year.
    pub yearly_energy: Vec<(i32, FreeCoolingLedger)>,
    /// Economizer savings during December–March months only.
    pub season_saved: KilowattHours,
}

impl SweepSummary {
    /// An empty summary for `span` at `step` — the [`Recorder`] seed
    /// that sweep shards fold into. `span` is carried as metadata; it
    /// is not validated against the instants actually recorded.
    #[must_use]
    pub fn empty(span: (SimTime, SimTime), step: Duration) -> Self {
        Self {
            step,
            span,
            power_mw: ChannelAggregate::new(),
            utilization_pct: ChannelAggregate::new(),
            flow_gpm: ChannelAggregate::new(),
            inlet_f: ChannelAggregate::new(),
            outlet_f: ChannelAggregate::new(),
            dc_temp_f: ChannelAggregate::new(),
            dc_rh: ChannelAggregate::new(),
            dc_temp_all_racks: Welford::new(),
            dc_rh_all_racks: Welford::new(),
            racks: (0..RackId::COUNT)
                .map(|_| RackAggregate::default())
                .collect(),
            yearly_energy: Vec::new(),
            season_saved: KilowattHours::new(0.0),
        }
    }

    /// Absorbs a summary covering the span immediately after this
    /// one's: channels, pooled statistics, per-rack aggregates, and the
    /// yearly energy ledgers all merge; the span extends to cover both.
    pub fn merge(&mut self, later: &SweepSummary) {
        self.power_mw.merge(&later.power_mw);
        self.utilization_pct.merge(&later.utilization_pct);
        self.flow_gpm.merge(&later.flow_gpm);
        self.inlet_f.merge(&later.inlet_f);
        self.outlet_f.merge(&later.outlet_f);
        self.dc_temp_f.merge(&later.dc_temp_f);
        self.dc_rh.merge(&later.dc_rh);
        self.dc_temp_all_racks.merge(&later.dc_temp_all_racks);
        self.dc_rh_all_racks.merge(&later.dc_rh_all_racks);
        for (mine, theirs) in self.racks.iter_mut().zip(&later.racks) {
            mine.merge(theirs);
        }
        for (year, ledger) in &later.yearly_energy {
            match self.yearly_energy.iter_mut().find(|(y, _)| y == year) {
                Some((_, mine)) => mine.merge(ledger),
                None => {
                    let at = self.yearly_energy.partition_point(|(y, _)| y < year);
                    self.yearly_energy.insert(at, (*year, *ledger));
                }
            }
        }
        self.season_saved += later.season_saved;
        self.span = (self.span.0.min(later.span.0), self.span.1.max(later.span.1));
    }

    fn ingest(&mut self, sweep_step: &SweepStep) {
        let snap = &sweep_step.snapshot;
        let t = snap.time;
        // The step carries the civil decomposition of `t`, so the seven
        // channel pushes and the energy ledger share one calendar
        // derivation instead of re-deriving it each.
        let parts = sweep_step.civil;
        let mut power_kw = 0.0;
        let mut util = 0.0;
        let mut flow = 0.0;
        let mut inlet = 0.0;
        let mut outlet = 0.0;
        let mut dc_t = 0.0;
        let mut dc_h = 0.0;

        for rack in RackId::all() {
            let truth = &sweep_step.truths[rack.index()];
            let sample = &sweep_step.samples[rack.index()];
            let agg = &mut self.racks[rack.index()];
            agg.power.push(sample.power.value());
            agg.utilization.push(truth.utilization);
            agg.flow.push(sample.flow.value());
            agg.inlet.push(sample.inlet.value());
            agg.outlet.push(sample.outlet.value());
            agg.ambient_temperature.push(sample.dc_temperature.value());
            agg.ambient_humidity.push(sample.dc_humidity.value());
            self.dc_temp_all_racks.push(sample.dc_temperature.value());
            self.dc_rh_all_racks.push(sample.dc_humidity.value());

            power_kw += sample.power.value();
            util += truth.utilization;
            flow += sample.flow.value();
            inlet += sample.inlet.value();
            outlet += sample.outlet.value();
            dc_t += sample.dc_temperature.value();
            dc_h += sample.dc_humidity.value();
        }
        let n = convert::f64_from_usize(RackId::COUNT);
        self.power_mw.push(t, parts, power_kw / 1000.0);
        self.utilization_pct.push(t, parts, util / n * 100.0);
        self.flow_gpm.push(t, parts, flow);
        self.inlet_f.push(t, parts, inlet / n);
        self.outlet_f.push(t, parts, outlet / n);
        self.dc_temp_f.push(t, parts, dc_t / n);
        self.dc_rh.push(t, parts, dc_h / n);

        // Energy accounting.
        let year = parts.date.year();
        let idx = match self.yearly_energy.iter().position(|(y, _)| *y == year) {
            Some(i) => i,
            None => {
                // Insert in sorted position so the index is known without
                // a second search.
                let at = self.yearly_energy.partition_point(|(y, _)| *y < year);
                self.yearly_energy
                    .insert(at, (year, FreeCoolingLedger::new()));
                at
            }
        };
        // idx is a found or just-inserted position in yearly_energy.
        // mira-lint: allow(panic-reachability)
        let ledger = &mut self.yearly_energy[idx].1;
        let plant_load = mira_cooling::PlantLoad {
            supply_temperature: snap.supply_temperature,
            free_cooling_fraction: snap.free_cooling_fraction,
            chiller_power: snap.chiller_power,
            avoided_power: snap.avoided_power,
        };
        ledger.record(&plant_load, self.step);
        if parts.date.month().is_free_cooling_season() {
            self.season_saved += snap.avoided_power.for_hours(self.step.as_hours());
        }
    }

    /// Lane-direct fold of one batched block: the same pushes as
    /// [`Self::ingest`], reading the block's structure-of-arrays rows
    /// instead of a materialized [`SweepStep`]. Observed channels come
    /// from the block's sensor lanes (already clamped/floored by the
    /// observation pass) and utilization from the truth lane, so every
    /// pushed value is bit-identical to the per-step path's.
    ///
    /// The fold runs in three accumulator-resident passes over the
    /// block. Interchanging the (instant, accumulator) loops is
    /// bit-exact because each accumulator only requires *its own*
    /// values to arrive in chronological order; only accumulators that
    /// interleave across lanes within one instant (the pooled DC
    /// stats, the lane sums) keep the per-instant rack-order loop.
    ///
    /// 1. Bank-outer per-rack fold through [`WelfordRows`] staging:
    ///    one 48-lane bank (~2 KB) and the lane rows it reads stay
    ///    L1-resident for the whole block, instead of cycling all
    ///    seven banks through cache every instant.
    /// 2. Per-instant pass for the order-sensitive pooled statistics,
    ///    the system-level lane sums (staged to a per-block scalar
    ///    row), the shared week keys, and the energy ledger.
    /// 3. Channel-outer bins pass: one channel's calendar bins (~7 KB)
    ///    absorb the whole block's staged scalars while hot, rather
    ///    than thrashing all seven channels' bins per instant.
    // Row indexing is `k < len` over rows the executor sized to `len`
    // and staging rows sized by the assert below; lane indexing is
    // `l in 0..RackId::COUNT` over `[_; 48]` rows; the year index is a
    // found-or-just-inserted position. mira-lint: allow(panic-reachability)
    fn ingest_block(&mut self, block: &SweepBlock) {
        let len = block.len();
        assert!(
            len <= SWEEP_BLOCK,
            "block of {len} instants exceeds the {SWEEP_BLOCK}-instant staging rows"
        );
        macro_rules! fold_bank {
            ($field:ident, $row:expr) => {{
                let mut rows =
                    WelfordRows::<{ RackId::COUNT }>::load(self.racks.iter().map(|r| &r.$field));
                for k in 0..len {
                    rows.push_row($row(k));
                }
                rows.store(self.racks.iter_mut().map(|r| &mut r.$field));
            }};
        }
        fold_bank!(power, |k: usize| &block.obs[5][k]);
        fold_bank!(utilization, |k: usize| &block.util[k]);
        fold_bank!(flow, |k: usize| &block.obs[2][k]);
        fold_bank!(inlet, |k: usize| &block.obs[3][k]);
        fold_bank!(outlet, |k: usize| &block.obs[4][k]);
        fold_bank!(ambient_temperature, |k: usize| &block.obs[0][k]);
        fold_bank!(ambient_humidity, |k: usize| &block.obs[1][k]);

        let n = convert::f64_from_usize(RackId::COUNT);
        let mut chan = [[0.0f64; SWEEP_BLOCK]; 7];
        let mut weeks = [SimTime::from_epoch_seconds(0); SWEEP_BLOCK];
        for k in 0..len {
            let t = block.times[k];
            let parts = block.civils[k];
            let util_lane = &block.util[k];
            let dc_t_lane = &block.obs[0][k];
            let dc_h_lane = &block.obs[1][k];
            let flow_lane = &block.obs[2][k];
            let inlet_lane = &block.obs[3][k];
            let outlet_lane = &block.obs[4][k];
            let power_lane = &block.obs[5][k];

            let mut power_kw = 0.0;
            let mut util = 0.0;
            let mut flow = 0.0;
            let mut inlet = 0.0;
            let mut outlet = 0.0;
            let mut dc_t = 0.0;
            let mut dc_h = 0.0;
            for l in 0..RackId::COUNT {
                self.dc_temp_all_racks.push(dc_t_lane[l]);
                self.dc_rh_all_racks.push(dc_h_lane[l]);

                power_kw += power_lane[l];
                util += util_lane[l];
                flow += flow_lane[l];
                inlet += inlet_lane[l];
                outlet += outlet_lane[l];
                dc_t += dc_t_lane[l];
                dc_h += dc_h_lane[l];
            }
            chan[0][k] = power_kw / 1000.0;
            chan[1][k] = util / n * 100.0;
            chan[2][k] = flow;
            chan[3][k] = inlet / n;
            chan[4][k] = outlet / n;
            chan[5][k] = dc_t / n;
            chan[6][k] = dc_h / n;
            weeks[k] =
                SimTime::from_epoch_seconds(t.epoch_seconds().div_euclid(7 * 86_400) * 7 * 86_400);

            // Energy accounting — the block carries the plant response
            // directly, so no snapshot round-trip is needed.
            // Chronological pushes land in the newest (last) year row.
            let year = parts.date.year();
            let idx = if matches!(self.yearly_energy.last(), Some((y, _)) if *y == year) {
                self.yearly_energy.len() - 1
            } else {
                match self.yearly_energy.iter().position(|(y, _)| *y == year) {
                    Some(i) => i,
                    None => {
                        let at = self.yearly_energy.partition_point(|(y, _)| *y < year);
                        self.yearly_energy
                            .insert(at, (year, FreeCoolingLedger::new()));
                        at
                    }
                }
            };
            // idx is a found or just-inserted position in yearly_energy.
            // mira-lint: allow(panic-reachability)
            let ledger = &mut self.yearly_energy[idx].1;
            // Qualified call: a bare `.record(..)` name-resolves against
            // `SweepSummary::record` in mira-lint's call graph, dragging a
            // spurious allocation chain into the hot-root walk.
            FreeCoolingLedger::record(ledger, &block.plants[k], self.step);
            if parts.date.month().is_free_cooling_season() {
                self.season_saved += block.plants[k]
                    .avoided_power
                    .for_hours(self.step.as_hours());
            }
        }

        for (agg, vals) in [
            (&mut self.power_mw, &chan[0]),
            (&mut self.utilization_pct, &chan[1]),
            (&mut self.flow_gpm, &chan[2]),
            (&mut self.inlet_f, &chan[3]),
            (&mut self.outlet_f, &chan[4]),
            (&mut self.dc_temp_f, &chan[5]),
            (&mut self.dc_rh, &chan[6]),
        ] {
            for k in 0..len {
                agg.push_keyed(block.civils[k], weeks[k], vals[k]);
            }
        }
    }

    /// Per-rack mean of a channel selected by `f`, in rack-index order.
    #[must_use]
    pub fn rack_means<F: Fn(&RackAggregate) -> &Welford>(&self, f: F) -> Vec<f64> {
        self.racks.iter().map(|r| f(r).mean()).collect()
    }

    fn finish_channels(&mut self) {
        self.power_mw.finish();
        self.utilization_pct.finish();
        self.flow_gpm.finish();
        self.inlet_f.finish();
        self.outlet_f.finish();
        self.dc_temp_f.finish();
        self.dc_rh.finish();
    }
}

impl Recorder for SweepSummary {
    type Output = SweepSummary;

    fn record(&mut self, step: &SweepStep) {
        self.ingest(step);
    }

    fn record_block(&mut self, block: &SweepBlock, _staging: &mut SweepStep) {
        self.ingest_block(block);
    }

    fn merge(&mut self, later: Self) {
        SweepSummary::merge(self, &later);
    }

    fn finish(mut self) -> SweepSummary {
        self.finish_channels();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::TelemetryEngine;
    use mira_ras::{CmfSchedule, RasLog};
    use mira_timeseries::Date;

    fn small_summary() -> SweepSummary {
        let schedule = CmfSchedule::generate(31);
        let log = RasLog::assemble(&schedule, 31);
        let engine = TelemetryEngine::new(31, &schedule, &log);
        crate::sweep::SweepPlan::new(
            &engine,
            SimTime::from_date(Date::new(2015, 3, 1)),
            SimTime::from_date(Date::new(2015, 5, 1)),
        )
        .step(Duration::from_hours(2))
        .summary()
        .expect("valid span")
    }

    #[test]
    fn aggregates_cover_the_span() {
        let s = small_summary();
        // 61 days x 12 samples/day.
        assert_eq!(s.power_mw.bins.overall().count(), 61 * 12);
        assert!(!s.power_mw.weekly.is_empty());
        assert!(s.racks.iter().all(|r| r.power.count() == 61 * 12));
    }

    #[test]
    fn system_levels_are_sane() {
        let s = small_summary();
        let mw = s.power_mw.bins.overall().mean();
        assert!((2.2..3.0).contains(&mw), "power {mw} MW");
        let util = s.utilization_pct.bins.overall().mean();
        assert!((70.0..92.0).contains(&util), "util {util} %");
        let flow = s.flow_gpm.bins.overall().mean();
        assert!((1200.0..1320.0).contains(&flow), "flow {flow} GPM");
        let inlet = s.inlet_f.bins.overall().mean();
        assert!((62.0..67.0).contains(&inlet), "inlet {inlet} F");
        let outlet = s.outlet_f.bins.overall().mean();
        assert!((75.0..84.0).contains(&outlet), "outlet {outlet} F");
    }

    #[test]
    fn weekly_series_is_weekly() {
        let s = small_summary();
        let times = s.weekly_power_times();
        for pair in times.windows(2) {
            assert_eq!((pair[1] - pair[0]).as_days(), 7.0);
        }
    }

    #[test]
    fn energy_ledger_accumulates() {
        let s = small_summary();
        assert_eq!(s.yearly_energy.len(), 1);
        assert_eq!(s.yearly_energy[0].0, 2015);
        let ledger = &s.yearly_energy[0].1;
        // March has free cooling; total saved energy must be positive.
        assert!(ledger.saved().value() > 0.0);
        assert!(s.season_saved.value() > 0.0);
        // April-May run chillers.
        assert!(ledger.chiller_energy().value() > 0.0);
    }

    impl SweepSummary {
        fn weekly_power_times(&self) -> Vec<SimTime> {
            self.power_mw.weekly.times().to_vec()
        }
    }
}
