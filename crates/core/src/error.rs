//! The unified `mira-core` error type.
//!
//! Every fallible public operation in this crate reports through
//! [`Error`], with the domain-specific enums ([`SweepError`],
//! [`mira_store::StoreError`]) kept as payloads so callers can still
//! match the precise cause. `From` impls let internal `?` call sites
//! and downstream wrappers convert without ceremony, and
//! [`std::error::Error::source`] exposes the underlying cause chain
//! (down to the `std::io::Error` inside a failed archive read).
//!
//! Storage faults carry structure: [`StoreError::Parse`] names the
//! offending CSV line, [`StoreError::Corrupt`] the byte offset,
//! row-group id, and channel of an undecodable columnar block.

use std::fmt;
use std::io;

use mira_store::StoreError;

use crate::sweep::SweepError;

/// Any error a `mira-core` operation can report.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A sweep could not run (bad span or step).
    Sweep(SweepError),
    /// A telemetry archive operation failed (I/O, text parse, or
    /// columnar corruption — see [`StoreError`] for the structure).
    Store(StoreError),
}

impl Error {
    /// The process exit code this error maps to — the same taxonomy the
    /// `mira-ops` CLI uses (`3` sweep, `4` store parse, `5` store I/O,
    /// `7` store corruption; usage errors are the CLI's own `2`).
    /// Long-running frontends (`mira-ops serve`) embed this in
    /// structured error replies so scripted clients branch on the same
    /// codes a batch invocation would exit with.
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        match self {
            Error::Sweep(_) => 3,
            Error::Store(StoreError::Parse { .. }) => 4,
            Error::Store(StoreError::Io(_)) => 5,
            Error::Store(StoreError::Corrupt { .. }) => 7,
        }
    }

    /// A short stable label for the error class (`"sweep"`,
    /// `"store-parse"`, `"store-io"`, `"store-corrupt"`), paired with
    /// [`Error::exit_code`] in structured replies.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Error::Sweep(_) => "sweep",
            Error::Store(StoreError::Parse { .. }) => "store-parse",
            Error::Store(StoreError::Io(_)) => "store-io",
            Error::Store(StoreError::Corrupt { .. }) => "store-corrupt",
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Sweep(e) => e.fmt(f),
            Error::Store(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Sweep(e) => Some(e),
            Error::Store(e) => Some(e),
        }
    }
}

impl From<SweepError> for Error {
    fn from(e: SweepError) -> Self {
        Error::Sweep(e)
    }
}

impl From<StoreError> for Error {
    fn from(e: StoreError) -> Self {
        Error::Store(e)
    }
}

#[allow(deprecated)]
impl From<crate::archive::ArchiveError> for Error {
    fn from(e: crate::archive::ArchiveError) -> Self {
        Error::Store(e.into())
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Store(StoreError::Io(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_delegates_to_the_cause() {
        let e = Error::from(SweepError::EmptySpan);
        assert_eq!(e.to_string(), SweepError::EmptySpan.to_string());
        let e = Error::from(StoreError::Parse {
            line: 3,
            message: "bad number".to_string(),
        });
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn source_chains_to_the_domain_error_and_below() {
        let e = Error::from(SweepError::NonPositiveStep);
        let cause = e.source().expect("sweep cause");
        assert_eq!(cause.to_string(), "sweep step must be positive");

        let io = io::Error::new(io::ErrorKind::BrokenPipe, "pipe closed");
        let e = Error::from(io);
        let store = e.source().expect("store cause");
        let inner = store.source().expect("io cause");
        assert!(inner.to_string().contains("pipe closed"));
    }

    #[test]
    fn exit_codes_and_kinds_follow_the_cause() {
        let sweep = Error::from(SweepError::EmptySpan);
        assert_eq!((sweep.exit_code(), sweep.kind()), (3, "sweep"));
        let parse = Error::from(StoreError::Parse {
            line: 1,
            message: "bad".to_string(),
        });
        assert_eq!((parse.exit_code(), parse.kind()), (4, "store-parse"));
        let io = Error::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert_eq!((io.exit_code(), io.kind()), (5, "store-io"));
        let corrupt = Error::from(StoreError::corrupt(16, "bad magic"));
        assert_eq!((corrupt.exit_code(), corrupt.kind()), (7, "store-corrupt"));
    }

    #[test]
    fn io_errors_land_under_store() {
        let e = Error::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(matches!(e, Error::Store(StoreError::Io(_))));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_archive_error_still_converts() {
        let e = Error::from(crate::archive::ArchiveError::Parse {
            line: 9,
            message: "legacy".to_string(),
        });
        assert_eq!((e.exit_code(), e.kind()), (4, "store-parse"));
        assert!(e.to_string().contains("line 9"));
    }
}
