//! The unified `mira-core` error type.
//!
//! Every fallible public operation in this crate reports through
//! [`Error`], with the domain-specific enums ([`SweepError`],
//! [`ArchiveError`]) kept as payloads so callers can still match the
//! precise cause. `From` impls let internal `?` call sites and
//! downstream wrappers convert without ceremony, and
//! [`std::error::Error::source`] exposes the underlying cause chain
//! (down to the `std::io::Error` inside a failed archive read).

use std::fmt;
use std::io;

use crate::archive::ArchiveError;
use crate::sweep::SweepError;

/// Any error a `mira-core` operation can report.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A sweep could not run (bad span or step).
    Sweep(SweepError),
    /// Archive I/O or parsing failed.
    Archive(ArchiveError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Sweep(e) => e.fmt(f),
            Error::Archive(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Sweep(e) => Some(e),
            Error::Archive(e) => Some(e),
        }
    }
}

impl From<SweepError> for Error {
    fn from(e: SweepError) -> Self {
        Error::Sweep(e)
    }
}

impl From<ArchiveError> for Error {
    fn from(e: ArchiveError) -> Self {
        Error::Archive(e)
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Archive(ArchiveError::Io(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_delegates_to_the_cause() {
        let e = Error::from(SweepError::EmptySpan);
        assert_eq!(e.to_string(), SweepError::EmptySpan.to_string());
        let e = Error::from(ArchiveError::Parse {
            line: 3,
            message: "bad number".to_string(),
        });
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn source_chains_to_the_domain_error_and_below() {
        let e = Error::from(SweepError::NonPositiveStep);
        let cause = e.source().expect("sweep cause");
        assert_eq!(cause.to_string(), "sweep step must be positive");

        let io = io::Error::new(io::ErrorKind::BrokenPipe, "pipe closed");
        let e = Error::from(io);
        let archive = e.source().expect("archive cause");
        let inner = archive.source().expect("io cause");
        assert!(inner.to_string().contains("pipe closed"));
    }

    #[test]
    fn io_errors_land_under_archive() {
        let e = Error::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(matches!(e, Error::Archive(ArchiveError::Io(_))));
    }
}
