//! Failure analyses: Figs. 10, 12, 14 and 15.

use serde::{Deserialize, Serialize};

use mira_facility::RackId;
use mira_predictor::TelemetryProvider;
use mira_ras::FailureKind;
use mira_timeseries::{Duration, SimTime};
use mira_units::convert;

use crate::simulation::Simulation;

/// Fig. 10: the six-year CMF timeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10 {
    /// Counted CMFs per calendar year.
    pub by_year: Vec<(i32, u32)>,
    /// Total counted CMFs (paper: 361).
    pub total: u32,
    /// Share of failures in 2016 (paper: ≈40 %).
    pub share_2016: f64,
    /// Longest failure-free gap in days (paper: > 2 years after the 2016
    /// burst).
    pub longest_gap_days: f64,
}

/// Fig. 10.
#[must_use]
pub fn fig10_cmf_timeline(sim: &Simulation) -> Fig10 {
    let by_year = sim.ras_log().cmf_by_year(2014..=2019);
    let total: u32 = by_year.iter().map(|(_, n)| n).sum();
    let y2016 = by_year
        .iter()
        .find(|(y, _)| *y == 2016)
        .map_or(0, |(_, n)| *n);

    let mut times: Vec<SimTime> = sim.ras_log().counted_cmfs().map(|e| e.time).collect();
    times.sort();
    let longest_gap_days = times
        .windows(2)
        // windows(2) pairs have exactly two elements.
        // mira-lint: allow(panic-reachability)
        .map(|w| (w[1] - w[0]).as_days())
        .fold(0.0, f64::max);

    Fig10 {
        share_2016: f64::from(y2016) / f64::from(total.max(1)),
        total,
        by_year,
        longest_gap_days,
    }
}

/// One lead-time point of the Fig. 12 pre-failure telemetry profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeadupPoint {
    /// Lead time before the failure.
    pub lead: Duration,
    /// Mean flow relative to the healthy baseline.
    pub flow_rel: f64,
    /// Mean inlet temperature relative to baseline.
    pub inlet_rel: f64,
    /// Mean outlet temperature relative to baseline.
    pub outlet_rel: f64,
}

/// Fig. 12: the averaged telemetry lead-up across CMFs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig12 {
    /// Profile points, longest lead first.
    pub points: Vec<LeadupPoint>,
    /// Number of failures averaged.
    pub events: usize,
}

/// Fig. 12: averages rack telemetry at each lead time over up to
/// `max_events` CMFs, relative to a healthy baseline 24 h before each
/// failure.
#[must_use]
pub fn fig12_cmf_leadup(sim: &Simulation, leads: &[Duration], max_events: usize) -> Fig12 {
    let telemetry = sim.telemetry();
    let ground_truth = sim.cmf_ground_truth();
    let events: Vec<&(SimTime, RackId)> = ground_truth.iter().take(max_events).collect();

    let mut points = Vec::with_capacity(leads.len());
    for &lead in leads {
        let mut flow = 0.0;
        let mut inlet = 0.0;
        let mut outlet = 0.0;
        let mut n = 0.0;
        for &(cmf_time, rack) in events.iter().copied() {
            let baseline = telemetry.sample(rack, cmf_time - Duration::from_hours(24));
            if !baseline.flow.value().is_finite() || baseline.flow.value() < 1.0 {
                continue;
            }
            let s = telemetry.sample(rack, cmf_time - lead);
            flow += s.flow.value() / baseline.flow.value();
            inlet += s.inlet.value() / baseline.inlet.value();
            outlet += s.outlet.value() / baseline.outlet.value();
            n += 1.0;
        }
        if n > 0.0 {
            points.push(LeadupPoint {
                lead,
                flow_rel: flow / n,
                inlet_rel: inlet / n,
                outlet_rel: outlet / n,
            });
        }
    }
    Fig12 {
        events: events.len(),
        points,
    }
}

/// Fig. 14: the post-CMF failure-rate decay and type mix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig14 {
    /// `(window hours, mean non-CMF failures per hour within window)`.
    pub rate_windows: Vec<(f64, f64)>,
    /// Rate within 6 h over rate within 3 h (paper: < 0.75).
    pub ratio_6h_over_3h: f64,
    /// Rate within 48 h over rate within 3 h (paper: ≈ 0.10).
    pub ratio_48h_over_3h: f64,
    /// Share of each non-CMF failure kind (paper: AC-DC ≈ 50 %).
    pub type_mix: Vec<(FailureKind, f64)>,
}

/// Fig. 14.
#[must_use]
// rate_windows gets one row per element of the five-entry windows_h;
// the literal indices stay below that. mira-lint: allow(panic-reachability)
pub fn fig14_post_cmf(sim: &Simulation) -> Fig14 {
    let windows_h = [3.0, 6.0, 12.0, 24.0, 48.0];
    let incidents = sim.schedule().incidents();
    let mut rate_windows = Vec::with_capacity(windows_h.len());
    for &w in &windows_h {
        let window = Duration::from_seconds(convert::i64_from_f64_floor(w * 3600.0));
        let total: usize = incidents
            .iter()
            .map(|i| sim.ras_log().non_cmfs_within(i.time, window))
            .sum();
        let rate = convert::f64_from_usize(total) / convert::f64_from_usize(incidents.len()) / w;
        rate_windows.push((w, rate));
    }
    let rate3 = rate_windows[0].1.max(1e-12);
    Fig14 {
        ratio_6h_over_3h: rate_windows[1].1 / rate3,
        ratio_48h_over_3h: rate_windows[4].1 / rate3,
        type_mix: sim.ras_log().non_cmf_type_mix(),
        rate_windows,
    }
}

/// One Fig. 15 storm example.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig15StormExample {
    /// When the storm started.
    pub time: SimTime,
    /// The epicenter rack.
    pub epicenter: RackId,
    /// Racks shut down by the storm itself.
    pub cascade: Vec<RackId>,
    /// Non-CMF failures in the following 48 h: `(rack, kind, hours
    /// after)`.
    pub followons: Vec<(RackId, FailureKind, f64)>,
    /// Mean grid distance of follow-on failures from the epicenter.
    pub mean_followon_distance: f64,
}

/// Fig. 15: the `n` largest storms with their (spatially scattered)
/// follow-on failures.
#[must_use]
pub fn fig15_storm_examples(sim: &Simulation, n: usize) -> Vec<Fig15StormExample> {
    let mut incidents: Vec<_> = sim.schedule().incidents().iter().collect();
    incidents.sort_by_key(|i| std::cmp::Reverse(i.multiplicity()));

    incidents
        .into_iter()
        .take(n)
        .map(|incident| {
            let followons: Vec<(RackId, FailureKind, f64)> = sim
                .ras_log()
                .counted_non_cmfs()
                .filter(|e| {
                    e.time >= incident.time && e.time - incident.time <= Duration::from_hours(48)
                })
                .map(|e| (e.rack, e.kind, (e.time - incident.time).as_hours()))
                .collect();
            let mean_followon_distance = if followons.is_empty() {
                0.0
            } else {
                followons
                    .iter()
                    .map(|(r, _, _)| f64::from(r.grid_distance(incident.epicenter)))
                    .sum::<f64>()
                    / convert::f64_from_usize(followons.len())
            };
            Fig15StormExample {
                time: incident.time,
                epicenter: incident.epicenter,
                cascade: incident.affected.clone(),
                followons,
                mean_followon_distance,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::SimConfig;

    fn sim() -> Simulation {
        Simulation::new(SimConfig::with_seed(43))
    }

    #[test]
    fn fig10_anchors() {
        let fig10 = fig10_cmf_timeline(&sim());
        assert_eq!(fig10.total, 361);
        assert!(
            (0.38..0.42).contains(&fig10.share_2016),
            "{}",
            fig10.share_2016
        );
        assert!(fig10.longest_gap_days > 700.0, "{}", fig10.longest_gap_days);
        // No bathtub: first and last years are not the max.
        let max_year = fig10
            .by_year
            .iter()
            .max_by_key(|(_, n)| *n)
            .map(|(y, _)| *y)
            .unwrap();
        assert_eq!(max_year, 2016);
    }

    #[test]
    fn fig12_shape() {
        let s = sim();
        let leads = [
            Duration::from_hours(6),
            Duration::from_hours(4),
            Duration::from_hours(3),
            Duration::from_hours(2),
            Duration::from_minutes(30),
            Duration::ZERO,
        ];
        let fig12 = fig12_cmf_leadup(&s, &leads, 40);
        assert_eq!(fig12.points.len(), 6);
        let at = |h: f64| {
            fig12
                .points
                .iter()
                .find(|p| (p.lead.as_hours() - h).abs() < 1e-9)
                .unwrap()
        };
        // Inlet sag ≈7 % in the trough, recovered at the event.
        assert!(at(2.0).inlet_rel < 0.95, "trough {}", at(2.0).inlet_rel);
        assert!(at(0.0).inlet_rel > 0.97, "recovery {}", at(0.0).inlet_rel);
        // Outlet ≈5 % down three hours out.
        assert!(
            (0.93..0.97).contains(&at(3.0).outlet_rel),
            "outlet {}",
            at(3.0).outlet_rel
        );
        // Flow stable at 2 h, collapsing at the event.
        assert!(
            (0.97..1.03).contains(&at(2.0).flow_rel),
            "{}",
            at(2.0).flow_rel
        );
        assert!(at(0.0).flow_rel < 0.8, "collapse {}", at(0.0).flow_rel);
    }

    #[test]
    fn fig14_decay_and_mix() {
        let fig14 = fig14_post_cmf(&sim());
        assert!(fig14.ratio_6h_over_3h < 0.85, "{}", fig14.ratio_6h_over_3h);
        assert!(
            (0.05..0.2).contains(&fig14.ratio_48h_over_3h),
            "{}",
            fig14.ratio_48h_over_3h
        );
        // Rates decay monotonically with window size.
        for pair in fig14.rate_windows.windows(2) {
            assert!(pair[1].1 <= pair[0].1 + 1e-12);
        }
        let ac_dc = fig14
            .type_mix
            .iter()
            .find(|(k, _)| *k == FailureKind::AcToDcPower)
            .unwrap()
            .1;
        assert!((0.4..0.6).contains(&ac_dc), "AC-DC {ac_dc}");
    }

    #[test]
    fn fig15_storms_scatter() {
        let examples = fig15_storm_examples(&sim(), 3);
        assert_eq!(examples.len(), 3);
        for ex in &examples {
            assert!(ex.cascade.len() >= 2, "picked the largest storms");
            assert!(ex.cascade.contains(&ex.epicenter));
        }
        // At least one example has distant follow-ons.
        assert!(
            examples.iter().any(|e| e.mean_followon_distance > 4.0),
            "follow-ons should scatter"
        );
    }
}
