//! Temporal analyses: Figs. 2–5 and 8, plus the free-cooling report.

use serde::{Deserialize, Serialize};

use mira_timeseries::{
    Date, LinearFit, MonthProfile, SimTime, Weekday, WeekdayProfile, YearProfile,
};
use mira_units::{convert, KilowattHours};

use crate::summary::{ChannelAggregate, SweepSummary};

/// Fig. 2: six-year power and utilization trends with linear fits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2 {
    /// Yearly system-power rows (MW).
    pub power_by_year: Vec<YearProfile>,
    /// Yearly utilization rows (percent of nodes).
    pub utilization_by_year: Vec<YearProfile>,
    /// OLS trend of weekly power means, slope in MW/day.
    pub power_fit: Option<LinearFit>,
    /// OLS trend of weekly utilization means, slope in %/day.
    pub utilization_fit: Option<LinearFit>,
}

/// Fig. 2.
#[must_use]
pub fn fig2_yearly_trends(summary: &SweepSummary) -> Fig2 {
    Fig2 {
        power_by_year: summary.power_mw.bins.yearly(),
        utilization_by_year: summary.utilization_pct.bins.yearly(),
        power_fit: summary.power_mw.weekly.trend_per_day(),
        utilization_fit: summary.utilization_pct.weekly.trend_per_day(),
    }
}

/// Fig. 3: coolant flow and temperature stability, with the Theta step.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3 {
    /// Yearly loop-flow rows (GPM).
    pub flow_by_year: Vec<YearProfile>,
    /// Yearly inlet-temperature rows (F).
    pub inlet_by_year: Vec<YearProfile>,
    /// Yearly outlet-temperature rows (F).
    pub outlet_by_year: Vec<YearProfile>,
    /// Overall standard deviation of loop flow (paper: 41 GPM).
    pub flow_stddev: f64,
    /// Overall standard deviation of inlet temperature (paper: 0.61 F).
    pub inlet_stddev: f64,
    /// Overall standard deviation of outlet temperature (paper: 0.71 F).
    pub outlet_stddev: f64,
    /// Mean loop flow before Theta joined (paper: ≈1,250 GPM).
    pub flow_before_theta: f64,
    /// Mean loop flow after Theta joined (paper: ≈1,300 GPM).
    pub flow_after_theta: f64,
}

/// Fig. 3.
#[must_use]
pub fn fig3_coolant_trends(summary: &SweepSummary) -> Fig3 {
    let theta = SimTime::from_date(Date::new(2016, 7, 1));
    let split = |agg: &ChannelAggregate| {
        let before = agg.weekly.slice(summary.span.0, theta);
        let after = agg.weekly.slice(theta, summary.span.1);
        (before.mean(), after.mean())
    };
    let (flow_before_theta, flow_after_theta) = split(&summary.flow_gpm);
    Fig3 {
        flow_by_year: summary.flow_gpm.bins.yearly(),
        inlet_by_year: summary.inlet_f.bins.yearly(),
        outlet_by_year: summary.outlet_f.bins.yearly(),
        flow_stddev: summary.flow_gpm.bins.overall().stddev(),
        inlet_stddev: summary.inlet_f.bins.overall().stddev(),
        outlet_stddev: summary.outlet_f.bins.overall().stddev(),
        flow_before_theta,
        flow_after_theta,
    }
}

/// Fig. 4: month-of-year profiles of the five system channels.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4 {
    /// Monthly power rows (MW).
    pub power: Vec<MonthProfile>,
    /// Monthly utilization rows (%).
    pub utilization: Vec<MonthProfile>,
    /// Monthly flow rows (GPM).
    pub flow: Vec<MonthProfile>,
    /// Monthly inlet rows (F).
    pub inlet: Vec<MonthProfile>,
    /// Monthly outlet rows (F).
    pub outlet: Vec<MonthProfile>,
    /// Relative change of each month's flow median from January.
    pub flow_change_from_january: Option<Vec<f64>>,
    /// Relative change of each month's inlet median from January.
    pub inlet_change_from_january: Option<Vec<f64>>,
    /// Relative change of each month's outlet median from January.
    pub outlet_change_from_january: Option<Vec<f64>>,
}

/// Fig. 4.
#[must_use]
pub fn fig4_monthly_profile(summary: &SweepSummary) -> Fig4 {
    Fig4 {
        power: summary.power_mw.bins.monthly(),
        utilization: summary.utilization_pct.bins.monthly(),
        flow: summary.flow_gpm.bins.monthly(),
        inlet: summary.inlet_f.bins.monthly(),
        outlet: summary.outlet_f.bins.monthly(),
        flow_change_from_january: summary.flow_gpm.bins.monthly_change_from_january(),
        inlet_change_from_january: summary.inlet_f.bins.monthly_change_from_january(),
        outlet_change_from_january: summary.outlet_f.bins.monthly_change_from_january(),
    }
}

/// Fig. 5: day-of-week profiles and the Monday-maintenance effect.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5 {
    /// Per-weekday power rows (MW).
    pub power: Vec<WeekdayProfile>,
    /// Per-weekday utilization rows (%).
    pub utilization: Vec<WeekdayProfile>,
    /// Per-weekday flow rows (GPM).
    pub flow: Vec<WeekdayProfile>,
    /// Per-weekday inlet rows (F).
    pub inlet: Vec<WeekdayProfile>,
    /// Per-weekday outlet rows (F).
    pub outlet: Vec<WeekdayProfile>,
    /// Non-Monday power uplift (paper: ≈6 %).
    pub power_uplift: f64,
    /// Non-Monday utilization uplift (paper: ≈1.5 %).
    pub utilization_uplift: f64,
    /// Non-Monday outlet uplift (paper: ≈2 %).
    pub outlet_uplift: f64,
    /// Non-Monday flow uplift (paper: ≈0).
    pub flow_uplift: f64,
    /// Non-Monday inlet uplift (paper: ≈0).
    pub inlet_uplift: f64,
}

/// Mean-based non-Monday uplift over weekday rows.
fn mean_uplift(rows: &[WeekdayProfile]) -> f64 {
    let Some(monday) = rows.iter().find(|r| r.weekday == Weekday::Monday) else {
        return 0.0;
    };
    // Exact-zero divide guard. mira-lint: allow(nan-unsafe-compare)
    if monday.count == 0 || monday.mean == 0.0 {
        return 0.0;
    }
    let mut num = 0.0;
    let mut den = 0.0;
    for r in rows.iter().filter(|r| r.weekday != Weekday::Monday) {
        num += r.mean * convert::f64_from_u64(r.count);
        den += convert::f64_from_u64(r.count);
    }
    // Exact-zero divide guard. mira-lint: allow(nan-unsafe-compare)
    if den == 0.0 {
        return 0.0;
    }
    num / den / monday.mean - 1.0
}

/// Fig. 5.
#[must_use]
pub fn fig5_weekday_profile(summary: &SweepSummary) -> Fig5 {
    let power = summary.power_mw.bins.by_weekday();
    let utilization = summary.utilization_pct.bins.by_weekday();
    let flow = summary.flow_gpm.bins.by_weekday();
    let inlet = summary.inlet_f.bins.by_weekday();
    let outlet = summary.outlet_f.bins.by_weekday();
    Fig5 {
        power_uplift: mean_uplift(&power),
        utilization_uplift: mean_uplift(&utilization),
        outlet_uplift: mean_uplift(&outlet),
        flow_uplift: mean_uplift(&flow),
        inlet_uplift: mean_uplift(&inlet),
        power,
        utilization,
        flow,
        inlet,
        outlet,
    }
}

/// Fig. 8: ambient data-center temperature and humidity variability.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8 {
    /// Overall temperature standard deviation (paper: 2.48 F).
    pub temperature_stddev: f64,
    /// Temperature range observed (paper: 76–90 F).
    pub temperature_range: (f64, f64),
    /// Overall humidity standard deviation (paper: 3.66 RH).
    pub humidity_stddev: f64,
    /// Humidity range observed (paper: 28–37 RH).
    pub humidity_range: (f64, f64),
    /// Monthly humidity rows — the summer bulge.
    pub humidity_monthly: Vec<MonthProfile>,
    /// Monthly temperature rows.
    pub temperature_monthly: Vec<MonthProfile>,
}

/// Fig. 8.
#[must_use]
pub fn fig8_ambient_trends(summary: &SweepSummary) -> Fig8 {
    // Fig. 8's variability is over the full rack population, so the
    // pooled per-rack statistics (spatial + temporal) are the right
    // base; the monthly profiles use the room-level series.
    let t = &summary.dc_temp_all_racks;
    let h = &summary.dc_rh_all_racks;
    // Ranges describe the plotted room-level series; sigmas the pooled
    // rack population.
    let t_room = summary.dc_temp_f.bins.overall();
    let h_room = summary.dc_rh.bins.overall();
    Fig8 {
        temperature_stddev: t.stddev(),
        temperature_range: (t_room.min(), t_room.max()),
        humidity_stddev: h.stddev(),
        humidity_range: (h_room.min(), h_room.max()),
        humidity_monthly: summary.dc_rh.bins.monthly(),
        temperature_monthly: summary.dc_temp_f.bins.monthly(),
    }
}

/// The waterside-economizer savings report (Sec. II's 17,820 kWh/day and
/// 2,174,040 kWh/season numbers).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FreeCoolingReport {
    /// Economizer savings per calendar year.
    pub saved_by_year: Vec<(i32, KilowattHours)>,
    /// Chiller energy actually spent per year.
    pub chiller_by_year: Vec<(i32, KilowattHours)>,
    /// Savings accumulated during December–March months.
    pub season_saved: KilowattHours,
    /// Total savings over the sweep.
    pub total_saved: KilowattHours,
}

/// Free-cooling energy accounting over a sweep.
#[must_use]
pub fn free_cooling_report(summary: &SweepSummary) -> FreeCoolingReport {
    let saved_by_year: Vec<(i32, KilowattHours)> = summary
        .yearly_energy
        .iter()
        .map(|(y, l)| (*y, l.saved()))
        .collect();
    let chiller_by_year = summary
        .yearly_energy
        .iter()
        .map(|(y, l)| (*y, l.chiller_energy()))
        .collect();
    let total_saved = saved_by_year
        .iter()
        .fold(KilowattHours::new(0.0), |acc, (_, s)| acc + *s);
    FreeCoolingReport {
        saved_by_year,
        chiller_by_year,
        season_saved: summary.season_saved,
        total_saved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::{SimConfig, Simulation};
    use mira_timeseries::{Duration, Month};

    fn year_summary() -> SweepSummary {
        // One full year at 3 h steps: fast but seasonally complete.
        let sim = Simulation::new(SimConfig::with_seed(41));
        sim.summarize(
            SimTime::from_date(Date::new(2015, 1, 1))..SimTime::from_date(Date::new(2016, 1, 1)),
            Duration::from_hours(3),
        )
        .expect("valid span")
    }

    #[test]
    fn fig4_shapes_hold_within_a_year() {
        let s = year_summary();
        let fig4 = fig4_monthly_profile(&s);
        // December power above May power.
        let power = |m: Month| fig4.power.iter().find(|r| r.month == m).unwrap().median;
        assert!(power(Month::December) > power(Month::May));
        // Inlet warmer in free-cooling months.
        let inlet = |m: Month| fig4.inlet.iter().find(|r| r.month == m).unwrap().median;
        assert!(inlet(Month::January) > inlet(Month::August));
        // Flow/inlet/outlet stay within ±2.5 % of January.
        for changes in [
            fig4.flow_change_from_january.as_ref().unwrap(),
            fig4.inlet_change_from_january.as_ref().unwrap(),
            fig4.outlet_change_from_january.as_ref().unwrap(),
        ] {
            assert_eq!(changes.len(), 12);
            assert!(changes.iter().all(|c| c.abs() < 0.025), "{changes:?}");
        }
    }

    #[test]
    fn fig5_monday_effect() {
        let s = year_summary();
        let fig5 = fig5_weekday_profile(&s);
        assert!(
            (0.02..0.12).contains(&fig5.power_uplift),
            "power uplift {}",
            fig5.power_uplift
        );
        assert!(
            (0.002..0.04).contains(&fig5.utilization_uplift),
            "util uplift {}",
            fig5.utilization_uplift
        );
        assert!(
            fig5.power_uplift > fig5.utilization_uplift * 2.0,
            "power dips harder than utilization"
        );
        assert!(fig5.flow_uplift.abs() < 0.01);
        assert!(fig5.inlet_uplift.abs() < 0.01);
        assert!(fig5.outlet_uplift > 0.0);
    }

    #[test]
    fn fig8_bands() {
        let s = year_summary();
        let fig8 = fig8_ambient_trends(&s);
        assert!((1.0..4.0).contains(&fig8.temperature_stddev));
        assert!((1.5..5.0).contains(&fig8.humidity_stddev));
        let aug = fig8
            .humidity_monthly
            .iter()
            .find(|r| r.month == Month::August)
            .unwrap()
            .median;
        let feb = fig8
            .humidity_monthly
            .iter()
            .find(|r| r.month == Month::February)
            .unwrap()
            .median;
        assert!(aug > feb + 2.0, "summer humidity {aug} vs winter {feb}");
    }

    #[test]
    fn free_cooling_saves_in_winter() {
        let s = year_summary();
        let report = free_cooling_report(&s);
        assert!(report.season_saved.value() > 0.0);
        assert!(report.total_saved.value() >= report.season_saved.value() * 0.8);
        assert_eq!(report.saved_by_year.len(), 1);
        // Annual economizer savings should be order-of-magnitude of the
        // paper's seasonal number (hundreds of thousands of kWh).
        let annual = report.saved_by_year[0].1.value();
        assert!(annual > 1.0e5, "annual saving {annual} kWh");
        assert!(annual < 5.0e6, "annual saving {annual} kWh");
    }
}
