//! Spatial (rack-level) analyses: Figs. 6, 7, 9 and 11.

use serde::{Deserialize, Serialize};

use mira_facility::RackId;
use mira_timeseries::spearman;
use mira_units::convert;

use crate::simulation::Simulation;
use crate::summary::SweepSummary;

fn spread(values: &[f64]) -> f64 {
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if min <= 0.0 {
        0.0
    } else {
        (max - min) / min
    }
}

fn argmax(values: &[f64]) -> RackId {
    let idx = values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map_or(0, |(i, _)| i);
    RackId::from_index(idx)
}

fn argmin(values: &[f64]) -> RackId {
    let idx = values
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map_or(0, |(i, _)| i);
    RackId::from_index(idx)
}

/// Fig. 6: rack-level power and utilization.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6 {
    /// Mean power per rack (kW), rack-index order.
    pub power_kw: Vec<f64>,
    /// Mean utilization per rack (fraction), rack-index order.
    pub utilization: Vec<f64>,
    /// Relative power spread across racks (paper: up to 15 %).
    pub power_spread: f64,
    /// Rack with the highest mean power (paper: `(0, D)`).
    pub power_leader: RackId,
    /// Rack with the highest mean utilization (paper: `(0, A)`).
    pub utilization_leader: RackId,
    /// Rack with the lowest mean utilization (paper: `(2, D)`).
    pub utilization_floor: RackId,
    /// Rank correlation between rack power and utilization (paper:
    /// 0.45).
    pub power_utilization_correlation: f64,
    /// Mean utilization per row.
    pub row_utilization: [f64; 3],
}

/// Fig. 6.
#[must_use]
// RackId::row() < 3 by contract, matching the fixed [f64; 3] row bins.
// mira-lint: allow(panic-reachability)
pub fn fig6_rack_power_util(summary: &SweepSummary) -> Fig6 {
    let power_kw = summary.rack_means(|r| &r.power);
    let utilization = summary.rack_means(|r| &r.utilization);
    let mut row_utilization = [0.0; 3];
    for rack in RackId::all() {
        row_utilization[usize::from(rack.row())] += utilization[rack.index()] / 16.0;
    }
    Fig6 {
        power_spread: spread(&power_kw),
        power_leader: argmax(&power_kw),
        utilization_leader: argmax(&utilization),
        utilization_floor: argmin(&utilization),
        power_utilization_correlation: spearman(&power_kw, &utilization).unwrap_or(0.0),
        row_utilization,
        power_kw,
        utilization,
    }
}

/// Fig. 7: rack-level coolant telemetry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7 {
    /// Mean flow per rack (GPM).
    pub flow_gpm: Vec<f64>,
    /// Mean inlet temperature per rack (F).
    pub inlet_f: Vec<f64>,
    /// Mean outlet temperature per rack (F).
    pub outlet_f: Vec<f64>,
    /// Relative flow spread (paper: up to 11 %).
    pub flow_spread: f64,
    /// Relative inlet spread (paper: ≈1 %).
    pub inlet_spread: f64,
    /// Relative outlet spread (paper: ≈3 %).
    pub outlet_spread: f64,
}

/// Fig. 7.
#[must_use]
pub fn fig7_rack_coolant(summary: &SweepSummary) -> Fig7 {
    let flow_gpm = summary.rack_means(|r| &r.flow);
    let inlet_f = summary.rack_means(|r| &r.inlet);
    let outlet_f = summary.rack_means(|r| &r.outlet);
    Fig7 {
        flow_spread: spread(&flow_gpm),
        inlet_spread: spread(&inlet_f),
        outlet_spread: spread(&outlet_f),
        flow_gpm,
        inlet_f,
        outlet_f,
    }
}

/// Fig. 9: rack-level ambient temperature and humidity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9 {
    /// Mean ambient temperature per rack (F).
    pub temperature_f: Vec<f64>,
    /// Mean ambient humidity per rack (%RH).
    pub humidity_rh: Vec<f64>,
    /// Relative temperature spread (paper: up to 11 %).
    pub temperature_spread: f64,
    /// Relative humidity spread (paper: up to 36 %).
    pub humidity_spread: f64,
    /// The humidity hotspot rack (paper: `(1, 8)`).
    pub humidity_hotspot: RackId,
    /// Mean humidity of row-end racks (distance < 4) vs row-center
    /// racks: ends run drier.
    pub end_vs_center_humidity: (f64, f64),
}

/// Fig. 9.
#[must_use]
pub fn fig9_rack_ambient(summary: &SweepSummary) -> Fig9 {
    let temperature_f = summary.rack_means(|r| &r.ambient_temperature);
    let humidity_rh = summary.rack_means(|r| &r.ambient_humidity);

    let mut ends = Vec::new();
    let mut centers = Vec::new();
    for rack in RackId::all() {
        if rack.distance_from_row_end() < 4 {
            ends.push(humidity_rh[rack.index()]);
        } else {
            centers.push(humidity_rh[rack.index()]);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / convert::f64_from_usize(v.len());

    Fig9 {
        temperature_spread: spread(&temperature_f),
        humidity_spread: spread(&humidity_rh),
        humidity_hotspot: argmax(&humidity_rh),
        end_vs_center_humidity: (mean(&ends), mean(&centers)),
        temperature_f,
        humidity_rh,
    }
}

/// Fig. 11: CMFs per rack and their (lack of) correlation with the usual
/// suspects.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11 {
    /// Counted CMFs per rack, rack-index order.
    pub counts: Vec<u32>,
    /// Rack with the most CMFs (paper: `(1, 8)` with 14).
    pub max_rack: RackId,
    /// Its count.
    pub max_count: u32,
    /// Rack with the fewest CMFs (paper: `(2, 7)` with 5).
    pub min_rack: RackId,
    /// Its count.
    pub min_count: u32,
    /// Rank correlation with rack utilization (paper: −0.21).
    pub correlation_utilization: f64,
    /// Rank correlation with rack outlet temperature (paper: −0.06).
    pub correlation_outlet: f64,
    /// Rank correlation with rack humidity (paper: 0.06).
    pub correlation_humidity: f64,
    /// Permutation p-values for the three correlations (utilization,
    /// outlet, humidity): over 48 racks, none of these weak
    /// correlations should clear conventional significance — the
    /// statistical form of "none of these markers can be used to
    /// predict where CMFs occur".
    pub permutation_p: [f64; 3],
}

/// Fig. 11.
#[must_use]
pub fn fig11_cmf_by_rack(sim: &Simulation, summary: &SweepSummary) -> Fig11 {
    let counts_arr = sim.ras_log().cmf_by_rack();
    let counts: Vec<u32> = counts_arr.to_vec();
    let counts_f: Vec<f64> = counts.iter().map(|&c| f64::from(c)).collect();

    let utilization = summary.rack_means(|r| &r.utilization);
    let outlet = summary.rack_means(|r| &r.outlet);
    let humidity = summary.rack_means(|r| &r.ambient_humidity);

    let max_rack = argmax(&counts_f);
    let min_rack = argmin(&counts_f);
    let pvalue = |other: &[f64], seed: u64| {
        mira_timeseries::spearman_permutation_pvalue(&counts_f, other, 500, seed).unwrap_or(1.0)
    };
    Fig11 {
        max_count: counts[max_rack.index()],
        min_count: counts[min_rack.index()],
        max_rack,
        min_rack,
        correlation_utilization: spearman(&counts_f, &utilization).unwrap_or(0.0),
        correlation_outlet: spearman(&counts_f, &outlet).unwrap_or(0.0),
        correlation_humidity: spearman(&counts_f, &humidity).unwrap_or(0.0),
        permutation_p: [
            pvalue(&utilization, 11),
            pvalue(&outlet, 12),
            pvalue(&humidity, 13),
        ],
        counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::SimConfig;
    use mira_timeseries::{Date, Duration, SimTime};

    fn sim_and_summary() -> (Simulation, SweepSummary) {
        let sim = Simulation::new(SimConfig::with_seed(42));
        // Spatial structure is time-invariant: three months at 4 h steps
        // is plenty for rack means.
        let summary = sim
            .summarize(
                SimTime::from_date(Date::new(2015, 2, 1))
                    ..SimTime::from_date(Date::new(2015, 5, 1)),
                Duration::from_hours(4),
            )
            .expect("valid span");
        (sim, summary)
    }

    #[test]
    fn fig6_anchors() {
        let (_, summary) = sim_and_summary();
        let fig6 = fig6_rack_power_util(&summary);
        assert_eq!(fig6.power_leader, RackId::new(0, 13), "(0, D) leads power");
        assert_eq!(
            fig6.utilization_leader,
            RackId::new(0, 10),
            "(0, A) leads utilization"
        );
        assert_eq!(fig6.utilization_floor, RackId::new(2, 13), "(2, D) floor");
        assert!(
            (0.05..0.20).contains(&fig6.power_spread),
            "power spread {}",
            fig6.power_spread
        );
        assert!(
            (0.25..0.65).contains(&fig6.power_utilization_correlation),
            "corr {}",
            fig6.power_utilization_correlation
        );
        assert!(fig6.row_utilization[0] > fig6.row_utilization[1]);
        assert!(fig6.row_utilization[0] > fig6.row_utilization[2]);
    }

    #[test]
    fn fig7_spreads() {
        let (_, summary) = sim_and_summary();
        let fig7 = fig7_rack_coolant(&summary);
        assert!(
            (0.06..0.16).contains(&fig7.flow_spread),
            "flow spread {}",
            fig7.flow_spread
        );
        assert!(
            fig7.inlet_spread < 0.02,
            "inlet spread {}",
            fig7.inlet_spread
        );
        assert!(
            (0.005..0.06).contains(&fig7.outlet_spread),
            "outlet spread {}",
            fig7.outlet_spread
        );
        assert!(fig7.flow_spread > fig7.outlet_spread);
        assert!(fig7.outlet_spread > fig7.inlet_spread);
    }

    #[test]
    fn fig9_hotspot_and_ends() {
        let (_, summary) = sim_and_summary();
        let fig9 = fig9_rack_ambient(&summary);
        assert_eq!(fig9.humidity_hotspot, RackId::new(1, 8));
        assert!(
            (0.18..0.45).contains(&fig9.humidity_spread),
            "humidity spread {}",
            fig9.humidity_spread
        );
        assert!(
            (0.02..0.15).contains(&fig9.temperature_spread),
            "temperature spread {}",
            fig9.temperature_spread
        );
        let (ends, centers) = fig9.end_vs_center_humidity;
        assert!(ends < centers, "ends {ends} centers {centers}");
    }

    #[test]
    fn fig11_distribution_and_correlations() {
        let (sim, summary) = sim_and_summary();
        let fig11 = fig11_cmf_by_rack(&sim, &summary);
        assert_eq!(fig11.max_rack, RackId::new(1, 8));
        assert_eq!(fig11.max_count, 14);
        assert_eq!(fig11.min_rack, RackId::new(2, 7));
        assert_eq!(fig11.min_count, 5);
        assert_eq!(fig11.counts.iter().sum::<u32>(), 361);
        for corr in [
            fig11.correlation_utilization,
            fig11.correlation_outlet,
            fig11.correlation_humidity,
        ] {
            assert!(corr.abs() < 0.45, "weak correlation expected, got {corr}");
        }
        // Humidity should look like pure chance; the others may be
        // borderline but none should be overwhelming evidence.
        assert!(fig11.permutation_p[2] > 0.05, "{:?}", fig11.permutation_p);
        assert!(
            fig11.permutation_p.iter().all(|&p| p > 0.001),
            "{:?}",
            fig11.permutation_p
        );
    }
}
