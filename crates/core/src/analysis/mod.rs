//! Per-figure analyses: one function per table/figure of the paper.
//!
//! Each function returns a typed row set mirroring what the paper plots,
//! so the bench harness (and EXPERIMENTS.md) can print the same series
//! the authors report:
//!
//! | Paper | Function |
//! |---|---|
//! | Fig. 2  | [`fig2_yearly_trends`] |
//! | Fig. 3  | [`fig3_coolant_trends`] |
//! | Fig. 4  | [`fig4_monthly_profile`] |
//! | Fig. 5  | [`fig5_weekday_profile`] |
//! | Fig. 6  | [`fig6_rack_power_util`] |
//! | Fig. 7  | [`fig7_rack_coolant`] |
//! | Fig. 8  | [`fig8_ambient_trends`] |
//! | Fig. 9  | [`fig9_rack_ambient`] |
//! | Fig. 10 | [`fig10_cmf_timeline`] |
//! | Fig. 11 | [`fig11_cmf_by_rack`] |
//! | Fig. 12 | [`fig12_cmf_leadup`] |
//! | Fig. 13 | [`fig13_predictor_sweep`] |
//! | Fig. 14 | [`fig14_post_cmf`] |
//! | Fig. 15 | [`fig15_storm_examples`] |
//!
//! [`full_report`] runs all of them (minus the expensive Fig. 13
//! predictor sweep) against one simulation and one sweep summary.

mod failures;
mod prediction;
mod report;
mod spatial;
mod temporal;

pub use failures::{
    fig10_cmf_timeline, fig12_cmf_leadup, fig14_post_cmf, fig15_storm_examples, Fig10, Fig12,
    Fig14, Fig15StormExample, LeadupPoint,
};
pub use prediction::{fig13_predictor_sweep, Fig13};
pub use report::{full_report, FigureReport};
pub use spatial::{
    fig11_cmf_by_rack, fig6_rack_power_util, fig7_rack_coolant, fig9_rack_ambient, Fig11, Fig6,
    Fig7, Fig9,
};
pub use temporal::{
    fig2_yearly_trends, fig3_coolant_trends, fig4_monthly_profile, fig5_weekday_profile,
    fig8_ambient_trends, free_cooling_report, Fig2, Fig3, Fig4, Fig5, Fig8, FreeCoolingReport,
};
