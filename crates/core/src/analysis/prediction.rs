//! Fig. 13: the CMF predictor lead-time sweep.

use serde::{Deserialize, Serialize};

use mira_predictor::{CmfPredictor, DatasetBuilder, FeatureConfig, LeadTimePoint, PredictorConfig};
use mira_timeseries::Duration;

use crate::simulation::Simulation;

/// Fig. 13: predictor quality as a function of lead time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig13 {
    /// Metrics at each lead time (short leads last, like the paper's
    /// x-axis read right to left).
    pub points: Vec<LeadTimePoint>,
    /// Held-out test metrics of the trained model.
    pub test_accuracy: f64,
    /// Number of CMFs used.
    pub events: usize,
}

/// Fig. 13: trains the paper's 12-12-6 network on windows around up to
/// `max_events` CMFs and sweeps the lead time.
///
/// The split is at the *event* level (60 % of failures train, 40 %
/// evaluate) with decorrelated negative grids, so the sweep measures
/// generalization to failures the model never saw — see
/// [`DatasetBuilder::split_events`].
///
/// Pass `max_events = usize::MAX` for the full 361-failure ground truth
/// (the bench harness does); tests use fewer for speed.
#[must_use]
pub fn fig13_predictor_sweep(
    sim: &Simulation,
    leads: &[Duration],
    max_events: usize,
    config: &PredictorConfig,
) -> Fig13 {
    let mut cmfs = sim.cmf_ground_truth();
    cmfs.truncate(max_events);
    let events = cmfs.len();
    let builder = DatasetBuilder::new(FeatureConfig::mira(), cmfs, sim.config().span());
    let (train_builder, eval_builder) = builder.split_events(0.6, config.seed ^ 0xF_1613);
    let telemetry = sim.telemetry();

    let (predictor, test_metrics) = CmfPredictor::train(telemetry, &train_builder, config);
    let points = predictor.lead_time_sweep(telemetry, &eval_builder, leads);

    Fig13 {
        points,
        test_accuracy: test_metrics.accuracy(),
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::SimConfig;

    #[test]
    fn sweep_reproduces_fig13_shape() {
        let sim = Simulation::new(SimConfig::with_seed(44));
        let leads = [
            Duration::from_hours(6),
            Duration::from_hours(3),
            Duration::from_minutes(30),
        ];
        let config = PredictorConfig {
            epochs: 25,
            train_leads: vec![
                Duration::from_minutes(30),
                Duration::from_hours(2),
                Duration::from_hours(4),
                Duration::from_hours(6),
            ],
            ..PredictorConfig::default()
        };
        let fig13 = fig13_predictor_sweep(&sim, &leads, 120, &config);
        assert_eq!(fig13.points.len(), 3);
        assert!(fig13.events >= 100);

        let acc_6h = fig13.points[0].metrics.accuracy();
        let acc_30m = fig13.points[2].metrics.accuracy();
        assert!(acc_30m > 0.85, "30-minute accuracy {acc_30m}");
        assert!(acc_6h > 0.6, "6-hour accuracy {acc_6h}");
        assert!(acc_30m >= acc_6h, "accuracy improves toward the event");
        // False positives stay bounded (with a ~50-negative eval set
        // per lead the rate is quantized in ~2 % steps, so only a loose
        // monotonicity can be asserted).
        let fpr_6h = fig13.points[0].metrics.false_positive_rate();
        let fpr_30m = fig13.points[2].metrics.false_positive_rate();
        assert!(fpr_30m <= fpr_6h + 0.06, "fpr {fpr_30m} vs {fpr_6h}");
        assert!(fpr_30m < 0.15, "fpr {fpr_30m}");
    }
}
