//! The unified figure report: every paper figure from one sweep.

use serde::{Deserialize, Serialize};

use mira_timeseries::Duration;

use crate::simulation::Simulation;
use crate::summary::SweepSummary;

use super::{
    failures, prediction, spatial, temporal, Fig10, Fig11, Fig12, Fig13, Fig14, Fig15StormExample,
    Fig2, Fig3, Fig4, Fig5, Fig6, Fig7, Fig8, Fig9, FreeCoolingReport,
};

/// All paper figures reproduced from one simulation + one sweep.
///
/// Figures 2–9 read the [`SweepSummary`]; Figures 10–15 read the
/// simulation's RAS log, schedule, and telemetry directly. The
/// predictor sweep (Fig. 13) is orders of magnitude more expensive than
/// everything else, so [`full_report`] leaves it `None`; fill it with
/// [`FigureReport::with_predictor`] when needed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureReport {
    /// Fig. 2 — yearly power/utilization trends.
    pub fig2: Fig2,
    /// Fig. 3 — coolant trends around the Theta integration.
    pub fig3: Fig3,
    /// Fig. 4 — monthly profiles.
    pub fig4: Fig4,
    /// Fig. 5 — weekday profiles (Monday maintenance).
    pub fig5: Fig5,
    /// Fig. 6 — per-rack power and utilization.
    pub fig6: Fig6,
    /// Fig. 7 — per-rack coolant spreads.
    pub fig7: Fig7,
    /// Fig. 8 — ambient temperature/humidity trends.
    pub fig8: Fig8,
    /// Fig. 9 — per-rack ambient conditions.
    pub fig9: Fig9,
    /// Fig. 10 — CMF timeline by year.
    pub fig10: Fig10,
    /// Fig. 11 — CMFs by rack vs. operating conditions.
    pub fig11: Fig11,
    /// Fig. 12 — telemetry lead-up to CMFs.
    pub fig12: Fig12,
    /// Fig. 13 — predictor lead-time sweep (`None` unless filled via
    /// [`FigureReport::with_predictor`]).
    pub fig13: Option<Fig13>,
    /// Fig. 14 — post-CMF failure-rate windows.
    pub fig14: Fig14,
    /// Fig. 15 — multi-rack failure-storm examples.
    pub fig15: Vec<Fig15StormExample>,
    /// The free-cooling energy ledger (the paper's §VII numbers).
    pub free_cooling: FreeCoolingReport,
}

impl FigureReport {
    /// Runs the Fig. 13 predictor sweep (expensive) and stores it.
    #[must_use]
    pub fn with_predictor(
        mut self,
        sim: &Simulation,
        config: &mira_predictor::PredictorConfig,
        max_events: usize,
    ) -> Self {
        self.fig13 = Some(prediction::fig13_predictor_sweep(
            sim,
            &leadup_leads(),
            max_events,
            config,
        ));
        self
    }
}

/// The lead times Figs. 12 and 13 probe: 0 to 6 h in 30-minute steps.
fn leadup_leads() -> Vec<Duration> {
    (0..=12).map(|k| Duration::from_minutes(30 * k)).collect()
}

/// Reproduces every figure (except the optional predictor sweep) from
/// one simulation and one already-computed sweep summary.
///
/// ```no_run
/// use mira_core::{analysis, Duration, FullSpan, SimConfig, Simulation};
///
/// let sim = Simulation::new(SimConfig::default());
/// let summary = sim
///     .sweep_plan(FullSpan)
///     .step(Duration::from_hours(1))
///     .summary()
///     .expect("non-empty span");
/// let report = analysis::full_report(&sim, &summary);
/// assert_eq!(report.fig10.total, 361);
/// ```
#[must_use]
pub fn full_report(sim: &Simulation, summary: &SweepSummary) -> FigureReport {
    FigureReport {
        fig2: temporal::fig2_yearly_trends(summary),
        fig3: temporal::fig3_coolant_trends(summary),
        fig4: temporal::fig4_monthly_profile(summary),
        fig5: temporal::fig5_weekday_profile(summary),
        fig6: spatial::fig6_rack_power_util(summary),
        fig7: spatial::fig7_rack_coolant(summary),
        fig8: temporal::fig8_ambient_trends(summary),
        fig9: spatial::fig9_rack_ambient(summary),
        fig10: failures::fig10_cmf_timeline(sim),
        fig11: spatial::fig11_cmf_by_rack(sim, summary),
        fig12: failures::fig12_cmf_leadup(sim, &leadup_leads(), usize::MAX),
        fig13: None,
        fig14: failures::fig14_post_cmf(sim),
        fig15: failures::fig15_storm_examples(sim, 3),
        free_cooling: temporal::free_cooling_report(summary),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::SimConfig;
    use mira_timeseries::Date;

    #[test]
    fn report_covers_every_figure() {
        let sim = Simulation::new(SimConfig::with_seed(41));
        let summary = sim
            .summarize(
                mira_timeseries::SimTime::from_date(Date::new(2015, 1, 1))
                    ..mira_timeseries::SimTime::from_date(Date::new(2015, 7, 1)),
                Duration::from_hours(6),
            )
            .expect("non-empty span");
        let report = full_report(&sim, &summary);
        assert_eq!(report.fig10.total, 361);
        assert_eq!(report.fig2.power_by_year.len(), 1);
        assert_eq!(report.fig12.points.len(), 13);
        assert_eq!(report.fig15.len(), 3);
        assert!(report.fig13.is_none());
        assert!(report.free_cooling.total_saved.value() > 0.0);
    }
}
