//! The incremental sweep engine: append telemetry instants as they
//! arrive and read the running aggregate at any point — byte-identical
//! to a cold batch sweep of everything ingested so far.
//!
//! # Equivalence to the batch path
//!
//! [`crate::SweepPlan::run`] cuts the grid into calendar-month shards,
//! folds each shard into a fresh recorder, and merges the partials in
//! chronological order: `((s₀ ⊕ s₁) ⊕ s₂) ⊕ …`. Floating-point merge is
//! not associative, so *any* byte-identical incremental scheme must
//! replay that exact association. [`IncrementalSweep`] therefore keeps
//! two recorders:
//!
//! - a **prefix** — the chronological fold of every *completed*
//!   calendar-month shard, and
//! - an **open shard** — the fold of the month currently being
//!   ingested.
//!
//! Appending the first instant of a new calendar month merges the open
//! shard into the prefix (one [`Recorder::merge`], same as the batch
//! executor performs for that seam) and starts a fresh shard. A query
//! clones both, merges the open clone after the prefix clone, and
//! finishes — reproducing the batch fold of `[from, ingested_to)` bit
//! for bit without touching the running state. Appends are strictly
//! grid-ordered ([`crate::SweepError::MisalignedAppend`] otherwise), so
//! the association can never drift from the batch plan's.
//!
//! Queries cost one clone of the running state, not a recompute: the
//! aggregate state is bounded (calendar bins, per-rack Welfords, one
//! accumulator per elapsed week), so a query on six years of ingested
//! telemetry costs the same as on six days.
//!
//! ```
//! use mira_core::{IncrementalSweep, SimConfig, Simulation};
//! use mira_timeseries::{Date, Duration, SimTime};
//!
//! let sim = Simulation::new(SimConfig::with_seed(7));
//! let from = SimTime::from_date(Date::new(2015, 1, 1));
//! let step = Duration::from_hours(6);
//! let mut inc = IncrementalSweep::builder(from)
//!     .step(step)
//!     .build()
//!     .expect("positive step");
//! // Ingest January; the summary matches a cold batch sweep exactly.
//! inc.ingest(sim.telemetry(), 31 * 4).expect("aligned");
//! let to = SimTime::from_date(Date::new(2015, 2, 1));
//! let batch = sim.summarize((from, to), step).expect("non-empty");
//! assert_eq!(inc.summary().expect("non-empty"), batch);
//! ```

use mira_obs::{ObsMode, ObsReport};
use mira_timeseries::{Date, Duration, SimTime};
use mira_units::convert;

use crate::analysis::{full_report, FigureReport};
use crate::error::Error;
use crate::obs::{keys, record_executor_shape, ObservedSweep, SweepObsRecorder};
use crate::simulation::Simulation;
use crate::summary::SweepSummary;
use crate::sweep::{Recorder, SweepError, SweepStep, SWEEP_BLOCK};
use crate::telemetry::{SweepScratch, TelemetryEngine};

/// One shard's running state: the summary and its riding obs recorder,
/// folded together exactly like the batch executor's tuple recorder.
type ShardState = (SweepSummary, SweepObsRecorder);

/// Builder for [`IncrementalSweep`], mirroring
/// [`crate::SimConfig::builder`] / [`crate::SweepPlan`] conventions.
///
/// ```
/// use mira_core::IncrementalSweep;
/// use mira_timeseries::{Date, Duration, SimTime};
///
/// let inc = IncrementalSweep::builder(SimTime::from_date(Date::new(2016, 7, 1)))
///     .step(Duration::from_minutes(5))
///     .build()
///     .expect("positive step");
/// assert_eq!(inc.steps_ingested(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalSweepBuilder {
    from: SimTime,
    step: Duration,
    mode: ObsMode,
}

impl IncrementalSweepBuilder {
    /// Sets the sampling step (default 5 minutes, like
    /// [`crate::SweepPlan`]).
    #[must_use]
    pub fn step(mut self, step: Duration) -> Self {
        self.step = step;
        self
    }

    /// Sets the observability mode (default [`ObsMode::On`]: the obs
    /// recorder rides the same fold, so a server can answer `metrics`
    /// without a second pass).
    #[must_use]
    pub fn obs(mut self, mode: ObsMode) -> Self {
        self.mode = mode;
        self
    }

    /// Finishes the configuration.
    ///
    /// # Errors
    ///
    /// [`Error::Sweep`] carrying [`SweepError::NonPositiveStep`] when
    /// the step is zero or negative.
    pub fn build(self) -> Result<IncrementalSweep, Error> {
        if self.step.as_seconds() <= 0 {
            return Err(SweepError::NonPositiveStep.into());
        }
        let first = self.from.date();
        let mut inc = IncrementalSweep {
            from: self.from,
            step: self.step,
            mode: self.mode,
            next_k: 0,
            shard_start: 0,
            cursor_year: first.year(),
            cursor_month: first.month().number(),
            next_boundary: 0,
            prefix: None,
            open: None,
            scratch: None,
        };
        inc.advance_boundary();
        Ok(inc)
    }
}

/// A running sweep aggregate that grows one grid instant at a time.
///
/// Construct via [`IncrementalSweep::builder`] (or
/// [`Simulation::incremental_sweep`]), feed it with
/// [`IncrementalSweep::append_step`] or the
/// [`IncrementalSweep::ingest`] convenience, and read
/// [`IncrementalSweep::summary`] / [`IncrementalSweep::observed`] /
/// [`IncrementalSweep::figures`] at any point. See the [module
/// docs](self) for why the results are byte-identical to the batch
/// path.
#[derive(Debug, Clone)]
pub struct IncrementalSweep {
    from: SimTime,
    step: Duration,
    mode: ObsMode,
    /// Grid index of the next expected instant (= instants ingested).
    next_k: usize,
    /// Grid index where the open shard began.
    shard_start: usize,
    /// Calendar cursor trailing the month-boundary scan.
    cursor_year: i32,
    cursor_month: u8,
    /// Grid index at which the open shard rolls into the prefix.
    next_boundary: usize,
    /// Chronological fold of all completed calendar-month shards.
    prefix: Option<ShardState>,
    /// The calendar-month shard currently being ingested.
    open: Option<ShardState>,
    /// Reused fold scratch for [`IncrementalSweep::ingest`].
    scratch: Option<SweepScratch>,
}

impl IncrementalSweep {
    /// A builder for an engine whose grid starts at `from`.
    #[must_use]
    pub fn builder(from: SimTime) -> IncrementalSweepBuilder {
        IncrementalSweepBuilder {
            from,
            step: Duration::from_minutes(5),
            mode: ObsMode::On,
        }
    }

    /// The sampling step.
    #[must_use]
    pub fn step(&self) -> Duration {
        self.step
    }

    /// Instants ingested so far.
    #[must_use]
    pub fn steps_ingested(&self) -> u64 {
        convert::u64_from_usize(self.next_k)
    }

    /// The next grid instant an append must carry:
    /// `from + step · steps_ingested`.
    #[must_use]
    pub fn next_time(&self) -> SimTime {
        self.from + self.step * convert::i64_from_usize(self.next_k)
    }

    /// The ingested span `[from, next_time)`. Empty until the first
    /// append.
    #[must_use]
    pub fn span(&self) -> (SimTime, SimTime) {
        (self.from, self.next_time())
    }

    /// Finds the next shard-boundary grid index after `shard_start`:
    /// the first-of-month scan from [`crate::sweep`]'s `month_shards`,
    /// with the same ceil rounding and the same strictly-increasing
    /// rule (a step longer than a month skips boundaries that land on
    /// an already-started shard).
    fn advance_boundary(&mut self) {
        let step_s = self.step.as_seconds();
        loop {
            self.cursor_month += 1;
            if self.cursor_month > 12 {
                self.cursor_month = 1;
                self.cursor_year += 1;
            }
            let boundary = SimTime::from_date(Date::new(self.cursor_year, self.cursor_month, 1));
            let offset = (boundary - self.from).as_seconds();
            let idx = convert::usize_from_i64((offset + step_s - 1) / step_s);
            if idx > self.shard_start {
                self.next_boundary = idx;
                return;
            }
        }
    }

    /// A fresh shard seed. The span is a placeholder: the batch
    /// executor seeds every shard with the full plan span, which only
    /// survives into the output's `span` metadata field — queries patch
    /// it to the ingested span before finishing.
    fn fresh_shard(&self) -> ShardState {
        (
            SweepSummary::empty((self.from, self.from), self.step),
            SweepObsRecorder::new(self.mode),
        )
    }

    /// Merges the open shard into the prefix — the exact chronological
    /// merge the batch executor performs at this month seam.
    fn roll_shard(&mut self) {
        if let Some(open) = self.open.take() {
            match self.prefix.as_mut() {
                Some(acc) => acc.merge(open),
                None => self.prefix = Some(open),
            }
        }
        self.shard_start = self.next_boundary;
        self.advance_boundary();
    }

    /// Folds one instant into the running state. The step must carry
    /// exactly [`IncrementalSweep::next_time`] — the engine accepts the
    /// grid in order, never sparse or shuffled, because the batch
    /// association it replays is defined on the contiguous grid.
    ///
    /// # Errors
    ///
    /// [`Error::Sweep`] carrying [`SweepError::MisalignedAppend`] when
    /// `step` is not at the expected grid instant.
    pub fn append_step(&mut self, step: &SweepStep) -> Result<(), Error> {
        let expected = self.next_time();
        if step.snapshot.time != expected {
            return Err(SweepError::MisalignedAppend {
                expected,
                got: step.snapshot.time,
            }
            .into());
        }
        if self.next_k == self.next_boundary {
            self.roll_shard();
        }
        if self.open.is_none() {
            self.open = Some(self.fresh_shard());
        }
        if let Some(open) = self.open.as_mut() {
            open.record(step);
        }
        self.next_k += 1;
        Ok(())
    }

    /// Computes and appends the next `steps` grid instants from
    /// `engine` through the batched kernel
    /// ([`TelemetryEngine::sweep_steps_into`]), reusing one
    /// [`SweepScratch`] across calls (zero steady-state allocation,
    /// like the batch executor's per-shard fold). Blocks are cut at
    /// calendar-month boundaries so each block folds into exactly one
    /// shard — the roll into the prefix happens between blocks, exactly
    /// where the per-step path would perform it. Always pass the same
    /// engine: the scratch carries cursors into it.
    ///
    /// # Errors
    ///
    /// [`Error::Sweep`] if an append misaligns (cannot happen from this
    /// path; the contract is inherited from
    /// [`IncrementalSweep::append_step`]).
    pub fn ingest(&mut self, engine: &TelemetryEngine, steps: usize) -> Result<(), Error> {
        let mut scratch = match self.scratch.take() {
            Some(s) => s,
            None => engine.sweep_scratch(),
        };
        let mut remaining = steps;
        while remaining > 0 {
            if self.next_k == self.next_boundary {
                self.roll_shard();
            }
            if self.open.is_none() {
                self.open = Some(self.fresh_shard());
            }
            let n = remaining
                .min(SWEEP_BLOCK)
                .min(self.next_boundary - self.next_k);
            engine.sweep_steps_into(self.next_time(), self.step, n, &mut scratch);
            let (block, staging) = scratch.block_parts();
            if let Some(open) = self.open.as_mut() {
                open.record_block(block, staging);
            }
            self.next_k += n;
            remaining -= n;
        }
        self.scratch = Some(scratch);
        Ok(())
    }

    /// Clones prefix and open shard and replays the final chronological
    /// merge, yielding the recorder state a batch run over the ingested
    /// span would hold just before `finish`.
    fn folded(&self) -> Result<ShardState, Error> {
        let mut acc = match (&self.prefix, &self.open) {
            (Some(prefix), Some(open)) => {
                let mut acc = prefix.clone();
                acc.merge(open.clone());
                acc
            }
            (Some(prefix), None) => prefix.clone(),
            (None, Some(open)) => open.clone(),
            (None, None) => return Err(SweepError::EmptySpan.into()),
        };
        // The batch path seeds every shard with the full plan span;
        // patch the metadata to the ingested span.
        acc.0.span = self.span();
        Ok(acc)
    }

    /// The aggregate over everything ingested, byte-identical to
    /// [`Simulation::summarize`] over `[from, next_time)` at any thread
    /// count. The running state is untouched; ingest can continue.
    ///
    /// # Errors
    ///
    /// [`Error::Sweep`] carrying [`SweepError::EmptySpan`] before the
    /// first append.
    pub fn summary(&self) -> Result<SweepSummary, Error> {
        let (summary, _) = Recorder::finish(self.folded()?);
        Ok(summary)
    }

    /// Summary plus the [`ObsReport`] gathered on the same fold —
    /// deterministically identical to
    /// [`Simulation::summarize_observed`] over the ingested span,
    /// except that the nondeterministic `timings` section stays empty
    /// (a long-running caller times its own ingest; see `mira-serve`).
    ///
    /// The hydraulic-memo counters are emitted from the sweep-path
    /// contract (one solve per instant, no memo hits — what
    /// `tests/sweep_scratch.rs` pins for the batch path) rather than
    /// from engine-global counters, so reports stay deterministic even
    /// while other queries hit the same engine concurrently.
    ///
    /// # Errors
    ///
    /// [`Error::Sweep`] carrying [`SweepError::EmptySpan`] before the
    /// first append.
    pub fn observed(&self) -> Result<ObservedSweep, Error> {
        let (summary, mut report) = Recorder::finish(self.folded()?);
        if self.mode.is_on() {
            let (from, to) = self.span();
            record_executor_shape(&mut report.metrics, from, to, self.step);
            report.metrics.add(keys::COOLING_HYDRO_CACHE_HITS, 0);
            report
                .metrics
                .add(keys::COOLING_HYDRO_CACHE_MISSES, self.steps_ingested());
        }
        Ok(ObservedSweep { summary, report })
    }

    /// The observability report alone (see
    /// [`IncrementalSweep::observed`]).
    ///
    /// # Errors
    ///
    /// [`Error::Sweep`] carrying [`SweepError::EmptySpan`] before the
    /// first append.
    pub fn obs_report(&self) -> Result<ObsReport, Error> {
        Ok(self.observed()?.report)
    }

    /// All paper figures over the ingested span, byte-identical to
    /// [`full_report`] on a cold batch summary of the same span.
    ///
    /// # Errors
    ///
    /// [`Error::Sweep`] carrying [`SweepError::EmptySpan`] before the
    /// first append.
    pub fn figures(&self, sim: &Simulation) -> Result<FigureReport, Error> {
        Ok(full_report(sim, &self.summary()?))
    }
}

impl Simulation {
    /// An [`IncrementalSweep`] starting at this simulation's configured
    /// start, ready to [`IncrementalSweep::ingest`] from
    /// [`Simulation::telemetry`].
    ///
    /// # Errors
    ///
    /// [`Error::Sweep`] carrying [`SweepError::NonPositiveStep`] when
    /// the step is not positive.
    pub fn incremental_sweep(&self, step: Duration) -> Result<IncrementalSweep, Error> {
        IncrementalSweep::builder(self.config().span().0)
            .step(step)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::SimConfig;

    fn t(y: i32, m: u8, d: u8) -> SimTime {
        SimTime::from_date(Date::new(y, m, d))
    }

    #[test]
    fn builder_validates_step() {
        let err = IncrementalSweep::builder(t(2015, 1, 1))
            .step(Duration::ZERO)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::Sweep(SweepError::NonPositiveStep)));
    }

    #[test]
    fn empty_engine_reports_empty_span() {
        let inc = IncrementalSweep::builder(t(2015, 1, 1)).build().unwrap();
        assert!(matches!(
            inc.summary().unwrap_err(),
            Error::Sweep(SweepError::EmptySpan)
        ));
    }

    #[test]
    fn misaligned_append_is_rejected() {
        let sim = Simulation::new(SimConfig::with_seed(7));
        let step = Duration::from_hours(6);
        let mut inc = IncrementalSweep::builder(t(2015, 1, 1))
            .step(step)
            .build()
            .unwrap();
        inc.ingest(sim.telemetry(), 3).unwrap();
        // Re-appending the last instant (one step behind the cursor).
        let mut scratch = sim.telemetry().sweep_scratch();
        sim.telemetry()
            .sweep_step_into(t(2015, 1, 1) + step * 2, &mut scratch);
        let err = inc.append_step(scratch.step()).unwrap_err();
        match err {
            Error::Sweep(SweepError::MisalignedAppend { expected, got }) => {
                assert_eq!(expected, t(2015, 1, 1) + step * 3);
                assert_eq!(got, t(2015, 1, 1) + step * 2);
            }
            other => panic!("unexpected error: {other:?}"),
        }
        // The engine state is untouched; the aligned instant still lands.
        assert_eq!(inc.steps_ingested(), 3);
        inc.ingest(sim.telemetry(), 1).unwrap();
        assert_eq!(inc.steps_ingested(), 4);
    }

    #[test]
    fn matches_batch_across_month_seams() {
        let sim = Simulation::new(SimConfig::with_seed(7));
        let from = t(2015, 1, 15);
        let step = Duration::from_hours(4);
        let mut inc = IncrementalSweep::builder(from).step(step).build().unwrap();
        // Ingest in ragged chunks crossing the Feb and Mar seams.
        let mut total = 0usize;
        for chunk in [40usize, 1, 97, 13, 250, 5] {
            inc.ingest(sim.telemetry(), chunk).unwrap();
            total += chunk;
            let to = from + step * convert::i64_from_usize(total);
            let batch = sim.summarize((from, to), step).unwrap();
            assert_eq!(inc.summary().unwrap(), batch, "after {total} steps");
        }
    }

    #[test]
    fn observed_matches_batch_deterministic_json() {
        let sim = Simulation::new(SimConfig::with_seed(7));
        let from = t(2016, 5, 20);
        let step = Duration::from_hours(3);
        let mut inc = IncrementalSweep::builder(from).step(step).build().unwrap();
        let steps = 60 * 8; // 60 days at 8 samples/day: crosses 2 seams.
        inc.ingest(sim.telemetry(), steps).unwrap();
        let to = from + step * convert::i64_from_usize(steps);
        let batch = sim
            .summarize_observed((from, to), step, 1, ObsMode::On)
            .unwrap();
        let observed = inc.observed().unwrap();
        assert_eq!(observed.summary, batch.summary);
        assert_eq!(
            observed.report.deterministic_json(),
            batch.report.deterministic_json()
        );
    }

    #[test]
    fn obs_off_rides_free_and_still_matches() {
        let sim = Simulation::new(SimConfig::with_seed(7));
        let from = t(2015, 3, 1);
        let step = Duration::from_hours(6);
        let mut inc = IncrementalSweep::builder(from)
            .step(step)
            .obs(ObsMode::Off)
            .build()
            .unwrap();
        inc.ingest(sim.telemetry(), 31 * 4).unwrap();
        let observed = inc.observed().unwrap();
        assert!(observed.report.is_empty());
        let to = from + step * convert::i64_from_usize(31 * 4);
        assert_eq!(observed.summary, sim.summarize((from, to), step).unwrap());
    }

    #[test]
    fn simulation_convenience_starts_at_config_start() {
        let sim = Simulation::new(SimConfig::with_seed(7));
        let inc = sim.incremental_sweep(Duration::from_hours(6)).unwrap();
        assert_eq!(inc.next_time(), sim.config().span().0);
    }
}
