//! Telemetry and RAS archival: CSV export/import, delegating row
//! parsing and rendering to `mira-store`'s canonical record model.
//!
//! The real Mira stored its coolant telemetry in an IBM DB2
//! environmental database; downstream users of this reproduction need
//! the same capability in an open format. The schema is one row per
//! coolant-monitor sample (`time,rack,dc_temp_f,dc_rh,flow_gpm,
//! inlet_f,outlet_f,power_kw`) and one row per RAS event
//! (`time,rack,kind,severity`), both round-trippable.
//!
//! Every row passes through [`mira_store::TelemetryRecord`] — values
//! quantized to milli-units through the same `{:.3}` rendering the
//! exports use — so a sweep exported live, a CSV file read back, and a
//! columnar archive scanned with [`mira_store::Archive::scan_span`]
//! all produce byte-identical text.

use std::fmt;
use std::io::{self, BufRead, Write};

use mira_cooling::CoolantMonitorSample;
use mira_ras::RasEvent;
use mira_store::csvfile::{parse_ras_row, parse_telemetry_row};
use mira_store::{ras_csv_row, StoreError, TelemetryRecord};
use mira_timeseries::{Duration, SimTime};

use crate::error::Error;
use crate::telemetry::TelemetryEngine;

/// Errors arising when reading an archive.
#[deprecated(
    since = "0.1.0",
    note = "folded into the structured `mira_core::StoreError` \
            (`Error::Store`); this alias-shaped enum only remains for \
            downstream `match` arms mid-migration"
)]
#[derive(Debug)]
pub enum ArchiveError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed row, with its 1-based line number.
    Parse {
        /// 1-based line number of the offending row.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

#[allow(deprecated)]
impl From<ArchiveError> for StoreError {
    fn from(e: ArchiveError) -> Self {
        match e {
            ArchiveError::Io(e) => StoreError::Io(e),
            ArchiveError::Parse { line, message } => StoreError::Parse { line, message },
        }
    }
}

#[allow(deprecated)]
impl fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchiveError::Io(e) => write!(f, "archive i/o error: {e}"),
            ArchiveError::Parse { line, message } => {
                write!(f, "archive parse error at line {line}: {message}")
            }
        }
    }
}

#[allow(deprecated)]
impl std::error::Error for ArchiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArchiveError::Io(e) => Some(e),
            ArchiveError::Parse { .. } => None,
        }
    }
}

#[allow(deprecated)]
impl From<io::Error> for ArchiveError {
    fn from(e: io::Error) -> Self {
        ArchiveError::Io(e)
    }
}

/// The telemetry CSV header.
pub const TELEMETRY_HEADER: &str = mira_store::TELEMETRY_HEADER;

/// The RAS CSV header.
pub const RAS_HEADER: &str = mira_store::RAS_HEADER;

/// Writes telemetry samples as CSV (header included). Pass `&mut w` to
/// keep the writer.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_telemetry_csv<W: Write>(
    mut w: W,
    samples: impl IntoIterator<Item = CoolantMonitorSample>,
) -> Result<usize, Error> {
    writeln!(w, "{TELEMETRY_HEADER}")?;
    let mut rows = 0;
    for s in samples {
        writeln!(w, "{}", TelemetryRecord::from_sample(&s).csv_row())?;
        rows += 1;
    }
    Ok(rows)
}

/// Reads telemetry samples back from CSV.
///
/// # Errors
///
/// Returns [`Error::Store`] carrying [`StoreError::Parse`] on
/// malformed rows and [`StoreError::Io`] on reader failures.
pub fn read_telemetry_csv<R: BufRead>(r: R) -> Result<Vec<CoolantMonitorSample>, Error> {
    let mut out = Vec::new();
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        if idx == 0 {
            if line.trim() != TELEMETRY_HEADER {
                return Err(parse_err(lineno, "unexpected telemetry header"));
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_telemetry_row(&line, lineno)?.to_sample());
    }
    Ok(out)
}

/// Streams a telemetry sweep straight to CSV without buffering samples.
///
/// # Errors
///
/// Propagates writer errors.
///
/// # Panics
///
/// Panics if the span is empty or the step non-positive.
pub fn export_sweep<W: Write>(
    engine: &TelemetryEngine,
    from: SimTime,
    to: SimTime,
    step: Duration,
    mut w: W,
) -> Result<usize, Error> {
    assert!(from < to, "empty export span");
    assert!(step.as_seconds() > 0, "step must be positive");
    writeln!(w, "{TELEMETRY_HEADER}")?;
    let mut rows = 0;
    sweep_records(engine, from, to, step, |rec| -> Result<(), Error> {
        writeln!(w, "{}", rec.csv_row())?;
        rows += 1;
        Ok(())
    })?;
    Ok(rows)
}

/// Streams a telemetry sweep as newline-delimited JSON: one object per
/// coolant-monitor sample, with the same fields (and the same `{:.3}`
/// channel rounding) as the CSV columns of [`export_sweep`], so the two
/// formats carry identical information row for row.
///
/// # Errors
///
/// Propagates writer errors.
///
/// # Panics
///
/// Panics if the span is empty or the step non-positive.
pub fn export_sweep_ndjson<W: Write>(
    engine: &TelemetryEngine,
    from: SimTime,
    to: SimTime,
    step: Duration,
    mut w: W,
) -> Result<usize, Error> {
    assert!(from < to, "empty export span");
    assert!(step.as_seconds() > 0, "step must be positive");
    let mut rows = 0;
    sweep_records(engine, from, to, step, |rec| -> Result<(), Error> {
        writeln!(w, "{}", rec.ndjson_row())?;
        rows += 1;
        Ok(())
    })?;
    Ok(rows)
}

/// Walks the sweep grid `[from, to)` × all racks in deterministic
/// order, delivering each sample quantized to its archived record form
/// — the single row source behind every export and archive surface.
///
/// # Errors
///
/// Propagates the sink's errors.
///
/// # Panics
///
/// Panics if the span is empty or the step non-positive.
pub fn sweep_records<E>(
    engine: &TelemetryEngine,
    from: SimTime,
    to: SimTime,
    step: Duration,
    mut sink: impl FnMut(&TelemetryRecord) -> Result<(), E>,
) -> Result<usize, E> {
    assert!(from < to, "empty export span");
    assert!(step.as_seconds() > 0, "step must be positive");
    let mut rows = 0;
    let mut t = from;
    while t < to {
        let (_, samples) = engine.observe_all(t);
        for s in samples {
            sink(&TelemetryRecord::from_sample(&s))?;
            rows += 1;
        }
        t += step;
    }
    Ok(rows)
}

/// Writes RAS events as CSV.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_ras_csv<'a, W: Write>(
    mut w: W,
    events: impl IntoIterator<Item = &'a RasEvent>,
) -> Result<usize, Error> {
    writeln!(w, "{RAS_HEADER}")?;
    let mut rows = 0;
    for e in events {
        writeln!(w, "{}", ras_csv_row(e))?;
        rows += 1;
    }
    Ok(rows)
}

/// Reads RAS events back from CSV.
///
/// # Errors
///
/// Returns [`Error::Store`] carrying [`StoreError::Parse`] on
/// malformed rows.
pub fn read_ras_csv<R: BufRead>(r: R) -> Result<Vec<RasEvent>, Error> {
    let mut out = Vec::new();
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        if idx == 0 {
            if line.trim() != RAS_HEADER {
                return Err(parse_err(lineno, "unexpected RAS header"));
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_ras_row(&line, lineno)?);
    }
    Ok(out)
}

fn parse_err(line: usize, message: &str) -> Error {
    Error::Store(StoreError::Parse {
        line,
        message: message.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::{SimConfig, Simulation};
    use mira_timeseries::Date;

    fn sim() -> Simulation {
        Simulation::new(SimConfig::with_seed(55))
    }

    #[test]
    fn telemetry_round_trip() {
        let s = sim();
        let t = SimTime::from_date(Date::new(2015, 4, 1));
        let (_, samples) = s.telemetry().observe_all(t);

        let mut buf = Vec::new();
        let rows = write_telemetry_csv(&mut buf, samples.iter().copied()).unwrap();
        assert_eq!(rows, 48);

        let back = read_telemetry_csv(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 48);
        for (a, b) in samples.iter().zip(&back) {
            assert_eq!(a.time, b.time);
            assert_eq!(a.rack, b.rack);
            // CSV keeps three decimals.
            assert!((a.inlet.value() - b.inlet.value()).abs() < 1e-3);
            assert!((a.power.value() - b.power.value()).abs() < 1e-3);
        }
    }

    #[test]
    fn csv_read_back_re_renders_identically() {
        // Parse → re-render is byte-identical: the quantization both
        // directions run through the same canonical text.
        let s = sim();
        let t = SimTime::from_date(Date::new(2015, 4, 1));
        let (_, samples) = s.telemetry().observe_all(t);
        let mut buf = Vec::new();
        write_telemetry_csv(&mut buf, samples).unwrap();
        let text = String::from_utf8(buf).unwrap();
        for (idx, line) in text.lines().enumerate().skip(1) {
            let rec = parse_telemetry_row(line, idx + 1).unwrap();
            assert_eq!(rec.csv_row(), line);
        }
    }

    #[test]
    fn export_sweep_streams_rows() {
        let s = sim();
        let from = SimTime::from_date(Date::new(2015, 4, 1));
        let mut buf = Vec::new();
        let rows = export_sweep(
            s.telemetry(),
            from,
            from + Duration::from_hours(2),
            Duration::from_minutes(30),
            &mut buf,
        )
        .unwrap();
        assert_eq!(rows, 4 * 48);
        let back = read_telemetry_csv(buf.as_slice()).unwrap();
        assert_eq!(back.len(), rows);
    }

    #[test]
    fn ndjson_export_mirrors_csv_row_for_row() {
        let s = sim();
        let from = SimTime::from_date(Date::new(2015, 4, 1));
        let to = from + Duration::from_hours(1);
        let step = Duration::from_minutes(30);

        let mut csv = Vec::new();
        let csv_rows = export_sweep(s.telemetry(), from, to, step, &mut csv).unwrap();
        let mut nd = Vec::new();
        let nd_rows = export_sweep_ndjson(s.telemetry(), from, to, step, &mut nd).unwrap();
        assert_eq!(csv_rows, nd_rows);

        let csv = String::from_utf8(csv).unwrap();
        let nd = String::from_utf8(nd).unwrap();
        // NDJSON has no header line; every data row carries the same
        // rounded values as its CSV counterpart.
        assert_eq!(nd.lines().count(), csv.lines().count() - 1);
        for (csv_line, nd_line) in csv.lines().skip(1).zip(nd.lines()) {
            assert!(
                nd_line.starts_with('{') && nd_line.ends_with('}'),
                "{nd_line}"
            );
            let mut fields = csv_line.splitn(8, ',');
            let epoch = fields.next().unwrap();
            assert!(nd_line.contains(&format!("\"time\":{epoch},")), "{nd_line}");
            // The rack id itself contains a comma ("(0, A)"), so grab
            // the numeric tail for the channel columns instead.
            let power = csv_line.rsplit(',').next().unwrap();
            assert!(
                nd_line.contains(&format!("\"power_kw\":{power}}}")),
                "{nd_line}"
            );
        }
    }

    #[test]
    fn ras_round_trip() {
        let s = sim();
        let counted: Vec<RasEvent> = s.ras_log().counted().to_vec();
        let mut buf = Vec::new();
        let rows = write_ras_csv(&mut buf, counted.iter()).unwrap();
        assert_eq!(rows, counted.len());
        let back = read_ras_csv(buf.as_slice()).unwrap();
        assert_eq!(back, counted);
    }

    #[test]
    fn malformed_rows_are_rejected_with_line_numbers() {
        let bad = format!("{TELEMETRY_HEADER}\n123,(0, zz),1,2,3,4,5,6\n");
        let err = read_telemetry_csv(bad.as_bytes()).unwrap_err();
        match err {
            Error::Store(StoreError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("wrong error: {other}"),
        }
        let bad_header = "nope\n";
        assert!(read_telemetry_csv(bad_header.as_bytes()).is_err());
        let bad_kind = format!("{RAS_HEADER}\n123,(0, 1),NOPE,fatal\n");
        assert!(read_ras_csv(bad_kind.as_bytes()).is_err());
    }

    #[test]
    fn error_display_is_informative() {
        let e = parse_err(7, "bad number");
        assert!(e.to_string().contains("line 7"));
    }
}
