//! The operational timeline: facility events that changed the loop.
//!
//! The one structural event of Mira's six years is the **Theta
//! integration** of July 2016: the 12 PFlops Theta system was plumbed
//! into Mira's cooling loop. To keep Mira safe, the loop impellers were
//! upgraded and the flow setpoint raised from ≈1,250 to ≈1,300 GPM
//! (Fig. 3a); Theta's early-testing heat load pushed both coolant
//! temperatures up from June 2016 until early 2017 (Fig. 3b–c); and the
//! integration work owns the 2016 burst of coolant monitor failures
//! (Fig. 10).

use serde::{Deserialize, Serialize};

use mira_timeseries::{Date, SimTime};
use mira_units::{convert, Fahrenheit, Gpm};

/// Facility operational timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OperationalTimeline {
    theta_added: SimTime,
    theta_settled: SimTime,
}

impl OperationalTimeline {
    /// Mira's timeline.
    #[must_use]
    pub fn mira() -> Self {
        Self {
            theta_added: SimTime::from_date(Date::new(2016, 7, 1)),
            theta_settled: SimTime::from_date(Date::new(2017, 3, 1)),
        }
    }

    /// When Theta joined the loop.
    #[must_use]
    pub fn theta_added(&self) -> SimTime {
        self.theta_added
    }

    /// The external-loop flow setpoint at `t`.
    #[must_use]
    pub fn flow_setpoint(&self, t: SimTime) -> Gpm {
        if t >= self.theta_added {
            Gpm::new(1300.0)
        } else {
            Gpm::new(1250.0)
        }
    }

    /// Supply-temperature uplift from Theta's unbalanced early heat
    /// load: ramps in over June–August 2016 and decays to zero by
    /// March 2017.
    #[must_use]
    pub fn supply_uplift(&self, t: SimTime) -> Fahrenheit {
        let onset = self.theta_added - mira_timeseries::Duration::from_days(21);
        if t < onset || t >= self.theta_settled {
            return Fahrenheit::new(0.0);
        }
        let peak = 2.1;
        let ramp_end = self.theta_added + mira_timeseries::Duration::from_days(45);
        let v = if t < ramp_end {
            // Ramp up.
            let num = convert::f64_from_i64((t - onset).as_seconds());
            let den = convert::f64_from_i64((ramp_end - onset).as_seconds());
            peak * num / den
        } else {
            // Decay toward settled.
            let num = convert::f64_from_i64((self.theta_settled - t).as_seconds());
            let den = convert::f64_from_i64((self.theta_settled - ramp_end).as_seconds());
            peak * num / den
        };
        Fahrenheit::new(v.max(0.0))
    }
}

impl Default for OperationalTimeline {
    fn default() -> Self {
        Self::mira()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_steps_at_theta() {
        let tl = OperationalTimeline::mira();
        let before = SimTime::from_date(Date::new(2016, 6, 30));
        let after = SimTime::from_date(Date::new(2016, 7, 2));
        assert_eq!(tl.flow_setpoint(before), Gpm::new(1250.0));
        assert_eq!(tl.flow_setpoint(after), Gpm::new(1300.0));
        assert_eq!(
            tl.flow_setpoint(SimTime::from_date(Date::new(2014, 1, 1))),
            Gpm::new(1250.0)
        );
        assert_eq!(
            tl.flow_setpoint(SimTime::from_date(Date::new(2019, 12, 31))),
            Gpm::new(1300.0)
        );
    }

    #[test]
    fn uplift_ramps_and_decays() {
        let tl = OperationalTimeline::mira();
        let zero_before = tl.supply_uplift(SimTime::from_date(Date::new(2016, 5, 1)));
        assert_eq!(zero_before.value(), 0.0);
        let mid = tl.supply_uplift(SimTime::from_date(Date::new(2016, 9, 1)));
        assert!(mid.value() > 1.0, "mid-integration uplift {mid}");
        let late = tl.supply_uplift(SimTime::from_date(Date::new(2017, 1, 15)));
        assert!(late.value() > 0.0 && late.value() < mid.value());
        let settled = tl.supply_uplift(SimTime::from_date(Date::new(2017, 4, 1)));
        assert_eq!(settled.value(), 0.0);
    }

    #[test]
    fn uplift_is_continuous_at_peak() {
        let tl = OperationalTimeline::mira();
        let peak_t = tl.theta_added + mira_timeseries::Duration::from_days(45);
        let before = tl.supply_uplift(peak_t - mira_timeseries::Duration::from_hours(1));
        let after = tl.supply_uplift(peak_t + mira_timeseries::Duration::from_hours(1));
        assert!((before.value() - after.value()).abs() < 0.05);
    }
}
