//! The ground-truth telemetry engine: weather × workload × hydraulics ×
//! failures → coolant-monitor samples.
//!
//! Every quantity here is a deterministic function of `(seed, rack,
//! time)`, which is what makes the rest of the workspace cheap: analyses
//! can random-access any instant (the CMF predictor samples six-hour
//! windows around failures without replaying history), and two
//! simulations with the same seed agree bit-for-bit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use serde::{Deserialize, Serialize};

use mira_cooling::{
    ChilledWaterPlant, CoolantMonitor, CoolantMonitorSample, FlowCursor, FlowNetwork,
    HeatExchanger, MonitorBank, PlantLoad, PrecursorSignature,
};
use mira_facility::{BulkPowerModule, Machine, RackId};
use mira_predictor::TelemetryProvider;
use mira_ras::schedule::CmfSchedule;
use mira_ras::{AvailabilityCursor, RackAvailability, RasLog};
use mira_timeseries::{CivilDayCache, CivilParts, Duration, SimTime};
use mira_units::{convert, Fahrenheit, Gpm, Kilowatts, RelHumidity, Watts};
use mira_weather::{ChicagoClimate, ClimateCursor, FractalCursor, NoiseCursor, WeatherSample};
use mira_workload::{SystemDemand, WorkloadCursor, WorkloadModel};

use crate::sweep::SweepStep;
use crate::timeline::OperationalTimeline;

/// The physical (pre-sensor) state of one rack at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RackTruth {
    /// Fraction of the rack's nodes running jobs (0 while the rack is
    /// down).
    pub utilization: f64,
    /// CPU intensity of the rack's job mix.
    pub intensity: f64,
    /// Ambient temperature at the rack (room + airflow offset).
    pub ambient_temperature: Fahrenheit,
    /// Ambient humidity at the rack.
    pub ambient_humidity: RelHumidity,
    /// Coolant flow through the rack.
    pub flow: Gpm,
    /// Inlet coolant temperature.
    pub inlet: Fahrenheit,
    /// Outlet coolant temperature.
    pub outlet: Fahrenheit,
    /// Rack electrical draw.
    pub power: Kilowatts,
    /// Whether the rack is up.
    pub is_up: bool,
}

/// Shared per-instant state, computed once per step and reused across
/// the 48 racks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemSnapshot {
    /// The instant this snapshot describes.
    pub time: SimTime,
    /// Weather and room conditions.
    pub weather: WeatherSample,
    /// System-level demand.
    pub demand: SystemDemand,
    /// Chilled-water supply temperature delivered to the loop.
    pub supply_temperature: Fahrenheit,
    /// Fraction of the load the economizer carries.
    pub free_cooling_fraction: f64,
    /// Chiller electrical draw.
    pub chiller_power: Kilowatts,
    /// Chiller draw avoided by the economizer.
    pub avoided_power: Kilowatts,
    /// Per-rack coolant flows (index = [`RackId::index`]).
    pub flows: Vec<Gpm>,
    /// Per-rack up/down state.
    pub rack_up: Vec<bool>,
}

/// Memo key for the hydraulic solve: the exact inputs of
/// [`FlowNetwork::distribute`], so a hit can only ever return the value
/// the cold path would compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HydroKey {
    t: i64,
    setpoint_bits: u64,
    valves: u64,
}

impl HydroKey {
    fn new(t: SimTime, setpoint: Gpm, valve_open: &[bool; RackId::COUNT]) -> Self {
        let valves =
            valve_open.iter().enumerate().fold(
                0u64,
                |mask, (i, &open)| {
                    if open {
                        mask | (1u64 << i)
                    } else {
                        mask
                    }
                },
            );
        Self {
            t: t.epoch_seconds(),
            setpoint_bits: setpoint.value().to_bits(),
            valves,
        }
    }
}

/// Cached next-CMF lookups per rack, each with the validity window
/// between the neighbouring CMF instants.
///
/// The cached answer for a rack holds for every `t` strictly after the
/// previous CMF and at or before the next one — window edges are pure
/// functions of the engine's (immutable) per-rack CMF lists, so
/// [`TelemetryEngine::next_cmf_cached`] is bit-identical to
/// [`TelemetryEngine::next_cmf`] from any prior cursor state.
#[derive(Debug, Clone)]
pub struct CmfCursor {
    windows: Vec<Option<(SimTime, SimTime, Option<SimTime>)>>,
}

/// The telemetry engine.
#[derive(Debug)]
pub struct TelemetryEngine {
    /// Memoized floor medians (differential features ask for the same
    /// instant once per rack; telemetry is pure, so caching is safe).
    median_cache: Mutex<std::collections::HashMap<i64, [f64; 6]>>,
    /// Single-entry memo for the hydraulic solve, keyed on its exact
    /// inputs. Random-access callers ([`TelemetryProvider::sample`]
    /// probes 48 racks at one instant through 48 snapshots) hit it; the
    /// scratch sweep path solves exactly once per step and never reads
    /// it.
    hydro_memo: Mutex<Option<(HydroKey, Vec<Gpm>)>>,
    /// Hydraulic-solve memo hits since construction.
    hydro_hits: AtomicU64,
    /// Hydraulic solves actually performed since construction.
    hydro_misses: AtomicU64,
    seed: u64,
    climate: ChicagoClimate,
    workload: WorkloadModel,
    machine: Machine,
    plant: ChilledWaterPlant,
    network: FlowNetwork,
    exchanger: HeatExchanger,
    bpm: BulkPowerModule,
    timeline: OperationalTimeline,
    signature: PrecursorSignature,
    flow_ops_noise: mira_weather::ValueNoise,
    monitors: Vec<CoolantMonitor>,
    availability: RackAvailability,
    /// Per-rack, time-sorted CMF instants (every rack in an incident's
    /// cascade records its own failure).
    cmf_times: Vec<Vec<SimTime>>,
}

impl TelemetryEngine {
    /// Builds the engine from the models and the failure ground truth.
    #[must_use]
    pub fn new(seed: u64, schedule: &CmfSchedule, ras_log: &RasLog) -> Self {
        let mut availability = RackAvailability::new();
        let mut cmf_times: Vec<Vec<SimTime>> = vec![Vec::new(); RackId::COUNT];
        for incident in schedule.incidents() {
            for &rack in &incident.affected {
                availability.mark_cmf(rack, incident.time);
                cmf_times[rack.index()].push(incident.time);
            }
        }
        for event in ras_log.counted_non_cmfs() {
            availability.mark_non_cmf(event.rack, event.time);
        }
        for times in &mut cmf_times {
            times.sort();
        }

        Self {
            median_cache: Mutex::new(std::collections::HashMap::new()),
            hydro_memo: Mutex::new(None),
            hydro_hits: AtomicU64::new(0),
            hydro_misses: AtomicU64::new(0),
            seed,
            climate: ChicagoClimate::new(seed),
            workload: WorkloadModel::new(seed),
            machine: Machine::mira(),
            plant: ChilledWaterPlant::mira(seed),
            network: FlowNetwork::mira(seed),
            exchanger: HeatExchanger::mira(),
            bpm: BulkPowerModule::mira(),
            timeline: OperationalTimeline::mira(),
            signature: PrecursorSignature::mira(),
            flow_ops_noise: mira_weather::ValueNoise::new(seed ^ 0x0F10_A7E5, 18.0 * 86_400.0),
            monitors: RackId::all()
                .map(|r| CoolantMonitor::new(r, seed))
                .collect(),
            availability,
            cmf_times,
        }
    }

    /// The machine description.
    #[must_use]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The operational timeline.
    #[must_use]
    pub fn timeline(&self) -> &OperationalTimeline {
        &self.timeline
    }

    /// The workload model.
    #[must_use]
    pub fn workload(&self) -> &WorkloadModel {
        &self.workload
    }

    /// The climate model.
    #[must_use]
    pub fn climate(&self) -> &ChicagoClimate {
        &self.climate
    }

    /// Rack availability derived from the failure ground truth.
    #[must_use]
    pub fn availability(&self) -> &RackAvailability {
        &self.availability
    }

    /// The next CMF on `rack` at or after `t`, if any.
    #[must_use]
    pub fn next_cmf(&self, rack: RackId, t: SimTime) -> Option<SimTime> {
        let times = &self.cmf_times[rack.index()];
        let idx = times.partition_point(|&ct| ct < t);
        times.get(idx).copied()
    }

    /// Builds an empty cursor for [`Self::next_cmf_cached`].
    #[must_use]
    // Cursor constructor: one window vector per worker (via
    // sweep_scratch), never in the per-step fold.
    // mira-lint: allow(alloc-in-hot-path)
    pub fn cmf_cursor(&self) -> CmfCursor {
        CmfCursor {
            windows: vec![None; self.cmf_times.len()],
        }
    }

    /// [`Self::next_cmf`] through the cursor: answers from the cached
    /// window between neighbouring CMFs when `t` still falls inside it.
    #[must_use]
    pub fn next_cmf_cached(
        &self,
        rack: RackId,
        t: SimTime,
        cursor: &mut CmfCursor,
    ) -> Option<SimTime> {
        if let Some((lo, hi, next)) = cursor.windows[rack.index()] {
            if lo < t && t <= hi {
                return next;
            }
        }
        let times = &self.cmf_times[rack.index()];
        let idx = times.partition_point(|&ct| ct < t);
        let lo = idx
            .checked_sub(1)
            .and_then(|i| times.get(i))
            .copied()
            .unwrap_or(SimTime::from_epoch_seconds(i64::MIN));
        let next = times.get(idx).copied();
        let hi = next.unwrap_or(SimTime::from_epoch_seconds(i64::MAX));
        cursor.windows[rack.index()] = Some((lo, hi, next));
        next
    }

    /// Hydraulic-solve memo counters `(hits, misses)` accumulated since
    /// the engine was built. A miss is a solve actually performed.
    #[must_use]
    pub fn hydro_cache_stats(&self) -> (u64, u64) {
        (
            self.hydro_hits.load(Ordering::Relaxed),
            self.hydro_misses.load(Ordering::Relaxed),
        )
    }

    /// Computes the shared per-instant state.
    #[must_use]
    pub fn snapshot(&self, t: SimTime) -> SystemSnapshot {
        let weather = self.climate.sample(t);
        let demand = self.workload.system_demand(t);

        let rack_up: Vec<bool> = RackId::all()
            .map(|r| self.availability.is_up(r, t))
            .collect();
        let mut valve_open = [true; RackId::COUNT];
        for (slot, up) in valve_open.iter_mut().zip(&rack_up) {
            *slot = *up;
        }

        // System heat load drives the plant.
        let heat_watts = self
            .bpm
            .heat_to_coolant_watts(demand.utilization, demand.intensity)
            * convert::f64_from_usize(RackId::COUNT);
        let free = ChicagoClimate::free_cooling_fraction_of(weather.outdoor_temperature);
        let plant = self
            .plant
            .respond(t, free, heat_watts, self.timeline.supply_uplift(t));

        let flows = self.distribute_memo(t, self.effective_setpoint(t, &demand), &valve_open);

        SystemSnapshot {
            time: t,
            weather,
            demand,
            supply_temperature: plant.supply_temperature,
            free_cooling_fraction: plant.free_cooling_fraction,
            chiller_power: plant.chiller_power,
            avoided_power: plant.avoided_power,
            flows,
            rack_up,
        }
    }

    /// The hydraulic solve behind [`Self::snapshot`], memoized on its
    /// exact inputs. The memo holds one entry: random access probes the
    /// same instant repeatedly (48 racks per [`TelemetryProvider`]
    /// sample), while a sweep never revisits an instant and pays one
    /// solve per step.
    fn distribute_memo(
        &self,
        t: SimTime,
        setpoint: Gpm,
        valve_open: &[bool; RackId::COUNT],
    ) -> Vec<Gpm> {
        let key = HydroKey::new(t, setpoint, valve_open);
        {
            let memo = self
                .hydro_memo
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some((cached, flows)) = memo.as_ref() {
                if *cached == key {
                    self.hydro_hits.fetch_add(1, Ordering::Relaxed);
                    return flows.clone();
                }
            }
        }
        self.hydro_misses.fetch_add(1, Ordering::Relaxed);
        let flows = self.network.distribute(t, setpoint, valve_open);
        *self
            .hydro_memo
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some((key, flows.clone()));
        flows
    }

    /// The operator-trimmed loop setpoint: the structural 1,250/1,300
    /// GPM level, a small seasonal uplift tracking the second-half
    /// utilization surge (Fig. 4c), and slow operator adjustments.
    #[must_use]
    pub fn effective_setpoint(&self, t: SimTime, demand: &SystemDemand) -> Gpm {
        self.effective_setpoint_with(t, demand, &mut self.flow_ops_noise.fractal_cursor(2))
    }

    /// [`Self::effective_setpoint`] through an operator-noise cursor;
    /// bit-identical to the cold path from any prior cursor state.
    #[must_use]
    pub fn effective_setpoint_with(
        &self,
        t: SimTime,
        demand: &SystemDemand,
        cursor: &mut FractalCursor,
    ) -> Gpm {
        let base = self.timeline.flow_setpoint(t);
        // Operators conservatively raise flow as utilization climbs:
        // ≈ +1 % at peak-season load.
        let seasonal = 1.0 + 0.013 * (demand.utilization - 0.80).max(0.0) / 0.13;
        let ops = self
            .flow_ops_noise
            .fractal_with(convert::f64_from_i64(t.epoch_seconds()), cursor)
            * 30.0;
        (base * seasonal + Gpm::new(ops)).saturating()
    }

    /// Ground-truth physical state of `rack` given a snapshot at the
    /// same instant.
    #[must_use]
    pub fn rack_truth(&self, rack: RackId, snap: &SystemSnapshot) -> RackTruth {
        let t = snap.time;
        let air = self.machine.airflow().at(rack);
        let ambient_temperature = snap.weather.indoor_temperature + air.temperature_offset;
        let ambient_humidity =
            RelHumidity::new(snap.weather.indoor_humidity.value() * air.humidity_factor);

        let up = snap.rack_up[rack.index()];
        let load = if up {
            self.workload.rack_load_with(t, rack, &snap.demand)
        } else {
            mira_workload::RackLoad {
                utilization: 0.0,
                intensity: 0.0,
            }
        };

        let mut flow = snap.flows[rack.index()];
        let mut inlet = snap.supply_temperature;

        // Pre-failure signature on racks with an impending CMF, scaled
        // by the event's severity (not every incident telegraphs
        // equally hard).
        if let Some(cmf_at) = self.next_cmf(rack, t) {
            let lead = cmf_at - t;
            if lead <= self.signature.horizon() {
                let severity = self
                    .signature
                    .event_severity(rack.index(), cmf_at.epoch_seconds());
                inlet =
                    inlet * PrecursorSignature::scale(self.signature.inlet_factor(lead), severity);
                flow = flow * PrecursorSignature::scale(self.signature.flow_factor(lead), severity);
            }
        }

        let power = if up {
            self.bpm.draw(load.utilization, load.intensity)
        } else {
            // Power enclosure is off; monitors report only standby draw.
            Kilowatts::new(1.5)
        };
        let heat = if up {
            self.bpm
                .heat_to_coolant_watts(load.utilization, load.intensity)
        } else {
            Watts::new(0.0)
        };
        // The outlet dip of Fig. 12 needs no separate injection: the
        // sagging inlet propagates through the heat exchanger, producing
        // the ≈5 % outlet drop the paper reports (a 7 % drop on 64 F in,
        // unchanged ΔT, is ≈5.7 % on 79 F out).
        let outlet = self.exchanger.outlet_temperature(inlet, flow, heat);

        RackTruth {
            utilization: load.utilization,
            intensity: load.intensity,
            ambient_temperature,
            ambient_humidity,
            flow,
            inlet,
            outlet,
            power,
            is_up: up,
        }
    }

    /// The coolant-monitor record for `rack` given a snapshot.
    #[must_use]
    pub fn observe(&self, rack: RackId, snap: &SystemSnapshot) -> CoolantMonitorSample {
        let truth = self.rack_truth(rack, snap);
        self.observe_truth(rack, snap.time, &truth)
    }

    /// The coolant-monitor record for `rack` given its already-computed
    /// ground truth at `t` — lets sweep callers reuse one truth for
    /// both the truth-based and observed channels instead of deriving
    /// it twice.
    #[must_use]
    pub fn observe_truth(
        &self,
        rack: RackId,
        t: SimTime,
        truth: &RackTruth,
    ) -> CoolantMonitorSample {
        self.monitors[rack.index()].observe(
            t,
            truth.ambient_temperature,
            truth.ambient_humidity,
            truth.flow,
            truth.inlet,
            truth.outlet,
            truth.power,
        )
    }

    /// Samples all 48 racks at `t` (one snapshot, 48 observations).
    ///
    /// Shares the sweep scratch path with
    /// [`TelemetryEngine::sweep_step_into`]: the snapshot, ground
    /// truths and observations are computed exactly once each.
    #[must_use]
    pub fn observe_all(&self, t: SimTime) -> (SystemSnapshot, Vec<CoolantMonitorSample>) {
        let mut scratch = self.sweep_scratch();
        self.sweep_step_into(t, &mut scratch);
        let step = scratch.into_step();
        (step.snapshot, step.samples)
    }

    /// Builds the reusable per-worker scratch for
    /// [`Self::sweep_step_into`].
    #[must_use]
    // This *is* the scratch constructor: it allocates the reusable
    // buffers exactly once per worker so the per-step fold doesn't
    // have to. mira-lint: allow(alloc-in-hot-path)
    pub fn sweep_scratch(&self) -> SweepScratch {
        let origin = SimTime::from_epoch_seconds(0);
        SweepScratch {
            step: SweepStep {
                snapshot: SystemSnapshot {
                    time: origin,
                    weather: WeatherSample {
                        outdoor_temperature: Fahrenheit::new(0.0),
                        outdoor_humidity: RelHumidity::new(0.0),
                        outdoor_dew_point: Fahrenheit::new(0.0),
                        indoor_temperature: Fahrenheit::new(0.0),
                        indoor_humidity: RelHumidity::new(0.0),
                    },
                    demand: SystemDemand {
                        utilization: 0.0,
                        intensity: 0.0,
                        in_maintenance: false,
                    },
                    supply_temperature: Fahrenheit::new(0.0),
                    free_cooling_fraction: 0.0,
                    chiller_power: Kilowatts::new(0.0),
                    avoided_power: Kilowatts::new(0.0),
                    flows: Vec::with_capacity(RackId::COUNT),
                    rack_up: Vec::with_capacity(RackId::COUNT),
                },
                civil: origin.civil_parts(),
                truths: Vec::with_capacity(RackId::COUNT),
                samples: Vec::with_capacity(RackId::COUNT),
            },
            block: SweepBlock::with_capacity(crate::sweep::SWEEP_BLOCK),
            civil: CivilDayCache::default(),
            climate: self.climate.cursor(),
            workload: self.workload.cursor(),
            avail: self.availability.cursor(),
            cmf: self.cmf_cursor(),
            plant: NoiseCursor::default(),
            setpoint_ops: self.flow_ops_noise.fractal_cursor(2),
            flow: self.network.flow_cursor(),
            valve_open: [true; RackId::COUNT],
            air_temp_offset: {
                let mut lanes = [0.0; RackId::COUNT];
                for (r, lane) in self.machine.airflow().iter().zip(lanes.iter_mut()) {
                    *lane = r.1.temperature_offset.value();
                }
                lanes
            },
            air_humidity_factor: {
                let mut lanes = [0.0; RackId::COUNT];
                for (r, lane) in self.machine.airflow().iter().zip(lanes.iter_mut()) {
                    *lane = r.1.humidity_factor;
                }
                lanes
            },
            monitor_bank: MonitorBank::new(&self.monitors),
        }
    }

    /// Computes the full [`SweepStep`] at `t` into `scratch`, reusing
    /// its buffers and cursors: zero heap allocation per step once the
    /// scratch is warm, and bit-identical to [`Self::sweep_step`].
    ///
    /// This is the batched kernel [`Self::sweep_steps_into`] run over a
    /// one-instant block, with the per-instant view materialized into
    /// `scratch.step()`. Every cache consulted (noise-lattice cursors,
    /// the civil-day decomposition, availability and CMF windows) is
    /// keyed on pure inputs, so the result never depends on what the
    /// scratch was last used for.
    pub fn sweep_step_into(&self, t: SimTime, scratch: &mut SweepScratch) {
        self.sweep_steps_into(t, mira_cooling::monitor::SAMPLE_INTERVAL, 1, scratch);
        let SweepScratch { step, block, .. } = scratch;
        block.materialize_into(0, step);
    }

    /// Computes `len` consecutive [`SweepStep`]s — the grid `from`,
    /// `from + step`, … — into the scratch's structure-of-arrays
    /// [`SweepBlock`], the batched sweep hot path.
    ///
    /// The work is staged so each pass streams contiguous `[f64; 48]`
    /// lane rows the compiler can autovectorize:
    ///
    /// 1. per-instant scalars (calendar, weather, demand, availability
    ///    mask, plant response, setpoint) through the shared cursors in
    ///    chronological order — exactly the order the per-step path
    ///    advances them;
    /// 2. hydraulic flow distribution lanes;
    /// 3. workload lanes (placement wobble, clamps), zeroed on down
    ///    racks as the scalar path's skip yields exact zeros;
    /// 4. ambient thermal lanes from the precomputed airflow factors;
    /// 5. hydraulic truth lanes (supply inlet + distributed flow) with
    ///    the CMF precursor signature folded in — lanes whose CMF
    ///    window shows no failure within the signature horizon of the
    ///    whole block (the overwhelmingly common case) skip the
    ///    per-step branch entirely;
    /// 6. power draw, heat and exchanger outlet lanes;
    /// 7. sensor-noise observation lanes through the [`MonitorBank`].
    ///
    /// Every lane expression matches the scalar path's arithmetic and
    /// evaluation order, so each of the block's per-instant views is
    /// bit-identical to [`Self::sweep_step_into`] at the same instant;
    /// no heap allocation happens once the scratch is warm.
    // Every `[k]` is `k < len` over rows sized by `ensure_len(len)`,
    // and every `[l]` is `l in 0..RackId::COUNT` over `[_; 48]` rows.
    // mira-lint: allow(panic-reachability)
    pub fn sweep_steps_into(
        &self,
        from: SimTime,
        step: Duration,
        len: usize,
        scratch: &mut SweepScratch,
    ) {
        let SweepScratch {
            block,
            civil,
            climate,
            workload,
            avail,
            cmf,
            plant,
            setpoint_ops,
            flow,
            valve_open,
            air_temp_offset,
            air_humidity_factor,
            monitor_bank,
            ..
        } = scratch;
        block.ensure_len(len);
        if len == 0 {
            return;
        }

        // The sweep grid never revisits an instant, so every instant is
        // a fresh hydraulic solve: one batched add keeps the miss
        // counter honest about work performed without a per-step atomic
        // RMW. The single-entry `hydro_memo` is never consulted here —
        // it serves only random-access callers via `snapshot`.
        self.hydro_misses.fetch_add(len as u64, Ordering::Relaxed);

        // Pass 1: per-instant scalars.
        for k in 0..len {
            let t = from + step * convert::i64_from_usize(k);
            let parts = civil.resolve(t);
            let weather = self.climate.sample_with(t, climate);
            let demand = self.workload.system_demand_with(t, parts.date, workload);
            self.availability.fill_up_mask(t, avail, valve_open);
            let heat_watts = self
                .bpm
                .heat_to_coolant_watts(demand.utilization, demand.intensity)
                * convert::f64_from_usize(RackId::COUNT);
            let free = ChicagoClimate::free_cooling_fraction_of(weather.outdoor_temperature);
            let plant_load =
                self.plant
                    .respond_with(t, free, heat_watts, self.timeline.supply_uplift(t), plant);
            let setpoint = self.effective_setpoint_with(t, &demand, setpoint_ops);
            block.times[k] = t;
            block.civils[k] = parts;
            block.weathers[k] = weather;
            block.demands[k] = demand;
            block.plants[k] = plant_load;
            block.setpoints[k] = setpoint.value();
            block.up[k] = *valve_open;
        }

        // Pass 2: hydraulic distribution lanes.
        for k in 0..len {
            self.network.distribute_lanes(
                block.times[k],
                Gpm::new(block.setpoints[k]),
                &block.up[k],
                flow,
                &mut block.dist_flow[k],
            );
        }

        // Pass 3: workload lanes. Down racks read zero — the scalar
        // path skips them, and a discarded pure lane value cannot
        // perturb any other lane.
        for k in 0..len {
            self.workload.rack_load_lanes(
                block.times[k],
                &block.demands[k],
                workload,
                &mut block.util[k],
                &mut block.intensity[k],
            );
            let up = &block.up[k];
            let (util, intensity) = (&mut block.util[k], &mut block.intensity[k]);
            for l in 0..RackId::COUNT {
                if !up[l] {
                    util[l] = 0.0;
                    intensity[l] = 0.0;
                }
            }
        }

        // Pass 4: ambient thermal lanes.
        for k in 0..len {
            let it = block.weathers[k].indoor_temperature.value();
            let ih = block.weathers[k].indoor_humidity.value();
            let (ambient_t, ambient_rh) = (&mut block.ambient_t[k], &mut block.ambient_rh[k]);
            for l in 0..RackId::COUNT {
                ambient_t[l] = it + air_temp_offset[l];
                // `RelHumidity::new` clamps into [0, 100]; the lanes
                // store the post-clamp value the scalar truth carries.
                ambient_rh[l] = (ih * air_humidity_factor[l]).clamp(0.0, 100.0);
            }
        }

        // Pass 5: hydraulic truth lanes plus the precursor signature.
        for k in 0..len {
            block.inlet[k].fill(block.plants[k].supply_temperature.value());
            block.flow[k] = block.dist_flow[k];
        }
        let t_last = block.times[len - 1];
        for l in 0..RackId::COUNT {
            let rack = RackId::from_index(l);
            // One window probe at the block start classifies the whole
            // lane: the cached CMF window covers (prev, next], so every
            // instant through `t_last` resolves to the same next CMF,
            // and if that CMF (if any) is further than the signature
            // horizon past the block's end, no instant in the block
            // carries a precursor.
            let clean = match self.next_cmf_cached(rack, from, cmf) {
                None => true,
                Some(cmf_at) => cmf_at - t_last > self.signature.horizon(),
            };
            if clean {
                continue;
            }
            for k in 0..len {
                let t = block.times[k];
                if let Some(cmf_at) = self.next_cmf_cached(rack, t, cmf) {
                    let lead = cmf_at - t;
                    if lead <= self.signature.horizon() {
                        let severity = self
                            .signature
                            .event_severity(rack.index(), cmf_at.epoch_seconds());
                        block.inlet[k][l] *=
                            PrecursorSignature::scale(self.signature.inlet_factor(lead), severity);
                        block.flow[k][l] *=
                            PrecursorSignature::scale(self.signature.flow_factor(lead), severity);
                    }
                }
            }
        }

        // Pass 6: power, heat, and exchanger outlet lanes.
        for k in 0..len {
            let up = &block.up[k];
            let (util, intensity) = (&block.util[k], &block.intensity[k]);
            let (inlet, flow_lane) = (&block.inlet[k], &block.flow[k]);
            let (power, outlet) = (&mut block.power[k], &mut block.outlet[k]);
            for l in 0..RackId::COUNT {
                let (draw, heat) = if up[l] {
                    (
                        self.bpm.draw(util[l], intensity[l]).value(),
                        self.bpm.heat_to_coolant_watts(util[l], intensity[l]),
                    )
                } else {
                    // Power enclosure off: standby draw, no heat.
                    (1.5, Watts::new(0.0))
                };
                power[l] = draw;
                outlet[l] = self
                    .exchanger
                    .outlet_temperature(Fahrenheit::new(inlet[l]), Gpm::new(flow_lane[l]), heat)
                    .value();
            }
        }

        // Pass 7: sensor observation lanes.
        let [o0, o1, o2, o3, o4, o5] = &mut block.obs;
        for k in 0..len {
            monitor_bank.observe_lanes(
                block.times[k],
                [
                    &block.ambient_t[k][..],
                    &block.ambient_rh[k][..],
                    &block.flow[k][..],
                    &block.inlet[k][..],
                    &block.outlet[k][..],
                    &block.power[k][..],
                ],
                [
                    &mut o0[k][..],
                    &mut o1[k][..],
                    &mut o2[k][..],
                    &mut o3[k][..],
                    &mut o4[k][..],
                    &mut o5[k][..],
                ],
            );
        }
    }

    /// The seed the engine was built with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Reusable per-worker state for the allocation-free sweep path: the
/// [`SweepStep`] buffers plus every model cursor, threaded through
/// [`TelemetryEngine::sweep_step_into`].
///
/// One scratch per sequential fold (the parallel executor builds one
/// per shard). All cached values are pure functions of their inputs, so
/// reusing a scratch across arbitrary instants — even non-monotone ones
/// — produces exactly the cold-path bits.
#[derive(Debug, Clone)]
pub struct SweepScratch {
    step: SweepStep,
    block: SweepBlock,
    civil: CivilDayCache,
    climate: ClimateCursor,
    workload: WorkloadCursor,
    avail: AvailabilityCursor,
    cmf: CmfCursor,
    plant: NoiseCursor,
    setpoint_ops: FractalCursor,
    flow: FlowCursor,
    valve_open: [bool; RackId::COUNT],
    /// Per-rack airflow temperature offsets (static machine layout).
    air_temp_offset: [f64; RackId::COUNT],
    /// Per-rack airflow humidity factors (static machine layout).
    air_humidity_factor: [f64; RackId::COUNT],
    /// SoA view of the 48 coolant monitors' calibration constants.
    monitor_bank: MonitorBank,
}

impl SweepScratch {
    /// The most recently computed step.
    #[must_use]
    pub fn step(&self) -> &SweepStep {
        &self.step
    }

    /// Consumes the scratch, keeping only the last computed step.
    #[must_use]
    pub fn into_step(self) -> SweepStep {
        self.step
    }

    /// The most recently computed block.
    #[must_use]
    pub fn block(&self) -> &SweepBlock {
        &self.block
    }

    /// Split-borrow of the block (read) and the per-step staging
    /// buffer (write), for recorders that materialize per-instant
    /// views out of a batch.
    #[must_use]
    pub fn block_parts(&mut self) -> (&SweepBlock, &mut SweepStep) {
        (&self.block, &mut self.step)
    }
}

/// Structure-of-arrays output of one [`TelemetryEngine::sweep_steps_into`]
/// batch: per-instant scalars plus contiguous `[f64; 48]` lane rows for
/// every per-rack quantity, truth and observed.
///
/// Recorders either read the lanes directly (the summary and obs
/// recorders do) or materialize per-instant [`SweepStep`] views with
/// [`SweepBlock::materialize_into`]; both see exactly the bits the
/// per-step path produces.
#[derive(Debug, Clone)]
pub struct SweepBlock {
    len: usize,
    pub(crate) times: Vec<SimTime>,
    pub(crate) civils: Vec<CivilParts>,
    pub(crate) weathers: Vec<WeatherSample>,
    pub(crate) demands: Vec<SystemDemand>,
    pub(crate) plants: Vec<PlantLoad>,
    pub(crate) setpoints: Vec<f64>,
    pub(crate) up: Vec<[bool; RackId::COUNT]>,
    /// Hydraulic distribution per rack (pre-precursor), GPM.
    pub(crate) dist_flow: Vec<[f64; RackId::COUNT]>,
    pub(crate) util: Vec<[f64; RackId::COUNT]>,
    pub(crate) intensity: Vec<[f64; RackId::COUNT]>,
    pub(crate) ambient_t: Vec<[f64; RackId::COUNT]>,
    pub(crate) ambient_rh: Vec<[f64; RackId::COUNT]>,
    /// Truth flow per rack (post-precursor), GPM.
    pub(crate) flow: Vec<[f64; RackId::COUNT]>,
    pub(crate) inlet: Vec<[f64; RackId::COUNT]>,
    pub(crate) outlet: Vec<[f64; RackId::COUNT]>,
    pub(crate) power: Vec<[f64; RackId::COUNT]>,
    /// Observed sensor lanes in channel order (dc-temperature,
    /// dc-humidity, flow, inlet, outlet, power).
    pub(crate) obs: [Vec<[f64; RackId::COUNT]>; 6],
}

impl SweepBlock {
    /// An empty block with room for `capacity` instants.
    // Scratch constructor: buffers grow here and in `ensure_len`, once
    // per worker, never in the per-step fold.
    // mira-lint: allow(alloc-in-hot-path)
    fn with_capacity(capacity: usize) -> Self {
        let mut block = Self {
            len: 0,
            times: Vec::new(),
            civils: Vec::new(),
            weathers: Vec::new(),
            demands: Vec::new(),
            plants: Vec::new(),
            setpoints: Vec::new(),
            up: Vec::new(),
            dist_flow: Vec::new(),
            util: Vec::new(),
            intensity: Vec::new(),
            ambient_t: Vec::new(),
            ambient_rh: Vec::new(),
            flow: Vec::new(),
            inlet: Vec::new(),
            outlet: Vec::new(),
            power: Vec::new(),
            obs: Default::default(),
        };
        block.ensure_len(capacity);
        block.len = 0;
        block
    }

    /// Grows the rows to hold `len` instants (one-time, amortized; the
    /// executor reuses one block per worker) and sets the active
    /// length. Row contents beyond the previous length are unspecified
    /// until the kernel passes overwrite them — every pass writes all
    /// `len` instants, so no stale value survives into a result.
    // Cold growth only; steady-state blocks never reallocate.
    // mira-lint: allow(alloc-in-hot-path)
    fn ensure_len(&mut self, len: usize) {
        if self.times.len() < len {
            let origin = SimTime::from_epoch_seconds(0);
            self.times.resize(len, origin);
            self.civils.resize(len, origin.civil_parts());
            self.weathers.resize(
                len,
                WeatherSample {
                    outdoor_temperature: Fahrenheit::new(0.0),
                    outdoor_humidity: RelHumidity::new(0.0),
                    outdoor_dew_point: Fahrenheit::new(0.0),
                    indoor_temperature: Fahrenheit::new(0.0),
                    indoor_humidity: RelHumidity::new(0.0),
                },
            );
            self.demands.resize(
                len,
                SystemDemand {
                    utilization: 0.0,
                    intensity: 0.0,
                    in_maintenance: false,
                },
            );
            self.plants.resize(
                len,
                PlantLoad {
                    supply_temperature: Fahrenheit::new(0.0),
                    free_cooling_fraction: 0.0,
                    chiller_power: Kilowatts::new(0.0),
                    avoided_power: Kilowatts::new(0.0),
                },
            );
            self.setpoints.resize(len, 0.0);
            self.up.resize(len, [true; RackId::COUNT]);
            for lanes in [
                &mut self.dist_flow,
                &mut self.util,
                &mut self.intensity,
                &mut self.ambient_t,
                &mut self.ambient_rh,
                &mut self.flow,
                &mut self.inlet,
                &mut self.outlet,
                &mut self.power,
            ] {
                lanes.resize(len, [0.0; RackId::COUNT]);
            }
            for lanes in &mut self.obs {
                lanes.resize(len, [0.0; RackId::COUNT]);
            }
        }
        self.len = len;
    }

    /// Number of instants in the block.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the block holds no instants.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The instant at block index `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is at or past [`Self::len`].
    #[must_use]
    // Documented panic contract; the read is at the asserted `k`.
    // mira-lint: allow(panic-reachability)
    pub fn time(&self, k: usize) -> SimTime {
        assert!(k < self.len, "block index out of range");
        self.times[k]
    }

    /// Materializes the per-instant view at block index `k` into a
    /// reusable [`SweepStep`], re-wrapping each lane value in its unit
    /// newtype. Humidity lanes already carry post-clamp values and flow
    /// and power observations their zero floor, so the constructors are
    /// idempotent here and the materialized step is bit-identical to
    /// the per-step path's.
    ///
    /// # Panics
    ///
    /// Panics if `k` is at or past [`Self::len`].
    // Documented panic contract; all lane indexing below is over
    // fixed-size [_; 48] rows. mira-lint: allow(panic-reachability)
    pub fn materialize_into(&self, k: usize, out: &mut SweepStep) {
        assert!(k < self.len, "block index out of range");
        let snap = &mut out.snapshot;
        snap.time = self.times[k];
        snap.weather = self.weathers[k];
        snap.demand = self.demands[k];
        let plant = self.plants[k];
        snap.supply_temperature = plant.supply_temperature;
        snap.free_cooling_fraction = plant.free_cooling_fraction;
        snap.chiller_power = plant.chiller_power;
        snap.avoided_power = plant.avoided_power;
        snap.flows.clear();
        snap.flows
            .extend(self.dist_flow[k].iter().map(|&f| Gpm::new(f)));
        snap.rack_up.clear();
        snap.rack_up.extend_from_slice(&self.up[k]);
        out.civil = self.civils[k];
        out.truths.clear();
        out.samples.clear();
        for l in 0..RackId::COUNT {
            out.truths.push(RackTruth {
                utilization: self.util[k][l],
                intensity: self.intensity[k][l],
                ambient_temperature: Fahrenheit::new(self.ambient_t[k][l]),
                ambient_humidity: RelHumidity::new(self.ambient_rh[k][l]),
                flow: Gpm::new(self.flow[k][l]),
                inlet: Fahrenheit::new(self.inlet[k][l]),
                outlet: Fahrenheit::new(self.outlet[k][l]),
                power: Kilowatts::new(self.power[k][l]),
                is_up: self.up[k][l],
            });
            out.samples.push(CoolantMonitorSample {
                time: self.times[k],
                rack: RackId::from_index(l),
                dc_temperature: Fahrenheit::new(self.obs[0][k][l]),
                dc_humidity: RelHumidity::new(self.obs[1][k][l]),
                flow: Gpm::new(self.obs[2][k][l]),
                inlet: Fahrenheit::new(self.obs[3][k][l]),
                outlet: Fahrenheit::new(self.obs[4][k][l]),
                power: Kilowatts::new(self.obs[5][k][l]),
            });
        }
    }
}

impl TelemetryProvider for TelemetryEngine {
    fn sample(&self, rack: RackId, t: SimTime) -> CoolantMonitorSample {
        let snap = self.snapshot(t);
        self.observe(rack, &snap)
    }

    fn interval(&self) -> Duration {
        mira_cooling::monitor::SAMPLE_INTERVAL
    }

    fn floor_median(&self, t: SimTime) -> [f64; 6] {
        let key = t.epoch_seconds();
        if let Some(hit) = self
            .median_cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            return *hit;
        }
        // One snapshot for all 48 racks instead of 48 snapshots.
        let (_, samples) = self.observe_all(t);
        let mut columns: [Vec<f64>; 6] = Default::default();
        for s in &samples {
            for (col, v) in columns.iter_mut().zip(s.channels()) {
                col.push(v);
            }
        }
        let mut out = [0.0; 6];
        for (o, col) in out.iter_mut().zip(columns.iter_mut()) {
            col.sort_by(f64::total_cmp);
            *o = col[col.len() / 2];
        }
        let mut cache = self
            .median_cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        // Bounded: the whole six years at 300 s is ~630k instants; cap
        // well below that and reset rather than evict.
        if cache.len() > 400_000 {
            cache.clear();
        }
        cache.insert(key, out);
        out
    }
}

impl Clone for TelemetryEngine {
    fn clone(&self) -> Self {
        Self {
            median_cache: Mutex::new(std::collections::HashMap::new()),
            hydro_memo: Mutex::new(None),
            hydro_hits: AtomicU64::new(0),
            hydro_misses: AtomicU64::new(0),
            seed: self.seed,
            climate: self.climate,
            workload: self.workload.clone(),
            machine: self.machine.clone(),
            plant: self.plant.clone(),
            network: self.network.clone(),
            exchanger: self.exchanger,
            bpm: self.bpm,
            timeline: self.timeline,
            signature: self.signature.clone(),
            flow_ops_noise: self.flow_ops_noise,
            monitors: self.monitors.clone(),
            availability: self.availability.clone(),
            cmf_times: self.cmf_times.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mira_timeseries::Date;

    fn engine() -> TelemetryEngine {
        let schedule = CmfSchedule::generate(21);
        let log = RasLog::assemble(&schedule, 21);
        TelemetryEngine::new(21, &schedule, &log)
    }

    fn quiet_time() -> SimTime {
        // 2017 had zero CMFs: telemetry is clean.
        SimTime::from_date(Date::new(2017, 5, 10)) + Duration::from_hours(14)
    }

    #[test]
    fn healthy_sample_is_in_nominal_ranges() {
        let e = engine();
        let (_, samples) = e.observe_all(quiet_time());
        assert_eq!(samples.len(), 48);
        for s in &samples {
            assert!((55.0..75.0).contains(&s.inlet.value()), "inlet {}", s.inlet);
            assert!(
                (70.0..95.0).contains(&s.outlet.value()),
                "outlet {}",
                s.outlet
            );
            assert!((20.0..32.0).contains(&s.flow.value()), "flow {}", s.flow);
            assert!((40.0..75.0).contains(&s.power.value()), "power {}", s.power);
            assert!((70.0..95.0).contains(&s.dc_temperature.value()));
            assert!((20.0..45.0).contains(&s.dc_humidity.value()));
        }
    }

    #[test]
    fn system_power_in_paper_band() {
        let e = engine();
        let (_, samples) = e.observe_all(quiet_time());
        let mw: f64 = samples.iter().map(|s| s.power.value()).sum::<f64>() / 1000.0;
        assert!((2.3..3.2).contains(&mw), "system power {mw} MW");
    }

    #[test]
    fn engine_is_deterministic() {
        let a = engine();
        let b = engine();
        let t = quiet_time();
        assert_eq!(a.observe_all(t).1, b.observe_all(t).1);
    }

    #[test]
    fn random_access_matches_snapshot_path() {
        let e = engine();
        let t = quiet_time();
        let (snap, samples) = e.observe_all(t);
        let rack = RackId::new(1, 8);
        assert_eq!(e.observe(rack, &snap), samples[rack.index()]);
        assert_eq!(
            TelemetryProvider::sample(&e, rack, t),
            samples[rack.index()]
        );
    }

    #[test]
    fn downed_rack_reads_dark() {
        let e = engine();
        let schedule = CmfSchedule::generate(21);
        let incident = &schedule.incidents()[0];
        let during = incident.time + Duration::from_hours(1);
        let snap = e.snapshot(during);
        let truth = e.rack_truth(incident.epicenter, &snap);
        assert!(!truth.is_up);
        assert_eq!(truth.utilization, 0.0);
        assert!(truth.power.value() < 5.0);
        assert_eq!(truth.flow.value(), 0.0, "valve closed");
    }

    #[test]
    fn precursor_shows_in_epicenter_telemetry() {
        let e = engine();
        let schedule = CmfSchedule::generate(21);
        let incident = &schedule.incidents()[0];
        let rack = incident.epicenter;
        // Trough of the inlet sag ~2 h before failure.
        let trough = incident.time - Duration::from_hours(2);
        let healthy = incident.time - Duration::from_hours(30);
        let s_trough = TelemetryProvider::sample(&e, rack, trough);
        let s_healthy = TelemetryProvider::sample(&e, rack, healthy);
        let drop = (s_healthy.inlet.value() - s_trough.inlet.value()) / s_healthy.inlet.value();
        assert!(
            (0.03..0.10).contains(&drop),
            "inlet sag {drop} (healthy {}, trough {})",
            s_healthy.inlet,
            s_trough.inlet
        );
    }

    #[test]
    fn next_cmf_lookup() {
        let e = engine();
        let schedule = CmfSchedule::generate(21);
        let incident = &schedule.incidents()[0];
        let before = incident.time - Duration::from_hours(5);
        assert_eq!(e.next_cmf(incident.epicenter, before), Some(incident.time));
    }

    #[test]
    fn winter_inlet_warmer_than_summer() {
        // Free cooling makes winter supply slightly warmer (Fig. 4d).
        let e = engine();
        let mean_inlet = |y: i32, m: u8| {
            let mut total = 0.0;
            let mut n = 0u32;
            for d in [3u8, 9, 15, 21] {
                for h in [2i64, 8, 14, 20] {
                    let t = SimTime::from_date(Date::new(y, m, d)) + Duration::from_hours(h);
                    let (_, samples) = e.observe_all(t);
                    total += samples.iter().map(|s| s.inlet.value()).sum::<f64>() / 48.0;
                    n += 1;
                }
            }
            total / f64::from(n)
        };
        let feb = mean_inlet(2015, 2);
        let aug = mean_inlet(2015, 8);
        assert!(feb > aug + 0.5, "feb {feb} aug {aug}");
    }
}
