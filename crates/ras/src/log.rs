//! The assembled RAS log: raw storms, follow-on failures, and the
//! counted (de-duplicated) failure record.

use serde::{Deserialize, Serialize};

use mira_facility::RackId;
use mira_timeseries::{Duration, SimTime};
use mira_units::convert;

use crate::aftermath::AftermathModel;
use crate::cascade::CascadePlanner;
use crate::dedup::FailureDeduplicator;
use crate::event::{FailureKind, RasEvent};
use crate::schedule::CmfSchedule;

/// The six-year RAS log: every raw message plus the counted failures
/// under the paper's methodology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RasLog {
    raw: Vec<RasEvent>,
    counted: Vec<RasEvent>,
}

impl RasLog {
    /// Assembles the full log from a CMF schedule: renders every storm,
    /// draws the post-CMF follow-on failures, merges, and applies the
    /// counting methodology.
    #[must_use]
    pub fn assemble(schedule: &CmfSchedule, seed: u64) -> Self {
        let planner = CascadePlanner::new(seed ^ 0x57_0AD5);
        let aftermath = AftermathModel::new(seed ^ 0xAF_7E12);

        let mut raw = Vec::new();
        for incident in schedule.incidents() {
            raw.extend(planner.render(incident).messages);
            raw.extend(aftermath.events_after(incident));
        }
        raw.sort_by_key(|e| e.time);

        let counted = FailureDeduplicator::mira().filter(&raw);
        Self { raw, counted }
    }

    /// Every raw RAS message, time-ordered.
    #[must_use]
    pub fn raw(&self) -> &[RasEvent] {
        &self.raw
    }

    /// The counted failures (fatal, de-duplicated), time-ordered.
    #[must_use]
    pub fn counted(&self) -> &[RasEvent] {
        &self.counted
    }

    /// Counted CMFs.
    pub fn counted_cmfs(&self) -> impl Iterator<Item = &RasEvent> {
        self.counted.iter().filter(|e| e.kind.is_cmf())
    }

    /// Counted non-CMF failures.
    pub fn counted_non_cmfs(&self) -> impl Iterator<Item = &RasEvent> {
        self.counted.iter().filter(|e| !e.kind.is_cmf())
    }

    /// Counted CMFs per rack.
    #[must_use]
    pub fn cmf_by_rack(&self) -> [u32; RackId::COUNT] {
        let mut counts = [0u32; RackId::COUNT];
        for e in self.counted_cmfs() {
            counts[e.rack.index()] += 1;
        }
        counts
    }

    /// Counted CMFs per calendar year over `years`.
    #[must_use]
    pub fn cmf_by_year(&self, years: std::ops::RangeInclusive<i32>) -> Vec<(i32, u32)> {
        years
            .map(|y| {
                let n = convert::u32_from_usize(
                    self.counted_cmfs()
                        .filter(|e| e.time.date().year() == y)
                        .count(),
                );
                (y, n)
            })
            .collect()
    }

    /// Share of counted non-CMF failures by kind.
    #[must_use]
    pub fn non_cmf_type_mix(&self) -> Vec<(FailureKind, f64)> {
        let total = convert::f64_from_usize(self.counted_non_cmfs().count());
        FailureKind::ALL
            .into_iter()
            .filter(|k| !k.is_cmf())
            .map(|k| {
                let n = convert::f64_from_usize(
                    self.counted_non_cmfs().filter(|e| e.kind == k).count(),
                );
                (k, if total > 0.0 { n / total } else { 0.0 })
            })
            .collect()
    }

    /// Counted non-CMF failures occurring within `window` after `t`.
    #[must_use]
    pub fn non_cmfs_within(&self, t: SimTime, window: Duration) -> usize {
        self.counted_non_cmfs()
            .filter(|e| e.time >= t && e.time - t < window)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::TOTAL_FAILURES;

    #[test]
    fn counted_cmfs_match_schedule() {
        let schedule = CmfSchedule::generate(11);
        let log = RasLog::assemble(&schedule, 11);
        assert_eq!(log.counted_cmfs().count() as u32, TOTAL_FAILURES);
    }

    #[test]
    fn raw_log_is_a_flood() {
        let schedule = CmfSchedule::generate(11);
        let log = RasLog::assemble(&schedule, 11);
        assert!(
            log.raw().len() > 50_000,
            "raw log has {} messages",
            log.raw().len()
        );
        assert!(log.counted().len() < log.raw().len() / 50);
    }

    #[test]
    fn per_rack_counts_survive_assembly() {
        let schedule = CmfSchedule::generate(12);
        let log = RasLog::assemble(&schedule, 12);
        assert_eq!(log.cmf_by_rack(), schedule.failures_by_rack());
    }

    #[test]
    fn follow_on_failures_exist_and_mix_is_right() {
        let schedule = CmfSchedule::generate(13);
        let log = RasLog::assemble(&schedule, 13);
        let non_cmf = log.counted_non_cmfs().count();
        assert!(non_cmf > 100, "follow-ons: {non_cmf}");
        let mix = log.non_cmf_type_mix();
        let ac_dc = mix
            .iter()
            .find(|(k, _)| *k == FailureKind::AcToDcPower)
            .unwrap()
            .1;
        assert!((0.42..0.58).contains(&ac_dc), "AC-DC share {ac_dc}");
    }

    #[test]
    fn yearly_cmf_counts() {
        let schedule = CmfSchedule::generate(14);
        let log = RasLog::assemble(&schedule, 14);
        let by_year = log.cmf_by_year(2014..=2019);
        assert_eq!(by_year.iter().map(|(_, n)| n).sum::<u32>(), TOTAL_FAILURES);
        assert_eq!(by_year.iter().find(|(y, _)| *y == 2017).unwrap().1, 0);
    }

    #[test]
    fn raw_is_time_ordered() {
        let schedule = CmfSchedule::generate(15);
        let log = RasLog::assemble(&schedule, 15);
        for pair in log.raw().windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
    }
}
