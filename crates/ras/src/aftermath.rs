//! The elevated non-CMF failure hazard after a coolant incident.
//!
//! Fig. 14 of the paper: in the 48 hours after a CMF the system suffers
//! non-coolant failures at a sharply elevated, decaying rate — the rate
//! within 6 h is under 75 % of the rate within 3 h, and by 48 h it is
//! down to 10 %. Half of those follow-on failures are "AC to DC power"
//! (bulk power modules restarting into damaged state), with BQC/BQL
//! module failures next, and they land *anywhere* on the machine, not
//! near the epicenter (Fig. 15).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use mira_facility::RackId;
use mira_timeseries::Duration;
use mira_units::convert;

use crate::event::{FailureKind, RasEvent};
use crate::schedule::ScheduledIncident;

/// Post-CMF follow-on failure generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AftermathModel {
    seed: u64,
    /// Expected follow-on failures per affected rack of the incident.
    mean_per_affected_rack: f64,
    /// Hazard decay constant (per hour).
    lambda_per_hour: f64,
}

/// The paper's post-CMF failure-type mix (Fig. 14b): AC-to-DC power 50 %,
/// BQC 17 %, BQL 15 %, clock card 8 %, software 8 %, process 2 %.
pub const TYPE_MIX: [(FailureKind, f64); 6] = [
    (FailureKind::AcToDcPower, 0.50),
    (FailureKind::Bqc, 0.17),
    (FailureKind::Bql, 0.15),
    (FailureKind::ClockCard, 0.08),
    (FailureKind::Software, 0.08),
    (FailureKind::Process, 0.02),
];

impl AftermathModel {
    /// Creates the model with Fig. 14-calibrated decay.
    ///
    /// `λ = 0.3 / h` gives windowed mean rates of `R(6h)/R(3h) ≈ 0.70`
    /// (paper: "< 75 %") and `R(48h)/R(3h) ≈ 0.10`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            mean_per_affected_rack: 0.9,
            lambda_per_hour: 0.3,
        }
    }

    /// The hazard decay constant in 1/h.
    #[must_use]
    pub fn lambda(&self) -> f64 {
        self.lambda_per_hour
    }

    /// Instantaneous hazard multiplier `e^{-λτ}` at `τ` after the CMF.
    #[must_use]
    pub fn hazard(&self, since_cmf: Duration) -> f64 {
        (-self.lambda_per_hour * since_cmf.as_hours().max(0.0)).exp()
    }

    /// Mean failure rate over the window `[0, horizon]`, relative to the
    /// initial hazard: `(1 − e^{−λT}) / (λT)`.
    #[must_use]
    pub fn windowed_rate(&self, horizon: Duration) -> f64 {
        let lt = self.lambda_per_hour * horizon.as_hours();
        if lt <= 0.0 {
            return 1.0;
        }
        (1.0 - (-lt).exp()) / lt
    }

    /// Draws the follow-on failures for one incident.
    ///
    /// Counts scale with the incident's multiplicity; times follow the
    /// exponential-decay hazard over 48 h; racks are uniform over the
    /// machine (deliberately uncorrelated with the epicenter); kinds
    /// follow [`TYPE_MIX`].
    #[must_use]
    pub fn events_after(&self, incident: &ScheduledIncident) -> Vec<RasEvent> {
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ (incident.time.epoch_seconds() as u64).rotate_left(13),
        );
        let mean = self.mean_per_affected_rack * convert::f64_from_usize(incident.multiplicity());
        let count = sample_poisson(&mut rng, mean);
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            // Inverse-CDF sample of the truncated exponential over 48 h.
            let u: f64 = rng.random();
            let lt48 = self.lambda_per_hour * 48.0;
            let tau_h = -(1.0 - u * (1.0 - (-lt48).exp())).ln() / self.lambda_per_hour;
            let rack = RackId::from_index(rng.random_range(0..RackId::COUNT));
            let kind = draw_kind(&mut rng);
            events.push(RasEvent::fatal(
                incident.time + Duration::from_seconds(convert::i64_from_f64_floor(tau_h * 3600.0)),
                rack,
                kind,
            ));
        }
        events.sort_by_key(|e| e.time);
        events
    }
}

fn draw_kind(rng: &mut StdRng) -> FailureKind {
    let mut u: f64 = rng.random();
    for (kind, p) in TYPE_MIX {
        if u < p {
            return kind;
        }
        u -= p;
    }
    FailureKind::Process
}

fn sample_poisson(rng: &mut StdRng, mean: f64) -> usize {
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // pathological mean guard
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mira_timeseries::{Date, SimTime};

    fn incident(n: usize) -> ScheduledIncident {
        let affected: Vec<RackId> = RackId::all().take(n).collect();
        ScheduledIncident {
            time: SimTime::from_date(Date::new(2016, 6, 10)),
            epicenter: affected[0],
            affected,
        }
    }

    #[test]
    fn windowed_rates_match_fig14a() {
        let m = AftermathModel::new(1);
        let r3 = m.windowed_rate(Duration::from_hours(3));
        let r6 = m.windowed_rate(Duration::from_hours(6));
        let r48 = m.windowed_rate(Duration::from_hours(48));
        assert!(r6 / r3 < 0.75, "6h/3h = {}", r6 / r3);
        assert!((0.07..0.13).contains(&(r48 / r3)), "48h/3h = {}", r48 / r3);
    }

    #[test]
    fn hazard_decays_monotonically() {
        let m = AftermathModel::new(1);
        let mut prev = f64::INFINITY;
        for h in 0..48 {
            let cur = m.hazard(Duration::from_hours(h));
            assert!(cur < prev);
            prev = cur;
        }
        assert_eq!(m.hazard(Duration::ZERO), 1.0);
    }

    #[test]
    fn events_fall_within_48h() {
        let m = AftermathModel::new(1);
        let inc = incident(12);
        for e in m.events_after(&inc) {
            let tau = (e.time - inc.time).as_hours();
            assert!((0.0..=48.0).contains(&tau), "tau {tau}");
            assert!(!e.kind.is_cmf());
        }
    }

    #[test]
    fn type_mix_dominated_by_ac_dc() {
        let m = AftermathModel::new(1);
        let mut counts = std::collections::HashMap::new();
        // Pool many incidents for statistics.
        for day in 0..400 {
            let mut inc = incident(10);
            inc.time = SimTime::from_date(Date::new(2016, 1, 1))
                + Duration::from_days(day)
                + Duration::from_hours(1);
            for e in m.events_after(&inc) {
                *counts.entry(e.kind).or_insert(0u32) += 1;
            }
        }
        let total: u32 = counts.values().sum();
        assert!(total > 1000, "need statistics, got {total}");
        let share =
            |k: FailureKind| f64::from(counts.get(&k).copied().unwrap_or(0)) / f64::from(total);
        assert!((0.45..0.55).contains(&share(FailureKind::AcToDcPower)));
        assert!(share(FailureKind::Process) < 0.05);
        assert!(share(FailureKind::Bqc) > share(FailureKind::ClockCard));
    }

    #[test]
    fn locations_are_not_near_epicenter() {
        let m = AftermathModel::new(1);
        let mut distant = 0;
        let mut total = 0;
        for day in 0..400 {
            let mut inc = incident(1);
            inc.time = SimTime::from_date(Date::new(2016, 1, 1))
                + Duration::from_days(day)
                + Duration::from_hours(2);
            for e in m.events_after(&inc) {
                total += 1;
                if e.rack.grid_distance(inc.epicenter) > 4 {
                    distant += 1;
                }
            }
        }
        assert!(total > 100);
        let frac = f64::from(distant) / f64::from(total);
        assert!(frac > 0.5, "follow-ons should scatter: {frac}");
    }

    #[test]
    fn more_racks_mean_more_followons() {
        let m = AftermathModel::new(1);
        let small: usize = (0..50)
            .map(|i| {
                let mut inc = incident(1);
                inc.time = SimTime::from_date(Date::new(2015, 1, 1)) + Duration::from_days(i);
                m.events_after(&inc).len()
            })
            .sum();
        let large: usize = (0..50)
            .map(|i| {
                let mut inc = incident(24);
                inc.time = SimTime::from_date(Date::new(2015, 1, 1)) + Duration::from_days(i);
                m.events_after(&inc).len()
            })
            .sum();
        assert!(large > small * 4, "small {small} large {large}");
    }
}
