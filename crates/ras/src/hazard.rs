//! Hazard-shape analysis: is the failure process a bathtub?
//!
//! The paper's Sec. VI-A observes that CMFs "do not exhibit traditional
//! bathtub-like behavior" — failures neither concentrate in an infant-
//! mortality phase nor in a wear-out phase; they cluster around an
//! operational event (the 2016 Theta integration). This module provides
//! the tooling to *test* that claim on a failure record: a Weibull
//! maximum-likelihood fit over inter-failure times (shape k < 1 means
//! decreasing hazard, k > 1 increasing — a bathtub needs both phases),
//! plus a phase-rate comparison.

use serde::{Deserialize, Serialize};

use mira_timeseries::{Duration, SimTime};
use mira_units::convert;

/// A fitted Weibull distribution over inter-failure gaps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeibullFit {
    /// Shape parameter `k` (1 = memoryless/exponential).
    pub shape: f64,
    /// Scale parameter `λ`, in hours.
    pub scale_hours: f64,
    /// Number of gaps fitted.
    pub samples: usize,
}

impl WeibullFit {
    /// Fits a Weibull distribution to positive gap durations by maximum
    /// likelihood (Newton iteration on the shape's profile likelihood).
    ///
    /// Returns `None` with fewer than three positive gaps.
    #[must_use]
    pub fn fit(gaps: &[Duration]) -> Option<Self> {
        let x: Vec<f64> = gaps
            .iter()
            .map(|d| d.as_hours())
            .filter(|&h| h > 0.0)
            .collect();
        if x.len() < 3 {
            return None;
        }
        // Normalize by the geometric mean so the profile-likelihood
        // equation becomes f(k) = Σ z^k ln z / Σ z^k − 1/k = 0, which is
        // scale-free and monotone in k — solvable by bisection even for
        // near-degenerate gap sets.
        let ln_raw: Vec<f64> = x.iter().map(|v| v.ln()).collect();
        let mean_ln = ln_raw.iter().sum::<f64>() / convert::f64_from_usize(ln_raw.len());
        let ln: Vec<f64> = ln_raw.iter().map(|l| l - mean_ln).collect();

        let f = |k: f64| {
            let mut s0 = 0.0;
            let mut s1 = 0.0;
            for &li in &ln {
                // z^k computed in log space to avoid overflow.
                let p = (k * li).exp();
                s0 += p;
                s1 += p * li;
            }
            s1 / s0 - 1.0 / k
        };

        // Bracket the root: f is negative for tiny k; expand upward
        // until positive (capped — near-constant gaps push k very high).
        let mut lo = 1e-3;
        let mut hi = 1.0;
        let cap = 1e4;
        while f(hi) < 0.0 && hi < cap {
            lo = hi;
            hi *= 2.0;
        }
        let k = if f(hi) < 0.0 {
            cap
        } else {
            for _ in 0..200 {
                let mid = 0.5 * (lo + hi);
                if f(mid) < 0.0 {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            0.5 * (lo + hi)
        };

        // Scale back on the original data, in log space.
        let sk = ln_raw
            .iter()
            .map(|&l| (k * (l - mean_ln)).exp())
            .sum::<f64>()
            / convert::f64_from_usize(x.len());
        let scale_hours = (mean_ln + sk.ln() / k).exp();
        Some(Self {
            shape: k,
            scale_hours,
            samples: x.len(),
        })
    }

    /// Whether the fitted hazard is increasing (wear-out regime).
    #[must_use]
    pub fn hazard_increasing(&self) -> bool {
        self.shape > 1.0
    }
}

/// Rates of failure over equal phases of a lifetime — the coarse bathtub
/// test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseRates {
    /// Failures per day in each consecutive phase.
    pub per_day: Vec<f64>,
}

impl PhaseRates {
    /// Splits `[start, end)` into `phases` equal spans and computes the
    /// failure rate in each.
    ///
    /// # Panics
    ///
    /// Panics if `phases == 0` or the span is empty.
    #[must_use]
    pub fn compute(times: &[SimTime], start: SimTime, end: SimTime, phases: usize) -> Self {
        assert!(phases > 0, "need at least one phase");
        assert!(start < end, "empty lifetime span");
        let span = (end - start).as_seconds();
        let mut counts = vec![0u32; phases];
        for &t in times {
            if t >= start && t < end {
                let idx = convert::usize_from_i64(
                    (t - start).as_seconds() * convert::i64_from_usize(phases) / span,
                );
                counts[idx.min(phases - 1)] += 1;
            }
        }
        let phase_days = convert::f64_from_i64(span) / 86_400.0 / convert::f64_from_usize(phases);
        Self {
            per_day: counts.iter().map(|&c| f64::from(c) / phase_days).collect(),
        }
    }

    /// A bathtub has its extremes at the edges: first and last phases
    /// both above every interior phase. Returns whether that holds.
    #[must_use]
    pub fn is_bathtub(&self) -> bool {
        if self.per_day.len() < 3 {
            return false;
        }
        let first = self.per_day[0];
        let last = self.per_day.last().copied().unwrap_or(first);
        let interior_max = self.per_day[1..self.per_day.len() - 1]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        first > interior_max && last > interior_max
    }

    /// Index of the phase with the highest rate.
    #[must_use]
    pub fn peak_phase(&self) -> usize {
        self.per_day
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map_or(0, |(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::CmfSchedule;
    use mira_timeseries::Date;

    #[test]
    fn weibull_recovers_exponential_shape() {
        // Exponential gaps (k = 1): inverse-CDF with deterministic
        // stratified uniforms.
        let gaps: Vec<Duration> = (1..200)
            .map(|i| {
                let u = f64::from(i) / 200.0;
                Duration::from_seconds((-u.ln() * 10.0 * 3600.0) as i64)
            })
            .collect();
        let fit = WeibullFit::fit(&gaps).expect("fit");
        assert!((0.85..1.15).contains(&fit.shape), "shape {}", fit.shape);
        assert!(
            (7.0..13.0).contains(&fit.scale_hours),
            "scale {}",
            fit.scale_hours
        );
    }

    #[test]
    fn weibull_detects_increasing_hazard() {
        // Near-constant gaps: strongly increasing hazard (large k).
        let gaps: Vec<Duration> = (0..100)
            .map(|i| Duration::from_seconds(36_000 + i % 7))
            .collect();
        let fit = WeibullFit::fit(&gaps).expect("fit");
        assert!(fit.shape > 3.0, "shape {}", fit.shape);
        assert!(fit.hazard_increasing());
    }

    #[test]
    fn weibull_needs_samples() {
        assert!(WeibullFit::fit(&[Duration::from_hours(1)]).is_none());
        assert!(WeibullFit::fit(&[]).is_none());
    }

    #[test]
    fn mira_cmf_record_is_not_a_bathtub() {
        let schedule = CmfSchedule::generate(3);
        // Count the CMF record itself (one failure per affected rack),
        // not cascade groups: how the 361 events split into incidents
        // varies with the multiplicity draws, but the yearly budgets are
        // the measured ground truth and are seed-invariant.
        let times: Vec<SimTime> = schedule
            .incidents()
            .iter()
            .flat_map(|i| std::iter::repeat_n(i.time, i.affected.len()))
            .collect();
        let rates = PhaseRates::compute(
            &times,
            SimTime::from_date(Date::new(2014, 1, 1)),
            SimTime::from_date(Date::new(2020, 1, 1)),
            6,
        );
        assert!(!rates.is_bathtub(), "rates {:?}", rates.per_day);
        // The peak is the Theta year (phase 2 = 2016), not the edges.
        assert_eq!(rates.peak_phase(), 2, "rates {:?}", rates.per_day);
    }

    #[test]
    fn clustered_failures_give_sub_exponential_shape() {
        // Mira's gaps mix short (burst) and very long (quiet years):
        // over-dispersed, so the Weibull shape is well below 1.
        let schedule = CmfSchedule::generate(3);
        let times: Vec<SimTime> = schedule.incidents().iter().map(|i| i.time).collect();
        let gaps: Vec<Duration> = times.windows(2).map(|w| w[1] - w[0]).collect();
        let fit = WeibullFit::fit(&gaps).expect("fit");
        assert!(fit.shape < 1.0, "shape {} (clustering!)", fit.shape);
    }

    #[test]
    fn synthetic_bathtub_is_detected() {
        // High rates at both ends, quiet middle.
        let start = SimTime::from_date(Date::new(2014, 1, 1));
        let mut times = Vec::new();
        for d in 0..50 {
            times.push(start + Duration::from_days(d * 2)); // infancy
            times.push(start + Duration::from_days(2100 + d * 2)); // wear-out
        }
        times.push(start + Duration::from_days(1000)); // sparse middle
        times.sort();
        let rates =
            PhaseRates::compute(&times, start, SimTime::from_date(Date::new(2020, 1, 1)), 6);
        assert!(rates.is_bathtub(), "rates {:?}", rates.per_day);
    }

    #[test]
    #[should_panic(expected = "need at least one phase")]
    fn zero_phases_rejected() {
        let _ = PhaseRates::compute(
            &[],
            SimTime::from_date(Date::new(2014, 1, 1)),
            SimTime::from_date(Date::new(2015, 1, 1)),
            0,
        );
    }
}
