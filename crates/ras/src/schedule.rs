//! The six-year coolant-monitor-failure ground truth.
//!
//! The paper counts a "failure" per rack shut down, de-duplicated over a
//! 6 h window: one physical incident that takes out eight racks counts as
//! eight failures. Over 2014–2019 Mira accumulated **361** such failures
//! with a decidedly non-bathtub shape: roughly 40 % landed in 2016 while
//! Theta was being plumbed into the shared cooling loop, followed by a
//! quiet stretch of more than two years until late 2018 (Fig. 10). Across
//! racks the counts run from 5 (rack `(2, 7)`) to 14 (rack `(1, 8)`),
//! with no other rack above 9, and essentially no correlation with
//! utilization, outlet temperature, or humidity (Fig. 11).
//!
//! [`CmfSchedule::generate`] synthesizes an incident list consistent with
//! all of those anchors: per-rack quotas (hash-distributed, with the
//! named outliers pinned), per-year budgets, and cascade membership drawn
//! along the clock tree plus non-spatial fill — then hands the simulator
//! a ground truth to render telemetry and RAS storms against.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use mira_facility::{ClockTree, RackId};
use mira_timeseries::{Date, Duration, SimTime};
use mira_units::convert;

/// One scheduled coolant-monitor incident: an epicenter rack plus the
/// racks its failure takes down with it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledIncident {
    /// When the fatal coolant event fires.
    pub time: SimTime,
    /// The rack whose monitor trips first.
    pub epicenter: RackId,
    /// All racks shut down by the incident, epicenter included; each
    /// counts as one failure in the paper's methodology.
    pub affected: Vec<RackId>,
}

impl ScheduledIncident {
    /// Number of rack failures this incident contributes.
    #[must_use]
    pub fn multiplicity(&self) -> usize {
        self.affected.len()
    }
}

/// The full 2014–2019 CMF schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CmfSchedule {
    incidents: Vec<ScheduledIncident>,
}

/// Total rack-level CMF failures over the six years.
pub const TOTAL_FAILURES: u32 = 361;

/// Per-year failure budgets (2014–2019). 2016 carries ≈40 % (the Theta
/// integration); 2017 and most of 2018 are quiet; activity resumes in
/// December 2018.
pub const YEAR_BUDGETS: [(i32, u32); 6] = [
    (2014, 60),
    (2015, 55),
    (2016, 145),
    (2017, 0),
    (2018, 8),
    (2019, 93),
];

impl CmfSchedule {
    /// Generates the schedule for a seed.
    ///
    /// Different seeds rearrange incident times and cascade membership;
    /// the totals (361), the yearly budgets, and the per-rack outliers
    /// are invariant — they are the measured ground truth being
    /// reproduced.
    #[must_use]
    pub fn generate(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xCAFE_F00D);
        let clock = ClockTree::mira();
        let mut quota = per_rack_quota(seed);

        let mut incidents = Vec::new();
        for (year, budget) in YEAR_BUDGETS {
            let mut remaining = budget;
            let window = year_window(year);
            let mut year_groups: Vec<(RackId, Vec<RackId>)> = Vec::new();
            while remaining > 0 {
                // Draw a cascade size, capped by what is left.
                let m = draw_multiplicity(&mut rng).min(convert::usize_from_u32(remaining));
                let with_quota: Vec<RackId> =
                    RackId::all().filter(|r| quota[r.index()] > 0).collect();
                let m = m.min(with_quota.len());
                if m == 0 {
                    break; // all quota consumed (cannot happen: sums match)
                }

                // Epicenter weighted by remaining quota.
                let total_q: u32 = with_quota.iter().map(|r| quota[r.index()]).sum();
                let mut pick = rng.random_range(0..total_q);
                // with_quota is non-empty: m == 0 broke out above.
                // mira-lint: allow(panic-reachability)
                let mut epicenter = with_quota[0];
                for &r in &with_quota {
                    let q = quota[r.index()];
                    if pick < q {
                        epicenter = r;
                        break;
                    }
                    pick -= q;
                }

                // Cascade membership: epicenter, then clock dependents
                // with quota, then non-spatial fill.
                let mut affected = vec![epicenter];
                for r in clock.affected_by(epicenter) {
                    if affected.len() >= m {
                        break;
                    }
                    if r != epicenter && quota[r.index()] > 0 {
                        affected.push(r);
                    }
                }
                let mut fill: Vec<RackId> = with_quota
                    .iter()
                    .copied()
                    .filter(|r| !affected.contains(r))
                    .collect();
                // Fisher-Yates for non-spatial fill order.
                for i in (1..fill.len()).rev() {
                    let j = rng.random_range(0..=i);
                    fill.swap(i, j);
                }
                for r in fill {
                    if affected.len() >= m {
                        break;
                    }
                    affected.push(r);
                }

                for r in &affected {
                    quota[r.index()] -= 1;
                }
                remaining -= convert::u32_from_usize(affected.len());
                year_groups.push((epicenter, affected));
            }

            // Assign stratified times across the year window: one jittered
            // slot per incident, which keeps incidents well beyond the 8 h
            // separation the 6 h de-dup windows need.
            let k = year_groups.len();
            let (start, end) = window;
            let span = (end - start).as_seconds();
            for (i, (epicenter, affected)) in year_groups.into_iter().enumerate() {
                let slot = span / convert::i64_from_usize(k.max(1));
                // The product is non-negative, so floor == truncation and
                // this matches the former bare `as i64` bit-for-bit.
                let jitter = convert::i64_from_f64_floor(
                    rng.random::<f64>() * 0.8 * convert::f64_from_i64(slot),
                );
                let time =
                    start + Duration::from_seconds(slot * convert::i64_from_usize(i) + jitter);
                incidents.push(ScheduledIncident {
                    time,
                    epicenter,
                    affected,
                });
            }
        }
        incidents.sort_by_key(|i| i.time);
        Self { incidents }
    }

    /// All incidents in time order.
    #[must_use]
    pub fn incidents(&self) -> &[ScheduledIncident] {
        &self.incidents
    }

    /// Total rack-level failures (the paper's 361).
    #[must_use]
    pub fn total_rack_failures(&self) -> u32 {
        self.incidents
            .iter()
            .map(|i| convert::u32_from_usize(i.multiplicity()))
            .sum()
    }

    /// Rack failures per calendar year.
    #[must_use]
    pub fn failures_by_year(&self) -> Vec<(i32, u32)> {
        YEAR_BUDGETS
            .iter()
            .map(|&(year, _)| {
                let count = self
                    .incidents
                    .iter()
                    .filter(|i| i.time.date().year() == year)
                    .map(|i| convert::u32_from_usize(i.multiplicity()))
                    .sum();
                (year, count)
            })
            .collect()
    }

    /// Rack failures per rack, indexed by [`RackId::index`].
    #[must_use]
    pub fn failures_by_rack(&self) -> [u32; RackId::COUNT] {
        let mut counts = [0u32; RackId::COUNT];
        for incident in &self.incidents {
            for r in &incident.affected {
                counts[r.index()] += 1;
            }
        }
        counts
    }

    /// Incidents whose epicenter or cascade includes `rack`.
    pub fn incidents_affecting(&self, rack: RackId) -> impl Iterator<Item = &ScheduledIncident> {
        self.incidents
            .iter()
            .filter(move |i| i.affected.contains(&rack))
    }

    /// The next incident at or after `t`, if any.
    #[must_use]
    pub fn next_incident_at_or_after(&self, t: SimTime) -> Option<&ScheduledIncident> {
        let idx = self.incidents.partition_point(|i| i.time < t);
        self.incidents.get(idx)
    }
}

/// Per-rack failure quotas: `(1, 8)` = 14, `(2, 7)` = 5, everyone else in
/// 5–9, summing to exactly 361, with a mild anti-utilization tilt (row 0
/// trends low) so the Fig. 11 correlations come out slightly negative.
fn per_rack_quota(seed: u64) -> [u32; RackId::COUNT] {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0B5E_55ED);
    let hotspot = RackId::new(1, 8);
    let floor = RackId::new(2, 7);

    let mut quota = [0u32; RackId::COUNT];
    quota[hotspot.index()] = 14;
    quota[floor.index()] = 5;

    let others: Vec<RackId> = RackId::all()
        .filter(|&r| r != hotspot && r != floor)
        .collect();
    // Base 7 each; sum must reach 342 over 46 racks (46 × 7 = 322, so 20
    // +1 bumps, applied with the row-0 tilt).
    for &r in &others {
        quota[r.index()] = 7;
    }
    let mut bumps = 342 - 46 * 7; // 20
    let mut guard = 0;
    while bumps > 0 {
        let r = others[rng.random_range(0..others.len())];
        // Row-0 racks (high utilization) dodge bumps more often.
        if r.row() == 0 && rng.random::<f64>() < 0.65 {
            guard += 1;
            if guard > 10_000 {
                break;
            }
            continue;
        }
        if quota[r.index()] < 9 {
            quota[r.index()] += 1;
            bumps -= 1;
        }
    }
    // Mirror some bumps as dips to widen the 5..9 spread without moving
    // the sum: pick pairs (donor with 8-9, receiver with 5-7... actually
    // donor loses, receiver gains).
    for _ in 0..14 {
        let a = others[rng.random_range(0..others.len())];
        let b = others[rng.random_range(0..others.len())];
        // Donors stay at 6+, keeping (2, 7)'s 5 the unique minimum.
        if a != b && quota[a.index()] > 6 && quota[b.index()] < 9 {
            // Tilt: prefer taking from row 0.
            if a.row() == 0 || rng.random::<f64>() < 0.5 {
                quota[a.index()] -= 1;
                quota[b.index()] += 1;
            }
        }
    }
    debug_assert_eq!(quota.iter().sum::<u32>(), TOTAL_FAILURES);
    quota
}

/// The date window CMFs may occur in for a year (for 2016, February
/// through November — the Theta burst; for 2018, December only).
fn year_window(year: i32) -> (SimTime, SimTime) {
    let (from, to) = match year {
        2016 => (Date::new(2016, 2, 1), Date::new(2016, 12, 1)),
        2018 => (Date::new(2018, 12, 1), Date::new(2019, 1, 1)),
        y => (Date::new(y, 1, 5), Date::new(y + 1, 1, 1)),
    };
    (SimTime::from_date(from), SimTime::from_date(to))
}

fn draw_multiplicity(rng: &mut StdRng) -> usize {
    let u: f64 = rng.random();
    if u < 0.55 {
        1
    } else if u < 0.80 {
        rng.random_range(2..=5)
    } else if u < 0.95 {
        rng.random_range(6..=12)
    } else {
        rng.random_range(20..=48)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_is_361() {
        let s = CmfSchedule::generate(1);
        assert_eq!(s.total_rack_failures(), TOTAL_FAILURES);
    }

    #[test]
    fn yearly_budgets_hold() {
        let s = CmfSchedule::generate(1);
        for (year, count) in s.failures_by_year() {
            let budget = YEAR_BUDGETS
                .iter()
                .find(|(y, _)| *y == year)
                .map(|(_, b)| *b)
                .unwrap();
            assert_eq!(count, budget, "year {year}");
        }
    }

    #[test]
    fn theta_year_carries_forty_percent() {
        let s = CmfSchedule::generate(2);
        let by_year = s.failures_by_year();
        let y2016 = by_year.iter().find(|(y, _)| *y == 2016).unwrap().1;
        let share = f64::from(y2016) / f64::from(TOTAL_FAILURES);
        assert!((0.38..0.42).contains(&share), "2016 share {share}");
    }

    #[test]
    fn quiet_gap_after_theta() {
        let s = CmfSchedule::generate(3);
        let mut times: Vec<SimTime> = s.incidents().iter().map(|i| i.time).collect();
        times.sort();
        let last_2016 = times
            .iter()
            .rev()
            .find(|t| t.date().year() == 2016)
            .unwrap();
        let first_after = times.iter().find(|t| **t > *last_2016).unwrap();
        let gap_days = (*first_after - *last_2016).as_days();
        assert!(gap_days > 730.0, "gap {gap_days} days");
    }

    #[test]
    fn rack_distribution_matches_fig11() {
        let s = CmfSchedule::generate(4);
        let counts = s.failures_by_rack();
        assert_eq!(counts[RackId::new(1, 8).index()], 14);
        assert_eq!(counts[RackId::new(2, 7).index()], 5);
        for r in RackId::all() {
            if r != RackId::new(1, 8) && r != RackId::new(2, 7) {
                let c = counts[r.index()];
                assert!((5..=9).contains(&c), "{r} has {c} failures");
            }
        }
        assert_eq!(counts.iter().sum::<u32>(), TOTAL_FAILURES);
    }

    #[test]
    fn incidents_are_separated() {
        let s = CmfSchedule::generate(5);
        let inc = s.incidents();
        for pair in inc.windows(2) {
            let gap = (pair[1].time - pair[0].time).as_hours();
            assert!(gap >= 7.99, "incidents {gap} h apart");
        }
    }

    #[test]
    fn affected_racks_are_unique_per_incident() {
        let s = CmfSchedule::generate(6);
        for incident in s.incidents() {
            let mut seen = std::collections::HashSet::new();
            for r in &incident.affected {
                assert!(seen.insert(*r), "duplicate rack in incident");
            }
            assert!(incident.affected.contains(&incident.epicenter));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(CmfSchedule::generate(9), CmfSchedule::generate(9));
        assert_ne!(
            CmfSchedule::generate(9).incidents()[0].time,
            CmfSchedule::generate(10).incidents()[0].time
        );
    }

    #[test]
    fn next_incident_lookup() {
        let s = CmfSchedule::generate(7);
        let first = &s.incidents()[0];
        assert_eq!(
            s.next_incident_at_or_after(SimTime::from_date(Date::new(2013, 1, 1)))
                .unwrap()
                .time,
            first.time
        );
        let last = s.incidents().last().unwrap();
        assert!(s
            .next_incident_at_or_after(last.time + Duration::from_seconds(1))
            .is_none());
    }

    #[test]
    fn multi_rack_incidents_exist() {
        let s = CmfSchedule::generate(8);
        assert!(
            s.incidents().iter().any(|i| i.multiplicity() >= 6),
            "expected at least one large RAS storm"
        );
        assert!(
            s.incidents().iter().any(|i| i.multiplicity() == 1),
            "expected isolated failures too"
        );
    }
}
