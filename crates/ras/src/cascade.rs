//! RAS storms: the raw message flood around a coolant incident.
//!
//! When a coolant monitor trips fatally, the log does not record one tidy
//! line — it records a *storm*: the epicenter rack floods the log, every
//! cascading rack floods it again as its clock disappears, and warn-level
//! chatter continues until operators bring racks back. The paper reports
//! upwards of 10,000 messages for a single storm, which is exactly why it
//! defines the de-duplicated failure count that [`crate::dedup`]
//! implements.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use mira_timeseries::Duration;

use crate::event::{FailureKind, RasEvent};
use crate::schedule::ScheduledIncident;

/// A fully-rendered storm: the incident plus its raw message flood.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StormIncident {
    /// The underlying scheduled incident.
    pub incident: ScheduledIncident,
    /// Raw RAS messages, time-ordered.
    pub messages: Vec<RasEvent>,
}

impl StormIncident {
    /// Number of raw messages in the storm.
    #[must_use]
    pub fn message_count(&self) -> usize {
        self.messages.len()
    }
}

/// Renders scheduled incidents into raw RAS message floods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CascadePlanner {
    seed: u64,
    /// Raw messages per affected rack for a large storm (scaled down for
    /// small incidents).
    messages_per_rack: u32,
}

impl CascadePlanner {
    /// Creates a planner with Mira-scale message volumes.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            messages_per_rack: 260,
        }
    }

    /// Renders one incident into a storm.
    ///
    /// The epicenter logs a fatal coolant-monitor event at the incident
    /// time; each cascaded rack logs its own fatal CMF within minutes
    /// (they trip as their clock or loop state collapses); and every
    /// affected rack emits a burst of warn-level coolant chatter over the
    /// following hour.
    #[must_use]
    pub fn render(&self, incident: &ScheduledIncident) -> StormIncident {
        let mut rng = StdRng::seed_from_u64(self.seed ^ incident.time.epoch_seconds() as u64);
        let mut messages = Vec::new();

        for (i, &rack) in incident.affected.iter().enumerate() {
            // Fatal record: the epicenter exactly at T, followers within
            // minutes.
            let offset = if i == 0 {
                Duration::ZERO
            } else {
                Duration::from_seconds(rng.random_range(20..600))
            };
            messages.push(RasEvent::fatal(
                incident.time + offset,
                rack,
                FailureKind::CoolantMonitor,
            ));

            // Warn-level flood from this rack over the next hour.
            let burst = self.messages_per_rack + rng.random_range(0..self.messages_per_rack / 2);
            for _ in 0..burst {
                let dt = Duration::from_seconds(rng.random_range(0..3600));
                messages.push(RasEvent::warn(
                    incident.time + offset + dt,
                    rack,
                    FailureKind::CoolantMonitor,
                ));
            }
        }
        messages.sort_by_key(|m| m.time);
        StormIncident {
            incident: incident.clone(),
            messages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mira_facility::RackId;
    use mira_timeseries::{Date, SimTime};

    fn incident(n_racks: usize) -> ScheduledIncident {
        let affected: Vec<RackId> = RackId::all().take(n_racks).collect();
        ScheduledIncident {
            time: SimTime::from_date(Date::new(2016, 6, 10)),
            epicenter: affected[0],
            affected,
        }
    }

    #[test]
    fn every_affected_rack_gets_a_fatal() {
        let planner = CascadePlanner::new(1);
        let storm = planner.render(&incident(8));
        for rack in &storm.incident.affected {
            assert!(
                storm
                    .messages
                    .iter()
                    .any(|m| m.rack == *rack && m.is_fatal_cmf()),
                "{rack} missing fatal"
            );
        }
    }

    #[test]
    fn large_storm_floods_the_log() {
        let planner = CascadePlanner::new(1);
        let storm = planner.render(&incident(48));
        assert!(
            storm.message_count() > 10_000,
            "storm of {} messages",
            storm.message_count()
        );
    }

    #[test]
    fn small_incident_is_still_noisy() {
        let planner = CascadePlanner::new(1);
        let storm = planner.render(&incident(1));
        assert!(storm.message_count() > 100);
    }

    #[test]
    fn messages_are_time_ordered() {
        let planner = CascadePlanner::new(1);
        let storm = planner.render(&incident(12));
        for pair in storm.messages.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
    }

    #[test]
    fn epicenter_fatal_is_at_incident_time() {
        let planner = CascadePlanner::new(1);
        let inc = incident(5);
        let storm = planner.render(&inc);
        let first_fatal = storm
            .messages
            .iter()
            .find(|m| m.is_fatal_cmf() && m.rack == inc.epicenter)
            .unwrap();
        assert_eq!(first_fatal.time, inc.time);
    }

    #[test]
    fn rendering_is_deterministic() {
        let planner = CascadePlanner::new(1);
        let inc = incident(6);
        assert_eq!(planner.render(&inc), planner.render(&inc));
    }
}
