//! The RAS record model.

use std::fmt;

use serde::{Deserialize, Serialize};

use mira_facility::RackId;
use mira_timeseries::SimTime;

/// Severity of a RAS event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Low-risk situation worth recording.
    Warn,
    /// Severe error leading to a rack-level failure.
    Fatal,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warn => "warn",
            Severity::Fatal => "fatal",
        })
    }
}

/// The failure classes Mira's RAS log distinguishes (Fig. 14b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FailureKind {
    /// Coolant monitor failure: the dew point approached the data-center
    /// temperature (condensation risk); solenoid valve closed and power
    /// cut.
    CoolantMonitor,
    /// Bulk power module failing to convert AC to DC at the appropriate
    /// level — half of all post-CMF failures.
    AcToDcPower,
    /// Blue Gene/Q compute-module failure (node cores).
    Bqc,
    /// Blue Gene/Q link-module failure (network links, load balancers,
    /// redundant devices).
    Bql,
    /// Clock-card failure (node synchronization).
    ClockCard,
    /// Software failure: buggy updates, bad network decisions.
    Software,
    /// Background daemon (process) failure — rare, under 2 %.
    Process,
}

impl FailureKind {
    /// All kinds, CMF first.
    pub const ALL: [FailureKind; 7] = [
        FailureKind::CoolantMonitor,
        FailureKind::AcToDcPower,
        FailureKind::Bqc,
        FailureKind::Bql,
        FailureKind::ClockCard,
        FailureKind::Software,
        FailureKind::Process,
    ];

    /// Whether this is a coolant monitor failure.
    #[must_use]
    pub fn is_cmf(self) -> bool {
        self == FailureKind::CoolantMonitor
    }

    /// Short log tag for the kind.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            FailureKind::CoolantMonitor => "CMF",
            FailureKind::AcToDcPower => "AC-DC",
            FailureKind::Bqc => "BQC",
            FailureKind::Bql => "BQL",
            FailureKind::ClockCard => "CARD",
            FailureKind::Software => "SW",
            FailureKind::Process => "PROC",
        }
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FailureKind::CoolantMonitor => "coolant monitor",
            FailureKind::AcToDcPower => "AC to DC power",
            FailureKind::Bqc => "BQC compute module",
            FailureKind::Bql => "BQL link module",
            FailureKind::ClockCard => "clock card",
            FailureKind::Software => "software",
            FailureKind::Process => "process",
        })
    }
}

/// One RAS log record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RasEvent {
    /// Event timestamp.
    pub time: SimTime,
    /// Rack the event was recorded against.
    pub rack: RackId,
    /// Failure class.
    pub kind: FailureKind,
    /// Severity.
    pub severity: Severity,
}

impl RasEvent {
    /// Creates a fatal event.
    #[must_use]
    pub fn fatal(time: SimTime, rack: RackId, kind: FailureKind) -> Self {
        Self {
            time,
            rack,
            kind,
            severity: Severity::Fatal,
        }
    }

    /// Creates a warn event.
    #[must_use]
    pub fn warn(time: SimTime, rack: RackId, kind: FailureKind) -> Self {
        Self {
            time,
            rack,
            kind,
            severity: Severity::Warn,
        }
    }

    /// Whether this is a fatal coolant monitor failure.
    #[must_use]
    pub fn is_fatal_cmf(&self) -> bool {
        self.severity == Severity::Fatal && self.kind.is_cmf()
    }
}

impl fmt::Display for RasEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} {} on {}",
            self.time,
            self.severity,
            self.kind.tag(),
            self.rack
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mira_timeseries::Date;

    #[test]
    fn constructors_set_severity() {
        let t = SimTime::from_date(Date::new(2016, 6, 1));
        let r = RackId::new(1, 8);
        assert_eq!(
            RasEvent::fatal(t, r, FailureKind::CoolantMonitor).severity,
            Severity::Fatal
        );
        assert_eq!(
            RasEvent::warn(t, r, FailureKind::Bql).severity,
            Severity::Warn
        );
    }

    #[test]
    fn fatal_cmf_detection() {
        let t = SimTime::from_date(Date::new(2016, 6, 1));
        let r = RackId::new(0, 0);
        assert!(RasEvent::fatal(t, r, FailureKind::CoolantMonitor).is_fatal_cmf());
        assert!(!RasEvent::warn(t, r, FailureKind::CoolantMonitor).is_fatal_cmf());
        assert!(!RasEvent::fatal(t, r, FailureKind::AcToDcPower).is_fatal_cmf());
    }

    #[test]
    fn display_is_informative() {
        let t = SimTime::from_date(Date::new(2016, 6, 1));
        let e = RasEvent::fatal(t, RackId::new(1, 8), FailureKind::CoolantMonitor);
        let s = e.to_string();
        assert!(s.contains("fatal"));
        assert!(s.contains("CMF"));
        assert!(s.contains("(1, 8)"));
    }

    #[test]
    fn kinds_cover_fig14_types() {
        assert_eq!(FailureKind::ALL.len(), 7);
        assert!(FailureKind::CoolantMonitor.is_cmf());
        assert!(!FailureKind::AcToDcPower.is_cmf());
        assert_eq!(FailureKind::AcToDcPower.to_string(), "AC to DC power");
    }
}
