//! The paper's failure-counting methodology.
//!
//! A RAS storm logs thousands of messages for one physical event, and a
//! tripped rack keeps re-logging until it is recovered. The paper counts
//! failures per rack with a suppression window: after the first fatal
//! CMF on a rack, further CMFs on the *same rack* within **six hours**
//! (the worst-case recovery time) are the same failure; for non-CMF
//! fatals the window is **one hour** (typical recovery). The window is
//! per-rack, not global, precisely so a storm that takes down eight racks
//! counts as eight failures.

use serde::{Deserialize, Serialize};

use mira_facility::RackId;
use mira_timeseries::{Duration, SimTime};

use crate::event::{RasEvent, Severity};

/// Streaming de-duplicator implementing the per-rack suppression windows.
///
/// ```
/// use mira_facility::RackId;
/// use mira_ras::{FailureDeduplicator, FailureKind, RasEvent};
/// use mira_timeseries::{Date, Duration, SimTime};
///
/// let mut dedup = FailureDeduplicator::mira();
/// let t = SimTime::from_date(Date::new(2016, 3, 1));
/// let r = RackId::new(0, 0);
/// let first = RasEvent::fatal(t, r, FailureKind::CoolantMonitor);
/// let echo = RasEvent::fatal(t + Duration::from_hours(2), r, FailureKind::CoolantMonitor);
/// assert!(dedup.admit(&first));
/// assert!(!dedup.admit(&echo), "same rack within six hours");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureDeduplicator {
    cmf_window: Duration,
    non_cmf_window: Duration,
    last_cmf: Vec<Option<SimTime>>,
    last_non_cmf: Vec<Option<SimTime>>,
}

impl FailureDeduplicator {
    /// The paper's windows: 6 h for CMFs, 1 h for other failures.
    #[must_use]
    pub fn mira() -> Self {
        Self::new(Duration::from_hours(6), Duration::from_hours(1))
    }

    /// Creates a de-duplicator with custom windows (for the
    /// window-sensitivity ablation).
    ///
    /// # Panics
    ///
    /// Panics if either window is negative.
    #[must_use]
    pub fn new(cmf_window: Duration, non_cmf_window: Duration) -> Self {
        assert!(!cmf_window.is_negative(), "CMF window must be non-negative");
        assert!(
            !non_cmf_window.is_negative(),
            "non-CMF window must be non-negative"
        );
        Self {
            cmf_window,
            non_cmf_window,
            last_cmf: vec![None; RackId::COUNT],
            last_non_cmf: vec![None; RackId::COUNT],
        }
    }

    /// Feeds one event (must be fed in time order); returns whether the
    /// event counts as a *new* failure under the methodology.
    ///
    /// Warn-severity events never count.
    pub fn admit(&mut self, event: &RasEvent) -> bool {
        if event.severity != Severity::Fatal {
            return false;
        }
        let idx = event.rack.index();
        let (window, slot) = if event.kind.is_cmf() {
            (self.cmf_window, &mut self.last_cmf[idx])
        } else {
            (self.non_cmf_window, &mut self.last_non_cmf[idx])
        };
        if let Some(last) = *slot {
            if event.time - last < window {
                return false;
            }
        }
        *slot = Some(event.time);
        true
    }

    /// Applies the methodology to a time-ordered event stream, returning
    /// the counted failures.
    #[must_use]
    pub fn filter(&mut self, events: &[RasEvent]) -> Vec<RasEvent> {
        events.iter().filter(|e| self.admit(e)).copied().collect()
    }
}

impl Default for FailureDeduplicator {
    fn default() -> Self {
        Self::mira()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FailureKind;
    use mira_timeseries::Date;
    use proptest::prelude::*;

    fn t0() -> SimTime {
        SimTime::from_date(Date::new(2016, 3, 1))
    }

    #[test]
    fn warns_never_count() {
        let mut d = FailureDeduplicator::mira();
        let e = RasEvent::warn(t0(), RackId::new(0, 0), FailureKind::CoolantMonitor);
        assert!(!d.admit(&e));
        // And they do not open a suppression window.
        let f = RasEvent::fatal(t0(), RackId::new(0, 0), FailureKind::CoolantMonitor);
        assert!(d.admit(&f));
    }

    #[test]
    fn per_rack_windows_are_independent() {
        let mut d = FailureDeduplicator::mira();
        let a = RasEvent::fatal(t0(), RackId::new(0, 0), FailureKind::CoolantMonitor);
        let b = RasEvent::fatal(
            t0() + Duration::from_minutes(5),
            RackId::new(0, 1),
            FailureKind::CoolantMonitor,
        );
        assert!(d.admit(&a));
        assert!(d.admit(&b), "different rack is a different failure");
    }

    #[test]
    fn cmf_window_is_six_hours() {
        let mut d = FailureDeduplicator::mira();
        let r = RackId::new(1, 8);
        assert!(d.admit(&RasEvent::fatal(t0(), r, FailureKind::CoolantMonitor)));
        assert!(!d.admit(&RasEvent::fatal(
            t0() + Duration::from_hours(5),
            r,
            FailureKind::CoolantMonitor
        )));
        assert!(d.admit(&RasEvent::fatal(
            t0() + Duration::from_hours(6),
            r,
            FailureKind::CoolantMonitor
        )));
    }

    #[test]
    fn non_cmf_window_is_one_hour() {
        let mut d = FailureDeduplicator::mira();
        let r = RackId::new(2, 2);
        assert!(d.admit(&RasEvent::fatal(t0(), r, FailureKind::AcToDcPower)));
        assert!(!d.admit(&RasEvent::fatal(
            t0() + Duration::from_minutes(30),
            r,
            FailureKind::AcToDcPower
        )));
        assert!(d.admit(&RasEvent::fatal(
            t0() + Duration::from_minutes(61),
            r,
            FailureKind::AcToDcPower
        )));
    }

    #[test]
    fn cmf_and_non_cmf_windows_are_separate() {
        let mut d = FailureDeduplicator::mira();
        let r = RackId::new(0, 5);
        assert!(d.admit(&RasEvent::fatal(t0(), r, FailureKind::CoolantMonitor)));
        // A power failure on the same rack right after still counts.
        assert!(d.admit(&RasEvent::fatal(
            t0() + Duration::from_minutes(10),
            r,
            FailureKind::AcToDcPower
        )));
    }

    #[test]
    fn storm_counts_one_failure_per_rack() {
        // 1000 CMFs across 8 racks within minutes: the paper's example —
        // eight failures, not one, not a thousand.
        let mut events = Vec::new();
        for k in 0..1000u32 {
            let rack = RackId::from_index((k % 8) as usize);
            events.push(RasEvent::fatal(
                t0() + Duration::from_seconds(i64::from(k)),
                rack,
                FailureKind::CoolantMonitor,
            ));
        }
        let mut d = FailureDeduplicator::mira();
        assert_eq!(d.filter(&events).len(), 8);
    }

    #[test]
    #[should_panic(expected = "CMF window must be non-negative")]
    fn rejects_negative_window() {
        let _ = FailureDeduplicator::new(Duration::from_hours(-1), Duration::ZERO);
    }

    proptest! {
        #[test]
        fn dedup_is_idempotent(offsets in proptest::collection::vec(0i64..100_000, 1..80)) {
            let mut sorted = offsets.clone();
            sorted.sort_unstable();
            let events: Vec<RasEvent> = sorted
                .iter()
                .map(|&s| RasEvent::fatal(
                    t0() + Duration::from_seconds(s),
                    RackId::new(1, 1),
                    FailureKind::CoolantMonitor,
                ))
                .collect();
            let first = FailureDeduplicator::mira().filter(&events);
            let second = FailureDeduplicator::mira().filter(&first);
            prop_assert_eq!(first, second);
        }

        #[test]
        fn admitted_events_respect_window(offsets in proptest::collection::vec(0i64..500_000, 1..100)) {
            let mut sorted = offsets.clone();
            sorted.sort_unstable();
            let events: Vec<RasEvent> = sorted
                .iter()
                .map(|&s| RasEvent::fatal(
                    t0() + Duration::from_seconds(s),
                    RackId::new(0, 7),
                    FailureKind::CoolantMonitor,
                ))
                .collect();
            let kept = FailureDeduplicator::mira().filter(&events);
            for pair in kept.windows(2) {
                prop_assert!(pair[1].time - pair[0].time >= Duration::from_hours(6));
            }
        }
    }
}
