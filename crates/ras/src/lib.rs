//! RAS event log, coolant-monitor-failure engine, and storm cascades.
//!
//! Mira's RAS (reliability, availability, serviceability) subsystem logs
//! every anomalous event with a severity of `warn` or `fatal`. This crate
//! reproduces the failure phenomenology of the paper's Sec. VI:
//!
//! - [`event`] — the RAS record model: [`RasEvent`], [`FailureKind`]
//!   (coolant monitor, AC-to-DC power, BQC, BQL, clock card, software,
//!   process), and [`Severity`].
//! - [`schedule`] — the six-year coolant-monitor-failure (CMF) ground
//!   truth: 361 rack-level failures, 40 % of them during the 2016 Theta
//!   integration, a two-year quiet stretch afterwards (no bathtub curve),
//!   and the Fig. 11 per-rack distribution (14 at `(1, 8)`, 5 at
//!   `(2, 7)`, nobody else above 9).
//! - [`cascade`] — RAS storms: one fatal coolant event floods the log
//!   with thousands of messages across racks linked by the clock tree,
//!   without spatial locality.
//! - [`aftermath`] — the elevated non-CMF hazard in the 48 hours after a
//!   CMF (Fig. 14), with the paper's failure-type mix.
//! - [`dedup`] — the paper's counting methodology: per-rack 6 h windows
//!   for CMFs, 1 h for non-CMF failures.
//! - [`availability`] — rack up/down bookkeeping (up to 6 h to recover a
//!   rack after a CMF, ≈1 h after other failures).
//!
//! # Example
//!
//! ```
//! use mira_ras::CmfSchedule;
//!
//! let schedule = CmfSchedule::generate(42);
//! assert_eq!(schedule.total_rack_failures(), 361);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aftermath;
pub mod availability;
pub mod cascade;
pub mod dedup;
pub mod event;
pub mod hazard;
pub mod log;
pub mod schedule;

pub use aftermath::AftermathModel;
pub use availability::{AvailabilityCursor, RackAvailability};
pub use cascade::{CascadePlanner, StormIncident};
pub use dedup::FailureDeduplicator;
pub use event::{FailureKind, RasEvent, Severity};
pub use hazard::{PhaseRates, WeibullFit};
pub use log::RasLog;
pub use schedule::CmfSchedule;
