//! Rack up/down bookkeeping.
//!
//! A rack that trips on a fatal coolant event has its solenoid valve
//! closed and its power cut; bringing it back takes up to six hours. A
//! rack hit by a non-CMF fatal recovers in about an hour. The tracker
//! stores per-rack outage *intervals* (merging overlaps), so the
//! simulator can ask "was this rack up at time t?" for any instant, past
//! or future.

use serde::{Deserialize, Serialize};

use mira_facility::RackId;
use mira_timeseries::{Duration, SimTime};

/// Tracks per-rack outage intervals.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RackAvailability {
    /// Per-rack outage intervals `[start, end)`, sorted and disjoint.
    outages: Vec<Vec<(SimTime, SimTime)>>,
}

/// Cached per-rack up/down verdicts with their validity windows, for the
/// sweep hot path (which asks about all 48 racks every 300 s while
/// outage boundaries are hours or days apart).
///
/// Each cached verdict holds for `from <= t < until`, where the window
/// edges are outage-interval boundaries — pure functions of the tracker's
/// interval list — so [`RackAvailability::is_up_cached`] is bit-identical
/// to [`RackAvailability::is_up`] from any prior cursor state. Build the
/// cursor *after* all outages are recorded: mutating the tracker does not
/// invalidate outstanding cursors.
#[derive(Debug, Clone)]
pub struct AvailabilityCursor {
    windows: Vec<Option<(SimTime, SimTime, bool)>>,
}

/// Worst-case recovery after a coolant monitor failure.
pub const CMF_RECOVERY: Duration = Duration::from_hours(6);

/// Typical recovery after a non-CMF fatal failure.
pub const NON_CMF_RECOVERY: Duration = Duration::from_hours(1);

impl RackAvailability {
    /// Creates a tracker with every rack up.
    #[must_use]
    pub fn new() -> Self {
        Self {
            outages: vec![Vec::new(); RackId::COUNT],
        }
    }

    /// Records an outage of `rack` over `[from, from + outage)`,
    /// merging with any overlapping intervals.
    pub fn mark_down(&mut self, rack: RackId, from: SimTime, outage: Duration) {
        let mut start = from;
        let mut end = from + outage;
        let intervals = &mut self.outages[rack.index()];
        // Remove every interval overlapping [start, end) and absorb it.
        intervals.retain(|&(s, e)| {
            let overlaps = s <= end && e >= start;
            if overlaps {
                if s < start {
                    start = s;
                }
                if e > end {
                    end = e;
                }
            }
            !overlaps
        });
        let pos = intervals.partition_point(|&(s, _)| s < start);
        intervals.insert(pos, (start, end));
    }

    /// Marks a CMF outage (6 h recovery).
    pub fn mark_cmf(&mut self, rack: RackId, at: SimTime) {
        self.mark_down(rack, at, CMF_RECOVERY);
    }

    /// Marks a non-CMF fatal outage (1 h recovery).
    pub fn mark_non_cmf(&mut self, rack: RackId, at: SimTime) {
        self.mark_down(rack, at, NON_CMF_RECOVERY);
    }

    /// Whether `rack` is up at `t`.
    #[must_use]
    pub fn is_up(&self, rack: RackId, t: SimTime) -> bool {
        let intervals = &self.outages[rack.index()];
        let idx = intervals.partition_point(|&(s, _)| s <= t);
        let Some(&(_, end)) = idx.checked_sub(1).and_then(|i| intervals.get(i)) else {
            return true;
        };
        t >= end
    }

    /// Builds an empty cursor for [`Self::is_up_cached`].
    #[must_use]
    // Cursor constructor: one window vector per worker (via
    // sweep_scratch), never in the per-step fold.
    // mira-lint: allow(alloc-in-hot-path)
    pub fn cursor(&self) -> AvailabilityCursor {
        AvailabilityCursor {
            windows: vec![None; self.outages.len()],
        }
    }

    /// [`Self::is_up`] through the cursor: answers from the cached
    /// validity window when `t` still falls inside it, re-deriving the
    /// window from the interval list otherwise. Bit-identical to the
    /// uncached path as long as the tracker is not mutated after the
    /// cursor is built.
    #[must_use]
    pub fn is_up_cached(&self, rack: RackId, t: SimTime, cursor: &mut AvailabilityCursor) -> bool {
        if let Some((from, until, up)) = cursor.windows[rack.index()] {
            if from <= t && t < until {
                return up;
            }
        }
        let intervals = &self.outages[rack.index()];
        let idx = intervals.partition_point(|&(s, _)| s <= t);
        let until = intervals
            .get(idx)
            .map_or(SimTime::from_epoch_seconds(i64::MAX), |&(s, _)| s);
        let window = match idx.checked_sub(1).and_then(|i| intervals.get(i)) {
            None => (SimTime::from_epoch_seconds(i64::MIN), until, true),
            Some(&(start, end)) => {
                if t >= end {
                    (end, until, true)
                } else {
                    (start, end, false)
                }
            }
        };
        cursor.windows[rack.index()] = Some(window);
        window.2
    }

    /// Fills `out[i]` with the up/down verdict of rack `i` at `t`,
    /// through the cursor.
    pub fn fill_up_mask(
        &self,
        t: SimTime,
        cursor: &mut AvailabilityCursor,
        out: &mut [bool; RackId::COUNT],
    ) {
        for rack in RackId::all() {
            out[rack.index()] = self.is_up_cached(rack, t, cursor);
        }
    }

    /// Number of racks up at `t`.
    #[must_use]
    pub fn racks_up(&self, t: SimTime) -> usize {
        RackId::all().filter(|&r| self.is_up(r, t)).count()
    }

    /// Total downtime accumulated by `rack`.
    #[must_use]
    pub fn total_downtime(&self, rack: RackId) -> Duration {
        self.outages[rack.index()]
            .iter()
            .fold(Duration::ZERO, |acc, &(s, e)| acc + (e - s))
    }

    /// The outage intervals of `rack`, sorted and disjoint.
    #[must_use]
    pub fn outages(&self, rack: RackId) -> &[(SimTime, SimTime)] {
        &self.outages[rack.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mira_timeseries::Date;

    fn t0() -> SimTime {
        SimTime::from_date(Date::new(2016, 3, 1))
    }

    #[test]
    fn fresh_tracker_is_all_up() {
        let a = RackAvailability::new();
        assert_eq!(a.racks_up(t0()), 48);
        assert!(a.is_up(RackId::new(1, 4), t0()));
    }

    #[test]
    fn cmf_takes_rack_down_for_six_hours() {
        let mut a = RackAvailability::new();
        let r = RackId::new(0, 3);
        a.mark_cmf(r, t0());
        assert!(!a.is_up(r, t0()));
        assert!(!a.is_up(r, t0() + Duration::from_hours(5)));
        assert!(a.is_up(r, t0() + Duration::from_hours(6)));
        assert_eq!(a.racks_up(t0()), 47);
    }

    #[test]
    fn up_before_and_between_outages() {
        let mut a = RackAvailability::new();
        let r = RackId::new(0, 4);
        a.mark_cmf(r, t0());
        a.mark_cmf(r, t0() + Duration::from_days(30));
        // Before the first outage.
        assert!(a.is_up(r, t0() - Duration::from_hours(1)));
        // Between the two outages — the regression that motivated the
        // interval representation.
        assert!(a.is_up(r, t0() + Duration::from_days(10)));
        // During the second.
        assert!(!a.is_up(r, t0() + Duration::from_days(30) + Duration::from_hours(2)));
    }

    #[test]
    fn non_cmf_recovers_in_an_hour() {
        let mut a = RackAvailability::new();
        let r = RackId::new(2, 9);
        a.mark_non_cmf(r, t0());
        assert!(!a.is_up(r, t0() + Duration::from_minutes(59)));
        assert!(a.is_up(r, t0() + Duration::from_hours(1)));
    }

    #[test]
    fn overlapping_outages_merge_and_extend() {
        let mut a = RackAvailability::new();
        let r = RackId::new(1, 1);
        a.mark_cmf(r, t0());
        a.mark_cmf(r, t0() + Duration::from_hours(3));
        assert!(!a.is_up(r, t0() + Duration::from_hours(8)));
        assert!(a.is_up(r, t0() + Duration::from_hours(9)));
        assert_eq!(a.total_downtime(r), Duration::from_hours(9));
        assert_eq!(a.outages(r).len(), 1, "merged into one interval");
    }

    #[test]
    fn contained_outage_does_not_shrink() {
        let mut a = RackAvailability::new();
        let r = RackId::new(1, 2);
        a.mark_cmf(r, t0());
        a.mark_non_cmf(r, t0() + Duration::from_hours(1));
        assert!(!a.is_up(r, t0() + Duration::from_hours(5)));
        assert_eq!(a.total_downtime(r), Duration::from_hours(6));
    }

    #[test]
    fn cursor_path_matches_is_up_everywhere() {
        let mut a = RackAvailability::new();
        let hit = RackId::new(0, 3);
        let twice = RackId::new(1, 7);
        a.mark_cmf(hit, t0() + Duration::from_hours(10));
        a.mark_cmf(twice, t0() + Duration::from_hours(2));
        a.mark_non_cmf(twice, t0() + Duration::from_days(2));
        let mut cursor = a.cursor();
        let mut mask = [false; RackId::COUNT];
        // Fine forward walk across every boundary, then jumps (backwards,
        // far future) that must invalidate the cached windows cleanly.
        let mut t = t0() - Duration::from_hours(1);
        let end = t0() + Duration::from_days(3);
        while t < end {
            a.fill_up_mask(t, &mut cursor, &mut mask);
            for rack in RackId::all() {
                assert_eq!(mask[rack.index()], a.is_up(rack, t), "{rack} at {t}");
            }
            t += Duration::from_minutes(5);
        }
        for jump in [
            t0() - Duration::from_days(365),
            t0() + Duration::from_hours(11),
            t0() + Duration::from_days(600),
        ] {
            for rack in RackId::all() {
                assert_eq!(a.is_up_cached(rack, jump, &mut cursor), a.is_up(rack, jump));
            }
        }
    }

    #[test]
    fn out_of_order_inserts_are_fine() {
        let mut a = RackAvailability::new();
        let r = RackId::new(0, 15);
        a.mark_non_cmf(r, t0() + Duration::from_days(3));
        a.mark_non_cmf(r, t0());
        assert_eq!(a.total_downtime(r), Duration::from_hours(2));
        assert_eq!(a.outages(r).len(), 2);
        assert!(a.is_up(r, t0() + Duration::from_days(1)));
    }
}
