//! The approximate workspace call graph.
//!
//! Edges come from the per-body call sites the parser collected,
//! resolved against the [`SymbolIndex`]:
//!
//! * **Path calls** (`a::b::f(..)`) expand their first segment through
//!   the caller file's `use` map, then resolve `crate`/`self`/`super`
//!   to the caller's crate, a `mira_*` ident to that crate, `Self` to
//!   the caller's impl type, and `Type::f` to methods on `Type` in the
//!   caller's crate or its direct dependencies.
//! * **Bare calls** (`f(..)`) resolve to free fns of the caller's own
//!   crate (capitalized single segments are constructors, skipped).
//! * **Method calls** (`.f(..)`) resolve by name to any method `f` in
//!   the caller's crate or its direct dependencies, except a stoplist
//!   of ubiquitous std names (`len`, `iter`, `clone`, ...), which would
//!   otherwise wire the graph to every `Vec`/`str` call site.
//!
//! Ambiguity keeps *all* candidate edges: the graph over-approximates,
//! so reachability rules err toward reporting. What resolution cannot
//! see (globs, trait objects, closures, macro bodies) is documented in
//! `DESIGN.md`.

use std::collections::{BTreeSet, VecDeque};

use crate::index::{FnId, SymbolIndex};
use crate::parser::CallKind;

/// Method names so common — on std types, or as workspace accessor /
/// builder idioms (`.step()` is an accessor on `SweepScratch`, a
/// builder setter on `SweepPlan`, and a simulation tick on two other
/// types) — that name-only resolution would drown the graph in false
/// edges; calls to them never resolve to workspace methods.
const METHOD_STOPLIST: [&str; 39] = [
    "abs",
    "as_ref",
    "as_str",
    "borrow",
    "chars",
    "clamp",
    "clone",
    "cloned",
    "collect",
    "contains",
    "copied",
    "count",
    "enumerate",
    "extend",
    "filter",
    "flat_map",
    "fold",
    "get",
    "insert",
    "into",
    "is_empty",
    "iter",
    "join",
    "len",
    "map",
    "max",
    "min",
    "next",
    "parse",
    "pop",
    "push",
    "rev",
    "split",
    "step",
    "sum",
    "to_owned",
    "to_string",
    "trim",
    "zip",
];

/// Adjacency list keyed by global fn id.
#[derive(Debug)]
pub struct CallGraph {
    edges: Vec<Vec<FnId>>,
}

impl CallGraph {
    /// Resolve every call site into edges.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn build(index: &SymbolIndex) -> CallGraph {
        let mut edges: Vec<Vec<FnId>> = vec![Vec::new(); index.total_fns];
        for caller in index.fn_ids() {
            let mut out: BTreeSet<FnId> = BTreeSet::new();
            for target in resolved_calls(index, caller) {
                if target != caller && !index.is_test_fn(target) {
                    out.insert(target);
                }
            }
            edges[caller] = out.into_iter().collect();
        }
        CallGraph { edges }
    }

    /// Direct callees of a fn.
    #[must_use]
    pub fn callees(&self, id: FnId) -> &[FnId] {
        self.edges.get(id).map_or(&[], Vec::as_slice)
    }

    /// Shortest path (BFS, id-ordered for determinism) from `root` to
    /// any fn satisfying `is_target`, as the full chain of fn ids
    /// including both endpoints. The root itself is tested first.
    #[must_use]
    pub fn first_chain_to(
        &self,
        root: FnId,
        is_target: &dyn Fn(FnId) -> bool,
    ) -> Option<Vec<FnId>> {
        if is_target(root) {
            return Some(vec![root]);
        }
        let mut parent: Vec<Option<FnId>> = vec![None; self.edges.len()];
        let mut seen: BTreeSet<FnId> = BTreeSet::new();
        seen.insert(root);
        let mut queue = VecDeque::from([root]);
        while let Some(at) = queue.pop_front() {
            for &next in self.callees(at) {
                if !seen.insert(next) {
                    continue;
                }
                parent[next] = Some(at);
                if is_target(next) {
                    let mut chain = vec![next];
                    let mut walk = at;
                    loop {
                        chain.push(walk);
                        match parent[walk] {
                            Some(up) => walk = up,
                            None => break,
                        }
                    }
                    chain.reverse();
                    return Some(chain);
                }
                queue.push_back(next);
            }
        }
        None
    }
}

/// All candidate callee ids for one caller's call sites.
fn resolved_calls(index: &SymbolIndex, caller: FnId) -> Vec<FnId> {
    let file_idx = index.file_of(caller);
    let item = index.fn_at(caller);
    let dir = index.crate_of(caller).to_owned();
    let mut out = Vec::new();
    for call in &item.calls {
        resolve_call(
            index,
            &dir,
            file_idx,
            item.self_type.as_deref(),
            &call.kind,
            &mut out,
        );
    }
    out
}

/// Resolve one call site, pushing candidate ids into `out`.
pub(crate) fn resolve_call(
    index: &SymbolIndex,
    caller_dir: &str,
    caller_file: usize,
    caller_self: Option<&str>,
    kind: &CallKind,
    out: &mut Vec<FnId>,
) {
    match kind {
        CallKind::Method(name) => {
            if METHOD_STOPLIST.contains(&name.as_str()) {
                return;
            }
            let allowed: BTreeSet<&str> = std::iter::once(caller_dir)
                .chain(index.deps_of(caller_dir).iter().map(String::as_str))
                .collect();
            for &id in index.methods_named(name) {
                if allowed.contains(index.crate_of(id)) {
                    out.push(id);
                }
            }
        }
        CallKind::Path(segs) => {
            resolve_path(index, caller_dir, caller_file, caller_self, segs, out);
        }
    }
}

fn resolve_path(
    index: &SymbolIndex,
    caller_dir: &str,
    caller_file: usize,
    caller_self: Option<&str>,
    segs: &[String],
    out: &mut Vec<FnId>,
) {
    let Some(first) = segs.first() else { return };
    let Some(name) = segs.last() else { return };

    // Expand the leading segment through the file's `use` map.
    if let Some(decl) = index.files[caller_file]
        .uses
        .iter()
        .find(|u| u.alias == *first)
    {
        // Avoid infinite recursion on `use x::y as y;`-style
        // self-aliases by only recursing when the expansion grows.
        let mut expanded = decl.path.clone();
        expanded.extend(segs.iter().skip(1).cloned());
        if expanded != segs {
            resolve_path(index, caller_dir, caller_file, caller_self, &expanded, out);
            return;
        }
    }

    if segs.len() == 1 {
        // Bare call: capitalized names are tuple-struct/variant
        // constructors, not fns we index.
        if first.chars().next().is_some_and(char::is_uppercase) {
            return;
        }
        // Free fns only — a bare name cannot name a method.
        for &id in index.fns_named(caller_dir, name) {
            if index.fn_at(id).self_type.is_none() {
                out.push(id);
            }
        }
        return;
    }

    // `crate::..` / `self::..` / `super::..` stay in the caller crate.
    let (head, rest): (&str, &[String]) = match first.as_str() {
        "crate" | "self" | "super" => (caller_dir, &segs[1..]),
        "Self" => {
            if let Some(ty) = caller_self {
                for &id in index.fns_on_type(caller_dir, ty, name) {
                    out.push(id);
                }
            }
            return;
        }
        "std" | "core" | "alloc" => return,
        _ => match index.dir_for_ident(first) {
            Some(dir) => (dir, &segs[1..]),
            None => {
                // `Type::name` — a type in scope of the caller crate or
                // a direct dependency.
                if first.chars().next().is_some_and(char::is_uppercase) {
                    let mut dirs: Vec<&str> = vec![caller_dir];
                    dirs.extend(index.deps_of(caller_dir).iter().map(String::as_str));
                    for dir in dirs {
                        let found = index.fns_on_type(dir, first, name);
                        if !found.is_empty() {
                            out.extend_from_slice(found);
                            return;
                        }
                    }
                }
                return;
            }
        },
    };

    let Some(name) = rest.last() else {
        return;
    };
    // Qualified by a type or module segment? Prefer the tighter match.
    if rest.len() >= 2 {
        let qual = &rest[rest.len() - 2];
        let typed = index.fns_on_type(head, qual, name);
        if !typed.is_empty() {
            out.extend_from_slice(typed);
            return;
        }
        let by_module: Vec<FnId> = index
            .fns_named(head, name)
            .iter()
            .copied()
            .filter(|&id| index.fn_at(id).module.iter().any(|m| m == qual))
            .collect();
        if !by_module.is_empty() {
            out.extend(by_module);
            return;
        }
    }
    out.extend_from_slice(index.fns_named(head, name));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::analyze;
    use crate::parser::parse_file;
    use std::path::{Path, PathBuf};

    fn build(sources: &[(&str, &str)]) -> (SymbolIndex, CallGraph) {
        let files = sources
            .iter()
            .map(|(rel, src)| parse_file(Path::new(rel), src, &analyze(src), &["Celsius"]))
            .collect();
        let manifests = vec![
            (
                PathBuf::from("crates/alpha/Cargo.toml"),
                "[package]\nname = \"mira-alpha\"\n[dependencies]\nmira-beta.workspace = true\n"
                    .to_owned(),
            ),
            (
                PathBuf::from("crates/beta/Cargo.toml"),
                "[package]\nname = \"mira-beta\"\n".to_owned(),
            ),
        ];
        let index = SymbolIndex::build(files, &manifests);
        let graph = CallGraph::build(&index);
        (index, graph)
    }

    fn id_of(index: &SymbolIndex, name: &str) -> FnId {
        index
            .fn_ids()
            .find(|&id| index.fn_at(id).name == name)
            .expect("fn indexed")
    }

    #[test]
    fn bare_call_resolves_within_crate() {
        let (index, graph) = build(&[(
            "crates/alpha/src/lib.rs",
            "pub fn outer() { inner(); }\nfn inner() {}\n",
        )]);
        let outer = id_of(&index, "outer");
        let inner = id_of(&index, "inner");
        assert_eq!(graph.callees(outer), &[inner]);
    }

    #[test]
    fn cross_crate_path_resolves_via_crate_ident() {
        let (index, graph) = build(&[
            (
                "crates/alpha/src/lib.rs",
                "pub fn outer() { mira_beta::helper(); }\n",
            ),
            ("crates/beta/src/lib.rs", "pub fn helper() {}\n"),
        ]);
        let outer = id_of(&index, "outer");
        let helper = id_of(&index, "helper");
        assert_eq!(graph.callees(outer), &[helper]);
    }

    #[test]
    fn use_alias_expands_before_resolution() {
        let (index, graph) = build(&[
            (
                "crates/alpha/src/lib.rs",
                "use mira_beta::stats;\npub fn outer() { stats::mean(); }\n",
            ),
            (
                "crates/beta/src/lib.rs",
                "pub mod stats {\n    pub fn mean() {}\n}\n",
            ),
        ]);
        let outer = id_of(&index, "outer");
        let mean = id_of(&index, "mean");
        assert_eq!(graph.callees(outer), &[mean]);
    }

    #[test]
    fn type_qualified_path_prefers_method_match() {
        let (index, graph) = build(&[
            (
                "crates/alpha/src/lib.rs",
                "use mira_beta::Pump;\npub fn outer() { Pump::rpm(); }\n",
            ),
            (
                "crates/beta/src/lib.rs",
                "pub struct Pump;\nimpl Pump {\n    pub fn rpm() {}\n}\npub fn rpm() {}\n",
            ),
        ]);
        let outer = id_of(&index, "outer");
        assert_eq!(graph.callees(outer).len(), 1);
        let callee = graph.callees(outer)[0];
        assert_eq!(index.fn_at(callee).self_type.as_deref(), Some("Pump"));
    }

    #[test]
    fn method_calls_resolve_to_caller_crate_and_deps_only() {
        let (index, graph) = build(&[
            (
                "crates/beta/src/lib.rs",
                "pub struct S;\nimpl S {\n    pub fn observe(&self) {}\n}\n",
            ),
            (
                "crates/alpha/src/lib.rs",
                "pub fn outer(s: &mira_beta::S) { s.observe(); }\n",
            ),
        ]);
        let outer = id_of(&index, "outer");
        let observe = id_of(&index, "observe");
        assert_eq!(graph.callees(outer), &[observe]);
        // beta does not depend on alpha: an observe() call in beta
        // would not link back (verified by the allowed-set logic above).
    }

    #[test]
    fn stoplisted_method_names_create_no_edges() {
        let (index, graph) = build(&[(
            "crates/alpha/src/lib.rs",
            "pub struct S;\nimpl S {\n    pub fn len(&self) -> usize { 0 }\n}\n\
             pub fn outer(v: &[u8]) -> usize { v.len() }\n",
        )]);
        let outer = id_of(&index, "outer");
        assert!(graph.callees(outer).is_empty());
    }

    #[test]
    fn edges_to_test_fns_are_dropped() {
        let (index, graph) = build(&[(
            "crates/alpha/src/lib.rs",
            "pub fn outer() { helper(); }\n#[cfg(test)]\nmod tests {\n    pub fn helper() {}\n}\n",
        )]);
        let outer = id_of(&index, "outer");
        assert!(graph.callees(outer).is_empty());
    }

    #[test]
    fn bfs_chain_is_shortest_and_ordered() {
        let (index, graph) = build(&[(
            "crates/alpha/src/lib.rs",
            "pub fn a() { b(); }\nfn b() { c(); }\nfn c() {}\n",
        )]);
        let a = id_of(&index, "a");
        let c = id_of(&index, "c");
        let chain = graph
            .first_chain_to(a, &|id| id == c)
            .expect("c reachable from a");
        let names: Vec<_> = chain
            .iter()
            .map(|&id| index.fn_at(id).name.clone())
            .collect();
        assert_eq!(names, ["a", "b", "c"]);
        assert!(graph.first_chain_to(c, &|id| id == a).is_none());
    }

    #[test]
    fn self_path_resolves_to_impl_type() {
        let (index, graph) = build(&[(
            "crates/alpha/src/lib.rs",
            "pub struct S;\nimpl S {\n    pub fn go(&self) { Self::aid(); }\n    fn aid() {}\n}\n",
        )]);
        let go = id_of(&index, "go");
        let aid = id_of(&index, "aid");
        assert_eq!(graph.callees(go), &[aid]);
    }
}
