//! The `mira-lint` command.
//!
//! ```text
//! mira-lint [--root <dir>] [--allowlist <file>] [--write-allowlist]
//!           [--format text|json] [--threads <n>] [--explain <rule>]
//!           [--cache] [--cache-file <file>] [--quiet]
//! ```
//!
//! Walks `crates/*/src/**/*.rs`, runs every rule (line rules in
//! parallel shards, semantic rules over the merged symbol index),
//! filters through the allowlist, prints one `file:line: [rule]
//! message; suggestion: ...` per unallowed finding, and exits 1 when
//! any remain (2 on usage or I/O errors). `--write-allowlist` instead
//! regenerates `lint-allow.toml` from the current findings,
//! grandfathering the status quo so the budget can only ratchet down
//! from there. `--format json` emits the machine-readable document
//! (byte-stable across `--threads` values); `--explain <rule>` prints
//! the long-form rationale for one rule. `--cache` reuses per-file
//! results keyed by content hash (default store:
//! `<root>/target/mira-lint-cache.json`; `--cache-file` overrides and
//! implies `--cache`) — cached and cold output are byte-identical.

use std::path::PathBuf;
use std::process::ExitCode;

use mira_lint::{gate, render_json, Allowlist, Rule, Workspace};

struct Options {
    root: Option<PathBuf>,
    allowlist: Option<PathBuf>,
    write_allowlist: bool,
    quiet: bool,
    json: bool,
    threads: Option<usize>,
    explain: Option<String>,
    cache: bool,
    cache_file: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        root: None,
        allowlist: None,
        write_allowlist: false,
        quiet: false,
        json: false,
        threads: None,
        explain: None,
        cache: false,
        cache_file: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                options.root = Some(PathBuf::from(
                    args.next().ok_or("--root needs a directory argument")?,
                ));
            }
            "--allowlist" => {
                options.allowlist = Some(PathBuf::from(
                    args.next().ok_or("--allowlist needs a file argument")?,
                ));
            }
            "--write-allowlist" => options.write_allowlist = true,
            "--format" => {
                let format = args.next().ok_or("--format needs `text` or `json`")?;
                options.json = match format.as_str() {
                    "json" => true,
                    "text" => false,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--threads" => {
                let n = args.next().ok_or("--threads needs a positive integer")?;
                let n: usize = n
                    .parse()
                    .map_err(|_| format!("--threads needs a positive integer, got `{n}`"))?;
                if n == 0 {
                    return Err("--threads needs a positive integer".to_owned());
                }
                options.threads = Some(n);
            }
            "--explain" => {
                options.explain = Some(args.next().ok_or("--explain needs a rule name")?);
            }
            "--cache" => options.cache = true,
            "--cache-file" => {
                options.cache_file = Some(PathBuf::from(
                    args.next().ok_or("--cache-file needs a file argument")?,
                ));
                options.cache = true;
            }
            "--quiet" | "-q" => options.quiet = true,
            "--help" | "-h" => {
                println!(
                    "mira-lint: domain-invariant static analysis for the mira workspace\n\n\
                     USAGE: mira-lint [--root <dir>] [--allowlist <file>] [--write-allowlist]\n\
                     \x20                [--format text|json] [--threads <n>] [--explain <rule>]\n\
                     \x20                [--cache] [--cache-file <file>] [--quiet]\n\n\
                     RULES: {}",
                    Rule::ALL.map(Rule::name).join(", ")
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(options)
}

fn run() -> Result<ExitCode, String> {
    let options = parse_args()?;

    if let Some(name) = &options.explain {
        let rule = Rule::from_name(name).ok_or_else(|| {
            format!(
                "unknown rule `{name}`; rules are: {}",
                Rule::ALL.map(Rule::name).join(", ")
            )
        })?;
        println!("{}", rule.explain());
        return Ok(ExitCode::SUCCESS);
    }

    let root = match options.root {
        Some(root) => root,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
            mira_lint::find_workspace_root(&cwd)
                .ok_or("not inside the mira workspace; pass --root")?
        }
    };

    let workspace =
        Workspace::load(&root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let threads = options.threads.unwrap_or_else(mira_lint::effective_threads);
    let findings = if options.cache {
        let cache_path = options
            .cache_file
            .unwrap_or_else(|| root.join("target").join("mira-lint-cache.json"));
        workspace.scan_with_cache(threads, &cache_path)
    } else {
        workspace.scan(threads)
    };

    let allowlist_path = options
        .allowlist
        .unwrap_or_else(|| root.join("lint-allow.toml"));

    if options.write_allowlist {
        let rendered = Allowlist::render(&findings);
        std::fs::write(&allowlist_path, rendered)
            .map_err(|e| format!("writing {}: {e}", allowlist_path.display()))?;
        println!(
            "wrote {} ({} findings grandfathered)",
            allowlist_path.display(),
            findings.len()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let allowlist = if allowlist_path.is_file() {
        let text = std::fs::read_to_string(&allowlist_path)
            .map_err(|e| format!("reading {}: {e}", allowlist_path.display()))?;
        Allowlist::parse(&text).map_err(|e| e.to_string())?
    } else {
        Allowlist::default()
    };

    let gated = gate(findings, &allowlist);

    if options.json {
        print!("{}", render_json(&gated, allowlist.len()));
    } else {
        for finding in &gated.rejected {
            println!("{finding}");
        }
        if !options.quiet {
            for (rule, file, budget, actual) in &gated.slack {
                println!(
                    "note: allowlist slack: [{rule}] {file} budget {budget}, found {actual} — ratchet it down"
                );
            }
            println!(
                "mira-lint: {} finding(s) rejected, {} grandfathered across {} allowlist entr(ies)",
                gated.rejected.len(),
                gated.grandfathered,
                allowlist.len()
            );
        }
    }
    if gated.rejected.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("mira-lint: {message}");
            ExitCode::from(2)
        }
    }
}
