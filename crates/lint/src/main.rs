//! The `mira-lint` command.
//!
//! ```text
//! mira-lint [--root <dir>] [--allowlist <file>] [--write-allowlist] [--quiet]
//! ```
//!
//! Walks `crates/*/src/**/*.rs`, runs every rule, filters through the
//! allowlist, prints one `file:line: [rule] message; suggestion: ...`
//! per unallowed finding, and exits 1 when any remain (2 on usage or
//! I/O errors). `--write-allowlist` instead regenerates
//! `lint-allow.toml` from the current findings, grandfathering the
//! status quo so the budget can only ratchet down from there.

use std::path::PathBuf;
use std::process::ExitCode;

use mira_lint::{gate, scan_workspace, Allowlist};

struct Options {
    root: Option<PathBuf>,
    allowlist: Option<PathBuf>,
    write_allowlist: bool,
    quiet: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        root: None,
        allowlist: None,
        write_allowlist: false,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                options.root = Some(PathBuf::from(
                    args.next().ok_or("--root needs a directory argument")?,
                ));
            }
            "--allowlist" => {
                options.allowlist = Some(PathBuf::from(
                    args.next().ok_or("--allowlist needs a file argument")?,
                ));
            }
            "--write-allowlist" => options.write_allowlist = true,
            "--quiet" | "-q" => options.quiet = true,
            "--help" | "-h" => {
                println!(
                    "mira-lint: domain-invariant static analysis for the mira workspace\n\n\
                     USAGE: mira-lint [--root <dir>] [--allowlist <file>] [--write-allowlist] [--quiet]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(options)
}

fn run() -> Result<ExitCode, String> {
    let options = parse_args()?;

    let root = match options.root {
        Some(root) => root,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
            mira_lint::find_workspace_root(&cwd)
                .ok_or("not inside the mira workspace; pass --root")?
        }
    };

    let findings = scan_workspace(&root).map_err(|e| format!("walking {}: {e}", root.display()))?;

    let allowlist_path = options
        .allowlist
        .unwrap_or_else(|| root.join("lint-allow.toml"));

    if options.write_allowlist {
        let rendered = Allowlist::render(&findings);
        std::fs::write(&allowlist_path, rendered)
            .map_err(|e| format!("writing {}: {e}", allowlist_path.display()))?;
        println!(
            "wrote {} ({} findings grandfathered)",
            allowlist_path.display(),
            findings.len()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let allowlist = if allowlist_path.is_file() {
        let text = std::fs::read_to_string(&allowlist_path)
            .map_err(|e| format!("reading {}: {e}", allowlist_path.display()))?;
        Allowlist::parse(&text).map_err(|e| e.to_string())?
    } else {
        Allowlist::default()
    };

    let gated = gate(findings, &allowlist);

    for finding in &gated.rejected {
        println!("{finding}");
    }
    if !options.quiet {
        for (rule, file, budget, actual) in &gated.slack {
            println!(
                "note: allowlist slack: [{rule}] {file} budget {budget}, found {actual} — ratchet it down"
            );
        }
        println!(
            "mira-lint: {} finding(s) rejected, {} grandfathered across {} allowlist entr(ies)",
            gated.rejected.len(),
            gated.grandfathered,
            allowlist.len()
        );
    }
    if gated.rejected.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("mira-lint: {message}");
            ExitCode::from(2)
        }
    }
}
