//! A small hand-rolled Rust source scanner.
//!
//! `mira-lint` must run with zero registry dependencies, so instead of
//! `syn` it works from a line-oriented view of each file produced here:
//! comment bodies and string/char literal contents are blanked out
//! (so pattern matches never fire inside prose), while the raw text is
//! kept alongside for escape-hatch comments. A second pass tracks brace
//! depth to mark `#[cfg(test)]` regions, which most rules exempt.
//!
//! This is deliberately *not* a full parser: it only needs to be exact
//! about what can confuse substring matching — comments, strings
//! (including raw strings), char literals vs. lifetimes — and about
//! brace nesting for test-module tracking.

/// One analyzed source line.
#[derive(Debug, Clone)]
pub struct SourceLine {
    /// 1-based line number.
    pub number: usize,
    /// The original text, comments included.
    pub raw: String,
    /// The text with comment bodies and literal contents blanked to
    /// spaces; rule patterns match against this.
    pub code: String,
    /// True when the line sits inside a `#[cfg(test)]` region.
    pub in_test_context: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u8),
    CharLit,
}

/// Blank out comments and literal bodies, preserving length and
/// newlines so byte offsets and line numbers survive.
///
/// Exposed so [`crate::parser`] can tokenize the same comment-free
/// view the line rules match against.
#[must_use]
pub fn scrub(source: &str) -> String {
    let bytes = source.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut state = State::Code;
    let mut i = 0;

    while i < bytes.len() {
        let b = bytes[i];
        match state {
            State::Code => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'"' {
                    state = State::Str;
                    out.push(b'"');
                    i += 1;
                } else if (b == b'r' || b == b'b') && !prev_is_ident(&out) {
                    // Possible prefixed literal: r"..." / r#"..."# raw
                    // strings, b"..." byte strings, br#"..."# raw byte
                    // strings, b'x' byte chars. The prefix bytes pass
                    // through untouched; the literal body is blanked by
                    // the state the prefix selects.
                    let mut j = i + 1;
                    if b == b'b' && bytes.get(j) == Some(&b'r') {
                        j += 1;
                    }
                    let raw = j > i + 1 || b == b'r';
                    let mut hashes = 0u8;
                    while raw && bytes.get(j) == Some(&b'#') {
                        hashes = hashes.saturating_add(1);
                        j += 1;
                    }
                    if raw && bytes.get(j) == Some(&b'"') {
                        state = State::RawStr(hashes);
                        while i <= j {
                            out.push(bytes[i]);
                            i += 1;
                        }
                    } else if b == b'b' && bytes.get(i + 1) == Some(&b'"') {
                        state = State::Str;
                        out.extend_from_slice(b"b\"");
                        i += 2;
                    } else if b == b'b' && bytes.get(i + 1) == Some(&b'\'') {
                        state = State::CharLit;
                        out.extend_from_slice(b"b'");
                        i += 2;
                    } else {
                        out.push(b);
                        i += 1;
                    }
                } else if b == b'\'' {
                    // Lifetime (`'a`) or char literal (`'x'`, `'\n'`)?
                    let next = bytes.get(i + 1).copied();
                    let after = bytes.get(i + 2).copied();
                    let is_lifetime = matches!(next, Some(c) if c == b'_' || c.is_ascii_alphabetic())
                        && after != Some(b'\'');
                    if is_lifetime {
                        out.push(b);
                        i += 1;
                    } else {
                        state = State::CharLit;
                        out.push(b'\'');
                        i += 1;
                    }
                } else {
                    out.push(b);
                    i += 1;
                }
            }
            State::LineComment => {
                if b == b'\n' {
                    state = State::Code;
                    out.push(b'\n');
                } else {
                    out.push(b' ');
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    let depth = depth - 1;
                    state = if depth == 0 {
                        State::Code
                    } else {
                        State::BlockComment(depth)
                    };
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(depth + 1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            State::Str => {
                if b == b'\\' && i + 1 < bytes.len() {
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'"' {
                    state = State::Code;
                    out.push(b'"');
                    i += 1;
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if b == b'"' {
                    let mut j = i + 1;
                    let mut seen = 0u8;
                    while seen < hashes && bytes.get(j) == Some(&b'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        state = State::Code;
                        while i < j {
                            out.push(bytes[i]);
                            i += 1;
                        }
                        continue;
                    }
                    out.push(b' ');
                    i += 1;
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            State::CharLit => {
                if b == b'\\' && i + 1 < bytes.len() {
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'\'' || b == b'\n' {
                    // Newline: bail out — it was not a char literal
                    // after all (e.g. a stray quote); stay safe.
                    state = State::Code;
                    out.push(b);
                    i += 1;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
        }
    }

    // Blanking is byte-for-byte, so the scrubbed text is ASCII-safe
    // wherever we wrote spaces and untouched UTF-8 elsewhere.
    String::from_utf8_lossy(&out).into_owned()
}

fn prev_is_ident(out: &[u8]) -> bool {
    out.last()
        .is_some_and(|&c| c == b'_' || c.is_ascii_alphanumeric())
}

/// Mark, per byte-line, whether it falls inside a `#[cfg(test)]`
/// brace region of the scrubbed source.
fn test_region_lines(code: &str) -> Vec<bool> {
    let line_count = code.lines().count();
    let mut in_test = vec![false; line_count.max(1)];

    let bytes = code.as_bytes();
    let mut depth: i64 = 0;
    let mut line = 0usize;
    let mut pending_attr = false;
    let mut region_depths: Vec<i64> = Vec::new();
    let needle = b"#[cfg(test)]";

    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if bytes[i..].starts_with(needle) {
            pending_attr = true;
            i += needle.len();
            continue;
        }
        match b {
            b'{' => {
                depth += 1;
                if pending_attr {
                    region_depths.push(depth);
                    pending_attr = false;
                }
            }
            b'}' => {
                if region_depths.last() == Some(&depth) {
                    region_depths.pop();
                }
                depth -= 1;
            }
            b';' => {
                // `#[cfg(test)] mod tests;` or an attribute on a
                // braceless item: the attribute never gets a block.
                pending_attr = false;
            }
            _ => {}
        }
        if !region_depths.is_empty() && line < in_test.len() {
            in_test[line] = true;
        }
        i += 1;
    }

    // A line is "in test context" if any region covered it, including
    // the attribute/brace lines themselves.
    in_test
}

/// Analyze a file into per-line records.
#[must_use]
pub fn analyze(source: &str) -> Vec<SourceLine> {
    let code = scrub(source);
    let test_lines = test_region_lines(&code);

    source
        .lines()
        .zip(code.lines())
        .enumerate()
        .map(|(idx, (raw, code_line))| SourceLine {
            number: idx + 1,
            raw: raw.to_owned(),
            code: code_line.to_owned(),
            in_test_context: test_lines.get(idx).copied().unwrap_or(false),
        })
        .collect()
}

/// True when `code[idx..idx + len]` is delimited by non-identifier
/// characters on both sides (a whole-token match).
#[must_use]
pub fn token_bounded(code: &str, idx: usize, len: usize) -> bool {
    let bytes = code.as_bytes();
    let before_ok = idx == 0 || {
        let c = bytes[idx - 1];
        !(c == b'_' || c.is_ascii_alphanumeric())
    };
    let after_ok = idx + len >= bytes.len() || {
        let c = bytes[idx + len];
        !(c == b'_' || c.is_ascii_alphanumeric())
    };
    before_ok && after_ok
}

/// All whole-token occurrences of `needle` in `code`.
pub fn token_matches<'h>(code: &'h str, needle: &str) -> impl Iterator<Item = usize> + 'h {
    let needle_len = needle.len();
    let mut positions = Vec::new();
    let mut start = 0;
    while let Some(found) = code[start..].find(needle) {
        let idx = start + found;
        if token_bounded(code, idx, needle_len) {
            positions.push(idx);
        }
        start = idx + needle_len.max(1);
    }
    positions.into_iter()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = "let x = \"unwrap()\"; // .unwrap() here\nlet y = 1;\n";
        let lines = analyze(src);
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].raw.contains(".unwrap() here"));
        assert_eq!(lines[1].code, "let y = 1;");
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "let p = r#\"panic!(\"boom\")\"#;\nlet q = 2;";
        let lines = analyze(src);
        assert!(!lines[0].code.contains("panic"));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lines = analyze(src);
        assert!(lines[0].code.contains("<'a>"));
        assert!(!lines[0].code.contains("'x'"));
    }

    #[test]
    fn cfg_test_region_is_tracked() {
        let src = "\
fn real() {}

#[cfg(test)]
mod tests {
    fn helper() {}
}

fn also_real() {}
";
        let lines = analyze(src);
        assert!(!lines[0].in_test_context);
        assert!(lines[3].in_test_context, "mod tests line");
        assert!(lines[4].in_test_context, "helper line");
        assert!(!lines[7].in_test_context, "code after region");
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* a /* b */ still comment */ fn f() {}";
        let lines = analyze(src);
        assert!(lines[0].code.contains("fn f()"));
        assert!(!lines[0].code.contains("still"));
    }

    #[test]
    fn token_bounded_rejects_substrings() {
        let code = "let unwrapped = expect_err();";
        assert!(token_matches(code, "unwrap").next().is_none());
        assert!(token_matches(code, "expect").next().is_none());
    }
}
