//! A recursive-descent *item* parser over the scrubbed token stream.
//!
//! [`crate::lexer`] gives a comment- and literal-free view of each
//! file; this module tokenizes that view and recovers the item
//! structure the semantic rules need: `use` maps, `mod` declarations,
//! and `fn` items with their signatures and per-body facts (call
//! sites, panic sites, determinism hazards, raw-unit escapes).
//!
//! It is deliberately *not* a full Rust parser. It understands exactly
//! enough item syntax to be right about the workspace's rustfmt-shaped
//! code, and it degrades safely: an unrecognized construct is skipped,
//! never misattributed. The approximations that matter (name-only call
//! resolution, token-level taint) are documented in `DESIGN.md` and in
//! `mira-lint --explain <rule>`.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use crate::dataflow::{AllocSite, BlockingSite, GuardSpan, OrderingSite, PuritySite, SpawnSite};
use crate::lexer::{scrub, SourceLine};

/// One lexical token of the scrubbed source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal; text kept so `.0` tuple access is visible.
    Num(String),
    /// String or char literal (contents already blanked).
    Lit,
    /// Lifetime such as `'a`.
    Life,
    /// One punctuation byte.
    P(u8),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based source line.
    pub line: usize,
}

/// Tokenize scrubbed source (from [`scrub`]).
#[must_use]
pub fn tokenize(code: &str) -> Vec<Token> {
    let bytes = code.as_bytes();
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if b == b'_' || b.is_ascii_alphabetic() || b >= 0x80 {
            let start = i;
            while i < bytes.len()
                && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric() || bytes[i] >= 0x80)
            {
                i += 1;
            }
            let text = String::from_utf8_lossy(&bytes[start..i]).into_owned();
            toks.push(Token {
                tok: Tok::Ident(text),
                line,
            });
            continue;
        }
        if b.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                i += 1;
            }
            // `1.5` / `1.0e3`: a dot followed by a digit continues the
            // literal; `0..n` does not.
            if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                i += 1;
                while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
            }
            let text = String::from_utf8_lossy(&bytes[start..i]).into_owned();
            toks.push(Token {
                tok: Tok::Num(text),
                line,
            });
            continue;
        }
        if b == b'"' {
            // Scrubbed string: contents are blank, so the next quote
            // closes it.
            i += 1;
            while i < bytes.len() && bytes[i] != b'"' {
                if bytes[i] == b'\n' {
                    line += 1;
                }
                i += 1;
            }
            i += 1;
            toks.push(Token {
                tok: Tok::Lit,
                line,
            });
            continue;
        }
        if b == b'\'' {
            // The lexer kept lifetimes (`'a`) and blanked char-literal
            // bodies (`' '`), so an alphabetic right after the quote
            // means lifetime.
            if i + 1 < bytes.len() && (bytes[i + 1] == b'_' || bytes[i + 1].is_ascii_alphabetic()) {
                i += 1;
                while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                toks.push(Token {
                    tok: Tok::Life,
                    line,
                });
            } else {
                i += 1;
                while i < bytes.len() && bytes[i] != b'\'' && bytes[i] != b'\n' {
                    i += 1;
                }
                if i < bytes.len() && bytes[i] == b'\'' {
                    i += 1;
                }
                toks.push(Token {
                    tok: Tok::Lit,
                    line,
                });
            }
            continue;
        }
        toks.push(Token {
            tok: Tok::P(b),
            line,
        });
        i += 1;
    }
    toks
}

/// Item visibility, as far as the rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    /// `pub`
    Pub,
    /// `pub(crate)` / `pub(super)` / `pub(in ..)`
    Scoped,
    /// No modifier.
    Private,
}

/// One `use` alias: the name it binds locally and the path it expands
/// to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseDecl {
    /// Local name (`convert` for `use mira_units::convert;`, the `as`
    /// name when renamed).
    pub alias: String,
    /// Full path segments.
    pub path: Vec<String>,
}

/// How a call site names its target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `a::b::c(..)` or a bare `c(..)` (one segment).
    Path(Vec<String>),
    /// `.method(..)`.
    Method(String),
}

/// One call expression found in a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Target spelling.
    pub kind: CallKind,
    /// 1-based line of the opening parenthesis.
    pub line: usize,
    /// `Some(ident)` when an argument carries a raw `f64` escaped from
    /// a unit newtype (via `.0` or `.value()`) or a local tainted by
    /// such an escape, and this call is the innermost one enclosing the
    /// escape.
    pub raw_unit: Option<String>,
}

/// A site that can panic at runtime.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// 1-based line.
    pub line: usize,
    /// What was matched (`unwrap()`, `expect(..)`, `panic!`,
    /// `slice/array index`).
    pub what: &'static str,
}

/// A determinism hazard inside a function body.
#[derive(Debug, Clone)]
pub struct DetHazard {
    /// 1-based line.
    pub line: usize,
    /// What was matched.
    pub what: &'static str,
}

/// One function item (free fn, inherent/trait method, or trait default
/// method).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare name.
    pub name: String,
    /// `Some("Type")` for fns inside `impl Type` / `impl Tr for Type` /
    /// `trait Type` blocks.
    pub self_type: Option<String>,
    /// Module path within the file (inline `mod` nesting only).
    pub module: Vec<String>,
    /// Visibility.
    pub vis: Vis,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Parameter names (when a simple ident pattern) and the
    /// identifiers appearing in each parameter's type.
    pub params: Vec<(Option<String>, Vec<String>)>,
    /// Identifiers appearing in the return type.
    pub ret: Vec<String>,
    /// Carries `#[deprecated]`.
    pub deprecated: bool,
    /// `#[test]`, `#[cfg(test)]`, or inside a `#[cfg(test)]` region.
    pub is_test: bool,
    /// Call expressions in the body.
    pub calls: Vec<CallSite>,
    /// Panic-capable sites in the body.
    pub panics: Vec<PanicSite>,
    /// Determinism hazards in the body.
    pub hazards: Vec<DetHazard>,
    /// Allocation sites in the body (from [`crate::dataflow`]).
    pub allocs: Vec<AllocSite>,
    /// Purity hazards in the body (from [`crate::dataflow`]).
    pub impurities: Vec<PuritySite>,
    /// Lock-guard acquisitions and their live spans (from
    /// [`crate::dataflow::concurrency_facts`]).
    pub guards: Vec<GuardSpan>,
    /// `Ordering::` arguments to atomic operations.
    pub orderings: Vec<OrderingSite>,
    /// `thread::spawn` handle sites.
    pub spawns: Vec<SpawnSite>,
    /// Potentially blocking calls (I/O, accept, recv, join, sleep).
    pub blocking: Vec<BlockingSite>,
}

impl FnItem {
    /// `Type::name` for methods, plain `name` otherwise.
    #[must_use]
    pub fn display_name(&self) -> String {
        match &self.self_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Everything the index needs from one parsed file.
#[derive(Debug, Clone)]
pub struct ParsedFile {
    /// Workspace-relative path.
    pub rel: PathBuf,
    /// `use` aliases in scope (file-wide; module granularity is not
    /// tracked).
    pub uses: Vec<UseDecl>,
    /// All function items.
    pub fns: Vec<FnItem>,
    /// Names of `mod x;` declarations (external files).
    pub child_mods: Vec<String>,
    /// Subset of [`Self::child_mods`] declared under `#[cfg(test)]`.
    pub test_mods: Vec<String>,
    /// `// mira-lint: allow(..)` hatches by 1-based line.
    pub allows: BTreeMap<usize, Vec<String>>,
}

/// Keywords that must not be mistaken for call targets.
const KEYWORDS: [&str; 36] = [
    "if", "else", "while", "for", "loop", "match", "return", "let", "fn", "mod", "impl", "use",
    "pub", "crate", "super", "move", "ref", "mut", "in", "as", "where", "unsafe", "dyn", "break",
    "continue", "struct", "enum", "trait", "type", "const", "static", "extern", "async", "await",
    "box", "yield",
];

fn is_keyword(name: &str) -> bool {
    KEYWORDS.contains(&name)
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    lines: &'a [SourceLine],
    unit_types: &'a [&'a str],
    out: ParsedFile,
}

/// Attributes gathered in front of an item.
#[derive(Debug, Clone, Copy, Default)]
struct Attrs {
    deprecated: bool,
    cfg_test: bool,
    is_test: bool,
}

/// Parse one file. `lines` must come from [`crate::lexer::analyze`] on
/// the same source; `unit_types` are the newtype names whose raw
/// escape the `unit-flow` rule tracks.
#[must_use]
pub fn parse_file(
    rel: &Path,
    source: &str,
    lines: &[SourceLine],
    unit_types: &[&str],
) -> ParsedFile {
    let code = scrub(source);
    let toks = tokenize(&code);
    let mut allows = BTreeMap::new();
    for line in lines {
        let hatches = crate::rules::allows_on(&line.raw);
        if !hatches.is_empty() {
            allows.insert(line.number, hatches);
        }
    }
    let mut parser = Parser {
        toks: &toks,
        pos: 0,
        lines,
        unit_types,
        out: ParsedFile {
            rel: rel.to_path_buf(),
            uses: Vec::new(),
            fns: Vec::new(),
            child_mods: Vec::new(),
            test_mods: Vec::new(),
            allows,
        },
    };
    parser.items(&mut Vec::new(), None, usize::MAX);
    parser.out
}

impl Parser<'_> {
    fn peek(&self, ahead: usize) -> Option<&Tok> {
        self.toks.get(self.pos + ahead).map(|t| &t.tok)
    }

    fn line_at(&self, pos: usize) -> usize {
        self.toks
            .get(pos.min(self.toks.len().saturating_sub(1)))
            .map_or(1, |t| t.line)
    }

    fn is_punct(&self, ahead: usize, b: u8) -> bool {
        matches!(self.peek(ahead), Some(Tok::P(p)) if *p == b)
    }

    fn ident_at(&self, ahead: usize) -> Option<&str> {
        match self.peek(ahead) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Skip a balanced `open`..`close` region; `pos` must sit on
    /// `open`. Returns the position just past the matching close.
    fn skip_balanced(&mut self, open: u8, close: u8) {
        let mut depth = 0usize;
        while self.pos < self.toks.len() {
            if self.is_punct(0, open) {
                depth += 1;
            } else if self.is_punct(0, close) {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    self.pos += 1;
                    return;
                }
            }
            self.pos += 1;
        }
    }

    /// Skip a generics list `<...>` if present (angle brackets balance
    /// in declaration position).
    fn skip_generics(&mut self) {
        if !self.is_punct(0, b'<') {
            return;
        }
        let mut depth = 0usize;
        while self.pos < self.toks.len() {
            if self.is_punct(0, b'<') {
                depth += 1;
            } else if self.is_punct(0, b'>') {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    self.pos += 1;
                    return;
                }
            }
            self.pos += 1;
        }
    }

    /// Consume attributes (`#[..]`), recording the ones the rules need.
    fn attrs(&mut self, pending: &mut Attrs) {
        while self.is_punct(0, b'#') {
            // `#[..]` or `#![..]`.
            let bang = usize::from(self.is_punct(1, b'!'));
            if !self.is_punct(1 + bang, b'[') {
                self.pos += 1;
                continue;
            }
            let start = self.pos + 1 + bang;
            self.pos = start;
            let mut idents: Vec<&str> = Vec::new();
            let mut depth = 0usize;
            while self.pos < self.toks.len() {
                match &self.toks[self.pos].tok {
                    Tok::P(b'[') => depth += 1,
                    Tok::P(b']') => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            self.pos += 1;
                            break;
                        }
                    }
                    Tok::Ident(s) => idents.push(s.as_str()),
                    _ => {}
                }
                self.pos += 1;
            }
            match idents.first().copied() {
                Some("deprecated") => pending.deprecated = true,
                Some("test") => pending.is_test = true,
                Some("cfg") if idents.contains(&"test") => pending.cfg_test = true,
                _ => {}
            }
        }
    }

    /// Parse items until `end` (token position) or EOF.
    fn items(&mut self, module: &mut Vec<String>, self_type: Option<&str>, end: usize) {
        let mut vis = Vis::Private;
        let mut attrs = Attrs::default();
        while self.pos < end.min(self.toks.len()) {
            self.attrs(&mut attrs);
            let Some(tok) = self.peek(0) else { break };
            match tok {
                Tok::Ident(word) => match word.as_str() {
                    "pub" => {
                        self.pos += 1;
                        if self.is_punct(0, b'(') {
                            vis = Vis::Scoped;
                            self.skip_balanced(b'(', b')');
                        } else {
                            vis = Vis::Pub;
                        }
                        continue; // keep attrs/vis for the item
                    }
                    "const" | "unsafe" | "async" => {
                        // Qualifier when `fn` follows; item otherwise.
                        if self.ident_at(1) == Some("fn") {
                            self.pos += 1;
                            continue;
                        }
                        self.skip_to_semi_or_block();
                    }
                    "extern" => {
                        // `extern "C" fn`, `extern crate`, foreign block.
                        if matches!(self.peek(1), Some(Tok::Lit)) && self.ident_at(2) == Some("fn")
                        {
                            self.pos += 2;
                            continue;
                        }
                        self.skip_to_semi_or_block();
                    }
                    "use" => self.parse_use(),
                    "mod" => {
                        self.pos += 1;
                        let name = self.ident_at(0).unwrap_or("").to_owned();
                        self.pos += 1;
                        if self.is_punct(0, b';') {
                            self.pos += 1;
                            if !name.is_empty() {
                                if attrs.cfg_test {
                                    self.out.test_mods.push(name.clone());
                                }
                                self.out.child_mods.push(name);
                            }
                        } else if self.is_punct(0, b'{') {
                            let close = self.matching_brace(self.pos);
                            self.pos += 1;
                            module.push(name);
                            self.items(module, None, close);
                            module.pop();
                            self.pos = close.saturating_add(1).min(self.toks.len());
                        }
                    }
                    "impl" => {
                        self.pos += 1;
                        self.skip_generics();
                        let ty = self.impl_self_type();
                        if self.is_punct(0, b'{') {
                            let close = self.matching_brace(self.pos);
                            self.pos += 1;
                            self.items(module, ty.as_deref(), close);
                            self.pos = close.saturating_add(1).min(self.toks.len());
                        }
                    }
                    "trait" => {
                        self.pos += 1;
                        let name = self.ident_at(0).map(str::to_owned);
                        self.pos += 1;
                        // Skip generics / supertraits / where clause.
                        while self.pos < self.toks.len()
                            && !self.is_punct(0, b'{')
                            && !self.is_punct(0, b';')
                        {
                            if self.is_punct(0, b'<') {
                                self.skip_generics();
                            } else {
                                self.pos += 1;
                            }
                        }
                        if self.is_punct(0, b'{') {
                            let close = self.matching_brace(self.pos);
                            self.pos += 1;
                            self.items(module, name.as_deref(), close);
                            self.pos = close.saturating_add(1).min(self.toks.len());
                        } else {
                            self.pos += 1;
                        }
                    }
                    "fn" => {
                        self.parse_fn(vis, attrs, module, self_type);
                    }
                    "struct" | "enum" | "union" | "static" | "type" | "macro_rules" => {
                        self.skip_to_semi_or_block();
                    }
                    _ => self.pos += 1,
                },
                Tok::P(b'{') => {
                    self.skip_balanced(b'{', b'}');
                }
                _ => self.pos += 1,
            }
            vis = Vis::Private;
            attrs = Attrs::default();
        }
    }

    /// Position of the `}` matching the `{` at `open`.
    fn matching_brace(&self, open: usize) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < self.toks.len() {
            match self.toks[i].tok {
                Tok::P(b'{') => depth += 1,
                Tok::P(b'}') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        self.toks.len()
    }

    /// Skip an item body: to `;`, or past a balanced `{..}`, whichever
    /// comes first.
    fn skip_to_semi_or_block(&mut self) {
        self.pos += 1;
        while self.pos < self.toks.len() {
            if self.is_punct(0, b';') {
                self.pos += 1;
                return;
            }
            if self.is_punct(0, b'{') {
                self.skip_balanced(b'{', b'}');
                return;
            }
            if self.is_punct(0, b'<') {
                self.skip_generics();
                continue;
            }
            self.pos += 1;
        }
    }

    /// `impl [Trait for] Type` — the type the block's methods hang off.
    fn impl_self_type(&mut self) -> Option<String> {
        let mut last_ident: Option<String> = None;
        let mut after_for: Option<String> = None;
        let mut saw_for = false;
        while self.pos < self.toks.len() && !self.is_punct(0, b'{') {
            match &self.toks[self.pos].tok {
                Tok::Ident(s) if s == "for" => {
                    saw_for = true;
                    self.pos += 1;
                }
                Tok::Ident(s) if s == "where" => break,
                Tok::Ident(s) => {
                    if saw_for {
                        after_for = Some(s.clone());
                    } else {
                        last_ident = Some(s.clone());
                    }
                    self.pos += 1;
                }
                Tok::P(b'<') => self.skip_generics(),
                _ => self.pos += 1,
            }
        }
        // Skip any trailing where clause tokens up to `{` (handled by
        // the loop condition).
        if saw_for {
            after_for
        } else {
            last_ident
        }
    }

    /// `use a::b::{c, d as e};` — flatten into alias entries.
    fn parse_use(&mut self) {
        self.pos += 1; // `use`
        let mut prefix: Vec<String> = Vec::new();
        self.parse_use_tree(&mut prefix);
        // Consume to `;`.
        while self.pos < self.toks.len() && !self.is_punct(0, b';') {
            self.pos += 1;
        }
        self.pos += 1;
    }

    fn parse_use_tree(&mut self, prefix: &mut Vec<String>) {
        let depth_on_entry = prefix.len();
        let mut last: Option<String> = None;
        loop {
            match self.peek(0) {
                Some(Tok::Ident(s)) if s == "as" => {
                    self.pos += 1;
                    if let (Some(name), Some(alias)) = (last.take(), self.ident_at(0)) {
                        let mut path = prefix.clone();
                        path.push(name);
                        self.out.uses.push(UseDecl {
                            alias: alias.to_owned(),
                            path,
                        });
                        self.pos += 1;
                    }
                }
                Some(Tok::Ident(s)) => {
                    // Flush a previous segment that turned out to be a
                    // leaf (comma-separated list inside braces).
                    last = Some(s.clone());
                    self.pos += 1;
                }
                Some(Tok::P(b':')) if self.is_punct(1, b':') => {
                    self.pos += 2;
                    if let Some(seg) = last.take() {
                        prefix.push(seg);
                    }
                    if self.is_punct(0, b'{') {
                        self.pos += 1;
                        loop {
                            self.parse_use_tree(prefix);
                            if self.is_punct(0, b',') {
                                self.pos += 1;
                                continue;
                            }
                            break;
                        }
                        if self.is_punct(0, b'}') {
                            self.pos += 1;
                        }
                        break;
                    }
                    if self.is_punct(0, b'*') {
                        // Glob import: resolution cannot see through
                        // these; recorded under a `*` alias for the
                        // docs' honesty, unused by the resolver.
                        self.out.uses.push(UseDecl {
                            alias: "*".to_owned(),
                            path: prefix.clone(),
                        });
                        self.pos += 1;
                        break;
                    }
                }
                _ => break,
            }
            if self.is_punct(0, b',') || self.is_punct(0, b';') || self.is_punct(0, b'}') {
                break;
            }
        }
        if let Some(name) = last {
            let mut path = prefix.clone();
            path.push(name.clone());
            self.out.uses.push(UseDecl { alias: name, path });
        }
        prefix.truncate(depth_on_entry);
    }

    #[allow(clippy::too_many_lines)]
    fn parse_fn(&mut self, vis: Vis, attrs: Attrs, module: &[String], self_type: Option<&str>) {
        let fn_line = self.line_at(self.pos);
        self.pos += 1; // `fn`
        let Some(name) = self.ident_at(0).map(str::to_owned) else {
            return;
        };
        self.pos += 1;
        self.skip_generics();

        // Parameters.
        let mut params: Vec<(Option<String>, Vec<String>)> = Vec::new();
        if self.is_punct(0, b'(') {
            let open = self.pos;
            self.skip_balanced(b'(', b')');
            let close = self.pos - 1;
            params = parse_params(&self.toks[open + 1..close]);
        }

        // Return type idents, up to the body / `;` / `where`.
        let mut ret: Vec<String> = Vec::new();
        if self.is_punct(0, b'-') && self.is_punct(1, b'>') {
            self.pos += 2;
            while self.pos < self.toks.len() {
                match &self.toks[self.pos].tok {
                    Tok::P(b'{' | b';') => break,
                    Tok::Ident(s) if s == "where" => break,
                    Tok::Ident(s) => {
                        ret.push(s.clone());
                        self.pos += 1;
                    }
                    _ => self.pos += 1,
                }
            }
        }
        // Skip where clause.
        while self.pos < self.toks.len() && !self.is_punct(0, b'{') && !self.is_punct(0, b';') {
            self.pos += 1;
        }

        let in_test_region = self
            .lines
            .get(fn_line.saturating_sub(1))
            .is_some_and(|l| l.in_test_context);

        let mut item = FnItem {
            name,
            self_type: self_type.map(str::to_owned),
            module: module.to_vec(),
            vis,
            line: fn_line,
            params,
            ret,
            deprecated: attrs.deprecated,
            is_test: attrs.is_test || attrs.cfg_test || in_test_region,
            calls: Vec::new(),
            panics: Vec::new(),
            hazards: Vec::new(),
            allocs: Vec::new(),
            impurities: Vec::new(),
            guards: Vec::new(),
            orderings: Vec::new(),
            spawns: Vec::new(),
            blocking: Vec::new(),
        };

        if self.is_punct(0, b'{') {
            let close = self.matching_brace(self.pos);
            let body = &self.toks[self.pos..close.min(self.toks.len())];
            scan_body(body, &mut item, self.unit_types);
            crate::dataflow::analyze(body, &mut item, self.unit_types);
            crate::dataflow::concurrency_facts(body, &mut item);
            self.pos = close.saturating_add(1).min(self.toks.len());
        } else {
            self.pos += 1; // `;`
        }
        self.out.fns.push(item);
    }
}

/// Split a parameter list at top-level commas and extract (name, type
/// idents) pairs. Receivers (`self`, `&mut self`) are skipped.
fn parse_params(toks: &[Token]) -> Vec<(Option<String>, Vec<String>)> {
    let mut params = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    let mut i = 0;
    while i <= toks.len() {
        let at_comma = i == toks.len() || (depth == 0 && matches!(toks[i].tok, Tok::P(b',')));
        if at_comma {
            let part = &toks[start..i.min(toks.len())];
            if let Some(param) = parse_param(part) {
                params.push(param);
            }
            start = i + 1;
        } else {
            match toks[i].tok {
                Tok::P(b'(' | b'[' | b'<') => depth += 1,
                Tok::P(b')' | b']' | b'>') => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
        i += 1;
    }
    params
}

fn parse_param(toks: &[Token]) -> Option<(Option<String>, Vec<String>)> {
    let colon = toks.iter().position(|t| matches!(t.tok, Tok::P(b':')))?;
    let name = match toks[..colon]
        .iter()
        .filter_map(|t| match &t.tok {
            Tok::Ident(s) if s != "mut" && s != "ref" => Some(s.as_str()),
            _ => None,
        })
        .collect::<Vec<_>>()[..]
    {
        [single] if single != "self" => Some(single.to_owned()),
        _ => None,
    };
    let ty: Vec<String> = toks[colon + 1..]
        .iter()
        .filter_map(|t| match &t.tok {
            Tok::Ident(s) => Some(s.clone()),
            _ => None,
        })
        .collect();
    Some((name, ty))
}

/// The body scanner: one pass over the body tokens collecting calls,
/// panic sites, determinism hazards, and raw-unit taint.
#[allow(clippy::too_many_lines)]
fn scan_body(toks: &[Token], item: &mut FnItem, unit_types: &[&str]) {
    // Locals known to hold a unit newtype (params + annotated lets).
    let mut unit_locals: BTreeSet<String> = item
        .params
        .iter()
        .filter_map(|(name, ty)| {
            let name = name.clone()?;
            ty.iter()
                .any(|t| unit_types.contains(&t.as_str()))
                .then_some(name)
        })
        .collect();
    // Locals holding a raw f64 escaped from a unit newtype.
    let mut tainted: BTreeSet<String> = BTreeSet::new();

    // Innermost-call tracking: for each open paren, the call it belongs
    // to (if any).
    let mut paren_stack: Vec<Option<usize>> = Vec::new();
    // Open `[` positions that look like indexing, with token index.
    let mut bracket_stack: Vec<Option<usize>> = Vec::new();

    // `let` state machine: Some((name, brace_depth, saw_escape,
    // unit_annotated)).
    let mut pending_let: Option<(String, usize, bool, bool)> = None;
    let mut brace_depth = 0usize;

    let mut i = 0;
    while i < toks.len() {
        let line = toks[i].line;
        match &toks[i].tok {
            Tok::P(b'{') => brace_depth += 1,
            Tok::P(b'}') => brace_depth = brace_depth.saturating_sub(1),
            Tok::P(b'(') => {
                let call = detect_call(toks, i, item);
                paren_stack.push(call);
            }
            Tok::P(b')') => {
                paren_stack.pop();
            }
            Tok::P(b'[') => {
                let is_index = i > 0
                    && matches!(toks[i - 1].tok, Tok::Ident(_) | Tok::P(b')') | Tok::P(b']'))
                    && !matches!(&toks[i - 1].tok, Tok::Ident(s) if is_keyword(s));
                bracket_stack.push(is_index.then_some(i));
            }
            Tok::P(b']') => {
                if let Some(Some(open)) = bracket_stack.pop() {
                    record_index_site(toks, open, i, item);
                }
            }
            Tok::P(b';') => {
                if let Some((name, depth, escaped, unit)) = pending_let.take() {
                    if depth == brace_depth && paren_stack.is_empty() {
                        if escaped {
                            tainted.insert(name.clone());
                        }
                        if unit {
                            unit_locals.insert(name);
                        }
                    } else {
                        // `;` inside a nested block/closure: keep
                        // waiting for the let's own terminator.
                        pending_let = Some((name, depth, escaped, unit));
                    }
                }
            }
            // `panic!(..)` — the macro cannot be a false positive
            // because comment/string bodies are scrubbed.
            Tok::P(b'!')
                if i > 0
                    && matches!(&toks[i - 1].tok, Tok::Ident(s) if s == "panic")
                    && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::P(b'('))) =>
            {
                item.panics.push(PanicSite {
                    line,
                    what: "panic!",
                });
            }
            Tok::Ident(word) => {
                match word.as_str() {
                    "let" => {
                        // `let [mut] name [: Type] = ...;`
                        let mut j = i + 1;
                        while matches!(&toks.get(j).map(|t| &t.tok), Some(Tok::Ident(s)) if *s == "mut")
                        {
                            j += 1;
                        }
                        if let Some(Tok::Ident(name)) = toks.get(j).map(|t| &t.tok) {
                            if !is_keyword(name) {
                                // Unit annotation: idents between `:`
                                // and `=`.
                                let mut unit = false;
                                let mut k = j + 1;
                                if matches!(toks.get(k).map(|t| &t.tok), Some(Tok::P(b':')))
                                    && !matches!(
                                        toks.get(k + 1).map(|t| &t.tok),
                                        Some(Tok::P(b':'))
                                    )
                                {
                                    k += 1;
                                    while k < toks.len() {
                                        match &toks[k].tok {
                                            Tok::P(b'=' | b';') => break,
                                            Tok::Ident(t) if unit_types.contains(&t.as_str()) => {
                                                unit = true;
                                                k += 1;
                                            }
                                            _ => k += 1,
                                        }
                                    }
                                }
                                // Constructor-typed initializer:
                                // `let x = Celsius::new(..)` binds a
                                // unit even without an annotation.
                                if !unit
                                    && matches!(toks.get(k).map(|t| &t.tok), Some(Tok::P(b'=')))
                                    && matches!(toks.get(k + 2).map(|t| &t.tok), Some(Tok::P(b':')))
                                    && matches!(toks.get(k + 3).map(|t| &t.tok), Some(Tok::P(b':')))
                                {
                                    if let Some(Tok::Ident(head)) = toks.get(k + 1).map(|t| &t.tok)
                                    {
                                        unit = unit_types.contains(&head.as_str());
                                    }
                                }
                                pending_let = Some((name.clone(), brace_depth, false, unit));
                            }
                        }
                    }
                    "SystemTime" => item.hazards.push(DetHazard {
                        line,
                        what: "SystemTime wall-clock read",
                    }),
                    "Instant" if path_follows(toks, i, "now") => {
                        item.hazards.push(DetHazard {
                            line,
                            what: "Instant::now wall-clock read",
                        });
                    }
                    "thread"
                        if path_follows(toks, i, "spawn") || path_follows(toks, i, "scope") =>
                    {
                        item.hazards.push(DetHazard {
                            line,
                            what: "thread spawn/scope",
                        });
                    }
                    _ => {}
                }
                // A plain reassignment (`raw = fresh();`, not `==` or
                // `=>`) overwrites the escaped value: clear the taint
                // instead of flagging every later use.
                if tainted.contains(word.as_str())
                    && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::P(b'=')))
                    && !matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::P(b'=' | b'>')))
                {
                    tainted.remove(word.as_str());
                }
                // Raw-unit escape: `x.0` / `x.value()` on a unit-typed
                // local, or any use of a tainted local.
                let escape = escape_at(toks, i, word, &unit_locals)
                    || (tainted.contains(word)
                        && !matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::P(b'='))));
                if escape {
                    if let Some(call) = paren_stack.iter().rev().find_map(|c| *c) {
                        if item.calls[call].raw_unit.is_none() {
                            item.calls[call].raw_unit = Some(word.clone());
                        }
                    } else if let Some((_, _, escaped, _)) = pending_let.as_mut() {
                        *escaped = true;
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    // HashMap/HashSet iteration hazards moved to the receiver-typed
    // walk in [`crate::dataflow`].
}

/// Does `x.0` / `x.value()` at token `i` (the `x`) escape a raw f64
/// from a unit newtype?
fn escape_at(toks: &[Token], i: usize, word: &str, unit_locals: &BTreeSet<String>) -> bool {
    if !unit_locals.contains(word) {
        return false;
    }
    if !matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::P(b'.'))) {
        return false;
    }
    match toks.get(i + 2).map(|t| &t.tok) {
        Some(Tok::Num(n)) => n == "0",
        Some(Tok::Ident(m)) => {
            m == "value" && matches!(toks.get(i + 3).map(|t| &t.tok), Some(Tok::P(b'(')))
        }
        _ => false,
    }
}

/// Is `ident :: target (` at position `i` (the leading ident)?
fn path_follows(toks: &[Token], i: usize, target: &str) -> bool {
    matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::P(b':')))
        && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::P(b':')))
        && matches!(&toks.get(i + 3).map(|t| &t.tok), Some(Tok::Ident(s)) if *s == target)
}

/// Classify the `(` at `open` as a call site, record it, and return its
/// index in `item.calls`.
fn detect_call(toks: &[Token], open: usize, item: &mut FnItem) -> Option<usize> {
    if open == 0 {
        return None;
    }
    let line = toks[open].line;
    let Tok::Ident(name) = &toks[open - 1].tok else {
        return None;
    };
    if is_keyword(name) || name == "self" || name == "Self" {
        return None;
    }
    // Definition, not a call: `fn name(`.
    if open >= 2 && matches!(&toks[open - 2].tok, Tok::Ident(s) if s == "fn") {
        return None;
    }
    // Macro: `name!(` — only panic!, handled by the `!` arm.
    if open >= 2 && matches!(toks[open - 2].tok, Tok::P(b'!')) {
        return None;
    }
    let kind = if open >= 2 && matches!(toks[open - 2].tok, Tok::P(b'.')) {
        // `.unwrap()` / `.expect(..)` are panic sites, not graph edges.
        if name == "unwrap" {
            if matches!(toks.get(open + 1).map(|t| &t.tok), Some(Tok::P(b')'))) {
                item.panics.push(PanicSite {
                    line,
                    what: "unwrap()",
                });
            }
            return None;
        }
        if name == "expect" {
            item.panics.push(PanicSite {
                line,
                what: "expect(..)",
            });
            return None;
        }
        if name == "spawn" {
            item.hazards.push(DetHazard {
                line,
                what: "thread spawn/scope",
            });
        }
        CallKind::Method(name.clone())
    } else if open >= 3
        && matches!(toks[open - 2].tok, Tok::P(b':'))
        && matches!(toks[open - 3].tok, Tok::P(b':'))
    {
        // Walk back `a::b::name`.
        let mut segs = vec![name.clone()];
        let mut j = open - 1; // points at `name`
        while j >= 3
            && matches!(toks[j - 1].tok, Tok::P(b':'))
            && matches!(toks[j - 2].tok, Tok::P(b':'))
        {
            match &toks[j - 3].tok {
                Tok::Ident(seg) => {
                    segs.push(seg.clone());
                    j -= 3;
                }
                _ => break,
            }
        }
        segs.reverse();
        CallKind::Path(segs)
    } else {
        CallKind::Path(vec![name.clone()])
    };
    item.calls.push(CallSite {
        kind,
        line,
        raw_unit: None,
    });
    Some(item.calls.len() - 1)
}

/// Record a slice/array index site `expr[..]` unless it matches a
/// sanctioned bounded idiom.
fn record_index_site(toks: &[Token], open: usize, close: usize, item: &mut FnItem) {
    let inner = &toks[open + 1..close];
    if inner.is_empty() {
        return;
    }
    // `x[r.index()]`: the RackId::index() contract bounds the value to
    // the container size; sanctioned (see DESIGN.md).
    if inner.len() >= 4 {
        let n = inner.len();
        let idiom = matches!(inner[n - 4].tok, Tok::P(b'.'))
            && matches!(&inner[n - 3].tok, Tok::Ident(s) if s == "index")
            && matches!(inner[n - 2].tok, Tok::P(b'('))
            && matches!(inner[n - 1].tok, Tok::P(b')'));
        if idiom {
            return;
        }
    }
    // `&x[..]` — the full-range slice never panics.
    if inner.len() == 2
        && matches!(inner[0].tok, Tok::P(b'.'))
        && matches!(inner[1].tok, Tok::P(b'.'))
    {
        return;
    }
    item.panics.push(PanicSite {
        line: toks[open].line,
        what: "slice/array index",
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::analyze;

    const UNITS: [&str; 3] = ["Celsius", "Watts", "Gpm"];

    fn parse(src: &str) -> ParsedFile {
        parse_file(Path::new("crates/x/src/lib.rs"), src, &analyze(src), &UNITS)
    }

    #[test]
    fn fn_signature_and_visibility() {
        let file = parse(
            "pub fn blend(a: Celsius, weight: f64) -> Celsius { a }\n\
             pub(crate) fn helper() {}\n\
             fn private() {}\n",
        );
        assert_eq!(file.fns.len(), 3);
        assert_eq!(file.fns[0].name, "blend");
        assert_eq!(file.fns[0].vis, Vis::Pub);
        assert_eq!(file.fns[0].params.len(), 2);
        assert_eq!(file.fns[0].params[0].0.as_deref(), Some("a"));
        assert_eq!(file.fns[0].ret, vec!["Celsius"]);
        assert_eq!(file.fns[1].vis, Vis::Scoped);
        assert_eq!(file.fns[2].vis, Vis::Private);
    }

    #[test]
    fn impl_methods_get_self_type() {
        let file = parse(
            "struct Pump;\n\
             impl Pump {\n    pub fn rpm(&self) -> u32 { 0 }\n}\n\
             impl std::fmt::Display for Pump {\n    fn fmt(&self) -> u8 { 0 }\n}\n",
        );
        assert_eq!(file.fns.len(), 2);
        assert_eq!(file.fns[0].self_type.as_deref(), Some("Pump"));
        assert_eq!(file.fns[0].display_name(), "Pump::rpm");
        assert_eq!(file.fns[1].self_type.as_deref(), Some("Pump"));
    }

    #[test]
    fn calls_paths_and_methods() {
        let file = parse(
            "fn f() {\n    helper();\n    mira_units::convert::f64_from_usize(3);\n    x.observe(1);\n    Pump::new();\n}\n",
        );
        let calls = &file.fns[0].calls;
        let kinds: Vec<_> = calls.iter().map(|c| &c.kind).collect();
        assert!(kinds.contains(&&CallKind::Path(vec!["helper".into()])));
        assert!(kinds.contains(&&CallKind::Path(vec![
            "mira_units".into(),
            "convert".into(),
            "f64_from_usize".into()
        ])));
        assert!(kinds.contains(&&CallKind::Method("observe".into())));
        assert!(kinds.contains(&&CallKind::Path(vec!["Pump".into(), "new".into()])));
    }

    #[test]
    fn panic_sites_detected() {
        let file = parse(
            "fn f(v: Vec<u8>, o: Option<u8>) {\n    o.unwrap();\n    o.expect(\"x\");\n    panic!(\"boom\");\n    let _ = v[3];\n}\n",
        );
        let whats: Vec<_> = file.fns[0].panics.iter().map(|p| p.what).collect();
        assert_eq!(
            whats,
            vec!["unwrap()", "expect(..)", "panic!", "slice/array index"]
        );
    }

    #[test]
    fn bounded_index_idiom_is_sanctioned() {
        let file = parse(
            "fn f(v: &[u8], r: RackId) {\n    let _ = v[r.index()];\n    let _ = &v[..];\n    let _ = v[r.index() + 1];\n}\n",
        );
        assert_eq!(file.fns[0].panics.len(), 1, "{:?}", file.fns[0].panics);
    }

    #[test]
    fn unwrap_or_variants_are_not_panics() {
        let file = parse("fn f(o: Option<u8>) { o.unwrap_or(0); o.unwrap_or_default(); }\n");
        assert!(file.fns[0].panics.is_empty());
    }

    #[test]
    fn use_tree_flattens() {
        let file =
            parse("use mira_units::{convert, Celsius as C};\nuse mira_core::sweep::SweepPlan;\n");
        let find = |alias: &str| {
            file.uses
                .iter()
                .find(|u| u.alias == alias)
                .map(|u| u.path.clone())
        };
        assert_eq!(
            find("convert"),
            Some(vec!["mira_units".into(), "convert".into()])
        );
        assert_eq!(find("C"), Some(vec!["mira_units".into(), "Celsius".into()]));
        assert_eq!(
            find("SweepPlan"),
            Some(vec!["mira_core".into(), "sweep".into(), "SweepPlan".into()])
        );
    }

    #[test]
    fn test_mod_declarations_are_recorded() {
        let file = parse("#[cfg(test)]\nmod tests;\nmod real;\n");
        assert_eq!(file.test_mods, vec!["tests"]);
        assert_eq!(file.child_mods, vec!["tests", "real"]);
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let file = parse(
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\nfn real() {}\n",
        );
        let t = file.fns.iter().find(|f| f.name == "t").expect("parsed t");
        assert!(t.is_test);
        let real = file.fns.iter().find(|f| f.name == "real").expect("real");
        assert!(!real.is_test);
    }

    #[test]
    fn deprecated_attr_is_recorded() {
        let file = parse("#[deprecated(since = \"0.2.0\", note = \"x\")]\npub fn old() {}\n");
        assert!(file.fns[0].deprecated);
    }

    #[test]
    fn raw_unit_escape_direct_argument() {
        let file = parse(
            "fn f(t: Celsius) {\n    other::sink(t.value());\n    other::sink2(t.0);\n    ok(t);\n}\n",
        );
        let calls = &file.fns[0].calls;
        let sink = calls
            .iter()
            .find(|c| matches!(&c.kind, CallKind::Path(p) if p.last().is_some_and(|s| s == "sink")))
            .expect("sink call");
        assert_eq!(sink.raw_unit.as_deref(), Some("t"));
        let sink2 = calls
            .iter()
            .find(
                |c| matches!(&c.kind, CallKind::Path(p) if p.last().is_some_and(|s| s == "sink2")),
            )
            .expect("sink2 call");
        assert_eq!(sink2.raw_unit.as_deref(), Some("t"));
        let ok = calls
            .iter()
            .find(|c| matches!(&c.kind, CallKind::Path(p) if p.last().is_some_and(|s| s == "ok")))
            .expect("ok call");
        assert!(ok.raw_unit.is_none(), "passing the newtype itself is fine");
    }

    #[test]
    fn raw_unit_taint_via_let() {
        let file =
            parse("fn f(t: Celsius) {\n    let raw = t.value();\n    other::sink(raw);\n}\n");
        let sink = &file.fns[0]
            .calls
            .iter()
            .find(|c| matches!(&c.kind, CallKind::Path(p) if p.last().is_some_and(|s| s == "sink")))
            .expect("sink call");
        assert_eq!(sink.raw_unit.as_deref(), Some("raw"));
    }

    #[test]
    fn innermost_call_owns_the_escape() {
        let file = parse(
            "fn f(t: Celsius) {\n    outer::g(mira_units::convert::f64_from_u64(t.value() as u64));\n}\n",
        );
        let calls = &file.fns[0].calls;
        let outer = calls
            .iter()
            .find(
                |c| matches!(&c.kind, CallKind::Path(p) if p.first().is_some_and(|s| s == "outer")),
            )
            .expect("outer call");
        assert!(outer.raw_unit.is_none(), "inner convert call owns it");
        let conv = calls
            .iter()
            .find(|c| matches!(&c.kind, CallKind::Path(p) if p.contains(&"convert".to_owned())))
            .expect("convert call");
        assert_eq!(conv.raw_unit.as_deref(), Some("t"));
    }

    #[test]
    fn unit_constructor_let_binds_unit() {
        // No annotation: the `Celsius::..` initializer types the local.
        let file = parse(
            "fn f() {\n    let t = Celsius::from_f64(1.0);\n    other::sink(t.value());\n}\n",
        );
        let sink = file.fns[0]
            .calls
            .iter()
            .find(|c| matches!(&c.kind, CallKind::Path(p) if p.last().is_some_and(|s| s == "sink")))
            .expect("sink call");
        assert_eq!(sink.raw_unit.as_deref(), Some("t"));
    }

    #[test]
    fn taint_clears_on_reassignment() {
        let file = parse(
            "fn f(t: Celsius) {\n    let mut raw = t.value();\n    raw = 0.0;\n    other::sink(raw);\n}\n",
        );
        let sink = file.fns[0]
            .calls
            .iter()
            .find(|c| matches!(&c.kind, CallKind::Path(p) if p.last().is_some_and(|s| s == "sink")))
            .expect("sink call");
        assert!(
            sink.raw_unit.is_none(),
            "reassigned local no longer carries the escape: {sink:?}"
        );
    }

    #[test]
    fn determinism_hazards_detected() {
        let file = parse(
            "fn f() {\n    let t = Instant::now();\n    let m: HashMap<u8, u8> = HashMap::new();\n    for k in m.keys() {}\n    std::thread::spawn(|| {});\n}\n",
        );
        let whats: Vec<_> = file.fns[0].hazards.iter().map(|h| h.what).collect();
        assert!(whats.contains(&"Instant::now wall-clock read"));
        assert!(whats.contains(&"HashMap/HashSet iteration order"));
        assert!(whats.contains(&"thread spawn/scope"));
    }

    #[test]
    fn hashmap_lookup_alone_is_not_a_hazard() {
        let file = parse("fn f(m: &HashMap<u8, u8>) -> Option<u8> {\n    m.get(&1).copied()\n}\n");
        assert!(file.fns[0].hazards.is_empty(), "{:?}", file.fns[0].hazards);
    }

    #[test]
    fn allow_hatches_are_indexed_by_line() {
        let file = parse("fn f() {}\n// mira-lint: allow(panic-reachability)\nfn g() {}\n");
        assert_eq!(
            file.allows.get(&2),
            Some(&vec!["panic-reachability".to_owned()])
        );
    }
}
