//! The grandfathered-violation allowlist.
//!
//! `lint-allow.toml` at the workspace root holds per-(rule, file)
//! budgets for violations that predate the gate. The format is a tiny
//! TOML subset parsed by hand (no registry deps):
//!
//! ```toml
//! [[allow]]
//! rule = "lossy-cast"
//! file = "crates/timeseries/src/stats.rs"
//! count = 16
//! ```
//!
//! A file may exceed its budget only by *shrinking*: if the scan finds
//! more findings than the budget, every finding for that pair is
//! reported and the run fails. Fewer findings than budget passes but is
//! reported as slack, so budgets ratchet downward over time.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use crate::rules::{Finding, Rule};

/// Budgets keyed by (rule name, workspace-relative file path).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Allowlist {
    budgets: BTreeMap<(String, String), usize>,
}

/// A parse failure with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint-allow.toml:{}: {}", self.line, self.message)
    }
}

impl Allowlist {
    /// Parse the checked-in allowlist.
    pub fn parse(text: &str) -> Result<Allowlist, ParseError> {
        let mut budgets = BTreeMap::new();
        let mut current: Option<(Option<String>, Option<String>, Option<usize>)> = None;

        let mut flush = |entry: Option<(Option<String>, Option<String>, Option<usize>)>,
                         line: usize|
         -> Result<(), ParseError> {
            if let Some((rule, file, count)) = entry {
                let (Some(rule), Some(file), Some(count)) = (rule, file, count) else {
                    return Err(ParseError {
                        line,
                        message: "entry needs rule, file, and count keys".to_owned(),
                    });
                };
                if Rule::from_name(&rule).is_none() {
                    return Err(ParseError {
                        line,
                        message: format!("unknown rule name `{rule}`"),
                    });
                }
                budgets.insert((rule, file), count);
            }
            Ok(())
        };

        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                flush(current.take(), line_no)?;
                current = Some((None, None, None));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ParseError {
                    line: line_no,
                    message: format!("expected `key = value`, got `{line}`"),
                });
            };
            let Some(entry) = current.as_mut() else {
                return Err(ParseError {
                    line: line_no,
                    message: "key outside an [[allow]] entry".to_owned(),
                });
            };
            let key = key.trim();
            let value = value.trim();
            match key {
                "rule" => entry.0 = Some(unquote(value, line_no)?),
                "file" => entry.1 = Some(unquote(value, line_no)?),
                "count" => {
                    entry.2 = Some(value.parse().map_err(|_| ParseError {
                        line: line_no,
                        message: format!("count must be an integer, got `{value}`"),
                    })?);
                }
                other => {
                    return Err(ParseError {
                        line: line_no,
                        message: format!("unknown key `{other}`"),
                    });
                }
            }
        }
        flush(current.take(), text.lines().count())?;
        Ok(Allowlist { budgets })
    }

    /// Budget for one (rule, file) pair; zero when absent.
    #[must_use]
    pub fn budget(&self, rule: Rule, file: &Path) -> usize {
        let key = (rule.name().to_owned(), path_key(file));
        self.budgets.get(&key).copied().unwrap_or(0)
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.budgets.len()
    }

    /// True when no budgets exist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.budgets.is_empty()
    }

    /// Total grandfathered findings across all entries.
    #[must_use]
    pub fn total_budget(&self) -> usize {
        self.budgets.values().sum()
    }

    /// Render findings grouped into a fresh allowlist document,
    /// used by `mira-lint --write-allowlist` to (re)grandfather the
    /// current state.
    #[must_use]
    pub fn render(findings: &[Finding]) -> String {
        let mut grouped: BTreeMap<(String, String), usize> = BTreeMap::new();
        for finding in findings {
            *grouped
                .entry((finding.rule.name().to_owned(), path_key(&finding.file)))
                .or_insert(0) += 1;
        }
        let mut out = String::from(
            "# mira-lint grandfathered violations.\n\
             # Each entry caps how many findings of `rule` may remain in `file`.\n\
             # Budgets only ratchet down: fix a site, lower (or drop) its count.\n\
             # Regenerate with: cargo run -p mira-lint -- --write-allowlist\n",
        );
        for ((rule, file), count) in grouped {
            out.push_str(&format!(
                "\n[[allow]]\nrule = \"{rule}\"\nfile = \"{file}\"\ncount = {count}\n"
            ));
        }
        out
    }
}

fn unquote(value: &str, line: usize) -> Result<String, ParseError> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| ParseError {
            line,
            message: format!("expected a double-quoted string, got `{value}`"),
        })?;
    Ok(inner.to_owned())
}

/// Normalize a path for allowlist keys: forward slashes, workspace
/// relative.
fn path_key(path: &Path) -> String {
    path.to_string_lossy().replace('\\', "/")
}

/// The outcome of filtering findings through the allowlist.
#[derive(Debug, Clone, Default)]
pub struct Gated {
    /// Findings that must fail the run (budget exceeded or absent).
    pub rejected: Vec<Finding>,
    /// Count of findings absorbed by budgets.
    pub grandfathered: usize,
    /// (rule, file, budget, actual) pairs where the budget has slack —
    /// candidates for ratcheting down.
    pub slack: Vec<(String, String, usize, usize)>,
}

/// Apply the allowlist: per (rule, file) pair, absorb up to the budget.
#[must_use]
pub fn gate(findings: Vec<Finding>, allowlist: &Allowlist) -> Gated {
    let mut grouped: BTreeMap<(Rule, String), Vec<Finding>> = BTreeMap::new();
    for finding in findings {
        grouped
            .entry((finding.rule, path_key(&finding.file)))
            .or_default()
            .push(finding);
    }

    let mut gated = Gated::default();
    let mut seen: Vec<(Rule, String)> = Vec::new();
    for ((rule, file), group) in grouped {
        let budget = allowlist
            .budgets
            .get(&(rule.name().to_owned(), file.clone()))
            .copied()
            .unwrap_or(0);
        seen.push((rule, file.clone()));
        if group.len() <= budget {
            gated.grandfathered += group.len();
            if group.len() < budget {
                gated
                    .slack
                    .push((rule.name().to_owned(), file, budget, group.len()));
            }
        } else {
            gated.rejected.extend(group);
        }
    }

    // Entries whose file no longer has findings at all are pure slack.
    for ((rule, file), &budget) in &allowlist.budgets {
        let Some(rule) = Rule::from_name(rule) else {
            continue;
        };
        if budget > 0 && !seen.iter().any(|(r, f)| *r == rule && f == file) {
            gated
                .slack
                .push((rule.name().to_owned(), file.clone(), budget, 0));
        }
    }
    gated
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn finding(rule: Rule, file: &str, line: usize) -> Finding {
        Finding {
            file: PathBuf::from(file),
            line,
            column: 1,
            rule,
            matched: "x".to_owned(),
            chain: Vec::new(),
        }
    }

    #[test]
    fn parse_round_trip() {
        let findings = vec![
            finding(Rule::LossyCast, "crates/a/src/x.rs", 1),
            finding(Rule::LossyCast, "crates/a/src/x.rs", 2),
            finding(Rule::NoUnwrapInLib, "crates/b/src/y.rs", 3),
        ];
        let rendered = Allowlist::render(&findings);
        let parsed = Allowlist::parse(&rendered).expect("round trip parses");
        assert_eq!(parsed.len(), 2);
        assert_eq!(
            parsed.budget(Rule::LossyCast, Path::new("crates/a/src/x.rs")),
            2
        );
        assert_eq!(
            parsed.budget(Rule::NoUnwrapInLib, Path::new("crates/b/src/y.rs")),
            1
        );
        assert_eq!(
            parsed.budget(Rule::Nondeterminism, Path::new("crates/a/src/x.rs")),
            0
        );
    }

    #[test]
    fn gate_absorbs_within_budget_and_rejects_overflow() {
        let rendered = "\
[[allow]]
rule = \"lossy-cast\"
file = \"crates/a/src/x.rs\"
count = 1
";
        let allowlist = Allowlist::parse(rendered).expect("parses");
        let within = gate(
            vec![finding(Rule::LossyCast, "crates/a/src/x.rs", 1)],
            &allowlist,
        );
        assert!(within.rejected.is_empty());
        assert_eq!(within.grandfathered, 1);

        let over = gate(
            vec![
                finding(Rule::LossyCast, "crates/a/src/x.rs", 1),
                finding(Rule::LossyCast, "crates/a/src/x.rs", 2),
            ],
            &allowlist,
        );
        assert_eq!(
            over.rejected.len(),
            2,
            "budget exceeded rejects the whole group"
        );
    }

    #[test]
    fn gate_reports_slack_for_fixed_files() {
        let rendered = "\
[[allow]]
rule = \"no-unwrap-in-lib\"
file = \"crates/b/src/y.rs\"
count = 3
";
        let allowlist = Allowlist::parse(rendered).expect("parses");
        let gated = gate(Vec::new(), &allowlist);
        assert_eq!(gated.slack.len(), 1);
        assert_eq!(gated.slack[0].2, 3);
        assert_eq!(gated.slack[0].3, 0);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(
            Allowlist::parse("rule = \"x\"").is_err(),
            "key outside entry"
        );
        assert!(
            Allowlist::parse("[[allow]]\nrule = \"no-such-rule\"\nfile = \"f\"\ncount = 1")
                .is_err(),
            "unknown rule"
        );
        assert!(
            Allowlist::parse("[[allow]]\nrule = \"lossy-cast\"\nfile = \"f\"\ncount = x").is_err(),
            "bad count"
        );
        assert!(
            Allowlist::parse("[[allow]]\nrule = \"lossy-cast\"\nfile = \"f\"").is_err(),
            "missing count"
        );
    }
}
