//! Incremental scan cache: per-file content-hash keyed line findings
//! plus the previous run's final findings, persisted as JSON (default
//! `target/mira-lint-cache.json`).
//!
//! Two levels of reuse:
//!
//! * **Full hit** — every (path, hash) pair matches the stored digest:
//!   the stored final findings are returned verbatim, no lexing at
//!   all. Verbatim storage (not recomputation) is what makes the
//!   cached run *byte-identical* to the cold one, which ci.sh gates.
//! * **Partial hit** — unchanged files skip their line rules; they are
//!   still lexed and parsed, because the semantic pass needs the
//!   whole-workspace symbol index no matter what changed. Cached line
//!   findings are the *raw* `check_file` output, before the
//!   index-driven test-file retain — that filter depends on every
//!   other file, so it must rerun per scan.
//!
//! The cache self-invalidates when [`RULE_VERSION`] moves (bump it on
//! any change to rule logic or the finding format) and on any parse
//! error — a corrupt cache degrades to a cold scan, never to wrong
//! findings.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::json_str;
use crate::rules::{Finding, Rule};

/// Bump on any change to rule logic, finding fields, or this file's
/// format; every persisted cache from an older version is discarded.
pub const RULE_VERSION: u32 = 4;

/// FNV-1a 64-bit content hash — stable across platforms and runs
/// (unlike `DefaultHasher`, which is randomly keyed per process).
#[must_use]
pub fn content_hash(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One persisted scan: the file digest it was computed from, raw
/// per-file line findings, and the final merged findings.
#[derive(Debug, Clone, Default)]
pub struct ScanCache {
    /// `(workspace-relative path with `/` separators, content hash,
    /// raw line findings)` per file, in scan (path) order.
    pub files: Vec<(String, u64, Vec<Finding>)>,
    /// The run's final findings, post-semantic-pass and sort.
    pub final_findings: Vec<Finding>,
}

impl ScanCache {
    /// Package a finished scan for storage.
    #[must_use]
    pub fn new(
        digest: &[(String, u64)],
        raw: Vec<Vec<Finding>>,
        final_findings: Vec<Finding>,
    ) -> ScanCache {
        let files = digest
            .iter()
            .zip(raw)
            .map(|((path, hash), findings)| (path.clone(), *hash, findings))
            .collect();
        ScanCache {
            files,
            final_findings,
        }
    }

    /// Does the stored digest exactly match `digest` (same files, same
    /// order, same hashes)?
    #[must_use]
    pub fn matches(&self, digest: &[(String, u64)]) -> bool {
        self.files.len() == digest.len()
            && self
                .files
                .iter()
                .zip(digest)
                .all(|((p, h, _), (dp, dh))| p == dp && h == dh)
    }

    /// The stored raw line findings for `path`, if its content hash
    /// still matches.
    #[must_use]
    pub fn line_findings_for(&self, path: &str, hash: u64) -> Option<&[Finding]> {
        self.files
            .iter()
            .find(|(p, h, _)| p == path && *h == hash)
            .map(|(_, _, findings)| findings.as_slice())
    }

    /// Load a cache written by [`ScanCache::store`]. `None` on a
    /// missing file, a version mismatch, or any parse error.
    #[must_use]
    pub fn load(path: &Path) -> Option<ScanCache> {
        let text = fs::read_to_string(path).ok()?;
        let value = JsonParser::parse(&text)?;
        let obj = value.as_obj()?;
        let version = obj_get(obj, "rule_version")?.as_u64()?;
        if version != u64::from(RULE_VERSION) {
            return None;
        }
        let mut files = Vec::new();
        for entry in obj_get(obj, "files")?.as_arr()? {
            let entry = entry.as_obj()?;
            let path = obj_get(entry, "path")?.as_str()?.to_owned();
            let hash = u64::from_str_radix(obj_get(entry, "hash")?.as_str()?, 16).ok()?;
            let findings = parse_findings(obj_get(entry, "findings")?)?;
            files.push((path, hash, findings));
        }
        let final_findings = parse_findings(obj_get(obj, "final")?)?;
        Some(ScanCache {
            files,
            final_findings,
        })
    }

    /// Persist as JSON, creating parent directories as needed.
    ///
    /// # Errors
    /// Any underlying filesystem error (callers treat store failures as
    /// best-effort).
    pub fn store(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.render())
    }

    fn render(&self) -> String {
        let mut out = format!("{{\n  \"rule_version\": {RULE_VERSION},\n  \"files\": [");
        for (i, (path, hash, findings)) in self.files.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"path\": {}, ", json_str(path)));
            out.push_str(&format!("\"hash\": \"{hash:016x}\", "));
            out.push_str(&format!("\"findings\": {}}}", render_findings(findings)));
        }
        if !self.files.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"final\": ");
        out.push_str(&render_findings(&self.final_findings));
        out.push_str("\n}\n");
        out
    }
}

fn render_findings(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let chain: Vec<String> = f.chain.iter().map(|c| json_str(c)).collect();
        out.push_str(&format!(
            "{{\"file\": {}, \"line\": {}, \"column\": {}, \"rule\": {}, \"message\": {}, \"chain\": [{}]}}",
            json_str(&f.file.to_string_lossy().replace('\\', "/")),
            f.line,
            f.column,
            json_str(f.rule.name()),
            json_str(&f.matched),
            chain.join(", ")
        ));
    }
    out.push(']');
    out
}

fn parse_findings(value: &Json) -> Option<Vec<Finding>> {
    let mut findings = Vec::new();
    for entry in value.as_arr()? {
        let obj = entry.as_obj()?;
        let mut chain = Vec::new();
        for c in obj_get(obj, "chain")?.as_arr()? {
            chain.push(c.as_str()?.to_owned());
        }
        findings.push(Finding {
            file: PathBuf::from(obj_get(obj, "file")?.as_str()?),
            line: usize::try_from(obj_get(obj, "line")?.as_u64()?).ok()?,
            column: usize::try_from(obj_get(obj, "column")?.as_u64()?).ok()?,
            rule: Rule::from_name(obj_get(obj, "rule")?.as_str()?)?,
            matched: obj_get(obj, "message")?.as_str()?.to_owned(),
            chain,
        });
    }
    Some(findings)
}

// ---------------------------------------------------------------------
// A minimal JSON reader for exactly the subset this module writes
// (objects, arrays, strings, unsigned integers). std-only by design.

#[derive(Debug)]
enum Json {
    Obj(Vec<(String, Json)>),
    Arr(Vec<Json>),
    Str(String),
    Num(u64),
}

impl Json {
    fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

fn obj_get<'v>(obj: &'v [(String, Json)], key: &str) -> Option<&'v Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn parse(text: &'a str) -> Option<Json> {
        let mut parser = JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = parser.value()?;
        parser.ws();
        (parser.pos == parser.bytes.len()).then_some(value)
    }

    fn ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(u8::is_ascii_whitespace)
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        self.ws();
        (self.bytes.get(self.pos) == Some(&b)).then(|| self.pos += 1)
    }

    fn value(&mut self) -> Option<Json> {
        self.ws();
        match self.bytes.get(self.pos)? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(Json::Str),
            b'0'..=b'9' => self.number(),
            _ => None,
        }
    }

    fn object(&mut self) -> Option<Json> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Some(Json::Obj(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.eat(b':')?;
            fields.push((key, self.value()?));
            self.ws();
            match self.bytes.get(self.pos)? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Some(Json::Obj(fields));
                }
                _ => return None,
            }
        }
    }

    fn array(&mut self) -> Option<Json> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Some(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.ws();
            match self.bytes.get(self.pos)? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Some(Json::Arr(items));
                }
                _ => return None,
            }
        }
    }

    fn string(&mut self) -> Option<String> {
        (self.bytes.get(self.pos) == Some(&b'"')).then_some(())?;
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos)? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.bytes.get(self.pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar (findings may carry
                    // non-ASCII source excerpts).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|b| b & 0b1100_0000 == 0b1000_0000)
                    {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).ok()?);
                }
            }
        }
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse()
            .ok()
            .map(Json::Num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_finding(line: usize) -> Finding {
        Finding {
            file: PathBuf::from("crates/a/src/x.rs"),
            line,
            column: 5,
            rule: Rule::LossyCast,
            matched: "lossy `as f64` cast with \"quotes\"".to_owned(),
            chain: vec!["f".to_owned(), "g".to_owned()],
        }
    }

    #[test]
    fn content_hash_is_stable_and_input_sensitive() {
        assert_eq!(content_hash("abc"), content_hash("abc"));
        assert_ne!(content_hash("abc"), content_hash("abd"));
        // FNV-1a reference vector for the empty string.
        assert_eq!(content_hash(""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn cache_roundtrips_through_disk() {
        let digest = vec![
            ("crates/a/src/x.rs".to_owned(), content_hash("one")),
            ("crates/b/src/y.rs".to_owned(), content_hash("two")),
        ];
        let cache = ScanCache::new(
            &digest,
            vec![vec![sample_finding(3)], Vec::new()],
            vec![sample_finding(3), sample_finding(9)],
        );
        let dir = std::env::temp_dir().join("mira-lint-cache-test");
        let path = dir.join("roundtrip.json");
        cache.store(&path).expect("cache writes");
        let loaded = ScanCache::load(&path).expect("cache reloads");
        fs::remove_file(&path).ok();

        assert!(loaded.matches(&digest));
        assert_eq!(loaded.final_findings, cache.final_findings);
        assert_eq!(
            loaded.line_findings_for("crates/a/src/x.rs", content_hash("one")),
            Some(&[sample_finding(3)][..])
        );
        assert_eq!(
            loaded.line_findings_for("crates/a/src/x.rs", content_hash("changed")),
            None,
            "stale hash misses"
        );
    }

    #[test]
    fn version_bump_invalidates() {
        let cache = ScanCache::new(&[], Vec::new(), Vec::new());
        let rendered = cache.render().replace(
            &format!("\"rule_version\": {RULE_VERSION}"),
            "\"rule_version\": 1",
        );
        let dir = std::env::temp_dir().join("mira-lint-cache-test");
        fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("stale-version.json");
        fs::write(&path, rendered).expect("write stale cache");
        assert!(ScanCache::load(&path).is_none());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_cache_degrades_to_none() {
        let dir = std::env::temp_dir().join("mira-lint-cache-test");
        fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("corrupt.json");
        fs::write(&path, "{\"rule_version\": ").expect("write corrupt cache");
        assert!(ScanCache::load(&path).is_none());
        fs::remove_file(&path).ok();
        assert!(ScanCache::load(Path::new("/nonexistent/cache.json")).is_none());
    }

    #[test]
    fn digest_mismatch_is_detected() {
        let digest = vec![("a.rs".to_owned(), 1u64), ("b.rs".to_owned(), 2u64)];
        let cache = ScanCache::new(&digest, vec![Vec::new(), Vec::new()], Vec::new());
        assert!(cache.matches(&digest));
        let renamed = vec![("a.rs".to_owned(), 1u64), ("c.rs".to_owned(), 2u64)];
        assert!(!cache.matches(&renamed));
        let edited = vec![("a.rs".to_owned(), 1u64), ("b.rs".to_owned(), 3u64)];
        assert!(!cache.matches(&edited));
        let removed = vec![("a.rs".to_owned(), 1u64)];
        assert!(!cache.matches(&removed));
    }
}
